//! The explanation generator (paper §3.3, Panels 4–5).
//!
//! "Given a missing object, this module generates an explanation by
//! analyzing its spatial proximity and textual relevance with respect to
//! the initial query … The reason can be that the missing object is too
//! far away from the query location or that the missing object is not so
//! relevant to the set of query keywords. The ranking of the missing
//! object under the initial query is also provided."
//!
//! The classification compares the object's spatial/textual score parts
//! against the *average* parts of the current top-k result, weighted by
//! the query's preference vector, and renders a human-readable message.

use yask_index::{Corpus, ObjectId};
use yask_query::{rank_of_scan, topk_scan, Query, RankedObject, ScoreParams};

use crate::error::WhyNotError;

/// Why an object is (or is not) missing from the result.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MissingReason {
    /// The object is actually in the top-k result.
    InResult,
    /// Ranked within [`JUST_MISSED_SLACK`] positions past `k`: a slightly
    /// larger `k` suffices.
    JustMissed,
    /// The dominant deficit is spatial: the object is too far from the
    /// query location relative to the result set.
    TooFar,
    /// The dominant deficit is textual: the object's keywords match the
    /// query poorly relative to the result set.
    WeakKeywords,
    /// Both deficits are comparable.
    Both,
}

/// Objects ranked at most this far past `k` are "just missed".
pub const JUST_MISSED_SLACK: usize = 2;

/// When the smaller weighted deficit is at least this fraction of the
/// larger one, both dimensions are blamed.
const BOTH_RATIO: f64 = 0.5;

/// The explanation for one desired object (rendered in the demo's
/// explanation panel).
#[derive(Clone, Debug)]
pub struct Explanation {
    /// The object in question.
    pub object: ObjectId,
    /// Its display name.
    pub name: String,
    /// Its exact rank under the initial query.
    pub rank: usize,
    /// The initial `k`.
    pub k: usize,
    /// Its score `ST(o, q)`.
    pub score: f64,
    /// Its spatial part `1 − SDist(o, q)`.
    pub spatial_part: f64,
    /// Its textual part `TSim(o, q)`.
    pub textual_part: f64,
    /// Score of the k-th (worst) object in the current result.
    pub kth_score: f64,
    /// Mean spatial part over the current top-k.
    pub avg_top_spatial: f64,
    /// Mean textual part over the current top-k.
    pub avg_top_textual: f64,
    /// Query keywords the object *does* contain.
    pub matched_keywords: yask_text::KeywordSet,
    /// Query keywords the object lacks — the ones keyword adaptation
    /// would have to delete (or compensate for) to revive it.
    pub unmatched_keywords: yask_text::KeywordSet,
    /// The classification.
    pub reason: MissingReason,
    /// Human-readable rendering of all of the above.
    pub message: String,
}

/// Explains each object in `desired` with respect to query `q`.
///
/// Unlike the refinement modules, objects already in the result are
/// accepted (reason [`MissingReason::InResult`]) — the demo lets users
/// click any marker.
pub fn explain(
    corpus: &Corpus,
    params: &ScoreParams,
    query: &Query,
    desired: &[ObjectId],
) -> Result<Vec<Explanation>, WhyNotError> {
    validate_desired(corpus, desired)?;
    let top = topk_scan(corpus, params, query);
    let ranks: Vec<usize> = desired
        .iter()
        .map(|&m| rank_of_scan(corpus, params, query, m))
        .collect();
    Ok(explain_given(corpus, params, query, desired, &top, &ranks))
}

/// The request validation shared by [`explain`] and the sharded fan-out:
/// non-empty database, non-empty desired set, every id live (out-of-range
/// and tombstoned ids are both foreign — a deleted object has no rank
/// under the current corpus version).
pub fn validate_desired(corpus: &Corpus, desired: &[ObjectId]) -> Result<(), WhyNotError> {
    if corpus.is_empty() {
        return Err(WhyNotError::EmptyDatabase);
    }
    if desired.is_empty() {
        return Err(WhyNotError::EmptyMissingSet);
    }
    for &m in desired {
        if !corpus.contains(m) {
            return Err(WhyNotError::ForeignObject(m));
        }
    }
    Ok(())
}

/// Assembles explanations from an already-computed top-k result and
/// already-computed exact ranks (aligned with `desired`).
///
/// This is the gather half of the sharded explain fan-out: the execution
/// layer produces `top` by scatter-gather and each rank as a sum of
/// per-shard exact outrank counts, then delegates the classification and
/// rendering here so the output is byte-identical to the scan path.
/// Callers must have validated the request ([`validate_desired`]) first.
pub fn explain_given(
    corpus: &Corpus,
    params: &ScoreParams,
    query: &Query,
    desired: &[ObjectId],
    top: &[RankedObject],
    ranks: &[usize],
) -> Vec<Explanation> {
    assert_eq!(desired.len(), ranks.len(), "ranks must align with desired");
    let kth_score = top.last().map_or(0.0, |r| r.score);
    let (mut sum_a, mut sum_b) = (0.0, 0.0);
    for r in top {
        let (a, b) = params.parts(corpus.get(r.id), query);
        sum_a += a;
        sum_b += b;
    }
    let n_top = top.len().max(1) as f64;
    let (avg_a, avg_b) = (sum_a / n_top, sum_b / n_top);

    desired
        .iter()
        .zip(ranks)
        .map(|(&m, &rank)| {
            let obj = corpus.get(m);
            let (a, b) = params.parts(obj, query);
            let score = query.weights.ws() * a + query.weights.wt() * b;
            let reason = classify(rank, query, a, b, avg_a, avg_b);
            let matched = query.doc.intersection(&obj.doc);
            let unmatched = query.doc.difference(&obj.doc);
            let mut message =
                render(obj.name.as_str(), rank, query.k, score, kth_score, a, b, avg_a, avg_b, reason);
            if !unmatched.is_empty() && reason != MissingReason::InResult {
                message.push_str(&format!(
                    " It matches {} of the {} query keywords.",
                    matched.len(),
                    query.doc.len()
                ));
            }
            Explanation {
                object: m,
                name: obj.name.clone(),
                rank,
                k: query.k,
                score,
                spatial_part: a,
                textual_part: b,
                kth_score,
                avg_top_spatial: avg_a,
                avg_top_textual: avg_b,
                matched_keywords: matched,
                unmatched_keywords: unmatched,
                reason,
                message,
            }
        })
        .collect()
}

fn classify(rank: usize, q: &Query, a: f64, b: f64, avg_a: f64, avg_b: f64) -> MissingReason {
    if rank <= q.k {
        return MissingReason::InResult;
    }
    if rank <= q.k + JUST_MISSED_SLACK {
        return MissingReason::JustMissed;
    }
    // Weighted deficits against the average of the winning set.
    let ds = (q.weights.ws() * (avg_a - a)).max(0.0);
    let dt = (q.weights.wt() * (avg_b - b)).max(0.0);
    if ds == 0.0 && dt == 0.0 {
        // Better than the averages on both axes yet still well outside the
        // top-k: the result set is simply strong; closest call is "just
        // missed by ranking".
        return MissingReason::JustMissed;
    }
    if ds > 0.0 && dt > 0.0 && ds.min(dt) >= BOTH_RATIO * ds.max(dt) {
        MissingReason::Both
    } else if ds >= dt {
        MissingReason::TooFar
    } else {
        MissingReason::WeakKeywords
    }
}

#[allow(clippy::too_many_arguments)]
fn render(
    name: &str,
    rank: usize,
    k: usize,
    score: f64,
    kth: f64,
    a: f64,
    b: f64,
    avg_a: f64,
    avg_b: f64,
    reason: MissingReason,
) -> String {
    let head = match reason {
        MissingReason::InResult => {
            return format!("\"{name}\" is in the result: it ranks {rank} of the top-{k}.")
        }
        MissingReason::JustMissed => format!(
            "\"{name}\" just missed the result: it ranks {rank}, only {} past k = {k}.",
            rank - k
        ),
        MissingReason::TooFar => format!(
            "\"{name}\" ranks {rank} (k = {k}) mainly because it is too far from the query \
             location."
        ),
        MissingReason::WeakKeywords => format!(
            "\"{name}\" ranks {rank} (k = {k}) mainly because its keywords match the query \
             poorly."
        ),
        MissingReason::Both => format!(
            "\"{name}\" ranks {rank} (k = {k}): it is both farther and textually weaker than \
             the returned objects."
        ),
    };
    format!(
        "{head} Its score is {score:.4} vs {kth:.4} for the k-th result; spatial proximity \
         {a:.4} (result average {avg_a:.4}), textual relevance {b:.4} (result average {avg_b:.4})."
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use yask_geo::{Point, Space};
    use yask_index::CorpusBuilder;
    use yask_text::KeywordSet;

    fn ks(ids: &[u32]) -> KeywordSet {
        KeywordSet::from_raw(ids.iter().copied())
    }

    /// A corpus engineered so each reason is reachable:
    /// o0, o1: near + matching (the top-2);
    /// o2: near + matching but edged out (just missed);
    /// o3: far + matching (too far — pushed past the slack by fillers);
    /// o4: near + unrelated keywords (weak keywords);
    /// o5: far + unrelated (both);
    /// o6, o7: filler winners so o3 lands beyond k + slack.
    fn fixture() -> (Corpus, ScoreParams, Query) {
        let mut b = CorpusBuilder::new().with_space(Space::unit());
        b.push(Point::new(0.00, 0.0), ks(&[1, 2]), "winner-a");
        b.push(Point::new(0.01, 0.0), ks(&[1, 2]), "winner-b");
        b.push(Point::new(0.02, 0.0), ks(&[1, 2]), "nearly");
        b.push(Point::new(0.95, 0.9), ks(&[1, 2]), "distant");
        b.push(Point::new(0.03, 0.0), ks(&[8, 9]), "offtopic");
        b.push(Point::new(0.9, 0.95), ks(&[8, 9]), "hopeless");
        b.push(Point::new(0.04, 0.0), ks(&[1, 2]), "filler-a");
        b.push(Point::new(0.05, 0.0), ks(&[1, 2]), "filler-b");
        let c = b.build();
        let p = ScoreParams::new(c.space());
        let q = Query::new(Point::new(0.0, 0.0), ks(&[1, 2]), 2);
        (c, p, q)
    }

    #[test]
    fn classifies_all_reasons() {
        let (c, p, q) = fixture();
        let ex = explain(
            &c,
            &p,
            &q,
            &[
                ObjectId(0),
                ObjectId(2),
                ObjectId(3),
                ObjectId(4),
                ObjectId(5),
            ],
        )
        .unwrap();
        assert_eq!(ex[0].reason, MissingReason::InResult);
        assert_eq!(ex[1].reason, MissingReason::JustMissed);
        assert_eq!(ex[2].reason, MissingReason::TooFar);
        assert_eq!(ex[3].reason, MissingReason::WeakKeywords);
        assert_eq!(ex[4].reason, MissingReason::Both);
    }

    #[test]
    fn ranks_are_exact() {
        let (c, p, q) = fixture();
        let ex = explain(&c, &p, &q, &[ObjectId(2)]).unwrap();
        assert_eq!(ex[0].rank, 3, "{:?}", ex[0]);
        assert_eq!(ex[0].k, 2);
        assert!(ex[0].score < ex[0].kth_score);
    }

    #[test]
    fn message_mentions_name_and_rank() {
        let (c, p, q) = fixture();
        let ex = explain(&c, &p, &q, &[ObjectId(3)]).unwrap();
        assert!(ex[0].message.contains("distant"), "{}", ex[0].message);
        assert!(ex[0].message.contains("far from the query"), "{}", ex[0].message);
        assert!(ex[0].message.contains(&format!("ranks {}", ex[0].rank)));
    }

    #[test]
    fn parts_are_consistent_with_score() {
        let (c, p, q) = fixture();
        let ex = explain(&c, &p, &q, &[ObjectId(4)]).unwrap();
        let e = &ex[0];
        let recomputed = q.weights.ws() * e.spatial_part + q.weights.wt() * e.textual_part;
        assert!((recomputed - e.score).abs() < 1e-12);
    }

    #[test]
    fn keyword_breakdown_is_exact() {
        let (c, p, q) = fixture();
        // "offtopic" (o4) has doc {8,9}; query is {1,2}: no matches.
        let ex = explain(&c, &p, &q, &[ObjectId(4)]).unwrap();
        assert!(ex[0].matched_keywords.is_empty());
        assert_eq!(ex[0].unmatched_keywords, ks(&[1, 2]));
        assert!(ex[0].message.contains("matches 0 of the 2"), "{}", ex[0].message);
        // "nearly" (o2) matches both keywords.
        let ex = explain(&c, &p, &q, &[ObjectId(2)]).unwrap();
        assert_eq!(ex[0].matched_keywords, ks(&[1, 2]));
        assert!(ex[0].unmatched_keywords.is_empty());
    }

    #[test]
    fn errors() {
        let (c, p, q) = fixture();
        assert_eq!(explain(&c, &p, &q, &[]).unwrap_err(), WhyNotError::EmptyMissingSet);
        assert_eq!(
            explain(&c, &p, &q, &[ObjectId(77)]).unwrap_err(),
            WhyNotError::ForeignObject(ObjectId(77))
        );
    }
}
