//! The YASK why-not engine — the paper's primary contribution.
//!
//! Given an initial spatial keyword top-k query `q` and a set `M` of
//! desired-but-missing objects, the engine answers the *why-not question*
//! three ways (paper §2.2, §3.3):
//!
//! * [`mod@explain`] — the **explanation generator**: why is each object of
//!   `M` missing (too far? weak keywords? just missed?), with its exact
//!   rank under `q`;
//! * [`pref`] — the **preference-adjusted** refined query (Definition 2):
//!   the `(k′, ~w′)` minimizing the penalty of Eqn (3) whose result
//!   contains all of `M`, found by mapping objects to segments in the
//!   weight plane and sweeping their intersection points with a
//!   rank-update argument (after reference \[5\]);
//! * [`keyword`] — the **keyword-adapted** refined query (Definition 3):
//!   the `(doc′, k′)` minimizing the penalty of Eqn (4), found by
//!   enumerating candidate keyword sets in edit-distance order and
//!   pruning with rank bounds from the KcR-tree (after reference \[6\]).
//!
//! [`engine::Yask`] packages all three behind one facade together with the
//! top-k engine, and [`session`] provides the query cache the demo server
//! keeps "until users give up asking follow-up why-not questions".
//!
//! Both refinement modules come with naive baselines
//! ([`pref::refine_preference_naive`], [`keyword::refine_keywords_naive`])
//! used for differential testing and for the speedup experiments E6/E8.

pub mod combined;
pub(crate) mod common;
pub mod engine;
pub mod error;
pub mod explain;
pub mod keyword;
pub mod penalty;
pub mod pref;
pub mod session;

pub use combined::{
    refine_combined, refine_combined_on, refine_combined_with, CombineOrder, CombinedRefinement,
    RefinementEngine, TreeRefinementEngine,
};
pub use engine::{RecommendedModel, WhyNotAnswer, Yask, YaskConfig};
pub use error::WhyNotError;
pub use explain::{explain, explain_given, validate_desired, Explanation, MissingReason};
pub use keyword::bounds::{BoundStats, NoGate, OutrankGate, RankEvaluator};
pub use keyword::{
    refine_keywords, refine_keywords_eval, refine_keywords_naive, refine_keywords_with,
    KeywordOptions, KeywordRefinement, KeywordStats, OutrankRequest,
};
pub use penalty::{keyword_penalty, preference_penalty, PenaltyContext};
pub use pref::segment::SegmentSet;
pub use pref::{
    refine_preference, refine_preference_naive, refine_preference_with_segments,
    PreferenceRefinement,
};
pub use session::{Session, SessionId, SessionStore};
