//! The rank-update sweep over weight-plane intersection points.
//!
//! Reference [5]'s key observation (the *rank update theorem*): as the
//! spatial weight `ws` sweeps from 0 to 1, the rank of a missing object
//! `m` changes **only** where another object's segment crosses `m`'s, and
//! it changes by exactly ±1 per crossing. So after one O(n) rank
//! evaluation at the leftmost candidate, every further candidate costs
//! O(#events passed) instead of O(n) — the difference between the
//! optimized module and the naive baseline measured in experiment E6.
//!
//! Numerical protocol (shared with the naive baseline so the two are
//! bit-for-bit comparable): candidate weights are the crossing abscissae
//! *nudged* by ±[`NUDGE`] (staying inside `(0,1)`), plus the initial
//! weight. Evaluating beside rather than at the crossings keeps every
//! score comparison generic — no tie arises exactly at a candidate — while
//! giving up at most `√2·NUDGE / norm ≈ 1.2e−7` of penalty, far below any
//! meaningful difference. The final winner is re-ranked with the real
//! scorer before being returned (see `pref::finalize`).

use crate::pref::segment::Segment;

/// Nudge distance around each crossing (see module docs).
pub(crate) const NUDGE: f64 = 1e-7;

/// One rank-change event for a specific missing object.
#[derive(Clone, Copy, Debug)]
pub(crate) struct Event {
    /// Crossing abscissa in `(0, 1)`.
    pub ws: f64,
    /// True when the other object scores above `m` on the left of the
    /// crossing (so passing it *improves* `m`'s rank).
    pub left_above: bool,
}

/// Collects `m`'s events against the given partner segments.
pub(crate) fn collect_events<I: IntoIterator<Item = usize>>(
    segments: &[Segment],
    m_idx: usize,
    partners: I,
) -> Vec<Event> {
    let sm = segments[m_idx];
    let mut events = Vec::new();
    for o in partners {
        if o == m_idx {
            continue;
        }
        if let Some(ws) = sm.crossing(&segments[o]) {
            // On the left of the crossing the sign of (f_o − f_m) is
            // −sign(slope_o − slope_m); crossing inside (0,1) implies it
            // equals sign(b_o − b_m).
            events.push(Event {
                ws,
                left_above: segments[o].b > sm.b,
            });
        }
    }
    events.sort_by(|a, b| a.ws.partial_cmp(&b.ws).expect("finite crossing"));
    events
}

/// Builds the candidate weight list from per-missing-object events: the
/// initial weight plus both nudges of every crossing, sorted and
/// deduplicated, all within `(0, 1)`.
pub(crate) fn candidate_weights(events_per_m: &[Vec<Event>], ws0: f64) -> Vec<f64> {
    let mut out = Vec::with_capacity(events_per_m.iter().map(|e| 2 * e.len()).sum::<usize>() + 1);
    out.push(ws0);
    for events in events_per_m {
        for e in events {
            let lo = e.ws - NUDGE;
            let hi = e.ws + NUDGE;
            if lo > 0.0 {
                out.push(lo);
            }
            if hi < 1.0 {
                out.push(hi);
            }
        }
    }
    out.sort_by(|a, b| a.partial_cmp(b).expect("finite candidate"));
    out.dedup();
    out
}

/// The canonical rank of `segments[m_idx]` at weight `ws`: 1 + the number
/// of objects scoring strictly above, with exact-score ties broken towards
/// the smaller index. This is the segment-space mirror of the engine's
/// total order.
pub(crate) fn segment_rank(segments: &[Segment], m_idx: usize, ws: f64) -> usize {
    let sm = segments[m_idx].eval(ws);
    let mut better = 0usize;
    for (i, s) in segments.iter().enumerate() {
        if i == m_idx {
            continue;
        }
        let v = s.eval(ws);
        if v > sm || (v == sm && i < m_idx) {
            better += 1;
        }
    }
    better + 1
}

/// For every candidate weight, the *worst* (largest) rank over all missing
/// objects — `R(M, q_ws)` — computed by the incremental sweep.
///
/// `events_per_m[i]` must be sorted by `ws` and belong to `missing[i]`.
pub(crate) fn sweep_ranks(
    segments: &[Segment],
    missing: &[usize],
    events_per_m: &[Vec<Event>],
    candidates: &[f64],
) -> Vec<usize> {
    assert_eq!(missing.len(), events_per_m.len());
    if candidates.is_empty() {
        return Vec::new();
    }
    let w_first = candidates[0];

    struct MState<'e> {
        events: &'e [Event],
        ptr: usize,
        /// Objects currently counted as outranking m (valid for the open
        /// interval containing the last evaluated candidate).
        above: usize,
    }
    let mut states: Vec<MState> = missing
        .iter()
        .zip(events_per_m)
        .map(|(&m_idx, events)| {
            // Base count at the first candidate by direct evaluation; skip
            // (without applying) any events at or before it — they are
            // already reflected in the direct count.
            let above = segment_rank(segments, m_idx, w_first) - 1;
            let mut ptr = 0;
            while ptr < events.len() && events[ptr].ws <= w_first {
                ptr += 1;
            }
            MState { events, ptr, above }
        })
        .collect();

    let mut out = Vec::with_capacity(candidates.len());
    for (ci, &w) in candidates.iter().enumerate() {
        let mut worst = 0usize;
        for state in states.iter_mut() {
            if ci > 0 {
                while state.ptr < state.events.len() && state.events[state.ptr].ws <= w {
                    if state.events[state.ptr].left_above {
                        state.above -= 1;
                    } else {
                        state.above += 1;
                    }
                    state.ptr += 1;
                }
            }
            worst = worst.max(state.above + 1);
        }
        out.push(worst);
    }
    out
}

/// The naive counterpart: re-ranks every missing object from scratch at
/// every candidate (O(candidates × |M| × n)). Identical output protocol to
/// [`sweep_ranks`]; exists as the correctness oracle and the baseline of
/// experiment E6.
pub(crate) fn naive_ranks(
    segments: &[Segment],
    missing: &[usize],
    candidates: &[f64],
) -> Vec<usize> {
    candidates
        .iter()
        .map(|&w| {
            missing
                .iter()
                .map(|&m| segment_rank(segments, m, w))
                .max()
                .expect("missing set non-empty")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use yask_util::Xoshiro256;

    fn random_segments(n: usize, seed: u64) -> Vec<Segment> {
        let mut rng = Xoshiro256::seed_from_u64(seed);
        (0..n)
            .map(|_| Segment::new(rng.next_f64(), rng.next_f64()))
            .collect()
    }

    #[test]
    fn events_sorted_and_within_interval() {
        let segs = random_segments(50, 1);
        let events = collect_events(&segs, 0, 0..segs.len());
        for w in events.windows(2) {
            assert!(w[0].ws <= w[1].ws);
        }
        for e in &events {
            assert!(e.ws > 0.0 && e.ws < 1.0);
        }
    }

    #[test]
    fn left_above_flag_matches_evaluation() {
        let segs = random_segments(40, 2);
        let m = 5;
        for e in collect_events(&segs, m, 0..segs.len()) {
            // Find which partner produced this event by re-deriving: check
            // the flag against direct evaluation just left of the event.
            let left = (e.ws - 1e-9).max(1e-12);
            let sm = segs[m].eval(left);
            let above_exists = segs
                .iter()
                .enumerate()
                .filter(|&(i, s)| i != m && s.eval(left) > sm)
                .count();
            // Weak sanity: if the flag says something is above on the
            // left, at least one object is above there.
            if e.left_above {
                assert!(above_exists > 0);
            }
        }
    }

    #[test]
    fn sweep_equals_naive_on_random_fixtures() {
        for seed in 0..10 {
            let segs = random_segments(120, seed);
            let missing: Vec<usize> = vec![3, 57, 110];
            let events: Vec<Vec<Event>> = missing
                .iter()
                .map(|&m| collect_events(&segs, m, 0..segs.len()))
                .collect();
            let candidates = candidate_weights(&events, 0.5);
            assert!(!candidates.is_empty());
            let fast = sweep_ranks(&segs, &missing, &events, &candidates);
            let slow = naive_ranks(&segs, &missing, &candidates);
            assert_eq!(fast, slow, "seed {seed}");
        }
    }

    #[test]
    fn sweep_handles_single_object_database() {
        let segs = vec![Segment::new(0.5, 0.5)];
        let missing = vec![0usize];
        let events = vec![collect_events(&segs, 0, 0..1)];
        let candidates = candidate_weights(&events, 0.5);
        let ranks = sweep_ranks(&segs, &missing, &events, &candidates);
        assert_eq!(ranks, vec![1]);
    }

    #[test]
    fn identical_segments_tie_by_index() {
        // Three identical lines: ranks are fixed by index at every ws.
        let segs = vec![
            Segment::new(0.4, 0.6),
            Segment::new(0.4, 0.6),
            Segment::new(0.4, 0.6),
        ];
        assert_eq!(segment_rank(&segs, 0, 0.3), 1);
        assert_eq!(segment_rank(&segs, 1, 0.3), 2);
        assert_eq!(segment_rank(&segs, 2, 0.3), 3);
    }

    #[test]
    fn rank_improves_after_favorable_crossing() {
        // m is textually poor but spatially perfect; competitor opposite.
        let segs = vec![
            Segment::new(1.0, 0.0), // m
            Segment::new(0.0, 1.0), // competitor
        ];
        // Left of the crossing (ws = 0.5) the competitor leads.
        assert_eq!(segment_rank(&segs, 0, 0.25), 2);
        // Right of it, m leads.
        assert_eq!(segment_rank(&segs, 0, 0.75), 1);
        let events = collect_events(&segs, 0, 0..2);
        assert_eq!(events.len(), 1);
        assert!(events[0].left_above);
        assert!((events[0].ws - 0.5).abs() < 1e-12);
    }

    #[test]
    fn candidates_include_initial_weight_and_stay_interior() {
        let segs = random_segments(30, 3);
        let events = vec![collect_events(&segs, 2, 0..segs.len())];
        let cands = candidate_weights(&events, 0.37);
        assert!(cands.contains(&0.37));
        assert!(cands.iter().all(|&w| w > 0.0 && w < 1.0));
        let mut sorted = cands.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert_eq!(sorted, cands, "candidates must be sorted");
    }
}
