//! Preference adjustment — the why-not module of Definition 2.
//!
//! Given the initial query `q` and missing set `M`, find the refined
//! query `q′ = (loc, doc, k′, ~w′)` minimizing the Eqn (3) penalty whose
//! result contains all of `M`:
//!
//! 1. transform every object into a [`segment::Segment`] in the weight
//!    plane (score is linear in `ws` because `ws + wt = 1`);
//! 2. the optimal `~w′` points at an intersection between a missing
//!    object's segment and another segment (or stays at `~w`), so the
//!    intersection abscissae are the candidate weights;
//! 3. sweep the candidates left-to-right maintaining each missing object's
//!    rank incrementally (the rank-update theorem of \[5\]) — or, in the
//!    [`refine_preference_filtered`] variant, first narrow the crossing
//!    partners with the paper's *two range queries* over an R-tree built
//!    on the `(a_o, b_o)` score parts;
//! 4. re-rank the winning weights with the engine's exact scorer and
//!    return the refined query with its exact penalty.
//!
//! [`refine_preference_naive`] re-ranks every candidate from scratch and
//! is the baseline of experiment E6 as well as the differential-testing
//! oracle.

pub mod segment;
pub(crate) mod sweep;

use yask_geo::{Point, Rect};
use yask_index::{Corpus, CorpusBuilder, ObjectId, PlainRTree, RTreeParams};
use yask_query::{ranks_of_scan, Query, ScoreParams, Weights};
use yask_text::KeywordSet;

use crate::common::build_context;
use crate::error::WhyNotError;
use crate::penalty::{preference_penalty, PenaltyContext};
use segment::{Segment, SegmentSet};
use sweep::{candidate_weights, collect_events, naive_ranks, sweep_ranks, Event};

/// A preference-adjusted refined query with its cost breakdown.
#[derive(Clone, Debug)]
pub struct PreferenceRefinement {
    /// The refined query: original location and keywords, new `k′`/`~w′`.
    pub query: Query,
    /// Eqn (3) penalty of the refinement (exact).
    pub penalty: f64,
    /// `R(M, q′)` — worst missing rank under the refined weights.
    pub rank: usize,
    /// `R(M, q)` — worst missing rank under the initial query.
    pub initial_rank: usize,
    /// `Δk = max(0, R(M, q′) − q.k)`.
    pub delta_k: usize,
    /// `Δ~w = ‖~w − ~w′‖₂`.
    pub delta_w: f64,
    /// Candidate weights evaluated.
    pub candidates: usize,
}

/// Which candidate-partner discovery strategy to use.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Strategy {
    /// Scan all objects per missing object for crossings; sweep ranks.
    Sweep,
    /// Range-query filter over an `(a, b)` R-tree; sweep ranks.
    FilteredSweep,
    /// Scan for crossings; re-rank every candidate from scratch.
    Naive,
}

/// Optimized preference adjustment (crossing scan + rank-update sweep).
pub fn refine_preference(
    corpus: &Corpus,
    params: &ScoreParams,
    query: &Query,
    missing: &[ObjectId],
    lambda: f64,
) -> Result<PreferenceRefinement, WhyNotError> {
    refine(corpus, params, query, missing, lambda, Strategy::Sweep)
}

/// Preference adjustment with the paper's two-range-query candidate
/// filter: a transient R-tree over the `(a_o, b_o)` score parts returns,
/// for each missing object, exactly the objects whose segments can cross
/// its segment inside `(0, 1)`.
pub fn refine_preference_filtered(
    corpus: &Corpus,
    params: &ScoreParams,
    query: &Query,
    missing: &[ObjectId],
    lambda: f64,
) -> Result<PreferenceRefinement, WhyNotError> {
    refine(corpus, params, query, missing, lambda, Strategy::FilteredSweep)
}

/// Naive baseline: same candidates, full re-rank per candidate.
pub fn refine_preference_naive(
    corpus: &Corpus,
    params: &ScoreParams,
    query: &Query,
    missing: &[ObjectId],
    lambda: f64,
) -> Result<PreferenceRefinement, WhyNotError> {
    refine(corpus, params, query, missing, lambda, Strategy::Naive)
}

/// Preference adjustment over a pre-built [`SegmentSet`] — the gather
/// half of the sharded fan-out: `yask_exec` runs [`SegmentSet::build`]
/// per shard in parallel, merges the partial sets, and hands the global
/// set here for the candidate sweep. With a set covering exactly the
/// live corpus this is bit-identical to [`refine_preference`] (the
/// single-scan path builds the same id-ascending set itself).
pub fn refine_preference_with_segments(
    corpus: &Corpus,
    params: &ScoreParams,
    query: &Query,
    missing: &[ObjectId],
    lambda: f64,
    segments: &SegmentSet,
) -> Result<PreferenceRefinement, WhyNotError> {
    let (ctx, _initial_ranks) = build_context(corpus, params, query, missing, lambda)?;
    refine_on_segments(corpus, params, query, missing, &ctx, segments, Strategy::Sweep)
}

fn refine(
    corpus: &Corpus,
    params: &ScoreParams,
    query: &Query,
    missing: &[ObjectId],
    lambda: f64,
    strategy: Strategy,
) -> Result<PreferenceRefinement, WhyNotError> {
    let (ctx, _initial_ranks) = build_context(corpus, params, query, missing, lambda)?;
    // Weight-plane transform: one scan computing (a_o, b_o) per live
    // object, id-ascending.
    let segments = SegmentSet::build_live(corpus, params, query);
    refine_on_segments(corpus, params, query, missing, &ctx, &segments, strategy)
}

#[allow(clippy::too_many_arguments)]
fn refine_on_segments(
    corpus: &Corpus,
    params: &ScoreParams,
    query: &Query,
    missing: &[ObjectId],
    ctx: &PenaltyContext,
    set: &SegmentSet,
    strategy: Strategy,
) -> Result<PreferenceRefinement, WhyNotError> {
    // Segment positions are *live-scan* positions, not id slots — with
    // tombstones in the corpus the two differ, so the missing objects are
    // located by searching the (id-ascending) set order.
    let segments: &[Segment] = set.segments();
    let missing_idx: Vec<usize> = missing
        .iter()
        .map(|&m| set.index_of(m).expect("missing object validated live"))
        .collect();

    // Candidate discovery.
    let events_per_m: Vec<Vec<Event>> = match strategy {
        Strategy::Sweep | Strategy::Naive => missing_idx
            .iter()
            .map(|&m| collect_events(segments, m, 0..segments.len()))
            .collect(),
        Strategy::FilteredSweep => {
            let filter = RangeFilter::build(segments);
            missing_idx
                .iter()
                .map(|&m| collect_events(segments, m, filter.crossing_partners(segments, m)))
                .collect()
        }
    };
    let ws0 = query.weights.ws();
    let candidates = candidate_weights(&events_per_m, ws0);

    // Rank evaluation at every candidate.
    let worst_ranks = match strategy {
        Strategy::Naive => naive_ranks(segments, &missing_idx, &candidates),
        _ => sweep_ranks(segments, &missing_idx, &events_per_m, &candidates),
    };

    // Pick the penalty-minimal candidate (first wins on exact ties, and
    // candidates are sorted, so the choice is deterministic).
    let w_init = query.weights;
    let mut best_i = 0usize;
    let mut best_penalty = f64::INFINITY;
    for (i, (&w, &r)) in candidates.iter().zip(&worst_ranks).enumerate() {
        let p = preference_penalty(ctx, &w_init, &Weights::from_ws(w), r);
        if p < best_penalty {
            best_penalty = p;
            best_i = i;
        }
    }

    Ok(finalize(
        corpus,
        params,
        query,
        missing,
        ctx,
        Weights::from_ws(candidates[best_i]),
        candidates.len(),
    ))
}

/// Re-ranks the winning weights with the engine's exact scorer and
/// assembles the refinement. This removes any dependence on the segment
/// evaluation order: the returned `k′` provably revives all of `M` under
/// the engine's own ranking.
fn finalize(
    corpus: &Corpus,
    params: &ScoreParams,
    query: &Query,
    missing: &[ObjectId],
    ctx: &PenaltyContext,
    w_new: Weights,
    candidates: usize,
) -> PreferenceRefinement {
    let refined_probe = query.reweighted(w_new);
    let rank = *ranks_of_scan(corpus, params, &refined_probe, missing)
        .iter()
        .max()
        .expect("missing set non-empty");
    let k_new = ctx.refined_k(rank);
    let penalty = preference_penalty(ctx, &query.weights, &w_new, rank);
    PreferenceRefinement {
        query: refined_probe.with_k(k_new),
        penalty,
        rank,
        initial_rank: ctx.r_m_q,
        delta_k: rank.saturating_sub(ctx.k0),
        delta_w: query.weights.l2_distance(&w_new),
        candidates,
    }
}

/// The paper's two-range-query filter: an R-tree over `(a_o, b_o)` points.
/// A segment crosses `m`'s segment inside `(0, 1)` iff its point lies in
/// one of the two open quadrants "textually better & spatially worse" /
/// "textually worse & spatially better" relative to `(a_m, b_m)`.
struct RangeFilter {
    tree: PlainRTree,
}

impl RangeFilter {
    fn build(segments: &[Segment]) -> Self {
        let mut b = CorpusBuilder::with_capacity(segments.len());
        for s in segments {
            b.push(Point::new(s.a, s.b), KeywordSet::empty(), "");
        }
        RangeFilter {
            tree: PlainRTree::bulk_load(b.build(), RTreeParams::default()),
        }
    }

    fn crossing_partners(&self, segments: &[Segment], m_idx: usize) -> Vec<usize> {
        let m = segments[m_idx];
        // Closed query rectangles; boundary hits (equal a or b) produce no
        // interior crossing and are discarded by `Segment::crossing`.
        let q1 = Rect::from_coords(-1.0, m.b, m.a, 2.0); // a ≤ a_m, b ≥ b_m
        let q2 = Rect::from_coords(m.a, -1.0, 2.0, m.b); // a ≥ a_m, b ≤ b_m
        let mut ids: Vec<usize> = self
            .tree
            .range(&q1)
            .into_iter()
            .chain(self.tree.range(&q2))
            .map(|o| o.index())
            .filter(|&i| i != m_idx && m.crosses(&segments[i]))
            .collect();
        ids.sort_unstable();
        ids.dedup();
        ids
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use yask_geo::Space;
    use yask_query::topk_scan;
    use yask_util::Xoshiro256;

    fn ks(ids: &[u32]) -> KeywordSet {
        KeywordSet::from_raw(ids.iter().copied())
    }

    fn random_corpus(n: usize, vocab: u32, seed: u64) -> Corpus {
        let mut rng = Xoshiro256::seed_from_u64(seed);
        let mut b = CorpusBuilder::with_capacity(n).with_space(Space::unit());
        for i in 0..n {
            let doc = KeywordSet::from_raw(
                (0..1 + rng.below(4)).map(|_| rng.below(vocab as usize) as u32),
            );
            b.push(Point::new(rng.next_f64(), rng.next_f64()), doc, format!("o{i}"));
        }
        b.build()
    }

    /// Picks objects that rank just outside the top-k as the missing set.
    fn pick_missing(corpus: &Corpus, params: &ScoreParams, q: &Query, m: usize) -> Vec<ObjectId> {
        let all = topk_scan(corpus, params, &q.with_k(corpus.len()));
        all[q.k + 2..q.k + 2 + m].iter().map(|r| r.id).collect()
    }

    #[test]
    fn refinement_revives_missing_objects() {
        let corpus = random_corpus(300, 20, 1);
        let params = ScoreParams::new(corpus.space());
        let q = Query::new(Point::new(0.4, 0.4), ks(&[1, 2, 3]), 5);
        let missing = pick_missing(&corpus, &params, &q, 2);
        let r = refine_preference(&corpus, &params, &q, &missing, 0.5).unwrap();
        // Every missing object must appear in the refined query's top-k′.
        let result = topk_scan(&corpus, &params, &r.query);
        for m in &missing {
            assert!(
                result.iter().any(|x| x.id == *m),
                "object {m} not revived by {:?}",
                r.query
            );
        }
        assert!(r.penalty >= 0.0 && r.penalty <= 1.0 + 1e-12);
        assert_eq!(r.query.k, r.rank.max(q.k));
    }

    #[test]
    fn all_strategies_agree() {
        for seed in 0..8 {
            let corpus = random_corpus(150, 15, 100 + seed);
            let params = ScoreParams::new(corpus.space());
            let q = Query::new(Point::new(0.3, 0.6), ks(&[1, 2]), 4);
            let missing = pick_missing(&corpus, &params, &q, 2);
            let a = refine_preference(&corpus, &params, &q, &missing, 0.5).unwrap();
            let b = refine_preference_naive(&corpus, &params, &q, &missing, 0.5).unwrap();
            let c = refine_preference_filtered(&corpus, &params, &q, &missing, 0.5).unwrap();
            assert!((a.penalty - b.penalty).abs() < 1e-12, "seed {seed}: sweep vs naive");
            assert!((a.penalty - c.penalty).abs() < 1e-12, "seed {seed}: sweep vs filtered");
            assert_eq!(a.query.weights, b.query.weights, "seed {seed}");
            assert_eq!(a.query.weights, c.query.weights, "seed {seed}");
            assert_eq!(a.query.k, b.query.k, "seed {seed}");
        }
    }

    #[test]
    fn refined_penalty_never_exceeds_k_only_refinement() {
        // Keeping the weights and just raising k is always a valid
        // refinement; the optimum can only be at least as good.
        let corpus = random_corpus(200, 12, 7);
        let params = ScoreParams::new(corpus.space());
        let q = Query::new(Point::new(0.7, 0.2), ks(&[2, 5]), 3);
        let missing = pick_missing(&corpus, &params, &q, 1);
        for lambda in [0.1, 0.5, 0.9] {
            let r = refine_preference(&corpus, &params, &q, &missing, lambda).unwrap();
            let k_only = lambda * 1.0; // Δk = R(M,q) − k ⇒ k-term = 1, w-term = 0.
            assert!(
                r.penalty <= k_only + 1e-12,
                "λ={lambda}: {} > {k_only}",
                r.penalty
            );
        }
    }

    #[test]
    fn lambda_extremes_choose_the_cheap_dimension() {
        let corpus = random_corpus(200, 12, 8);
        let params = ScoreParams::new(corpus.space());
        let q = Query::new(Point::new(0.2, 0.3), ks(&[1, 4]), 3);
        let missing = pick_missing(&corpus, &params, &q, 1);
        // λ = 0: modifying k is free, so the optimum keeps the weights.
        let r0 = refine_preference(&corpus, &params, &q, &missing, 0.0).unwrap();
        assert_eq!(r0.delta_w, 0.0, "λ=0 should not move weights");
        assert_eq!(r0.penalty, 0.0);
        // λ = 1: modifying weights is free; penalty is the k-term only.
        let r1 = refine_preference(&corpus, &params, &q, &missing, 1.0).unwrap();
        let k_term = r1.delta_k as f64 / (r1.initial_rank - q.k) as f64;
        assert!((r1.penalty - k_term).abs() < 1e-12);
    }

    #[test]
    fn errors_propagate() {
        let corpus = random_corpus(50, 8, 9);
        let params = ScoreParams::new(corpus.space());
        let q = Query::new(Point::new(0.5, 0.5), ks(&[1]), 3);
        assert_eq!(
            refine_preference(&corpus, &params, &q, &[], 0.5).unwrap_err(),
            WhyNotError::EmptyMissingSet
        );
        let top = topk_scan(&corpus, &params, &q)[0].id;
        assert!(matches!(
            refine_preference(&corpus, &params, &q, &[top], 0.5).unwrap_err(),
            WhyNotError::NotMissing(_, _)
        ));
    }

    #[test]
    fn range_filter_finds_exactly_the_crossing_partners() {
        let corpus = random_corpus(120, 10, 10);
        let params = ScoreParams::new(corpus.space());
        let q = Query::new(Point::new(0.4, 0.1), ks(&[1, 3]), 3);
        let segments: Vec<Segment> = corpus
            .iter()
            .map(|o| {
                let (a, b) = params.parts(o, &q);
                Segment::new(a, b)
            })
            .collect();
        let filter = RangeFilter::build(&segments);
        for m in [5usize, 50, 100] {
            let mut got = filter.crossing_partners(&segments, m);
            got.sort_unstable();
            let want: Vec<usize> = (0..segments.len())
                .filter(|&i| i != m && segments[m].crossing(&segments[i]).is_some())
                .collect();
            assert_eq!(got, want, "m = {m}");
        }
    }

    #[test]
    fn weights_already_optimal_keeps_them() {
        // Missing object is simply ranked k+1 with no crossing that helps;
        // the refinement should fall back to increasing k.
        let mut b = CorpusBuilder::new().with_space(Space::unit());
        // Four objects on a line, all with identical keywords: ranking is
        // purely spatial at every ws, so no weight change helps.
        for i in 0..4 {
            b.push(Point::new(0.1 * (i as f64 + 1.0), 0.0), ks(&[1]), format!("o{i}"));
        }
        let corpus = b.build();
        let params = ScoreParams::new(corpus.space());
        let q = Query::with_weights(Point::new(0.0, 0.0), ks(&[1]), 2, Weights::balanced());
        let missing = vec![ObjectId(3)];
        let r = refine_preference(&corpus, &params, &q, &missing, 0.5).unwrap();
        assert_eq!(r.delta_w, 0.0);
        assert_eq!(r.query.k, 4);
        assert_eq!(r.rank, 4);
    }
}
