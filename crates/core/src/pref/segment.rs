//! Objects as segments in the weight plane.
//!
//! Because `ws + wt = 1`, the score of an object `o` as a function of the
//! spatial weight is linear:
//!
//! ```text
//! ST(o, q)(ws) = ws · a_o + (1 − ws) · b_o = b_o + ws · (a_o − b_o)
//! ```
//!
//! with `a_o = 1 − SDist(o, q)` and `b_o = TSim(o, q)`. Over the open
//! interval `ws ∈ (0, 1)` each object is therefore a *segment* — the
//! transform at the heart of reference \[5\]. Two objects swap rank exactly
//! where their segments intersect, so the optimal refined weight vector
//! must point at an intersection of a missing object's segment with
//! another segment (or stay at the initial weights).

/// An object's segment in the weight plane: endpoints `(0, b)` and
/// `(1, a)`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Segment {
    /// Score at `ws = 1` (pure spatial): `1 − SDist(o, q)`.
    pub a: f64,
    /// Score at `ws = 0` (pure textual): `TSim(o, q)`.
    pub b: f64,
}

impl Segment {
    /// Creates a segment from score parts.
    #[inline]
    pub fn new(a: f64, b: f64) -> Self {
        Segment { a, b }
    }

    /// The score at spatial weight `ws` — evaluated as `b + ws·(a − b)`
    /// uniformly everywhere in this module, so comparisons between
    /// segments are bit-for-bit reproducible.
    #[inline]
    pub fn eval(&self, ws: f64) -> f64 {
        self.b + ws * (self.a - self.b)
    }

    /// Slope `a − b`.
    #[inline]
    pub fn slope(&self) -> f64 {
        self.a - self.b
    }

    /// True when the two segments are the same line (equal at every `ws`).
    #[inline]
    pub fn same_line(&self, other: &Segment) -> bool {
        self.a == other.a && self.b == other.b
    }

    /// The interior intersection of the two segments: the `ws ∈ (0, 1)`
    /// where they tie, or `None` when parallel, identical, or crossing
    /// outside the open interval.
    pub fn crossing(&self, other: &Segment) -> Option<f64> {
        let ds = self.slope() - other.slope();
        if ds == 0.0 {
            return None;
        }
        let ws = (other.b - self.b) / ds;
        (ws > 0.0 && ws < 1.0).then_some(ws)
    }

    /// True when [`Segment::crossing`] would return `Some` — the paper's
    /// two-range-query condition: the segments cross inside `(0, 1)` iff
    /// one is textually better (`b` higher) while the other is spatially
    /// better (`a` higher). Used by the range-filtered candidate search.
    pub fn crosses(&self, other: &Segment) -> bool {
        (other.b > self.b && other.a < self.a) || (other.b < self.b && other.a > self.a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_endpoints() {
        let s = Segment::new(0.8, 0.2);
        assert_eq!(s.eval(0.0), 0.2);
        assert_eq!(s.eval(1.0), 0.8);
        assert!((s.eval(0.5) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn crossing_basic() {
        // s: 0.2 → 0.8; t: 0.8 → 0.2 — they cross at ws = 0.5.
        let s = Segment::new(0.8, 0.2);
        let t = Segment::new(0.2, 0.8);
        let ws = s.crossing(&t).unwrap();
        assert!((ws - 0.5).abs() < 1e-12);
        assert!((s.eval(ws) - t.eval(ws)).abs() < 1e-12);
        assert!(s.crosses(&t));
        assert!(t.crosses(&s));
    }

    #[test]
    fn parallel_and_identical_lines_do_not_cross() {
        let s = Segment::new(0.6, 0.2);
        let t = Segment::new(0.7, 0.3); // same slope
        assert_eq!(s.crossing(&t), None);
        assert!(!s.crosses(&t));
        assert_eq!(s.crossing(&s), None);
        assert!(s.same_line(&s));
        assert!(!s.same_line(&t));
    }

    #[test]
    fn crossing_outside_unit_interval_rejected() {
        // Lines crossing at ws = 2 (outside).
        let s = Segment::new(0.5, 0.3); // slope 0.2
        let t = Segment::new(0.45, 0.35); // slope 0.1; cross: 0.05/0.1...
        let ws_raw = (t.b - s.b) / (s.slope() - t.slope());
        assert!(!(0.0..=1.0).contains(&ws_raw) || s.crossing(&t).is_some());
        // Dominated segment (better on both axes) never crosses.
        let dom = Segment::new(0.9, 0.8);
        assert_eq!(
            s.crossing(&dom).is_some(),
            s.crosses(&dom),
            "crossing and crosses() must agree"
        );
        assert!(!s.crosses(&dom));
    }

    #[test]
    fn crosses_agrees_with_crossing_on_grid() {
        // Exhaustive agreement check on a coarse grid of segment pairs.
        let vals = [0.0, 0.25, 0.5, 0.75, 1.0];
        for &a1 in &vals {
            for &b1 in &vals {
                for &a2 in &vals {
                    for &b2 in &vals {
                        let s = Segment::new(a1, b1);
                        let t = Segment::new(a2, b2);
                        assert_eq!(
                            s.crossing(&t).is_some(),
                            s.crosses(&t),
                            "({a1},{b1}) vs ({a2},{b2})"
                        );
                    }
                }
            }
        }
    }
}
