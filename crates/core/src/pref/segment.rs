//! Objects as segments in the weight plane.
//!
//! Because `ws + wt = 1`, the score of an object `o` as a function of the
//! spatial weight is linear:
//!
//! ```text
//! ST(o, q)(ws) = ws · a_o + (1 − ws) · b_o = b_o + ws · (a_o − b_o)
//! ```
//!
//! with `a_o = 1 − SDist(o, q)` and `b_o = TSim(o, q)`. Over the open
//! interval `ws ∈ (0, 1)` each object is therefore a *segment* — the
//! transform at the heart of reference \[5\]. Two objects swap rank exactly
//! where their segments intersect, so the optimal refined weight vector
//! must point at an intersection of a missing object's segment with
//! another segment (or stay at the initial weights).

use yask_index::{Corpus, ObjectId};
use yask_query::{Query, ScoreParams};

/// An object's segment in the weight plane: endpoints `(0, b)` and
/// `(1, a)`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Segment {
    /// Score at `ws = 1` (pure spatial): `1 − SDist(o, q)`.
    pub a: f64,
    /// Score at `ws = 0` (pure textual): `TSim(o, q)`.
    pub b: f64,
}

impl Segment {
    /// Creates a segment from score parts.
    #[inline]
    pub fn new(a: f64, b: f64) -> Self {
        Segment { a, b }
    }

    /// The score at spatial weight `ws` — evaluated as `b + ws·(a − b)`
    /// uniformly everywhere in this module, so comparisons between
    /// segments are bit-for-bit reproducible.
    #[inline]
    pub fn eval(&self, ws: f64) -> f64 {
        self.b + ws * (self.a - self.b)
    }

    /// Slope `a − b`.
    #[inline]
    pub fn slope(&self) -> f64 {
        self.a - self.b
    }

    /// True when the two segments are the same line (equal at every `ws`).
    #[inline]
    pub fn same_line(&self, other: &Segment) -> bool {
        self.a == other.a && self.b == other.b
    }

    /// The interior intersection of the two segments: the `ws ∈ (0, 1)`
    /// where they tie, or `None` when parallel, identical, or crossing
    /// outside the open interval.
    pub fn crossing(&self, other: &Segment) -> Option<f64> {
        let ds = self.slope() - other.slope();
        if ds == 0.0 {
            return None;
        }
        let ws = (other.b - self.b) / ds;
        (ws > 0.0 && ws < 1.0).then_some(ws)
    }

    /// True when [`Segment::crossing`] would return `Some` — the paper's
    /// two-range-query condition: the segments cross inside `(0, 1)` iff
    /// one is textually better (`b` higher) while the other is spatially
    /// better (`a` higher). Used by the range-filtered candidate search.
    pub fn crosses(&self, other: &Segment) -> bool {
        (other.b > self.b && other.a < self.a) || (other.b < self.b && other.a > self.a)
    }
}

/// An id-tagged collection of weight-plane segments — the merge-friendly
/// intermediate of the sharded preference fan-out.
///
/// The weight-plane transform is a pure per-object map, so it can run on
/// any disjoint partition of the live corpus (one [`SegmentSet`] per
/// shard) and the partial sets merged back into the exact global set.
/// The invariant every constructor and [`SegmentSet::merge`] maintain is
/// *id-ascending order*: segment index order equals [`ObjectId`] order,
/// which makes the sweep's index tie-break identical to the engine's
/// id tie-break — the property the rank-update theorem's exactness rests
/// on. A set built from per-shard pieces is therefore bit-identical to
/// one built from a single scan of the live corpus.
#[derive(Clone, Debug, Default)]
pub struct SegmentSet {
    ids: Vec<ObjectId>,
    segments: Vec<Segment>,
}

impl SegmentSet {
    /// Transforms the given objects (ids into `corpus`, any order) into
    /// segments under `query`, sorted by id.
    pub fn build(
        corpus: &Corpus,
        params: &ScoreParams,
        query: &Query,
        ids: impl IntoIterator<Item = ObjectId>,
    ) -> Self {
        let mut ids: Vec<ObjectId> = ids.into_iter().collect();
        ids.sort_unstable();
        let segments = ids
            .iter()
            .map(|&id| {
                let (a, b) = params.parts(corpus.get(id), query);
                Segment::new(a, b)
            })
            .collect();
        SegmentSet { ids, segments }
    }

    /// Transforms every live object of the corpus (the single-scan path).
    pub fn build_live(corpus: &Corpus, params: &ScoreParams, query: &Query) -> Self {
        // Corpus iteration is id-ascending already; skip the sort.
        let mut ids = Vec::with_capacity(corpus.len());
        let mut segments = Vec::with_capacity(corpus.len());
        for o in corpus.iter() {
            let (a, b) = params.parts(o, query);
            ids.push(o.id);
            segments.push(Segment::new(a, b));
        }
        SegmentSet { ids, segments }
    }

    /// Merges disjoint partial sets (e.g. one per shard) into the global
    /// set, restoring id-ascending order.
    pub fn merge(sets: impl IntoIterator<Item = SegmentSet>) -> Self {
        let mut pairs: Vec<(ObjectId, Segment)> = sets
            .into_iter()
            .flat_map(|s| s.ids.into_iter().zip(s.segments))
            .collect();
        pairs.sort_unstable_by_key(|&(id, _)| id);
        let (ids, segments) = pairs.into_iter().unzip();
        SegmentSet { ids, segments }
    }

    /// The segments, in id-ascending order.
    pub fn segments(&self) -> &[Segment] {
        &self.segments
    }

    /// The object ids, ascending, aligned with [`SegmentSet::segments`].
    pub fn ids(&self) -> &[ObjectId] {
        &self.ids
    }

    /// The segment index of an object id.
    pub fn index_of(&self, id: ObjectId) -> Option<usize> {
        self.ids.binary_search(&id).ok()
    }

    /// Number of segments.
    pub fn len(&self) -> usize {
        self.segments.len()
    }

    /// True when no segments are held.
    pub fn is_empty(&self) -> bool {
        self.segments.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_endpoints() {
        let s = Segment::new(0.8, 0.2);
        assert_eq!(s.eval(0.0), 0.2);
        assert_eq!(s.eval(1.0), 0.8);
        assert!((s.eval(0.5) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn crossing_basic() {
        // s: 0.2 → 0.8; t: 0.8 → 0.2 — they cross at ws = 0.5.
        let s = Segment::new(0.8, 0.2);
        let t = Segment::new(0.2, 0.8);
        let ws = s.crossing(&t).unwrap();
        assert!((ws - 0.5).abs() < 1e-12);
        assert!((s.eval(ws) - t.eval(ws)).abs() < 1e-12);
        assert!(s.crosses(&t));
        assert!(t.crosses(&s));
    }

    #[test]
    fn parallel_and_identical_lines_do_not_cross() {
        let s = Segment::new(0.6, 0.2);
        let t = Segment::new(0.7, 0.3); // same slope
        assert_eq!(s.crossing(&t), None);
        assert!(!s.crosses(&t));
        assert_eq!(s.crossing(&s), None);
        assert!(s.same_line(&s));
        assert!(!s.same_line(&t));
    }

    #[test]
    fn crossing_outside_unit_interval_rejected() {
        // Lines crossing at ws = 2 (outside).
        let s = Segment::new(0.5, 0.3); // slope 0.2
        let t = Segment::new(0.45, 0.35); // slope 0.1; cross: 0.05/0.1...
        let ws_raw = (t.b - s.b) / (s.slope() - t.slope());
        assert!(!(0.0..=1.0).contains(&ws_raw) || s.crossing(&t).is_some());
        // Dominated segment (better on both axes) never crosses.
        let dom = Segment::new(0.9, 0.8);
        assert_eq!(
            s.crossing(&dom).is_some(),
            s.crosses(&dom),
            "crossing and crosses() must agree"
        );
        assert!(!s.crosses(&dom));
    }

    #[test]
    fn merged_shard_sets_equal_the_live_scan() {
        use yask_geo::{Point, Space};
        use yask_index::CorpusBuilder;
        use yask_text::KeywordSet;
        use yask_util::Xoshiro256;

        let mut rng = Xoshiro256::seed_from_u64(9);
        let mut b = CorpusBuilder::new().with_space(Space::unit());
        for i in 0..120 {
            b.push(
                Point::new(rng.next_f64(), rng.next_f64()),
                KeywordSet::from_raw([rng.below(10) as u32]),
                format!("o{i}"),
            );
        }
        let corpus = b.build();
        let params = ScoreParams::new(corpus.space());
        let q = Query::new(Point::new(0.3, 0.7), KeywordSet::from_raw([1u32, 4]), 3);

        let whole = SegmentSet::build_live(&corpus, &params, &q);
        // Partition ids round-robin into 3 "shards" (worst case for order).
        let mut parts: Vec<Vec<ObjectId>> = vec![Vec::new(); 3];
        for (i, o) in corpus.iter().enumerate() {
            parts[i % 3].push(o.id);
        }
        let merged = SegmentSet::merge(
            parts
                .into_iter()
                .map(|ids| SegmentSet::build(&corpus, &params, &q, ids)),
        );
        assert_eq!(merged.ids(), whole.ids());
        assert_eq!(merged.segments(), whole.segments());
        assert_eq!(merged.index_of(ObjectId(5)), Some(5));
        assert_eq!(merged.index_of(ObjectId(999)), None);
        assert_eq!(merged.len(), 120);
        assert!(!merged.is_empty());
    }

    #[test]
    fn crosses_agrees_with_crossing_on_grid() {
        // Exhaustive agreement check on a coarse grid of segment pairs.
        let vals = [0.0, 0.25, 0.5, 0.75, 1.0];
        for &a1 in &vals {
            for &b1 in &vals {
                for &a2 in &vals {
                    for &b2 in &vals {
                        let s = Segment::new(a1, b1);
                        let t = Segment::new(a2, b2);
                        assert_eq!(
                            s.crossing(&t).is_some(),
                            s.crosses(&t),
                            "({a1},{b1}) vs ({a2},{b2})"
                        );
                    }
                }
            }
        }
    }
}
