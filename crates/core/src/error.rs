//! Error type shared by the why-not modules.

use yask_index::ObjectId;

/// Why a why-not request cannot be answered.
#[derive(Clone, Debug, PartialEq)]
pub enum WhyNotError {
    /// The missing-object set `M` is empty.
    EmptyMissingSet,
    /// An id in `M` does not exist in the database.
    ForeignObject(ObjectId),
    /// An object in `M` is *not* missing: it already appears in the
    /// initial query's top-k result (its rank is the payload). The paper's
    /// penalty normalizer `R(M, q) − q.k` requires every object of `M` to
    /// rank strictly below `k`.
    NotMissing(ObjectId, usize),
    /// The database is empty.
    EmptyDatabase,
    /// λ outside `[0, 1]`.
    InvalidLambda(f64),
    /// Keyword adaptation exhausted its candidate budget before proving
    /// optimality (can only happen with pathological budgets; the default
    /// budget is effectively unreachable). The payload is the budget.
    CandidateBudgetExhausted(usize),
    /// The request's deadline budget expired before the module finished.
    /// Why-not answers are all-or-nothing (a partial refinement is not a
    /// refinement), so expiry cancels cleanly — the server maps this to
    /// `504 Gateway Timeout`.
    DeadlineExceeded,
}

impl std::fmt::Display for WhyNotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WhyNotError::EmptyMissingSet => write!(f, "missing-object set is empty"),
            WhyNotError::ForeignObject(id) => write!(f, "object {id} is not in the database"),
            WhyNotError::NotMissing(id, rank) => write!(
                f,
                "object {id} is not missing: it ranks {rank} within the initial top-k"
            ),
            WhyNotError::EmptyDatabase => write!(f, "database is empty"),
            WhyNotError::InvalidLambda(l) => write!(f, "lambda {l} outside [0, 1]"),
            WhyNotError::CandidateBudgetExhausted(n) => {
                write!(f, "keyword candidate budget of {n} exhausted before convergence")
            }
            WhyNotError::DeadlineExceeded => {
                write!(f, "request deadline expired before the answer was complete")
            }
        }
    }
}

impl std::error::Error for WhyNotError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_renders_all_variants() {
        let cases: Vec<(WhyNotError, &str)> = vec![
            (WhyNotError::EmptyMissingSet, "empty"),
            (WhyNotError::ForeignObject(ObjectId(3)), "o3"),
            (WhyNotError::NotMissing(ObjectId(1), 2), "ranks 2"),
            (WhyNotError::EmptyDatabase, "empty"),
            (WhyNotError::InvalidLambda(1.5), "1.5"),
            (WhyNotError::CandidateBudgetExhausted(10), "budget of 10"),
            (WhyNotError::DeadlineExceeded, "deadline expired"),
        ];
        for (e, needle) in cases {
            assert!(e.to_string().contains(needle), "{e}");
        }
    }
}
