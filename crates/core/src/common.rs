//! Request validation shared by the why-not modules.

use yask_index::{Corpus, ObjectId};
use yask_query::{ranks_of_scan, Query, ScoreParams};

use crate::error::WhyNotError;
use crate::penalty::PenaltyContext;

/// Validates a why-not request and builds the [`PenaltyContext`].
///
/// Checks, in order: non-empty database; non-empty missing set; λ in
/// range; every missing id exists; every missing object actually ranks
/// below `q.k` under the initial query (otherwise it is not missing and
/// the penalty normalizer `R(M, q) − q.k` would be degenerate).
///
/// Returns the context together with the exact initial ranks of the
/// missing objects (aligned with `missing`).
pub(crate) fn build_context(
    corpus: &Corpus,
    params: &ScoreParams,
    query: &Query,
    missing: &[ObjectId],
    lambda: f64,
) -> Result<(PenaltyContext, Vec<usize>), WhyNotError> {
    if corpus.is_empty() {
        return Err(WhyNotError::EmptyDatabase);
    }
    if missing.is_empty() {
        return Err(WhyNotError::EmptyMissingSet);
    }
    if !(0.0..=1.0).contains(&lambda) || !lambda.is_finite() {
        return Err(WhyNotError::InvalidLambda(lambda));
    }
    for &m in missing {
        // Tombstoned slots are as foreign as out-of-range ids: a deleted
        // object cannot be revived by a refined query.
        if !corpus.contains(m) {
            return Err(WhyNotError::ForeignObject(m));
        }
    }
    let ranks = ranks_of_scan(corpus, params, query, missing);
    for (&m, &r) in missing.iter().zip(&ranks) {
        if r <= query.k {
            return Err(WhyNotError::NotMissing(m, r));
        }
    }
    let r_m_q = *ranks.iter().max().expect("missing set non-empty");
    Ok((PenaltyContext::new(query.k, r_m_q, lambda), ranks))
}

#[cfg(test)]
mod tests {
    use super::*;
    use yask_geo::{Point, Space};
    use yask_index::CorpusBuilder;
    use yask_text::KeywordSet;

    fn ks(ids: &[u32]) -> KeywordSet {
        KeywordSet::from_raw(ids.iter().copied())
    }

    fn fixture() -> (Corpus, ScoreParams, Query) {
        let mut b = CorpusBuilder::new().with_space(Space::unit());
        b.push(Point::new(0.0, 0.0), ks(&[1]), "best");
        b.push(Point::new(0.2, 0.2), ks(&[1]), "second");
        b.push(Point::new(0.9, 0.9), ks(&[2]), "far");
        let c = b.build();
        let params = ScoreParams::new(c.space());
        let q = Query::new(Point::new(0.0, 0.0), ks(&[1]), 1);
        (c, params, q)
    }

    #[test]
    fn accepts_genuinely_missing_objects() {
        let (c, params, q) = fixture();
        let (ctx, ranks) =
            build_context(&c, &params, &q, &[ObjectId(2)], 0.5).expect("valid request");
        assert_eq!(ctx.k0, 1);
        assert_eq!(ctx.r_m_q, ranks[0]);
        assert!(ctx.r_m_q > 1);
    }

    #[test]
    fn rejects_empty_missing_set() {
        let (c, params, q) = fixture();
        assert_eq!(
            build_context(&c, &params, &q, &[], 0.5),
            Err(WhyNotError::EmptyMissingSet)
        );
    }

    #[test]
    fn rejects_foreign_object() {
        let (c, params, q) = fixture();
        assert_eq!(
            build_context(&c, &params, &q, &[ObjectId(99)], 0.5),
            Err(WhyNotError::ForeignObject(ObjectId(99)))
        );
    }

    #[test]
    fn rejects_object_already_in_result() {
        let (c, params, q) = fixture();
        assert_eq!(
            build_context(&c, &params, &q, &[ObjectId(0)], 0.5),
            Err(WhyNotError::NotMissing(ObjectId(0), 1))
        );
    }

    #[test]
    fn rejects_bad_lambda() {
        let (c, params, q) = fixture();
        assert_eq!(
            build_context(&c, &params, &q, &[ObjectId(2)], -0.1),
            Err(WhyNotError::InvalidLambda(-0.1))
        );
        assert!(matches!(
            build_context(&c, &params, &q, &[ObjectId(2)], f64::NAN).unwrap_err(),
            WhyNotError::InvalidLambda(l) if l.is_nan()
        ));
    }

    #[test]
    fn rejects_empty_database() {
        let c = CorpusBuilder::new().build();
        let params = ScoreParams::new(c.space());
        let q = Query::new(Point::new(0.0, 0.0), ks(&[1]), 1);
        assert_eq!(
            build_context(&c, &params, &q, &[ObjectId(0)], 0.5),
            Err(WhyNotError::EmptyDatabase)
        );
    }
}
