//! The server-side query cache.
//!
//! Paper §3.3: "The server caches users' initial spatial keyword queries
//! until users give up asking follow-up 'why-not' questions." A
//! [`SessionStore`] maps session ids to the cached initial query and its
//! result; entries are explicitly removed when the user gives up, or
//! evicted after a time-to-live.
//!
//! **Epoch pinning.** A session may carry an opaque *pin* — the layer
//! above stores the engine-epoch handle its initial query ran against
//! ([`SessionStore::create_pinned`]), so follow-up why-not questions keep
//! answering over exactly that corpus version even after later deletes
//! touch the cited objects. The pin is `Arc<dyn Any>` because this crate
//! sits below the execution layer that owns the epoch type; dropping the
//! session (give-up, TTL eviction) releases the pinned epoch.

use std::any::Any;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::Mutex;
use yask_query::{Query, RankedObject};

/// Opaque session identifier handed to the client.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SessionId(pub u64);

impl std::fmt::Display for SessionId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// One cached initial query with its result.
#[derive(Clone)]
pub struct Session {
    /// The session id.
    pub id: SessionId,
    /// The cached initial query.
    pub query: Query,
    /// The initial query's result (green markers in the demo UI).
    pub result: Vec<RankedObject>,
    /// Creation time.
    pub created_at: Instant,
    /// Last access time (refreshed by [`SessionStore::get`]).
    pub last_touched: Instant,
    /// Opaque engine-epoch pin (see the module docs); `None` for
    /// sessions that answer against the live engine.
    pub pin: Option<Arc<dyn Any + Send + Sync>>,
}

impl std::fmt::Debug for Session {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Session")
            .field("id", &self.id)
            .field("query", &self.query)
            .field("results", &self.result.len())
            .field("pinned", &self.pin.is_some())
            .finish()
    }
}

/// Thread-safe session cache with TTL eviction.
pub struct SessionStore {
    sessions: Mutex<HashMap<u64, Session>>,
    next_id: AtomicU64,
    ttl: Duration,
}

impl SessionStore {
    /// Creates a store whose entries expire `ttl` after their last touch.
    pub fn new(ttl: Duration) -> Self {
        SessionStore {
            sessions: Mutex::new(HashMap::new()),
            next_id: AtomicU64::new(1),
            ttl,
        }
    }

    /// The configured time-to-live.
    pub fn ttl(&self) -> Duration {
        self.ttl
    }

    /// Caches an initial query and its result; returns the session id.
    pub fn create(&self, query: Query, result: Vec<RankedObject>) -> SessionId {
        self.create_with_pin(query, result, None)
    }

    /// [`SessionStore::create`] pinning an opaque engine-epoch handle
    /// that follow-up questions answer against.
    pub fn create_pinned(
        &self,
        query: Query,
        result: Vec<RankedObject>,
        pin: Arc<dyn Any + Send + Sync>,
    ) -> SessionId {
        self.create_with_pin(query, result, Some(pin))
    }

    fn create_with_pin(
        &self,
        query: Query,
        result: Vec<RankedObject>,
        pin: Option<Arc<dyn Any + Send + Sync>>,
    ) -> SessionId {
        let id = SessionId(self.next_id.fetch_add(1, Ordering::Relaxed));
        let now = Instant::now();
        self.sessions.lock().insert(
            id.0,
            Session {
                id,
                query,
                result,
                created_at: now,
                last_touched: now,
                pin,
            },
        );
        id
    }

    /// Counts the sessions matching `pred` — e.g. "how many sessions pin
    /// an epoch older than the current one" for `/stats`.
    pub fn count_where(&self, pred: impl Fn(&Session) -> bool) -> usize {
        self.sessions.lock().values().filter(|s| pred(s)).count()
    }

    /// Fetches (and touches) a session.
    pub fn get(&self, id: SessionId) -> Option<Session> {
        let mut guard = self.sessions.lock();
        let s = guard.get_mut(&id.0)?;
        s.last_touched = Instant::now();
        Some(s.clone())
    }

    /// Removes a session ("the user gave up asking why-not questions").
    pub fn remove(&self, id: SessionId) -> bool {
        self.sessions.lock().remove(&id.0).is_some()
    }

    /// Evicts every session idle longer than the TTL; returns the count.
    pub fn evict_expired(&self) -> usize {
        let cutoff = Instant::now();
        let mut guard = self.sessions.lock();
        let before = guard.len();
        let ttl = self.ttl;
        guard.retain(|_, s| cutoff.duration_since(s.last_touched) < ttl);
        before - guard.len()
    }

    /// Live session count.
    pub fn len(&self) -> usize {
        self.sessions.lock().len()
    }

    /// True when no sessions are cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use yask_geo::Point;
    use yask_text::KeywordSet;

    fn query() -> Query {
        Query::new(Point::new(0.0, 0.0), KeywordSet::from_raw([1]), 3)
    }

    #[test]
    fn create_get_remove_round_trip() {
        let store = SessionStore::new(Duration::from_secs(60));
        let id = store.create(query(), vec![]);
        assert_eq!(store.len(), 1);
        let s = store.get(id).unwrap();
        assert_eq!(s.id, id);
        assert_eq!(s.query.k, 3);
        assert!(store.remove(id));
        assert!(!store.remove(id));
        assert!(store.get(id).is_none());
        assert!(store.is_empty());
    }

    #[test]
    fn ids_are_unique_and_increasing() {
        let store = SessionStore::new(Duration::from_secs(60));
        let a = store.create(query(), vec![]);
        let b = store.create(query(), vec![]);
        assert!(b > a);
    }

    #[test]
    fn eviction_respects_ttl() {
        let store = SessionStore::new(Duration::from_millis(10));
        let id = store.create(query(), vec![]);
        assert_eq!(store.evict_expired(), 0);
        std::thread::sleep(Duration::from_millis(25));
        assert_eq!(store.evict_expired(), 1);
        assert!(store.get(id).is_none());
    }

    #[test]
    fn touching_defers_eviction() {
        let store = SessionStore::new(Duration::from_millis(50));
        let id = store.create(query(), vec![]);
        std::thread::sleep(Duration::from_millis(30));
        assert!(store.get(id).is_some()); // touch resets the idle clock
        std::thread::sleep(Duration::from_millis(30));
        assert_eq!(store.evict_expired(), 0, "recently touched session evicted");
        std::thread::sleep(Duration::from_millis(60));
        assert_eq!(store.evict_expired(), 1);
    }

    #[test]
    fn pinned_sessions_carry_and_release_their_pin() {
        let store = SessionStore::new(Duration::from_secs(60));
        let pin: Arc<dyn Any + Send + Sync> = Arc::new(42u64);
        let weak = Arc::downgrade(&pin);
        let plain = store.create(query(), vec![]);
        let pinned = store.create_pinned(query(), vec![], pin);
        assert!(store.get(plain).unwrap().pin.is_none());
        let got = store.get(pinned).unwrap().pin.expect("pin survives");
        assert_eq!(got.downcast_ref::<u64>(), Some(&42));
        assert_eq!(store.count_where(|s| s.pin.is_some()), 1);
        drop(got);
        // Dropping the session releases the pinned payload.
        assert!(store.remove(pinned));
        assert!(weak.upgrade().is_none(), "pin must be released with the session");
    }

    #[test]
    fn concurrent_creates_do_not_collide() {
        let store = std::sync::Arc::new(SessionStore::new(Duration::from_secs(60)));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let store = store.clone();
            handles.push(std::thread::spawn(move || {
                (0..100).map(|_| store.create(query(), vec![]).0).collect::<Vec<u64>>()
            }));
        }
        let mut all: Vec<u64> = handles.into_iter().flat_map(|h| h.join().unwrap()).collect();
        let n = all.len();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), n, "duplicate session ids");
        assert_eq!(store.len(), n);
    }
}
