//! The server-side query cache.
//!
//! Paper §3.3: "The server caches users' initial spatial keyword queries
//! until users give up asking follow-up 'why-not' questions." A
//! [`SessionStore`] maps session ids to the cached initial query and its
//! result; entries are explicitly removed when the user gives up, or
//! evicted after a time-to-live.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use parking_lot::Mutex;
use yask_index::ObjectId;
use yask_query::{Query, RankedObject};

/// Opaque session identifier handed to the client.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SessionId(pub u64);

impl std::fmt::Display for SessionId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// One cached initial query with its result.
#[derive(Clone, Debug)]
pub struct Session {
    /// The session id.
    pub id: SessionId,
    /// The cached initial query.
    pub query: Query,
    /// The initial query's result (green markers in the demo UI).
    pub result: Vec<RankedObject>,
    /// Creation time.
    pub created_at: Instant,
    /// Last access time (refreshed by [`SessionStore::get`]).
    pub last_touched: Instant,
}

/// Thread-safe session cache with TTL eviction.
pub struct SessionStore {
    sessions: Mutex<HashMap<u64, Session>>,
    next_id: AtomicU64,
    ttl: Duration,
}

impl SessionStore {
    /// Creates a store whose entries expire `ttl` after their last touch.
    pub fn new(ttl: Duration) -> Self {
        SessionStore {
            sessions: Mutex::new(HashMap::new()),
            next_id: AtomicU64::new(1),
            ttl,
        }
    }

    /// The configured time-to-live.
    pub fn ttl(&self) -> Duration {
        self.ttl
    }

    /// Caches an initial query and its result; returns the session id.
    pub fn create(&self, query: Query, result: Vec<RankedObject>) -> SessionId {
        let id = SessionId(self.next_id.fetch_add(1, Ordering::Relaxed));
        let now = Instant::now();
        self.sessions.lock().insert(
            id.0,
            Session {
                id,
                query,
                result,
                created_at: now,
                last_touched: now,
            },
        );
        id
    }

    /// Fetches (and touches) a session.
    pub fn get(&self, id: SessionId) -> Option<Session> {
        let mut guard = self.sessions.lock();
        let s = guard.get_mut(&id.0)?;
        s.last_touched = Instant::now();
        Some(s.clone())
    }

    /// Removes a session ("the user gave up asking why-not questions").
    pub fn remove(&self, id: SessionId) -> bool {
        self.sessions.lock().remove(&id.0).is_some()
    }

    /// Removes every session whose cached result references one of
    /// `changed` (corpus update invalidation: a session whose green
    /// markers include a deleted object is stale and its follow-up
    /// why-not questions would reference a corpus version that no longer
    /// exists). Returns the number of sessions dropped.
    pub fn invalidate_touching(&self, changed: &[ObjectId]) -> usize {
        if changed.is_empty() {
            return 0;
        }
        // Bulk batches can carry many thousands of ids and the retain
        // runs under the store mutex: probe a set, don't scan the slice.
        let changed: yask_util::FxHashSet<u32> = changed.iter().map(|id| id.0).collect();
        let mut guard = self.sessions.lock();
        let before = guard.len();
        guard.retain(|_, s| !s.result.iter().any(|r| changed.contains(&r.id.0)));
        before - guard.len()
    }

    /// Evicts every session idle longer than the TTL; returns the count.
    pub fn evict_expired(&self) -> usize {
        let cutoff = Instant::now();
        let mut guard = self.sessions.lock();
        let before = guard.len();
        let ttl = self.ttl;
        guard.retain(|_, s| cutoff.duration_since(s.last_touched) < ttl);
        before - guard.len()
    }

    /// Live session count.
    pub fn len(&self) -> usize {
        self.sessions.lock().len()
    }

    /// True when no sessions are cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use yask_geo::Point;
    use yask_text::KeywordSet;

    fn query() -> Query {
        Query::new(Point::new(0.0, 0.0), KeywordSet::from_raw([1]), 3)
    }

    #[test]
    fn create_get_remove_round_trip() {
        let store = SessionStore::new(Duration::from_secs(60));
        let id = store.create(query(), vec![]);
        assert_eq!(store.len(), 1);
        let s = store.get(id).unwrap();
        assert_eq!(s.id, id);
        assert_eq!(s.query.k, 3);
        assert!(store.remove(id));
        assert!(!store.remove(id));
        assert!(store.get(id).is_none());
        assert!(store.is_empty());
    }

    #[test]
    fn ids_are_unique_and_increasing() {
        let store = SessionStore::new(Duration::from_secs(60));
        let a = store.create(query(), vec![]);
        let b = store.create(query(), vec![]);
        assert!(b > a);
    }

    #[test]
    fn eviction_respects_ttl() {
        let store = SessionStore::new(Duration::from_millis(10));
        let id = store.create(query(), vec![]);
        assert_eq!(store.evict_expired(), 0);
        std::thread::sleep(Duration::from_millis(25));
        assert_eq!(store.evict_expired(), 1);
        assert!(store.get(id).is_none());
    }

    #[test]
    fn touching_defers_eviction() {
        let store = SessionStore::new(Duration::from_millis(50));
        let id = store.create(query(), vec![]);
        std::thread::sleep(Duration::from_millis(30));
        assert!(store.get(id).is_some()); // touch resets the idle clock
        std::thread::sleep(Duration::from_millis(30));
        assert_eq!(store.evict_expired(), 0, "recently touched session evicted");
        std::thread::sleep(Duration::from_millis(60));
        assert_eq!(store.evict_expired(), 1);
    }

    #[test]
    fn invalidate_touching_drops_only_affected_sessions() {
        let store = SessionStore::new(Duration::from_secs(60));
        let hit = store.create(
            query(),
            vec![RankedObject {
                id: ObjectId(7),
                score: 0.9,
            }],
        );
        let miss = store.create(
            query(),
            vec![RankedObject {
                id: ObjectId(3),
                score: 0.8,
            }],
        );
        assert_eq!(store.invalidate_touching(&[]), 0);
        assert_eq!(store.invalidate_touching(&[ObjectId(7), ObjectId(99)]), 1);
        assert!(store.get(hit).is_none(), "session touching o7 must be dropped");
        assert!(store.get(miss).is_some());
    }

    #[test]
    fn concurrent_creates_do_not_collide() {
        let store = std::sync::Arc::new(SessionStore::new(Duration::from_secs(60)));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let store = store.clone();
            handles.push(std::thread::spawn(move || {
                (0..100).map(|_| store.create(query(), vec![]).0).collect::<Vec<u64>>()
            }));
        }
        let mut all: Vec<u64> = handles.into_iter().flat_map(|h| h.join().unwrap()).collect();
        let n = all.len();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), n, "duplicate session ids");
        assert_eq!(store.len(), n);
    }
}
