//! The penalty functions of Eqns (3) and (4).
//!
//! Both penalties share the structure
//!
//! ```text
//! Penalty(q, q′) = λ · Δk / (R(M, q) − q.k)  +  (1 − λ) · Δ? / norm?
//! ```
//!
//! where `Δk = max(0, R(M, q′) − q.k)` (the refined `k′` is set to
//! `R(M, q′)` whenever that exceeds `q.k`, which the paper shows achieves
//! the lowest penalty), and the second term is the modification distance
//! of the refined parameter: `Δ~w = ‖~w − ~w′‖₂` normalized by
//! `√(1 + ws² + wt²)` for preference adjustment (Eqn 3), and the keyword
//! edit distance `Δdoc` normalized by `|q.doc ∪ M.doc|` for keyword
//! adaptation (Eqn 4). Both normalizers are proved in the respective
//! papers to dominate their numerators, so each term — and with
//! `λ ∈ [0, 1]` the whole penalty — lies in `[0, 1]`.

use yask_query::Weights;

/// Inputs fixed per why-not question: the initial `k`, the lowest rank of
/// the missing objects under the *initial* query, and λ.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PenaltyContext {
    /// `q.k` of the initial query.
    pub k0: usize,
    /// `R(M, q)`: the worst (largest) rank among the missing objects under
    /// the initial query. Must exceed `k0` — otherwise nothing is missing.
    pub r_m_q: usize,
    /// The user's preference λ between modifying `k` and modifying the
    /// other parameter.
    pub lambda: f64,
}

impl PenaltyContext {
    /// Creates a context; panics if the invariants of the paper are
    /// violated (`λ ∈ [0, 1]`, `R(M, q) > q.k`).
    pub fn new(k0: usize, r_m_q: usize, lambda: f64) -> Self {
        assert!((0.0..=1.0).contains(&lambda), "lambda {lambda} outside [0,1]");
        assert!(
            r_m_q > k0,
            "R(M,q)={r_m_q} must exceed q.k={k0}: objects are not missing"
        );
        PenaltyContext { k0, r_m_q, lambda }
    }

    /// `Δk / (R(M,q) − q.k)` — the shared first term, given the refined
    /// query's missing-object rank `r_new`.
    #[inline]
    pub fn k_term(&self, r_new: usize) -> f64 {
        let delta_k = r_new.saturating_sub(self.k0) as f64;
        delta_k / (self.r_m_q - self.k0) as f64
    }

    /// The refined `k′` for a refined query under which the missing
    /// objects' lowest rank is `r_new`: `max(q.k, R(M, q′))`.
    #[inline]
    pub fn refined_k(&self, r_new: usize) -> usize {
        self.k0.max(r_new)
    }
}

/// Eqn (3): penalty of a preference-adjusted refined query.
///
/// `r_new` is `R(M, q′)` under the refined weights `w_new`.
pub fn preference_penalty(
    ctx: &PenaltyContext,
    w_initial: &Weights,
    w_new: &Weights,
    r_new: usize,
) -> f64 {
    let k_part = ctx.k_term(r_new);
    let w_part = w_initial.l2_distance(w_new) / w_initial.penalty_normalizer();
    ctx.lambda * k_part + (1.0 - ctx.lambda) * w_part
}

/// Eqn (4): penalty of a keyword-adapted refined query.
///
/// `delta_doc` is the insert/delete edit distance between `q.doc` and
/// `q′.doc`; `doc_norm` is `|q.doc ∪ M.doc|`.
pub fn keyword_penalty(
    ctx: &PenaltyContext,
    delta_doc: usize,
    doc_norm: usize,
    r_new: usize,
) -> f64 {
    debug_assert!(doc_norm > 0, "q.doc ∪ M.doc cannot be empty");
    let k_part = ctx.k_term(r_new);
    let doc_part = delta_doc as f64 / doc_norm as f64;
    ctx.lambda * k_part + (1.0 - ctx.lambda) * doc_part
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(lambda: f64) -> PenaltyContext {
        PenaltyContext::new(3, 13, lambda)
    }

    #[test]
    fn k_term_zero_when_revived_within_k() {
        // Refined query brings the missing object to rank ≤ k0.
        assert_eq!(ctx(0.5).k_term(2), 0.0);
        assert_eq!(ctx(0.5).k_term(3), 0.0);
    }

    #[test]
    fn k_term_normalized_by_initial_rank_gap() {
        // r_new = 8 → Δk = 5, normalizer = 13 − 3 = 10.
        assert!((ctx(0.5).k_term(8) - 0.5).abs() < 1e-12);
        // No improvement at all: Δk = 10 → term = 1.
        assert!((ctx(0.5).k_term(13) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn refined_k_is_max_of_k0_and_rank() {
        assert_eq!(ctx(0.5).refined_k(2), 3);
        assert_eq!(ctx(0.5).refined_k(7), 7);
    }

    #[test]
    fn preference_penalty_pure_k_when_weights_unchanged() {
        let w = Weights::balanced();
        let p = preference_penalty(&ctx(0.5), &w, &w, 8);
        assert!((p - 0.25).abs() < 1e-12); // 0.5 · 0.5 + 0.5 · 0
    }

    #[test]
    fn preference_penalty_pure_w_when_rank_fixed() {
        let w0 = Weights::from_ws(0.5);
        let w1 = Weights::from_ws(0.8);
        let p = preference_penalty(&ctx(0.5), &w0, &w1, 3);
        let expect = 0.5 * (0.3 * std::f64::consts::SQRT_2) / 1.5_f64.sqrt();
        assert!((p - expect).abs() < 1e-12);
    }

    #[test]
    fn lambda_trades_off_terms() {
        let w0 = Weights::from_ws(0.5);
        let w1 = Weights::from_ws(0.9);
        // λ = 1: only Δk matters.
        let p1 = preference_penalty(&ctx(1.0), &w0, &w1, 13);
        assert!((p1 - 1.0).abs() < 1e-12);
        // λ = 0: only Δw matters.
        let p0 = preference_penalty(&ctx(0.0), &w0, &w0, 13);
        assert_eq!(p0, 0.0);
    }

    #[test]
    fn keyword_penalty_combines_terms() {
        // Δdoc = 2 of norm 8, r_new = 8 → 0.5·0.5 + 0.5·0.25 = 0.375.
        let p = keyword_penalty(&ctx(0.5), 2, 8, 8);
        assert!((p - 0.375).abs() < 1e-12);
    }

    #[test]
    fn penalties_bounded_by_unit_interval() {
        let w0 = Weights::from_ws(0.5);
        for lambda in [0.0, 0.3, 0.7, 1.0] {
            let c = ctx(lambda);
            for r_new in [1usize, 3, 8, 13] {
                for ws in [0.0, 0.2, 0.5, 0.9, 1.0] {
                    let p = preference_penalty(&c, &w0, &Weights::from_ws(ws), r_new);
                    assert!((0.0..=1.0 + 1e-12).contains(&p), "pref penalty {p}");
                }
                for dd in [0usize, 2, 8] {
                    let p = keyword_penalty(&c, dd, 8, r_new);
                    assert!((0.0..=1.0 + 1e-12).contains(&p), "kw penalty {p}");
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "lambda")]
    fn context_rejects_bad_lambda() {
        PenaltyContext::new(3, 10, 1.5);
    }

    #[test]
    #[should_panic(expected = "not missing")]
    fn context_rejects_non_missing() {
        PenaltyContext::new(5, 5, 0.5);
    }
}
