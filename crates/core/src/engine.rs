//! The [`Yask`] facade: top-k querying plus the full why-not engine.
//!
//! Mirrors the server-side query processor of Fig 1: one spatial keyword
//! top-k query engine and one why-not engine with its three modules
//! (explanation generator, preference adjustment, keyword adaptation),
//! sharing a single KcR-tree index over the corpus.

use yask_index::{Corpus, KcRTree, ObjectId, RTreeParams};
use yask_query::{topk_tree, Query, RankedObject, ScoreParams};
use yask_text::SimilarityModel;

use crate::error::WhyNotError;
use crate::explain::{explain, Explanation};
use crate::keyword::{refine_keywords_with, KeywordOptions, KeywordRefinement};
use crate::pref::{refine_preference, PreferenceRefinement};

/// Engine configuration.
#[derive(Clone, Copy, Debug)]
pub struct YaskConfig {
    /// R-tree fanout.
    pub tree_params: RTreeParams,
    /// Textual similarity model (Jaccard in the paper).
    pub model: SimilarityModel,
    /// Default λ when the caller does not specify one.
    pub default_lambda: f64,
    /// Keyword-adaptation tuning.
    pub keyword_options: KeywordOptions,
}

impl Default for YaskConfig {
    fn default() -> Self {
        YaskConfig {
            tree_params: RTreeParams::default(),
            model: SimilarityModel::Jaccard,
            default_lambda: 0.5,
            keyword_options: KeywordOptions::default(),
        }
    }
}

/// Which refinement model produced the recommended query.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RecommendedModel {
    /// Preference adjustment won (lower penalty).
    Preference,
    /// Keyword adaptation won.
    Keyword,
}

/// The combined answer to one why-not question: explanations plus both
/// refined queries, with the lower-penalty one flagged — the demo lets
/// "users apply the two refinement functions simultaneously to find
/// better solutions".
#[derive(Clone, Debug)]
pub struct WhyNotAnswer {
    /// Per-object explanations.
    pub explanations: Vec<Explanation>,
    /// The preference-adjusted refinement (Definition 2).
    pub preference: PreferenceRefinement,
    /// The keyword-adapted refinement (Definition 3).
    pub keyword: KeywordRefinement,
    /// Which of the two has the lower penalty.
    pub recommended: RecommendedModel,
}

impl WhyNotAnswer {
    /// Bundles the three modules' outputs and applies the one
    /// recommendation rule — preference wins ties — shared by the
    /// single-tree engine and the sharded fan-out, so the recommended
    /// model can never diverge between the two paths.
    pub fn assemble(
        explanations: Vec<Explanation>,
        preference: PreferenceRefinement,
        keyword: KeywordRefinement,
    ) -> Self {
        let recommended = if preference.penalty <= keyword.penalty {
            RecommendedModel::Preference
        } else {
            RecommendedModel::Keyword
        };
        WhyNotAnswer {
            explanations,
            preference,
            keyword,
            recommended,
        }
    }
}

/// The YASK engine.
pub struct Yask {
    tree: KcRTree,
    params: ScoreParams,
    config: YaskConfig,
}

impl Yask {
    /// Builds the engine over a corpus (bulk-loads the KcR-tree).
    pub fn new(corpus: Corpus, config: YaskConfig) -> Self {
        let params = ScoreParams::new(corpus.space()).with_model(config.model);
        Yask {
            tree: KcRTree::bulk_load(corpus, config.tree_params),
            params,
            config,
        }
    }

    /// Builds with the default configuration.
    pub fn with_defaults(corpus: Corpus) -> Self {
        Yask::new(corpus, YaskConfig::default())
    }

    /// Wraps an already-built KcR-tree — the ingest path's constructor:
    /// applying a write batch clones the previous epoch's tree, mutates it
    /// incrementally, and republishes it here without a bulk load.
    pub fn from_tree(tree: KcRTree, config: YaskConfig) -> Self {
        let params = ScoreParams::new(tree.corpus().space()).with_model(config.model);
        Yask {
            tree,
            params,
            config,
        }
    }

    /// The corpus.
    pub fn corpus(&self) -> &Corpus {
        self.tree.corpus()
    }

    /// The scoring configuration.
    pub fn score_params(&self) -> ScoreParams {
        self.params
    }

    /// The shared KcR-tree.
    pub fn tree(&self) -> &KcRTree {
        &self.tree
    }

    /// The configuration.
    pub fn config(&self) -> &YaskConfig {
        &self.config
    }

    /// Runs a spatial keyword top-k query (Definition 1).
    pub fn top_k(&self, query: &Query) -> Vec<RankedObject> {
        topk_tree(&self.tree, &self.params, query)
    }

    /// Boolean (conjunctive) top-k: only objects containing *all* query
    /// keywords qualify; may return fewer than `k` results.
    pub fn boolean_top_k(&self, query: &Query) -> Vec<RankedObject> {
        yask_query::boolean_topk_tree(&self.tree, &self.params, query)
    }

    /// Viewport query (the demo's Panel-1 grey markers): all objects in
    /// `rect`, optionally filtered by keywords under `mode`.
    pub fn viewport(
        &self,
        rect: &yask_geo::Rect,
        doc: &yask_text::KeywordSet,
        mode: yask_query::MatchMode,
    ) -> Vec<ObjectId> {
        yask_query::range_keyword_tree(&self.tree, rect, doc, mode)
    }

    /// Explains why each desired object is (not) in the result.
    pub fn explain(
        &self,
        query: &Query,
        desired: &[ObjectId],
    ) -> Result<Vec<Explanation>, WhyNotError> {
        explain(self.corpus(), &self.params, query, desired)
    }

    /// Preference-adjusted refinement (Definition 2).
    pub fn refine_preference(
        &self,
        query: &Query,
        missing: &[ObjectId],
        lambda: f64,
    ) -> Result<PreferenceRefinement, WhyNotError> {
        refine_preference(self.corpus(), &self.params, query, missing, lambda)
    }

    /// Keyword-adapted refinement (Definition 3).
    pub fn refine_keywords(
        &self,
        query: &Query,
        missing: &[ObjectId],
        lambda: f64,
    ) -> Result<KeywordRefinement, WhyNotError> {
        refine_keywords_with(
            &self.tree,
            &self.params,
            query,
            missing,
            lambda,
            self.config.keyword_options,
        )
    }

    /// Combined refinement: both models chained, as the demo's "apply the
    /// two refinement functions simultaneously" (see [`crate::combined`]).
    pub fn refine_combined(
        &self,
        query: &Query,
        missing: &[ObjectId],
        lambda: f64,
    ) -> Result<crate::combined::CombinedRefinement, WhyNotError> {
        crate::combined::refine_combined_with(
            &self.tree,
            &self.params,
            query,
            missing,
            lambda,
            self.config.keyword_options,
        )
    }

    /// Full why-not answer: explanations + both refinements + the
    /// recommendation, using the configured default λ.
    pub fn answer(&self, query: &Query, missing: &[ObjectId]) -> Result<WhyNotAnswer, WhyNotError> {
        self.answer_with_lambda(query, missing, self.config.default_lambda)
    }

    /// [`Yask::answer`] with an explicit λ.
    pub fn answer_with_lambda(
        &self,
        query: &Query,
        missing: &[ObjectId],
        lambda: f64,
    ) -> Result<WhyNotAnswer, WhyNotError> {
        let explanations = self.explain(query, missing)?;
        let preference = self.refine_preference(query, missing, lambda)?;
        let keyword = self.refine_keywords(query, missing, lambda)?;
        Ok(WhyNotAnswer::assemble(explanations, preference, keyword))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use yask_geo::{Point, Space};
    use yask_index::CorpusBuilder;
    use yask_query::topk_scan;
    use yask_text::KeywordSet;
    use yask_util::Xoshiro256;

    fn ks(ids: &[u32]) -> KeywordSet {
        KeywordSet::from_raw(ids.iter().copied())
    }

    fn random_corpus(n: usize, seed: u64) -> Corpus {
        let mut rng = Xoshiro256::seed_from_u64(seed);
        let mut b = CorpusBuilder::with_capacity(n).with_space(Space::unit());
        for i in 0..n {
            let doc = KeywordSet::from_raw((0..1 + rng.below(4)).map(|_| rng.below(12) as u32));
            b.push(Point::new(rng.next_f64(), rng.next_f64()), doc, format!("o{i}"));
        }
        b.build()
    }

    #[test]
    fn top_k_matches_scan() {
        let corpus = random_corpus(200, 91);
        let yask = Yask::with_defaults(corpus.clone());
        let q = Query::new(Point::new(0.4, 0.4), ks(&[1, 2]), 6);
        let got: Vec<ObjectId> = yask.top_k(&q).iter().map(|r| r.id).collect();
        let want: Vec<ObjectId> = topk_scan(&corpus, &yask.score_params(), &q)
            .iter()
            .map(|r| r.id)
            .collect();
        assert_eq!(got, want);
    }

    #[test]
    fn answer_bundles_everything() {
        let corpus = random_corpus(250, 92);
        let yask = Yask::with_defaults(corpus.clone());
        let q = Query::new(Point::new(0.2, 0.7), ks(&[2, 3]), 5);
        let params = yask.score_params();
        let all = topk_scan(&corpus, &params, &q.with_k(corpus.len()));
        let missing = vec![all[q.k + 3].id];
        let ans = yask.answer(&q, &missing).unwrap();
        assert_eq!(ans.explanations.len(), 1);
        assert!(ans.preference.penalty >= 0.0);
        assert!(ans.keyword.penalty >= 0.0);
        let best = match ans.recommended {
            RecommendedModel::Preference => ans.preference.penalty,
            RecommendedModel::Keyword => ans.keyword.penalty,
        };
        assert!(best <= ans.preference.penalty && best <= ans.keyword.penalty);
        // Both refinements must revive the missing object.
        for refined in [&ans.preference.query, &ans.keyword.query] {
            let res = topk_scan(&corpus, &params, refined);
            assert!(res.iter().any(|r| r.id == missing[0]), "{refined:?}");
        }
    }

    #[test]
    fn boolean_and_viewport_queries_work_through_facade() {
        let corpus = random_corpus(150, 95);
        let yask = Yask::with_defaults(corpus.clone());
        let q = Query::new(Point::new(0.5, 0.5), ks(&[1, 2]), 5);
        for r in yask.boolean_top_k(&q) {
            assert!(q.doc.is_subset_of(&corpus.get(r.id).doc));
        }
        let rect = yask_geo::Rect::from_coords(0.2, 0.2, 0.8, 0.8);
        let ids = yask.viewport(&rect, &ks(&[1]), yask_query::MatchMode::Any);
        for id in &ids {
            let o = corpus.get(*id);
            assert!(rect.contains_point(&o.loc));
            assert!(o.doc.contains(yask_text::KeywordId(1)));
        }
        // Empty filter under All = pure spatial viewport.
        let all = yask.viewport(&rect, &yask_text::KeywordSet::empty(), yask_query::MatchMode::All);
        assert!(all.len() >= ids.len());
    }

    #[test]
    fn errors_surface_through_facade() {
        let corpus = random_corpus(40, 93);
        let yask = Yask::with_defaults(corpus);
        let q = Query::new(Point::new(0.5, 0.5), ks(&[1]), 3);
        assert!(matches!(
            yask.answer(&q, &[]),
            Err(WhyNotError::EmptyMissingSet)
        ));
        let top = yask.top_k(&q)[0].id;
        assert!(matches!(
            yask.answer(&q, &[top]),
            Err(WhyNotError::NotMissing(_, _))
        ));
    }

    #[test]
    fn config_model_is_respected() {
        let corpus = random_corpus(50, 94);
        let cfg = YaskConfig {
            model: SimilarityModel::Dice,
            ..YaskConfig::default()
        };
        let yask = Yask::new(corpus, cfg);
        assert_eq!(yask.score_params().model, SimilarityModel::Dice);
        assert_eq!(yask.config().default_lambda, 0.5);
    }
}
