//! Keyword adaptation — the why-not module of Definition 3.
//!
//! Given the initial query `q` and missing set `M`, find the refined
//! query `q′ = (loc, doc′, k′, ~w)` minimizing the Eqn (4) penalty whose
//! result contains all of `M`. The optimized bound-and-prune algorithm of
//! reference \[6\]:
//!
//! 1. enumerate candidate keyword sets from `q.doc ∪ M.doc` in
//!    non-decreasing edit distance (`Δdoc`) order ([`candidates`](self));
//! 2. for each candidate, bound the missing objects' ranks by a shallow
//!    KcR-tree descent ([`bounds`](self)); prune the candidate when the penalty
//!    lower bound already meets the best complete penalty;
//! 3. resolve surviving candidates to exact ranks (full bound-guided
//!    descent) and update the best;
//! 4. stop pulling candidates once the `Δdoc` term alone reaches the best
//!    penalty (or a perfect penalty of 0 is found).
//!
//! [`refine_keywords_naive`] evaluates every enumerated candidate by a
//! full database scan — the baseline of experiment E8 and the
//! differential-testing oracle.

pub mod bounds;
pub(crate) mod candidates;

use yask_index::{Corpus, KcRTree, ObjectId};
use yask_query::{Query, ScoreParams};
use yask_text::KeywordSet;

use crate::common::build_context;
use crate::error::WhyNotError;
use crate::penalty::{keyword_penalty, PenaltyContext};
use bounds::{BoundStats, RankEvaluator};
use candidates::CandidateGen;

/// Work counters for the keyword-adaptation experiments.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct KeywordStats {
    /// Candidates produced by the generator.
    pub enumerated: usize,
    /// Candidates discarded by the cheap bound pass alone.
    pub bound_pruned: usize,
    /// Candidates fully evaluated to exact ranks.
    pub exact_evaluated: usize,
    /// KcR-tree nodes resolved purely by their bounds.
    pub nodes_resolved: usize,
    /// KcR-tree nodes descended into.
    pub nodes_descended: usize,
    /// Objects scored exactly at leaves.
    pub objects_scored: usize,
    /// True when the candidate budget truncated the search (the returned
    /// refinement is then best-effort rather than provably optimal).
    pub truncated: bool,
}

impl KeywordStats {
    /// Folds one tree descent's counters in (public for the sharded
    /// evaluator, which sums descents over several shard trees).
    pub fn absorb(&mut self, b: &BoundStats) {
        self.nodes_resolved += b.nodes_resolved;
        self.nodes_descended += b.nodes_descended;
        self.objects_scored += b.objects_scored;
    }
}

/// A keyword-adapted refined query with its cost breakdown.
#[derive(Clone, Debug)]
pub struct KeywordRefinement {
    /// The refined query: original location and weights, new `doc′`/`k′`.
    pub query: Query,
    /// Eqn (4) penalty (exact).
    pub penalty: f64,
    /// `R(M, q′)`.
    pub rank: usize,
    /// `R(M, q)`.
    pub initial_rank: usize,
    /// `Δk`.
    pub delta_k: usize,
    /// `Δdoc` — edit operations from `q.doc` to `q′.doc`.
    pub delta_doc: usize,
    /// `|q.doc ∪ M.doc|` — the Δdoc normalizer.
    pub doc_norm: usize,
    /// Work counters.
    pub stats: KeywordStats,
}

/// Tuning knobs; the defaults match the experiments in DESIGN.md.
#[derive(Clone, Copy, Debug)]
pub struct KeywordOptions {
    /// Hard cap on enumerated candidates (a safety valve for λ = 1, where
    /// the Δdoc term cannot terminate enumeration).
    pub candidate_budget: usize,
    /// Depth of the cheap bound pass (levels of the KcR-tree).
    pub bound_depth: usize,
}

impl Default for KeywordOptions {
    fn default() -> Self {
        KeywordOptions {
            candidate_budget: 200_000,
            bound_depth: 2,
        }
    }
}

/// One candidate × missing-object outrank evaluation request, handed to
/// the pluggable evaluator of [`refine_keywords_eval`].
#[derive(Clone, Copy, Debug)]
pub struct OutrankRequest<'a> {
    /// The why-not penalty context (for `k_term` when bounding).
    pub ctx: &'a PenaltyContext,
    /// The initial query (location, weights, tie-break identity).
    pub query: &'a Query,
    /// The candidate keyword set `doc′`.
    pub doc: &'a KeywordSet,
    /// The missing object whose outrank count is requested.
    pub missing: ObjectId,
    /// `ST(m, q′)` — the missing object's score under `doc′`.
    pub score: f64,
    /// λ of the request.
    pub lambda: f64,
    /// Best complete penalty found so far (∞ before the first).
    pub best_penalty: f64,
    /// The candidate's fixed `(1 − λ)·Δdoc/norm` penalty term.
    pub doc_term: f64,
}

impl OutrankRequest<'_> {
    /// The Eqn (4) penalty this candidate would have if the missing
    /// object's outrank count were `count` — used by evaluators to decide
    /// whether a partial count already proves the candidate hopeless
    /// (`penalty_if(count) >= best_penalty`; counts only grow and the
    /// penalty is monotone in the count, so the test is sound midway).
    #[inline]
    pub fn penalty_if(&self, count: usize) -> f64 {
        self.lambda * self.ctx.k_term(count + 1) + self.doc_term
    }
}

/// Optimized keyword adaptation over a KcR-tree (see module docs).
pub fn refine_keywords(
    tree: &KcRTree,
    params: &ScoreParams,
    query: &Query,
    missing: &[ObjectId],
    lambda: f64,
) -> Result<KeywordRefinement, WhyNotError> {
    refine_keywords_with(tree, params, query, missing, lambda, KeywordOptions::default())
}

/// [`refine_keywords`] with explicit options.
pub fn refine_keywords_with(
    tree: &KcRTree,
    params: &ScoreParams,
    query: &Query,
    missing: &[ObjectId],
    lambda: f64,
    opts: KeywordOptions,
) -> Result<KeywordRefinement, WhyNotError> {
    let evaluator = RankEvaluator { tree, params };
    refine_keywords_eval(
        tree.corpus(),
        params,
        query,
        missing,
        lambda,
        opts,
        |req, stats| {
            // Cheap bound pass first.
            let mut bs = BoundStats::default();
            let (lb, _ub) = evaluator.outrank_bounds(
                req.query,
                req.doc,
                req.missing,
                req.score,
                opts.bound_depth,
                &mut bs,
            );
            stats.absorb(&bs);
            if req.penalty_if(lb) >= req.best_penalty {
                return None; // prunable: cannot beat the best
            }
            let mut bs = BoundStats::default();
            let exact =
                evaluator.outrank_exact(req.query, req.doc, req.missing, req.score, &mut bs);
            stats.absorb(&bs);
            Some(exact)
        },
    )
}

/// Naive baseline: every candidate's ranks are computed by scanning the
/// whole database (no tree, no bounds, no candidate pruning beyond the
/// shared Δdoc termination rule).
pub fn refine_keywords_naive(
    corpus: &Corpus,
    params: &ScoreParams,
    query: &Query,
    missing: &[ObjectId],
    lambda: f64,
) -> Result<KeywordRefinement, WhyNotError> {
    refine_keywords_naive_with(corpus, params, query, missing, lambda, KeywordOptions::default())
}

/// [`refine_keywords_naive`] with explicit options.
pub fn refine_keywords_naive_with(
    corpus: &Corpus,
    params: &ScoreParams,
    query: &Query,
    missing: &[ObjectId],
    lambda: f64,
    opts: KeywordOptions,
) -> Result<KeywordRefinement, WhyNotError> {
    refine_keywords_eval(
        corpus,
        params,
        query,
        missing,
        lambda,
        opts,
        |req, stats| {
            let mut outrank = 0usize;
            for o in corpus.iter() {
                if o.id == req.missing {
                    continue;
                }
                stats.objects_scored += 1;
                let s = params.score_with_doc(o, req.query, req.doc);
                if ScoreParams::ranks_before(s, o.id, req.score, req.missing) {
                    outrank += 1;
                }
            }
            Some(outrank)
        },
    )
}

/// The shared candidate-search skeleton, public so the execution layer
/// can drive it with a *sharded* rank evaluator (`yask_exec` fans each
/// exact evaluation over the shard trees and sums the per-shard counts).
///
/// Enumeration order, Δdoc termination, budget handling and best-tracking
/// live here and are identical for every evaluator; the evaluator only
/// answers "what is the exact outrank count of this missing object under
/// this candidate" (`Some(count)`) or "this candidate is provably unable
/// to beat [`OutrankRequest::best_penalty`]" (`None`). Any evaluator that
/// returns exact counts under the workspace total order — and prunes only
/// candidates whose true penalty is at least the best — therefore yields
/// the *same* refinement as the single-tree path, which is what the
/// sharded-equals-single-tree property suite pins down.
pub fn refine_keywords_eval<F>(
    corpus: &Corpus,
    params: &ScoreParams,
    query: &Query,
    missing: &[ObjectId],
    lambda: f64,
    opts: KeywordOptions,
    mut eval_outrank: F,
) -> Result<KeywordRefinement, WhyNotError>
where
    F: FnMut(&OutrankRequest<'_>, &mut KeywordStats) -> Option<usize>,
{
    let (ctx, _) = build_context(corpus, params, query, missing, lambda)?;
    let ctx = &ctx;
    // Universe U = q.doc ∪ M.doc.
    let m_doc = missing
        .iter()
        .fold(KeywordSet::empty(), |acc, &m| acc.union(&corpus.get(m).doc));
    let universe = query.doc.union(&m_doc);
    let doc_norm = universe.len().max(1);

    let mut gen = CandidateGen::new(&query.doc, &universe);
    let mut stats = KeywordStats::default();
    let mut best: Option<(KeywordSet, usize, usize, f64)> = None; // (doc, Δdoc, rank, penalty)

    'batches: while let Some((d, batch)) = gen.next_batch() {
        let doc_term = (1.0 - lambda) * d as f64 / doc_norm as f64;
        if let Some((_, _, _, best_penalty)) = &best {
            // Termination: the Δdoc term alone can no longer improve.
            if doc_term >= *best_penalty {
                break;
            }
        }
        for doc in batch {
            if stats.enumerated >= opts.candidate_budget {
                if best.is_some() {
                    stats.truncated = true;
                    break 'batches;
                }
                return Err(WhyNotError::CandidateBudgetExhausted(opts.candidate_budget));
            }
            stats.enumerated += 1;
            let best_penalty = best.as_ref().map_or(f64::INFINITY, |b| b.3);

            // Evaluate the worst missing rank, allowing per-object pruning.
            let mut worst = 0usize;
            let mut pruned = false;
            for &m in missing {
                let s_m = params.score_with_doc(corpus.get(m), query, &doc);
                let req = OutrankRequest {
                    ctx,
                    query,
                    doc: &doc,
                    missing: m,
                    score: s_m,
                    lambda,
                    best_penalty,
                    doc_term,
                };
                match eval_outrank(&req, &mut stats) {
                    Some(outrank) => worst = worst.max(outrank + 1),
                    None => {
                        pruned = true;
                        break;
                    }
                }
            }
            if pruned {
                stats.bound_pruned += 1;
                continue;
            }
            stats.exact_evaluated += 1;
            let penalty = keyword_penalty(ctx, d, doc_norm, worst);
            if penalty < best_penalty {
                let stop = penalty == 0.0;
                best = Some((doc, d, worst, penalty));
                if stop {
                    break 'batches; // perfect refinement at minimal Δdoc
                }
            }
        }
    }

    let (doc, delta_doc, rank, penalty) = best.expect("Δdoc = 0 candidate always evaluates");
    let k_new = ctx.refined_k(rank);
    Ok(KeywordRefinement {
        query: query.with_doc(doc).with_k(k_new),
        penalty,
        rank,
        initial_rank: ctx.r_m_q,
        delta_k: rank.saturating_sub(ctx.k0),
        delta_doc,
        doc_norm,
        stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use yask_geo::{Point, Space};
    use yask_index::{CorpusBuilder, RTreeParams};
    use yask_query::topk_scan;
    use yask_util::Xoshiro256;

    fn ks(ids: &[u32]) -> KeywordSet {
        KeywordSet::from_raw(ids.iter().copied())
    }

    fn random_corpus(n: usize, vocab: u32, seed: u64) -> Corpus {
        let mut rng = Xoshiro256::seed_from_u64(seed);
        let mut b = CorpusBuilder::with_capacity(n).with_space(Space::unit());
        for i in 0..n {
            let doc = KeywordSet::from_raw(
                (0..1 + rng.below(4)).map(|_| rng.below(vocab as usize) as u32),
            );
            b.push(Point::new(rng.next_f64(), rng.next_f64()), doc, format!("o{i}"));
        }
        b.build()
    }

    fn pick_missing(corpus: &Corpus, params: &ScoreParams, q: &Query, m: usize) -> Vec<ObjectId> {
        let all = topk_scan(corpus, params, &q.with_k(corpus.len()));
        all[q.k + 2..q.k + 2 + m].iter().map(|r| r.id).collect()
    }

    #[test]
    fn refinement_revives_missing_objects() {
        let corpus = random_corpus(200, 15, 41);
        let params = ScoreParams::new(corpus.space());
        let tree = KcRTree::bulk_load(corpus.clone(), RTreeParams::new(8, 3));
        let q = Query::new(Point::new(0.3, 0.3), ks(&[1, 2]), 5);
        let missing = pick_missing(&corpus, &params, &q, 2);
        let r = refine_keywords(&tree, &params, &q, &missing, 0.5).unwrap();
        let result = topk_scan(&corpus, &params, &r.query);
        for m in &missing {
            assert!(
                result.iter().any(|x| x.id == *m),
                "object {m} not revived by {:?}",
                r.query
            );
        }
        assert!(r.penalty <= 0.5 + 1e-12, "worse than the k-only refinement");
        assert_eq!(r.query.k, r.rank.max(q.k));
        assert_eq!(r.query.weights, q.weights, "keyword mode must not touch weights");
        assert_eq!(r.query.loc, q.loc);
    }

    #[test]
    fn optimized_equals_naive() {
        for seed in 0..6 {
            let corpus = random_corpus(120, 10, 50 + seed);
            let params = ScoreParams::new(corpus.space());
            let tree = KcRTree::bulk_load(corpus.clone(), RTreeParams::new(8, 3));
            let q = Query::new(Point::new(0.6, 0.4), ks(&[1, 3]), 4);
            let missing = pick_missing(&corpus, &params, &q, 1);
            for lambda in [0.2, 0.5, 0.8] {
                let a = refine_keywords(&tree, &params, &q, &missing, lambda).unwrap();
                let b =
                    refine_keywords_naive(&corpus, &params, &q, &missing, lambda).unwrap();
                assert!(
                    (a.penalty - b.penalty).abs() < 1e-12,
                    "seed {seed} λ={lambda}: {} vs {}",
                    a.penalty,
                    b.penalty
                );
                assert_eq!(a.query.doc, b.query.doc, "seed {seed} λ={lambda}");
                assert_eq!(a.query.k, b.query.k, "seed {seed} λ={lambda}");
            }
        }
    }

    #[test]
    fn pruning_actually_prunes() {
        let corpus = random_corpus(400, 12, 60);
        let params = ScoreParams::new(corpus.space());
        let tree = KcRTree::bulk_load(corpus.clone(), RTreeParams::new(8, 3));
        let q = Query::new(Point::new(0.5, 0.5), ks(&[2, 4, 6]), 5);
        let missing = pick_missing(&corpus, &params, &q, 1);
        let r = refine_keywords(&tree, &params, &q, &missing, 0.5).unwrap();
        let naive = refine_keywords_naive(&corpus, &params, &q, &missing, 0.5).unwrap();
        // Same enumeration, but the optimized path must touch far fewer
        // objects thanks to node bounds + candidate pruning.
        assert_eq!(r.stats.enumerated, naive.stats.enumerated);
        assert!(
            r.stats.objects_scored < naive.stats.objects_scored / 2,
            "bounds saved too little: {} vs {}",
            r.stats.objects_scored,
            naive.stats.objects_scored
        );
    }

    #[test]
    fn perfect_refinement_is_found_when_possible() {
        // Missing object's doc matches a refined query exactly and is
        // co-located with the query: the adapted keywords should revive it
        // within the original k at some small Δdoc.
        let mut b = CorpusBuilder::new().with_space(Space::unit());
        b.push(Point::new(0.01, 0.0), ks(&[1]), "t1");
        b.push(Point::new(0.02, 0.0), ks(&[1]), "t2");
        b.push(Point::new(0.0, 0.0), ks(&[5]), "target"); // best spot, keyword 5
        let corpus = b.build();
        let params = ScoreParams::new(corpus.space());
        let tree = KcRTree::bulk_load(corpus.clone(), RTreeParams::new(4, 2));
        let q = Query::new(Point::new(0.0, 0.0), ks(&[1]), 2);
        let r = refine_keywords(&tree, &params, &q, &[ObjectId(2)], 0.5).unwrap();
        // Swapping keyword 1 → 5 (or adding 5) revives the target within
        // k = 2, so Δk = 0.
        assert_eq!(r.delta_k, 0);
        assert!(r.rank <= 2);
        assert!(r.query.doc.contains(yask_text::KeywordId(5)));
    }

    #[test]
    fn budget_truncation_is_flagged() {
        let corpus = random_corpus(60, 8, 61);
        let params = ScoreParams::new(corpus.space());
        let tree = KcRTree::bulk_load(corpus.clone(), RTreeParams::new(4, 2));
        let q = Query::new(Point::new(0.5, 0.5), ks(&[1, 2]), 3);
        let missing = pick_missing(&corpus, &params, &q, 1);
        // Budget 1 evaluates exactly the Δdoc = 0 candidate and must flag
        // truncation when the second candidate is requested.
        let opts = KeywordOptions {
            candidate_budget: 1,
            bound_depth: 2,
        };
        let r = refine_keywords_with(&tree, &params, &q, &missing, 1.0, opts).unwrap();
        assert!(r.stats.truncated);
        assert_eq!(r.delta_doc, 0);
        // Budget 0 cannot even evaluate Δdoc = 0 → error.
        let err = refine_keywords_with(
            &tree,
            &params,
            &q,
            &missing,
            1.0,
            KeywordOptions {
                candidate_budget: 0,
                bound_depth: 2,
            },
        )
        .unwrap_err();
        assert_eq!(err, WhyNotError::CandidateBudgetExhausted(0));
    }

    #[test]
    fn lambda_zero_never_pays_edit_ops() {
        // λ = 0 makes k changes free and edits costly: optimum is Δdoc = 0.
        let corpus = random_corpus(150, 10, 62);
        let params = ScoreParams::new(corpus.space());
        let tree = KcRTree::bulk_load(corpus.clone(), RTreeParams::new(8, 3));
        let q = Query::new(Point::new(0.2, 0.2), ks(&[1, 2]), 3);
        let missing = pick_missing(&corpus, &params, &q, 1);
        let r = refine_keywords(&tree, &params, &q, &missing, 0.0).unwrap();
        assert_eq!(r.delta_doc, 0);
        assert_eq!(r.query.doc, q.doc);
        assert_eq!(r.penalty, 0.0);
        assert_eq!(r.query.k, r.initial_rank.max(q.k));
    }

    #[test]
    fn errors_propagate() {
        let corpus = random_corpus(50, 8, 63);
        let params = ScoreParams::new(corpus.space());
        let tree = KcRTree::bulk_load(corpus.clone(), RTreeParams::new(4, 2));
        let q = Query::new(Point::new(0.5, 0.5), ks(&[1]), 3);
        assert_eq!(
            refine_keywords(&tree, &params, &q, &[], 0.5).unwrap_err(),
            WhyNotError::EmptyMissingSet
        );
        assert_eq!(
            refine_keywords(&tree, &params, &q, &[ObjectId(999)], 0.5).unwrap_err(),
            WhyNotError::ForeignObject(ObjectId(999))
        );
        assert_eq!(
            refine_keywords(&tree, &params, &q, &[ObjectId(1)], 2.0).unwrap_err(),
            WhyNotError::InvalidLambda(2.0)
        );
    }
}
