//! Candidate keyword-set enumeration in edit-distance order.
//!
//! Candidates are drawn from the universe `U = q.doc ∪ M.doc` (reference
//! [6] shows keywords outside `U` are dominated: they cannot raise a
//! missing object's similarity but always cost an edit operation). A
//! candidate is obtained by deleting a subset of `q.doc` and inserting a
//! subset of `U \ q.doc`; its `Δdoc` is the number of operations.
//!
//! [`CandidateGen`] yields candidates in **batches of equal `Δdoc`**, in
//! non-decreasing `Δdoc` order. Because the penalty's keyword term
//! `(1 − λ)·Δdoc/|U|` is monotone in `Δdoc` and the rank term is
//! non-negative, the caller can stop pulling batches as soon as that term
//! alone reaches the best complete penalty found — the termination rule of
//! the bound-and-prune algorithm.

use yask_text::KeywordSet;

/// Batch-wise candidate generator (see module docs).
pub(crate) struct CandidateGen {
    /// `q.doc`, sorted.
    base: Vec<u32>,
    /// `U \ q.doc`, sorted.
    addable: Vec<u32>,
    /// Next `Δdoc` to emit.
    next_d: usize,
}

impl CandidateGen {
    /// Creates the generator for initial keywords `base` over universe
    /// `base ∪ addable`.
    pub fn new(query_doc: &KeywordSet, universe: &KeywordSet) -> Self {
        let base: Vec<u32> = query_doc.raw().to_vec();
        let addable: Vec<u32> = universe.difference(query_doc).raw().to_vec();
        CandidateGen {
            base,
            addable,
            next_d: 0,
        }
    }

    /// Largest meaningful `Δdoc`: delete everything and insert everything.
    pub fn max_delta(&self) -> usize {
        self.base.len() + self.addable.len()
    }

    /// Number of candidates in the batch for a given `Δdoc` (before the
    /// empty-set filter) — used for budget accounting.
    pub fn batch_size(&self, d: usize) -> usize {
        let mut total = 0usize;
        for n_del in 0..=d.min(self.base.len()) {
            let n_ins = d - n_del;
            if n_ins > self.addable.len() {
                continue;
            }
            total = total.saturating_add(
                binomial(self.base.len(), n_del).saturating_mul(binomial(self.addable.len(), n_ins)),
            );
        }
        total
    }

    /// The next batch: `(Δdoc, candidates)` with every candidate at that
    /// exact edit distance, deterministic lexicographic order, empty sets
    /// filtered out. `None` once the universe is exhausted.
    pub fn next_batch(&mut self) -> Option<(usize, Vec<KeywordSet>)> {
        while self.next_d <= self.max_delta() {
            let d = self.next_d;
            self.next_d += 1;
            let mut out = Vec::with_capacity(self.batch_size(d));
            for n_del in 0..=d.min(self.base.len()) {
                let n_ins = d - n_del;
                if n_ins > self.addable.len() {
                    continue;
                }
                for del in combinations(self.base.len(), n_del) {
                    for ins in combinations(self.addable.len(), n_ins) {
                        let mut kws: Vec<u32> = self
                            .base
                            .iter()
                            .enumerate()
                            .filter(|(i, _)| !del.contains(i))
                            .map(|(_, &w)| w)
                            .collect();
                        kws.extend(ins.iter().map(|&i| self.addable[i]));
                        if kws.is_empty() {
                            continue;
                        }
                        out.push(KeywordSet::from_raw(kws));
                    }
                }
            }
            if !out.is_empty() {
                return Some((d, out));
            }
            // A batch can be empty only when the sole candidate was the
            // empty set (d == |base|, no insertions possible elsewhere) —
            // keep advancing.
        }
        None
    }
}

/// All k-combinations of `0..n` in lexicographic order.
fn combinations(n: usize, k: usize) -> Vec<Vec<usize>> {
    if k > n {
        return Vec::new();
    }
    if k == 0 {
        return vec![Vec::new()];
    }
    let mut out = Vec::new();
    let mut idx: Vec<usize> = (0..k).collect();
    loop {
        out.push(idx.clone());
        // Advance the rightmost index that can still move.
        let mut i = k;
        loop {
            if i == 0 {
                return out;
            }
            i -= 1;
            if idx[i] != i + n - k {
                break;
            }
            if i == 0 {
                return out;
            }
        }
        idx[i] += 1;
        for j in i + 1..k {
            idx[j] = idx[j - 1] + 1;
        }
    }
}

/// `n choose k` with saturation (budget accounting only).
fn binomial(n: usize, k: usize) -> usize {
    if k > n {
        return 0;
    }
    let k = k.min(n - k);
    let mut acc: u128 = 1;
    for i in 0..k {
        acc = acc.saturating_mul((n - i) as u128) / (i + 1) as u128;
        if acc > usize::MAX as u128 {
            return usize::MAX;
        }
    }
    acc as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ks(ids: &[u32]) -> KeywordSet {
        KeywordSet::from_raw(ids.iter().copied())
    }

    #[test]
    fn combinations_enumerate_lexicographically() {
        assert_eq!(combinations(3, 0), vec![Vec::<usize>::new()]);
        assert_eq!(combinations(3, 1), vec![vec![0], vec![1], vec![2]]);
        assert_eq!(combinations(4, 2).len(), 6);
        assert_eq!(combinations(4, 2)[0], vec![0, 1]);
        assert_eq!(combinations(4, 2)[5], vec![2, 3]);
        assert!(combinations(2, 3).is_empty());
    }

    #[test]
    fn binomial_basics() {
        assert_eq!(binomial(5, 2), 10);
        assert_eq!(binomial(10, 0), 1);
        assert_eq!(binomial(3, 5), 0);
        assert_eq!(binomial(20, 10), 184_756);
    }

    #[test]
    fn first_batch_is_the_original_doc() {
        let mut g = CandidateGen::new(&ks(&[1, 2]), &ks(&[1, 2, 3, 4]));
        let (d, batch) = g.next_batch().unwrap();
        assert_eq!(d, 0);
        assert_eq!(batch, vec![ks(&[1, 2])]);
    }

    #[test]
    fn delta_one_batch_has_all_single_edits() {
        let mut g = CandidateGen::new(&ks(&[1, 2]), &ks(&[1, 2, 3, 4]));
        g.next_batch();
        let (d, batch) = g.next_batch().unwrap();
        assert_eq!(d, 1);
        // Deletions: {2}, {1}; insertions: {1,2,3}, {1,2,4}.
        let set: std::collections::HashSet<KeywordSet> = batch.into_iter().collect();
        assert_eq!(set.len(), 4);
        assert!(set.contains(&ks(&[2])));
        assert!(set.contains(&ks(&[1])));
        assert!(set.contains(&ks(&[1, 2, 3])));
        assert!(set.contains(&ks(&[1, 2, 4])));
    }

    #[test]
    fn every_candidate_has_the_declared_edit_distance() {
        let base = ks(&[1, 2, 3]);
        let mut g = CandidateGen::new(&base, &ks(&[1, 2, 3, 4, 5]));
        let mut seen = std::collections::HashSet::new();
        while let Some((d, batch)) = g.next_batch() {
            for c in batch {
                assert_eq!(base.edit_distance(&c), d, "candidate {c:?}");
                assert!(!c.is_empty());
                assert!(seen.insert(c), "duplicate candidate");
            }
        }
        // Non-empty subsets of a 5-element universe: 2^5 − 1.
        assert_eq!(seen.len(), 31);
    }

    #[test]
    fn batch_size_accounts_match_actual() {
        let mut g = CandidateGen::new(&ks(&[1, 2]), &ks(&[1, 2, 3, 4, 5]));
        let sizes: Vec<usize> = (0..=g.max_delta()).map(|d| g.batch_size(d)).collect();
        let mut actual = vec![0usize; g.max_delta() + 1];
        while let Some((d, batch)) = g.next_batch() {
            // batch_size counts the empty set too; add it back where it
            // occurs (d == |base| with no insertions).
            actual[d] = batch.len() + usize::from(d == 2);
        }
        assert_eq!(sizes, actual);
    }

    #[test]
    fn exhausts_and_returns_none() {
        let mut g = CandidateGen::new(&ks(&[7]), &ks(&[7]));
        // Universe = {7}: candidates are just {7} at d=0; d=1 is the empty
        // set (filtered) → None afterwards.
        assert_eq!(g.next_batch().unwrap().1, vec![ks(&[7])]);
        assert!(g.next_batch().is_none());
        assert!(g.next_batch().is_none());
    }

    #[test]
    fn empty_query_doc_enumerates_insertions_only() {
        let mut g = CandidateGen::new(&KeywordSet::empty(), &ks(&[1, 2]));
        let (d0, b0) = g.next_batch().unwrap();
        // d=0 would be the empty set (filtered), so the first batch is d=1.
        assert_eq!(d0, 1);
        assert_eq!(b0.len(), 2);
        let (d1, b1) = g.next_batch().unwrap();
        assert_eq!(d1, 2);
        assert_eq!(b1, vec![ks(&[1, 2])]);
    }
}
