//! Rank evaluation over the KcR-tree.
//!
//! For a candidate keyword set `doc′` and a missing object `m` with score
//! `s_m = ST(m, q′)`, the rank of `m` is `1 +` the number of objects
//! outranking it. The KcR-tree turns that count into a tree descent
//! (reference \[6\]):
//!
//! * a node whose score *lower* bound exceeds `s_m` contributes its whole
//!   `cnt` — every object below it outranks `m` (strictly, so tie-breaking
//!   cannot matter);
//! * a node whose score *upper* bound is below `s_m` contributes nothing;
//! * otherwise the node is *uncertain*. The keyword-count map refines the
//!   uncertain case: objects containing **no** candidate keyword score at
//!   most `ws·(1 − SDist_min)`; when even that is below `s_m`, at most
//!   [`yask_index::KcAug::matched_upper`] objects of the node can outrank
//!   `m`. Uncertain nodes are resolved by descending — to exact
//!   object-level comparisons in [`RankEvaluator::outrank_exact`], or cut
//!   off at a depth limit in [`RankEvaluator::outrank_bounds`], which
//!   returns an interval used for pruning candidates cheaply.

use yask_index::{KcRTree, NodeKind, ObjectId};
use yask_query::{Query, ScoreParams};
use yask_text::KeywordSet;

/// Work counters for the pruning-effectiveness experiment (E8).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BoundStats {
    /// Nodes whose bounds resolved them without descent.
    pub nodes_resolved: usize,
    /// Nodes descended into.
    pub nodes_descended: usize,
    /// Objects compared exactly at leaves.
    pub objects_scored: usize,
}

/// An admission gate consulted while an exact outrank descent counts
/// outranking objects.
///
/// The single-tree path uses [`NoGate`]; the sharded path (in
/// `yask_exec`) hands every shard's descent the same shared accumulator,
/// so the *cross-shard* running total — not just the local one — decides
/// when the candidate is already hopeless and late shards stop counting.
pub trait OutrankGate {
    /// Accounts `n` newly found outranking objects. Returns `false` when
    /// the accumulated total is already hopeless: the descent aborts and
    /// the candidate is pruned without finishing the count.
    fn add(&self, n: usize) -> bool;
}

/// The gate that never aborts: plain exact evaluation.
pub struct NoGate;

impl OutrankGate for NoGate {
    #[inline]
    fn add(&self, _n: usize) -> bool {
        true
    }
}

/// Shared state for rank computations against one KcR-tree.
pub struct RankEvaluator<'a> {
    /// The tree to count ranks in (the global tree, or one shard's).
    pub tree: &'a KcRTree,
    /// The engine's scoring configuration.
    pub params: &'a ScoreParams,
}

enum NodeVerdict {
    AllOutrank,
    NoneOutrank,
    Uncertain,
}

impl<'a> RankEvaluator<'a> {
    fn classify(
        &self,
        node: &yask_index::Node<yask_index::KcAug>,
        q: &Query,
        doc: &KeywordSet,
        s_m: f64,
    ) -> NodeVerdict {
        let lb = self.params.node_lower_with_doc(&node.mbr, node.aug(), q, doc);
        if lb > s_m {
            return NodeVerdict::AllOutrank;
        }
        let ub = self.params.node_upper_with_doc(&node.mbr, node.aug(), q, doc);
        if ub < s_m {
            return NodeVerdict::NoneOutrank;
        }
        NodeVerdict::Uncertain
    }

    /// The maximum number of objects below an uncertain node that could
    /// possibly outrank `s_m`, refined with the keyword-count map.
    fn uncertain_upper(
        &self,
        node: &yask_index::Node<yask_index::KcAug>,
        q: &Query,
        doc: &KeywordSet,
        s_m: f64,
    ) -> usize {
        let aug = node.aug();
        // Best possible score of an object with zero textual similarity.
        let no_kw_best =
            q.weights.ws() * (1.0 - self.params.space.sdist_min(&q.loc, &node.mbr));
        if no_kw_best < s_m {
            aug.matched_upper(doc) as usize
        } else {
            aug.cnt() as usize
        }
    }

    /// Exact outrank count for missing object `m` with score `s_m` under
    /// candidate keywords `doc` (the query contributes location, weights
    /// and tie-break identity; its own doc is ignored).
    pub fn outrank_exact(
        &self,
        q: &Query,
        doc: &KeywordSet,
        m: ObjectId,
        s_m: f64,
        stats: &mut BoundStats,
    ) -> usize {
        self.outrank_exact_gated(q, doc, m, s_m, &NoGate, stats)
            .expect("NoGate never aborts")
    }

    /// [`RankEvaluator::outrank_exact`] consulting an [`OutrankGate`]
    /// after every counted increment. Returns `None` when the gate
    /// aborted the descent (the candidate is hopeless); the partial count
    /// accumulated so far lives in the gate, not the return value.
    pub fn outrank_exact_gated(
        &self,
        q: &Query,
        doc: &KeywordSet,
        m: ObjectId,
        s_m: f64,
        gate: &impl OutrankGate,
        stats: &mut BoundStats,
    ) -> Option<usize> {
        let Some(root) = self.tree.root() else {
            return Some(0);
        };
        let _guard = self.tree.read_guard();
        let mut count = 0usize;
        let mut stack = vec![root];
        while let Some(nid) = stack.pop() {
            let node = self.tree.node(nid);
            match self.classify(node, q, doc, s_m) {
                NodeVerdict::AllOutrank => {
                    stats.nodes_resolved += 1;
                    count += node.aug().cnt() as usize;
                    if !gate.add(node.aug().cnt() as usize) {
                        return None;
                    }
                }
                NodeVerdict::NoneOutrank => {
                    stats.nodes_resolved += 1;
                }
                NodeVerdict::Uncertain => {
                    stats.nodes_descended += 1;
                    match &node.kind {
                        NodeKind::Leaf(entries) => {
                            let mut found = 0usize;
                            for &id in entries {
                                if id == m {
                                    continue;
                                }
                                stats.objects_scored += 1;
                                let s = self
                                    .params
                                    .score_with_doc(self.tree.corpus().get(id), q, doc);
                                if ScoreParams::ranks_before(s, id, s_m, m) {
                                    found += 1;
                                }
                            }
                            count += found;
                            if !gate.add(found) {
                                return None;
                            }
                        }
                        NodeKind::Internal(children) => stack.extend_from_slice(children),
                    }
                }
            }
        }
        Some(count)
    }

    /// Depth-limited `(lower, upper)` bounds on the outrank count; cheap
    /// (touches at most the top `max_depth` levels) and sound — used to
    /// prune candidates whose penalty lower bound is already hopeless.
    pub fn outrank_bounds(
        &self,
        q: &Query,
        doc: &KeywordSet,
        m: ObjectId,
        s_m: f64,
        max_depth: usize,
        stats: &mut BoundStats,
    ) -> (usize, usize) {
        let Some(root) = self.tree.root() else {
            return (0, 0);
        };
        let _guard = self.tree.read_guard();
        let mut lb = 0usize;
        let mut ub = 0usize;
        let mut stack = vec![(root, 0usize)];
        while let Some((nid, depth)) = stack.pop() {
            let node = self.tree.node(nid);
            match self.classify(node, q, doc, s_m) {
                NodeVerdict::AllOutrank => {
                    stats.nodes_resolved += 1;
                    lb += node.aug().cnt() as usize;
                    ub += node.aug().cnt() as usize;
                }
                NodeVerdict::NoneOutrank => {
                    stats.nodes_resolved += 1;
                }
                NodeVerdict::Uncertain => match &node.kind {
                    NodeKind::Leaf(entries) => {
                        stats.nodes_descended += 1;
                        for &id in entries {
                            if id == m {
                                continue;
                            }
                            stats.objects_scored += 1;
                            let s =
                                self.params.score_with_doc(self.tree.corpus().get(id), q, doc);
                            if ScoreParams::ranks_before(s, id, s_m, m) {
                                lb += 1;
                                ub += 1;
                            }
                        }
                    }
                    NodeKind::Internal(children) => {
                        if depth + 1 < max_depth {
                            stats.nodes_descended += 1;
                            stack.extend(children.iter().map(|&c| (c, depth + 1)));
                        } else {
                            // Cut off: the node stays uncertain.
                            stats.nodes_resolved += 1;
                            ub += self.uncertain_upper(node, q, doc, s_m);
                        }
                    }
                },
            }
        }
        (lb, ub)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use yask_geo::{Point, Space};
    use yask_index::{Corpus, CorpusBuilder, RTreeParams};
    use yask_util::Xoshiro256;

    fn random_corpus(n: usize, vocab: u32, seed: u64) -> Corpus {
        let mut rng = Xoshiro256::seed_from_u64(seed);
        let mut b = CorpusBuilder::with_capacity(n).with_space(Space::unit());
        for i in 0..n {
            let doc = KeywordSet::from_raw(
                (0..1 + rng.below(5)).map(|_| rng.below(vocab as usize) as u32),
            );
            b.push(Point::new(rng.next_f64(), rng.next_f64()), doc, format!("o{i}"));
        }
        b.build()
    }

    /// The scan oracle for the outrank count.
    fn outrank_scan(
        corpus: &Corpus,
        params: &ScoreParams,
        q: &Query,
        doc: &KeywordSet,
        m: ObjectId,
    ) -> usize {
        let s_m = params.score_with_doc(corpus.get(m), q, doc);
        corpus
            .iter()
            .filter(|o| {
                o.id != m
                    && ScoreParams::ranks_before(
                        params.score_with_doc(o, q, doc),
                        o.id,
                        s_m,
                        m,
                    )
            })
            .count()
    }

    #[test]
    fn exact_count_matches_scan_oracle() {
        let corpus = random_corpus(300, 20, 31);
        let params = ScoreParams::new(corpus.space());
        let tree = KcRTree::bulk_load(corpus.clone(), RTreeParams::new(8, 3));
        let ev = RankEvaluator {
            tree: &tree,
            params: &params,
        };
        let mut rng = Xoshiro256::seed_from_u64(32);
        for _ in 0..25 {
            let q = Query::new(
                Point::new(rng.next_f64(), rng.next_f64()),
                KeywordSet::from_raw((0..2).map(|_| rng.below(20) as u32)),
                3,
            );
            let doc =
                KeywordSet::from_raw((0..1 + rng.below(3)).map(|_| rng.below(20) as u32));
            let m = ObjectId(rng.below(300) as u32);
            let s_m = params.score_with_doc(corpus.get(m), &q, &doc);
            let mut stats = BoundStats::default();
            let got = ev.outrank_exact(&q, &doc, m, s_m, &mut stats);
            assert_eq!(got, outrank_scan(&corpus, &params, &q, &doc, m));
            // The tree must have skipped something on typical queries.
            assert!(stats.objects_scored <= 300);
        }
    }

    #[test]
    fn bounds_bracket_exact_at_every_depth() {
        let corpus = random_corpus(250, 15, 33);
        let params = ScoreParams::new(corpus.space());
        let tree = KcRTree::bulk_load(corpus.clone(), RTreeParams::new(8, 3));
        let ev = RankEvaluator {
            tree: &tree,
            params: &params,
        };
        let q = Query::new(Point::new(0.4, 0.4), KeywordSet::from_raw([1, 2]), 3);
        let doc = KeywordSet::from_raw([1, 5]);
        for m_raw in [0u32, 50, 120, 249] {
            let m = ObjectId(m_raw);
            let s_m = params.score_with_doc(corpus.get(m), &q, &doc);
            let mut st = BoundStats::default();
            let exact = ev.outrank_exact(&q, &doc, m, s_m, &mut st);
            let mut prev_width = usize::MAX;
            for depth in 1..=5 {
                let mut st = BoundStats::default();
                let (lb, ub) = ev.outrank_bounds(&q, &doc, m, s_m, depth, &mut st);
                assert!(lb <= exact, "depth {depth}: lb {lb} > exact {exact}");
                assert!(ub >= exact, "depth {depth}: ub {ub} < exact {exact}");
                let width = ub - lb;
                assert!(width <= prev_width, "bounds must tighten with depth");
                prev_width = width;
            }
        }
    }

    #[test]
    fn deep_bounds_converge_to_exact() {
        let corpus = random_corpus(150, 10, 34);
        let params = ScoreParams::new(corpus.space());
        let tree = KcRTree::bulk_load(corpus.clone(), RTreeParams::new(4, 2));
        let ev = RankEvaluator {
            tree: &tree,
            params: &params,
        };
        let q = Query::new(Point::new(0.2, 0.7), KeywordSet::from_raw([3]), 2);
        let doc = KeywordSet::from_raw([3, 7]);
        let m = ObjectId(42);
        let s_m = params.score_with_doc(corpus.get(m), &q, &doc);
        let mut st = BoundStats::default();
        let exact = ev.outrank_exact(&q, &doc, m, s_m, &mut st);
        let mut st2 = BoundStats::default();
        let (lb, ub) = ev.outrank_bounds(&q, &doc, m, s_m, 64, &mut st2);
        assert_eq!(lb, exact);
        assert_eq!(ub, exact);
    }

    #[test]
    fn empty_tree_counts_zero() {
        let corpus = CorpusBuilder::new().build();
        let params = ScoreParams::new(corpus.space());
        let tree = KcRTree::bulk_load(corpus, RTreeParams::default());
        let ev = RankEvaluator {
            tree: &tree,
            params: &params,
        };
        let q = Query::new(Point::new(0.0, 0.0), KeywordSet::from_raw([1]), 1);
        let mut st = BoundStats::default();
        assert_eq!(
            ev.outrank_exact(&q, &KeywordSet::from_raw([1]), ObjectId(0), 0.5, &mut st),
            0
        );
    }
}
