//! Combined refinement — "users can apply the two refinement functions
//! simultaneously to find better solutions" (paper §3.2).
//!
//! The demo lets a user chain the two models; this module automates the
//! chaining. A combined refinement applies keyword adaptation and
//! preference adjustment **in sequence** (both orders are explored): the
//! first stage refines one parameter, the second stage then refines the
//! other against the first stage's query. The combined penalty extends
//! Eqns (3)/(4) in the natural way — the shared `Δk` term plus *both*
//! modification terms, each normalized as in its own equation and the
//! pair averaged so the total stays within `[0, 1]`:
//!
//! ```text
//! Penalty(q, q″) = λ·Δk/(R(M,q) − q.k)
//!                + (1 − λ)·(Δ~w/norm_w + Δdoc/norm_doc) / 2
//! ```
//!
//! Single-model refinements are special cases (the other term is 0 but
//! the averaging halves the modification cost), so the combined penalty
//! is *not* directly comparable to the single-model penalties — it is
//! reported alongside them and [`CombinedRefinement::order`] records
//! which chaining won.

use yask_index::{Corpus, KcRTree, ObjectId};
use yask_query::{ranks_of_scan, Query, ScoreParams};

use crate::common::build_context;
use crate::error::WhyNotError;
use crate::keyword::{refine_keywords_with, KeywordOptions, KeywordRefinement};
use crate::penalty::PenaltyContext;
use crate::pref::{refine_preference, PreferenceRefinement};

/// The two single-model refinements behind one interface, so the chaining
/// logic of the combined model is written once and runs over any
/// implementation — the single KcR-tree here, or the sharded fan-out in
/// `yask_exec` (which answers the same questions from per-shard trees).
pub trait RefinementEngine {
    /// The corpus version the engine answers against.
    fn corpus(&self) -> &Corpus;
    /// The scoring configuration.
    fn score_params(&self) -> ScoreParams;
    /// Preference-adjusted refinement (Definition 2).
    fn preference(
        &self,
        query: &Query,
        missing: &[ObjectId],
        lambda: f64,
    ) -> Result<PreferenceRefinement, WhyNotError>;
    /// Keyword-adapted refinement (Definition 3).
    fn keywords(
        &self,
        query: &Query,
        missing: &[ObjectId],
        lambda: f64,
    ) -> Result<KeywordRefinement, WhyNotError>;
}

/// The single-tree [`RefinementEngine`]: both models against one KcR-tree
/// (keyword adaptation) and its corpus (preference adjustment).
pub struct TreeRefinementEngine<'a> {
    tree: &'a KcRTree,
    params: ScoreParams,
    opts: KeywordOptions,
}

impl<'a> TreeRefinementEngine<'a> {
    /// Wraps a tree with the engine's scoring and keyword-search options.
    pub fn new(tree: &'a KcRTree, params: ScoreParams, opts: KeywordOptions) -> Self {
        TreeRefinementEngine { tree, params, opts }
    }
}

impl RefinementEngine for TreeRefinementEngine<'_> {
    fn corpus(&self) -> &Corpus {
        self.tree.corpus()
    }

    fn score_params(&self) -> ScoreParams {
        self.params
    }

    fn preference(
        &self,
        query: &Query,
        missing: &[ObjectId],
        lambda: f64,
    ) -> Result<PreferenceRefinement, WhyNotError> {
        refine_preference(self.tree.corpus(), &self.params, query, missing, lambda)
    }

    fn keywords(
        &self,
        query: &Query,
        missing: &[ObjectId],
        lambda: f64,
    ) -> Result<KeywordRefinement, WhyNotError> {
        refine_keywords_with(self.tree, &self.params, query, missing, lambda, self.opts)
    }
}

/// Which chaining order produced the best combined refinement.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CombineOrder {
    /// Keywords first, then weights.
    KeywordsThenWeights,
    /// Weights first, then keywords.
    WeightsThenKeywords,
}

/// A refined query that may modify keywords *and* weights (plus `k`).
#[derive(Clone, Debug)]
pub struct CombinedRefinement {
    /// The refined query `q″ = (loc, doc′, k″, ~w′)`.
    pub query: Query,
    /// The combined penalty (see module docs).
    pub penalty: f64,
    /// `R(M, q″)`.
    pub rank: usize,
    /// `R(M, q)`.
    pub initial_rank: usize,
    /// `Δk`.
    pub delta_k: usize,
    /// `Δ~w`.
    pub delta_w: f64,
    /// `Δdoc`.
    pub delta_doc: usize,
    /// The winning chaining order.
    pub order: CombineOrder,
}

/// Runs both chaining orders and returns the lower-penalty combination.
pub fn refine_combined(
    tree: &KcRTree,
    params: &ScoreParams,
    query: &Query,
    missing: &[ObjectId],
    lambda: f64,
) -> Result<CombinedRefinement, WhyNotError> {
    refine_combined_with(tree, params, query, missing, lambda, KeywordOptions::default())
}

/// [`refine_combined`] with explicit keyword-search options.
pub fn refine_combined_with(
    tree: &KcRTree,
    params: &ScoreParams,
    query: &Query,
    missing: &[ObjectId],
    lambda: f64,
    opts: KeywordOptions,
) -> Result<CombinedRefinement, WhyNotError> {
    refine_combined_on(
        &TreeRefinementEngine::new(tree, *params, opts),
        query,
        missing,
        lambda,
    )
}

/// Runs both chaining orders on any [`RefinementEngine`] and returns the
/// lower-penalty combination — the sharded execution layer calls this with
/// its fan-out engine and gets the exact same chaining, exact-rank
/// assembly and penalty arithmetic as the single-tree path.
pub fn refine_combined_on<E: RefinementEngine>(
    engine: &E,
    query: &Query,
    missing: &[ObjectId],
    lambda: f64,
) -> Result<CombinedRefinement, WhyNotError> {
    let params = engine.score_params();
    let corpus = engine.corpus();
    let (ctx, _) = build_context(corpus, &params, query, missing, lambda)?;

    // Δdoc normalizer is fixed by the *initial* query (Eqn 4).
    let m_doc = missing
        .iter()
        .fold(yask_text::KeywordSet::empty(), |acc, &m| {
            acc.union(&corpus.get(m).doc)
        });
    let doc_norm = query.doc.union(&m_doc).len().max(1);

    let kw_first = chain_keywords_then_weights(engine, query, missing, lambda);
    let w_first = chain_weights_then_keywords(engine, query, missing, lambda);

    let mut best: Option<CombinedRefinement> = None;
    for (order, staged) in [
        (CombineOrder::KeywordsThenWeights, kw_first),
        (CombineOrder::WeightsThenKeywords, w_first),
    ] {
        let Ok(refined_query) = staged else { continue };
        let candidate =
            assemble(corpus, &params, query, missing, &ctx, refined_query, doc_norm, order);
        match &best {
            Some(b) if b.penalty <= candidate.penalty => {}
            _ => best = Some(candidate),
        }
    }
    best.ok_or(WhyNotError::EmptyMissingSet) // unreachable: stage 1 alone succeeds
}

/// Stage 1 keywords, stage 2 weights.
fn chain_keywords_then_weights<E: RefinementEngine>(
    engine: &E,
    query: &Query,
    missing: &[ObjectId],
    lambda: f64,
) -> Result<Query, WhyNotError> {
    let kw = engine.keywords(query, missing, lambda)?;
    // Stage 2 refines the weights of the keyword-adapted query at the
    // *original* k — if the adapted query already revives everything
    // within q.k, preference adjustment would reject the request (nothing
    // is missing any more), so keep the stage-1 result in that case.
    let stage2_base = kw.query.with_k(query.k);
    match engine.preference(&stage2_base, missing, lambda) {
        Ok(pref) => Ok(pref.query),
        Err(WhyNotError::NotMissing(_, _)) => Ok(stage2_base),
        Err(e) => Err(e),
    }
}

/// Stage 1 weights, stage 2 keywords.
fn chain_weights_then_keywords<E: RefinementEngine>(
    engine: &E,
    query: &Query,
    missing: &[ObjectId],
    lambda: f64,
) -> Result<Query, WhyNotError> {
    let pref = engine.preference(query, missing, lambda)?;
    let stage2_base = pref.query.with_k(query.k);
    match engine.keywords(&stage2_base, missing, lambda) {
        Ok(kw) => Ok(kw.query),
        Err(WhyNotError::NotMissing(_, _)) => Ok(stage2_base),
        Err(e) => Err(e),
    }
}

/// Finalizes a chained query: exact rank, minimal k″, combined penalty.
#[allow(clippy::too_many_arguments)]
fn assemble(
    corpus: &Corpus,
    params: &ScoreParams,
    initial: &Query,
    missing: &[ObjectId],
    ctx: &PenaltyContext,
    refined: Query,
    doc_norm: usize,
    order: CombineOrder,
) -> CombinedRefinement {
    let probe = refined.with_k(initial.k);
    let rank = *ranks_of_scan(corpus, params, &probe, missing)
        .iter()
        .max()
        .expect("missing non-empty");
    let k_new = ctx.refined_k(rank);
    let delta_w = initial.weights.l2_distance(&refined.weights);
    let delta_doc = initial.doc.edit_distance(&refined.doc);
    let penalty = ctx.lambda * ctx.k_term(rank)
        + (1.0 - ctx.lambda)
            * (delta_w / initial.weights.penalty_normalizer()
                + delta_doc as f64 / doc_norm as f64)
            / 2.0;
    CombinedRefinement {
        query: probe.with_k(k_new),
        penalty,
        rank,
        initial_rank: ctx.r_m_q,
        delta_k: rank.saturating_sub(ctx.k0),
        delta_w,
        delta_doc,
        order,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use yask_geo::{Point, Space};
    use yask_index::{CorpusBuilder, RTreeParams};
    use yask_query::topk_scan;
    use yask_text::KeywordSet;
    use yask_util::Xoshiro256;

    fn ks(ids: &[u32]) -> KeywordSet {
        KeywordSet::from_raw(ids.iter().copied())
    }

    fn random_corpus(n: usize, seed: u64) -> Corpus {
        let mut rng = Xoshiro256::seed_from_u64(seed);
        let mut b = CorpusBuilder::with_capacity(n).with_space(Space::unit());
        for i in 0..n {
            let doc = KeywordSet::from_raw((0..1 + rng.below(4)).map(|_| rng.below(12) as u32));
            b.push(Point::new(rng.next_f64(), rng.next_f64()), doc, format!("o{i}"));
        }
        b.build()
    }

    fn scenario(seed: u64) -> (Corpus, ScoreParams, KcRTree, Query, Vec<ObjectId>) {
        let corpus = random_corpus(300, seed);
        let params = ScoreParams::new(corpus.space());
        let tree = KcRTree::bulk_load(corpus.clone(), RTreeParams::new(8, 3));
        let q = Query::new(Point::new(0.4, 0.4), ks(&[1, 2]), 5);
        let all = topk_scan(&corpus, &params, &q.with_k(corpus.len()));
        let missing = vec![all[q.k + 4].id];
        (corpus, params, tree, q, missing)
    }

    #[test]
    fn combined_refinement_revives_missing() {
        for seed in [1u64, 2, 3] {
            let (corpus, params, tree, q, missing) = scenario(seed);
            let r = refine_combined(&tree, &params, &q, &missing, 0.5).unwrap();
            let res = topk_scan(&corpus, &params, &r.query);
            for m in &missing {
                assert!(res.iter().any(|x| x.id == *m), "seed {seed}");
            }
            assert!((0.0..=1.0 + 1e-12).contains(&r.penalty), "seed {seed}");
            assert_eq!(r.query.k, r.rank.max(q.k));
        }
    }

    #[test]
    fn combined_is_at_most_the_k_only_penalty() {
        // Keeping both parameters and raising k costs λ·1 under the
        // combined metric too; the optimum can only improve on it.
        let (_, params, tree, q, missing) = scenario(4);
        for lambda in [0.2, 0.5, 0.8] {
            let r = refine_combined(&tree, &params, &q, &missing, lambda).unwrap();
            assert!(r.penalty <= lambda + 1e-12, "λ={lambda}: {}", r.penalty);
        }
    }

    #[test]
    fn combined_can_beat_both_single_models() {
        // At minimum, the combined penalty (with its halved modification
        // term) is no worse than the halved-equivalent of the winning
        // single model for the same modification.
        let (corpus, params, tree, q, missing) = scenario(5);
        let lambda = 0.5;
        let pref = refine_preference(&corpus, &params, &q, &missing, lambda).unwrap();
        let kw = refine_keywords_with(
            &tree,
            &params,
            &q,
            &missing,
            lambda,
            KeywordOptions::default(),
        )
        .unwrap();
        let comb = refine_combined(&tree, &params, &q, &missing, lambda).unwrap();
        // The single-model refinements embed into the combined space with
        // their modification term halved; the combined optimum explores a
        // superset of chains starting from those, so it is bounded by the
        // *translated* single penalties.
        let pref_translated = lambda * (pref.delta_k as f64 / (pref.initial_rank - q.k) as f64)
            + (1.0 - lambda) * (pref.delta_w / q.weights.penalty_normalizer()) / 2.0;
        let kw_translated = lambda * (kw.delta_k as f64 / (kw.initial_rank - q.k) as f64)
            + (1.0 - lambda) * (kw.delta_doc as f64 / kw.doc_norm as f64) / 2.0;
        assert!(
            comb.penalty <= pref_translated.min(kw_translated) + 1e-9,
            "combined {} vs translated pref {} / kw {}",
            comb.penalty,
            pref_translated,
            kw_translated
        );
    }

    #[test]
    fn order_is_reported_and_query_shape_valid() {
        let (_, params, tree, q, missing) = scenario(6);
        let r = refine_combined(&tree, &params, &q, &missing, 0.5).unwrap();
        assert!(matches!(
            r.order,
            CombineOrder::KeywordsThenWeights | CombineOrder::WeightsThenKeywords
        ));
        // Location is never modified by any refinement model.
        assert_eq!(r.query.loc, q.loc);
        // Deltas agree with the returned query.
        assert_eq!(r.delta_doc, q.doc.edit_distance(&r.query.doc));
        assert!((r.delta_w - q.weights.l2_distance(&r.query.weights)).abs() < 1e-12);
    }

    #[test]
    fn errors_propagate() {
        let (_, params, tree, q, _) = scenario(7);
        assert_eq!(
            refine_combined(&tree, &params, &q, &[], 0.5).unwrap_err(),
            WhyNotError::EmptyMissingSet
        );
        assert_eq!(
            refine_combined(&tree, &params, &q, &[ObjectId(9999)], 0.5).unwrap_err(),
            WhyNotError::ForeignObject(ObjectId(9999))
        );
    }
}
