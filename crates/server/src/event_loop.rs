//! The readiness-based connection loop (epoll via the `polling` shim).
//!
//! One loop thread owns every socket: it accepts nonblocking, reads
//! request bytes into per-connection buffers, parses complete requests
//! incrementally (same keep-alive / pipelining / smuggling-hardening
//! semantics as the blocking [`crate::http::read_request`] path), and
//! dispatches them to a fixed worker pool. Workers run the handler and
//! send serialized response bytes back over a completion channel; the
//! loop flushes them **in request order** per connection via vectored
//! writes. An idle keep-alive connection therefore costs one registered
//! fd and a few hundred buffered bytes — not a parked worker thread,
//! which is what lets ≤ pool-size workers serve thousands of idle
//! connections.
//!
//! ```text
//!             ┌────────────┐   jobs (token, seq, request)
//!   epoll ──▶ │ loop thread│ ──────────────────────────▶ workers × N
//!   events    │  accept    │ ◀────────────────────────── handler(req)
//!             │  read+parse│   done (token, seq, bytes)
//!             │  flush     │
//!             └────────────┘
//! ```
//!
//! **Connection states.** Each connection walks `reading → dispatched →
//! flushing → reading…` and exits via `draining` (close after the write
//! queue empties: request-cap reached, parse error, `connection: close`,
//! or an accept-boundary shed) or a silent close (clean client EOF, idle
//! timeout, I/O error).
//!
//! **Timeouts.** The blocking path enforced
//! [`ConnControl::idle_timeout`](crate::http::ConnControl::idle_timeout)
//! with per-socket read/write timeouts; here a hashed [`TimerWheel`]
//! holds one deadline per connection, re-armed (and re-read from the
//! [`ConnPolicy`], so overload shrinks it) every time a response batch
//! finishes flushing. Expiry closes silently, exactly like the blocking
//! read-timeout path. Time comes from an injected [`Clock`], so the
//! wheel and the idle logic are testable without real sleeps.

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::io::{self, IoSlice, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crossbeam::channel::{unbounded, Receiver, Sender};
use polling::{Interest, Poller};

use crate::http::{
    ConnPolicy, Handler, Request, Response, ServerHandle, MAX_BODY, MAX_REQUESTS_PER_CONNECTION,
};

/// Upper bound on the request head (request line + headers). The
/// blocking path reads lines unbounded; the event loop buffers, so it
/// needs an explicit cap against unterminated-header floods.
const MAX_HEAD_BYTES: usize = 64 * 1024;

/// Per-readable-event read budget, so one firehose connection cannot
/// starve the rest of the loop.
const READ_BUDGET: usize = 256 * 1024;

/// Timer wheel granularity. Idle timeouts are seconds-scale, so a
/// coarse wheel is plenty and keeps the idle loop at ~waking per tick
/// only while timers are armed.
const TICK: Duration = Duration::from_millis(20);

const LISTENER_TOKEN: u64 = 0;

// ---------------------------------------------------------------------------
// Clock — injectable time
// ---------------------------------------------------------------------------

/// The loop's time source. Production uses [`SystemClock`]; tests inject
/// a [`TestClock`] and advance it by hand, so idle-timeout behavior is
/// asserted without sleeping through real timeouts.
pub trait Clock: Send + Sync {
    /// The current instant.
    fn now(&self) -> Instant;
}

/// [`Clock`] backed by [`Instant::now`].
pub struct SystemClock;

impl Clock for SystemClock {
    fn now(&self) -> Instant {
        Instant::now()
    }
}

/// A manually advanced [`Clock`] for tests: time stands still until
/// [`TestClock::advance`] moves it.
pub struct TestClock {
    base: Instant,
    offset: parking_lot::Mutex<Duration>,
}

impl TestClock {
    /// A clock frozen at the current instant.
    pub fn new() -> Self {
        TestClock {
            base: Instant::now(),
            offset: parking_lot::Mutex::new(Duration::ZERO),
        }
    }

    /// Moves the clock forward by `d`.
    pub fn advance(&self, d: Duration) {
        *self.offset.lock() += d;
    }
}

impl Default for TestClock {
    fn default() -> Self {
        TestClock::new()
    }
}

impl Clock for TestClock {
    fn now(&self) -> Instant {
        self.base + *self.offset.lock()
    }
}

// ---------------------------------------------------------------------------
// TimerWheel — hashed wheel with lazy deletion
// ---------------------------------------------------------------------------

/// A hashed timer wheel: deadlines land in `slots[tick % N]` and expire
/// when the cursor sweeps past their tick. Cancellation is *lazy*: a
/// re-armed connection bumps its generation counter and the stale entry
/// is discarded at expiry when its generation no longer matches — O(1)
/// re-arms, no removal scans.
pub struct TimerWheel {
    slots: Vec<Vec<WheelEntry>>,
    granularity: Duration,
    start: Instant,
    /// Last tick already swept.
    cursor: u64,
    len: usize,
}

#[derive(Clone, Copy, Debug)]
struct WheelEntry {
    token: u64,
    generation: u64,
    deadline_tick: u64,
}

impl TimerWheel {
    /// A wheel of `slots` buckets at `granularity`, starting at `now`.
    pub fn new(slots: usize, granularity: Duration, now: Instant) -> Self {
        assert!(slots >= 2 && granularity > Duration::ZERO);
        TimerWheel {
            slots: (0..slots).map(|_| Vec::new()).collect(),
            granularity,
            start: now,
            cursor: 0,
            len: 0,
        }
    }

    fn tick_of(&self, at: Instant) -> u64 {
        (at.saturating_duration_since(self.start).as_nanos() / self.granularity.as_nanos().max(1))
            as u64
    }

    /// The tick at (or just after) `at` — deadlines round *up* so a
    /// timer never fires before its instant.
    fn tick_ceil(&self, at: Instant) -> u64 {
        let gran = self.granularity.as_nanos().max(1);
        let offset = at.saturating_duration_since(self.start).as_nanos();
        offset.div_ceil(gran) as u64
    }

    /// Arms a deadline for `(token, generation)`. A deadline already in
    /// the past lands on the next sweep.
    pub fn insert(&mut self, token: u64, generation: u64, deadline: Instant) {
        let tick = self.tick_ceil(deadline).max(self.cursor + 1);
        let slot = (tick % self.slots.len() as u64) as usize;
        self.slots[slot].push(WheelEntry {
            token,
            generation,
            deadline_tick: tick,
        });
        self.len += 1;
    }

    /// Sweeps every tick up to `now`, returning the expired
    /// `(token, generation)` pairs. Entries whose tick lies a full wheel
    /// rotation (or more) ahead stay parked in their slot.
    pub fn expire(&mut self, now: Instant) -> Vec<(u64, u64)> {
        let target = self.tick_of(now);
        let mut fired = Vec::new();
        while self.cursor < target {
            self.cursor += 1;
            let slot = (self.cursor % self.slots.len() as u64) as usize;
            let cursor = self.cursor;
            self.slots[slot].retain(|e| {
                if e.deadline_tick <= cursor {
                    fired.push((e.token, e.generation));
                    false
                } else {
                    true
                }
            });
        }
        self.len -= fired.len();
        fired
    }

    /// Armed entries (including stale generations not yet swept).
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no entries are armed.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// How long the owning loop may sleep without missing a sweep:
    /// one granularity while anything is armed, `None` when empty.
    pub fn next_wake(&self) -> Option<Duration> {
        if self.is_empty() {
            None
        } else {
            Some(self.granularity)
        }
    }
}

// ---------------------------------------------------------------------------
// Incremental request parsing
// ---------------------------------------------------------------------------

/// Outcome of trying to parse one request off the front of a buffer.
#[derive(Debug)]
pub(crate) enum Parsed {
    /// The buffer does not yet hold a complete request.
    NeedMore,
    /// One complete request, consuming the first `usize` buffer bytes.
    Complete(Box<Request>, usize),
    /// Protocol error: answer `(status, message)` and close. The
    /// remaining buffer bytes are untrustworthy (smuggling hardening)
    /// and must be discarded.
    Bad(u16, String),
}

/// Parses one request from `buf`, mirroring the blocking
/// [`crate::http::read_request`] semantics exactly: malformed request
/// line → 400; any `transfer-encoding` → 400 (chunked smuggling);
/// unparseable `content-length` → 400; body beyond [`MAX_BODY`] → 413;
/// lines may end `\r\n` or bare `\n`; header lines without a colon are
/// ignored. Additionally caps the head section at [`MAX_HEAD_BYTES`]
/// (the buffering loop needs a bound the blocking reader got for free
/// from its read timeout).
pub(crate) fn try_parse(buf: &[u8]) -> Parsed {
    // Find the end of the head: the first empty line.
    let mut line_start = 0usize;
    let mut lines: Vec<&[u8]> = Vec::new();
    let mut head_end = None;
    for (i, &b) in buf.iter().enumerate() {
        if b == b'\n' {
            let mut line = &buf[line_start..i];
            if line.last() == Some(&b'\r') {
                line = &line[..line.len() - 1];
            }
            if line.is_empty() && !lines.is_empty() {
                head_end = Some(i + 1);
                break;
            }
            if line.is_empty() {
                // Leading blank line before any request line: the
                // blocking reader would treat it as a (malformed)
                // request line, so mirror that.
                return Parsed::Bad(400, "malformed request line".into());
            }
            lines.push(line);
            line_start = i + 1;
        }
    }
    let Some(head_end) = head_end else {
        return if buf.len() > MAX_HEAD_BYTES {
            Parsed::Bad(400, format!("request head exceeds {MAX_HEAD_BYTES} bytes"))
        } else {
            Parsed::NeedMore
        };
    };

    let request_line = String::from_utf8_lossy(lines[0]);
    let mut parts = request_line.split_whitespace();
    let (method, target) = match (parts.next(), parts.next()) {
        (Some(m), Some(t)) => (m.to_owned(), t.to_owned()),
        _ => return Parsed::Bad(400, "malformed request line".into()),
    };
    let version = parts.next().unwrap_or("HTTP/1.0").to_owned();
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_owned(), q.to_owned()),
        None => (target, String::new()),
    };

    let mut headers = Vec::new();
    for line in &lines[1..] {
        let text = String::from_utf8_lossy(line);
        if let Some((k, v)) = text.split_once(':') {
            headers.push((k.trim().to_ascii_lowercase(), v.trim().to_owned()));
        }
    }

    // Chunked bodies are not implemented; on a persistent connection an
    // unread chunked body would be re-parsed as pipelined requests
    // (request smuggling), so reject and close.
    if headers.iter().any(|(k, _)| k == "transfer-encoding") {
        return Parsed::Bad(
            400,
            "transfer-encoding is not supported; send a content-length body".into(),
        );
    }
    let content_length = match headers.iter().find(|(k, _)| k == "content-length") {
        None => 0,
        Some((_, v)) => match v.parse::<usize>() {
            Ok(n) => n,
            Err(_) => return Parsed::Bad(400, format!("invalid content-length {v:?}")),
        },
    };
    if content_length > MAX_BODY {
        return Parsed::Bad(
            413,
            format!("body of {content_length} bytes exceeds the {MAX_BODY}-byte limit"),
        );
    }
    let total = head_end + content_length;
    if buf.len() < total {
        return Parsed::NeedMore;
    }
    Parsed::Complete(
        Box::new(Request {
            method,
            path,
            query,
            version,
            headers,
            body: buf[head_end..total].to_vec(),
        }),
        total,
    )
}

// ---------------------------------------------------------------------------
// Connection state machine
// ---------------------------------------------------------------------------

struct Conn {
    stream: TcpStream,
    /// Unparsed request bytes.
    read_buf: Vec<u8>,
    /// Serialized responses being flushed, oldest first.
    write_queue: VecDeque<Vec<u8>>,
    /// Bytes of the queue front already written.
    write_offset: usize,
    /// Next sequence number to assign to a parsed request.
    next_seq: u64,
    /// Next sequence expected on the wire — pipelined responses flush
    /// strictly in request order.
    next_flush: u64,
    /// Completed responses that arrived out of order.
    pending: BTreeMap<u64, (Vec<u8>, bool)>,
    /// Requests dispatched to workers, not yet completed.
    inflight: usize,
    /// Requests parsed on this connection (keep-alive cap).
    served: usize,
    /// Stop reading: client EOF, request cap, error, or `close` token.
    closed_read: bool,
    /// Close the socket once the write queue drains.
    close_after_flush: bool,
    /// Timer-wheel generation; stale wheel entries are skipped.
    generation: u64,
    /// Idle deadline (checked when the wheel fires).
    idle_deadline: Instant,
    /// Interest currently registered with the poller.
    interest: Interest,
}

impl Conn {
    fn desired_interest(&self) -> Interest {
        Interest {
            readable: !self.closed_read && !self.close_after_flush,
            writable: !self.write_queue.is_empty(),
        }
    }
}

/// One parsed request on its way to a worker.
struct Job {
    token: u64,
    seq: u64,
    req: Box<Request>,
    keep: bool,
}

/// One serialized response on its way back to the loop.
struct Done {
    token: u64,
    seq: u64,
    bytes: Vec<u8>,
    close: bool,
}

// ---------------------------------------------------------------------------
// The loop
// ---------------------------------------------------------------------------

pub(crate) fn spawn(
    listener: TcpListener,
    workers: usize,
    handler: Handler,
    policy: ConnPolicy,
) -> io::Result<ServerHandle> {
    spawn_with_clock(listener, workers, handler, policy, Arc::new(SystemClock))
}

pub(crate) fn spawn_with_clock(
    listener: TcpListener,
    workers: usize,
    handler: Handler,
    policy: ConnPolicy,
    clock: Arc<dyn Clock>,
) -> io::Result<ServerHandle> {
    let addr = listener.local_addr()?;
    listener.set_nonblocking(true)?;
    let poller = Arc::new(Poller::new()?);
    #[cfg(unix)]
    let listener_fd = {
        use std::os::unix::io::AsRawFd;
        listener.as_raw_fd()
    };
    #[cfg(not(unix))]
    let listener_fd: polling::RawFd = unreachable!("event loop requires epoll");
    poller.add(listener_fd, LISTENER_TOKEN, Interest::READABLE)?;

    let stop = Arc::new(AtomicBool::new(false));
    let (job_tx, job_rx) = unbounded::<Job>();
    let (done_tx, done_rx) = unbounded::<Done>();

    let worker_handles: Vec<_> = (0..workers.max(1))
        .map(|_| {
            let job_rx = job_rx.clone();
            let done_tx = done_tx.clone();
            let handler = handler.clone();
            let poller = poller.clone();
            std::thread::spawn(move || {
                while let Ok(job) = job_rx.recv() {
                    let bytes = handler(&job.req).to_bytes(job.keep);
                    let _ = done_tx.send(Done {
                        token: job.token,
                        seq: job.seq,
                        bytes,
                        close: !job.keep,
                    });
                    let _ = poller.notify();
                }
            })
        })
        .collect();
    drop(job_rx);
    drop(done_tx);

    let loop_stop = stop.clone();
    let loop_thread = std::thread::spawn(move || {
        let mut lp = EventLoop {
            listener,
            poller,
            policy,
            clock,
            job_tx: Some(job_tx),
            done_rx,
            conns: HashMap::new(),
            wheel: None,
            next_token: LISTENER_TOKEN + 1,
            events: Vec::new(),
        };
        lp.run(&loop_stop);
        // Close the job channel so workers drain and exit, then join
        // them — ServerHandle::shutdown must leave no threads behind.
        drop(lp.job_tx.take());
        drop(lp);
        for h in worker_handles {
            let _ = h.join();
        }
    });

    Ok(ServerHandle::from_parts(addr, stop, loop_thread))
}

struct EventLoop {
    listener: TcpListener,
    poller: Arc<Poller>,
    policy: ConnPolicy,
    clock: Arc<dyn Clock>,
    job_tx: Option<Sender<Job>>,
    done_rx: Receiver<Done>,
    conns: HashMap<u64, Conn>,
    /// Created lazily on the first armed timer, anchored at loop start.
    wheel: Option<TimerWheel>,
    next_token: u64,
    events: Vec<polling::Event>,
}

impl EventLoop {
    fn run(&mut self, stop: &AtomicBool) {
        self.wheel = Some(TimerWheel::new(512, TICK, self.clock.now()));
        while !stop.load(Ordering::SeqCst) {
            let timeout = self
                .wheel
                .as_ref()
                .and_then(TimerWheel::next_wake)
                .unwrap_or(Duration::from_millis(500));
            self.events.clear();
            let mut events = std::mem::take(&mut self.events);
            let _ = self.poller.wait(&mut events, Some(timeout));
            if stop.load(Ordering::SeqCst) {
                self.events = events;
                break;
            }

            for ev in &events {
                if ev.token == LISTENER_TOKEN {
                    self.accept_ready();
                } else {
                    self.conn_ready(ev.token, ev.readable, ev.writable);
                }
            }
            self.events = events;

            self.drain_completions();
            self.sweep_timers();
        }
    }

    fn accept_ready(&mut self) {
        loop {
            let (stream, _) = match self.listener.accept() {
                Ok(pair) => pair,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => return,
            };
            if stream.set_nonblocking(true).is_err() {
                continue;
            }
            let _ = stream.set_nodelay(true);
            let control = (self.policy)();
            let token = self.next_token;
            self.next_token += 1;
            let now = self.clock.now();
            let mut conn = Conn {
                stream,
                read_buf: Vec::new(),
                write_queue: VecDeque::new(),
                write_offset: 0,
                next_seq: 0,
                next_flush: 0,
                pending: BTreeMap::new(),
                inflight: 0,
                served: 0,
                closed_read: false,
                close_after_flush: false,
                generation: 0,
                idle_deadline: now + control.idle_timeout,
                interest: Interest::READABLE,
            };
            if let Some(retry) = control.shed {
                // Accept-boundary shed: canned 503 without reading a
                // byte, then close — the overload path from PR 9.
                conn.closed_read = true;
                conn.close_after_flush = true;
                conn.write_queue.push_back(
                    Response::error(503, "server overloaded; request not read")
                        .with_retry_after(retry)
                        .to_bytes(false),
                );
                conn.interest = Interest::WRITABLE;
            }
            #[cfg(unix)]
            let fd = {
                use std::os::unix::io::AsRawFd;
                conn.stream.as_raw_fd()
            };
            #[cfg(not(unix))]
            let fd: polling::RawFd = unreachable!("event loop requires epoll");
            if self.poller.add(fd, token, conn.interest).is_err() {
                continue; // conn drops, socket closes
            }
            if let Some(w) = self.wheel.as_mut() {
                w.insert(token, conn.generation, conn.idle_deadline);
            }
            self.conns.insert(token, conn);
            // A shed response usually fits the socket buffer: flush now.
            self.flush(token);
        }
    }

    fn conn_ready(&mut self, token: u64, readable: bool, writable: bool) {
        if readable && self.read_ready(token) {
            return; // connection removed
        }
        if writable {
            self.flush(token);
        }
    }

    /// Reads and parses; returns `true` when the connection was removed.
    fn read_ready(&mut self, token: u64) -> bool {
        let mut jobs: Vec<Job> = Vec::new();
        let mut dead = false;
        {
            let Some(conn) = self.conns.get_mut(&token) else {
                return true;
            };
            if conn.closed_read {
                return false;
            }
            let mut total = 0usize;
            let mut saw_eof = false;
            let mut chunk = [0u8; 16 * 1024];
            loop {
                match conn.stream.read(&mut chunk) {
                    Ok(0) => {
                        saw_eof = true;
                        break;
                    }
                    Ok(n) => {
                        conn.read_buf.extend_from_slice(&chunk[..n]);
                        total += n;
                        if total >= READ_BUDGET {
                            break; // stay fair; level-triggered epoll re-fires
                        }
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(_) => {
                        dead = true;
                        break;
                    }
                }
            }

            // Parse every complete pipelined request off the buffer.
            while !dead && !conn.closed_read {
                match try_parse(&conn.read_buf) {
                    Parsed::NeedMore => break,
                    Parsed::Complete(req, consumed) => {
                        conn.read_buf.drain(..consumed);
                        conn.served += 1;
                        let keep =
                            req.wants_keep_alive() && conn.served < MAX_REQUESTS_PER_CONNECTION;
                        let seq = conn.next_seq;
                        conn.next_seq += 1;
                        conn.inflight += 1;
                        if !keep {
                            conn.closed_read = true;
                        }
                        jobs.push(Job { token, seq, req, keep });
                    }
                    Parsed::Bad(status, msg) => {
                        // The rest of the buffer is untrustworthy: drop
                        // it, answer in sequence, close after flushing.
                        conn.read_buf.clear();
                        conn.closed_read = true;
                        let seq = conn.next_seq;
                        conn.next_seq += 1;
                        let bytes = Response::error(status, &msg).to_bytes(false);
                        conn.pending.insert(seq, (bytes, true));
                        break;
                    }
                }
            }

            if saw_eof && !dead {
                if !conn.closed_read && !conn.read_buf.is_empty() {
                    // EOF mid-request: best-effort 400, mirroring the
                    // blocking reader's UnexpectedEof answer.
                    let seq = conn.next_seq;
                    conn.next_seq += 1;
                    conn.pending.insert(
                        seq,
                        (
                            Response::error(400, "connection closed mid-request").to_bytes(false),
                            true,
                        ),
                    );
                    conn.read_buf.clear();
                }
                conn.closed_read = true;
            }
        }
        if dead {
            self.remove(token);
            return true;
        }
        if let Some(tx) = &self.job_tx {
            for job in jobs {
                let _ = tx.send(job);
            }
        }
        self.pump(token)
    }

    /// Moves in-order completed responses into the write queue and
    /// flushes. Returns `true` when the connection was removed.
    fn pump(&mut self, token: u64) -> bool {
        let Some(conn) = self.conns.get_mut(&token) else {
            return true;
        };
        while let Some((bytes, close)) = conn.pending.remove(&conn.next_flush) {
            conn.next_flush += 1;
            conn.write_queue.push_back(bytes);
            if close {
                conn.close_after_flush = true;
                conn.closed_read = true;
                conn.pending.clear();
                break;
            }
        }
        self.flush(token)
    }

    /// Vectored-writes the queue. Returns `true` when the connection was
    /// removed (fully drained and closing, peer gone, or write error).
    fn flush(&mut self, token: u64) -> bool {
        let mut dead = false;
        let mut rearm = false;
        {
            let Some(conn) = self.conns.get_mut(&token) else {
                return true;
            };
            'write: while !conn.write_queue.is_empty() {
                let mut slices: Vec<IoSlice<'_>> =
                    Vec::with_capacity(conn.write_queue.len().min(64));
                for (i, buf) in conn.write_queue.iter().take(64).enumerate() {
                    let start = if i == 0 { conn.write_offset } else { 0 };
                    slices.push(IoSlice::new(&buf[start..]));
                }
                match conn.stream.write_vectored(&slices) {
                    Ok(0) => {
                        dead = true;
                        break 'write;
                    }
                    Ok(mut n) => {
                        while n > 0 {
                            let front_left = conn.write_queue[0].len() - conn.write_offset;
                            if n >= front_left {
                                n -= front_left;
                                conn.write_queue.pop_front();
                                conn.write_offset = 0;
                            } else {
                                conn.write_offset += n;
                                n = 0;
                            }
                        }
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break 'write,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(_) => {
                        dead = true;
                        break 'write;
                    }
                }
            }

            if !dead {
                let drained = conn.write_queue.is_empty();
                let quiesced = conn.inflight == 0 && conn.pending.is_empty();
                if drained && conn.close_after_flush {
                    dead = true;
                } else if drained && conn.closed_read && quiesced {
                    // Clean client EOF with nothing left to answer.
                    dead = true;
                } else {
                    // A response batch finishing returns the connection
                    // to idle: re-read the policy so an overloaded
                    // server shortens the keep-alive hold.
                    rearm = drained && quiesced && conn.served > 0;
                    let desired = conn.desired_interest();
                    if desired != conn.interest {
                        conn.interest = desired;
                        #[cfg(unix)]
                        {
                            use std::os::unix::io::AsRawFd;
                            let _ = self.poller.modify(conn.stream.as_raw_fd(), token, desired);
                        }
                    }
                }
            }
        }
        if dead {
            self.remove(token);
            return true;
        }
        if rearm {
            let control = (self.policy)();
            let now = self.clock.now();
            if let Some(conn) = self.conns.get_mut(&token) {
                // Fresh generation lazily cancels the old wheel entry.
                conn.generation += 1;
                conn.idle_deadline = now + control.idle_timeout;
                let (generation, deadline) = (conn.generation, conn.idle_deadline);
                if let Some(w) = self.wheel.as_mut() {
                    w.insert(token, generation, deadline);
                }
            }
        }
        false
    }

    fn drain_completions(&mut self) {
        while let Some(done) = self.done_rx.try_recv() {
            let Some(conn) = self.conns.get_mut(&done.token) else {
                continue; // connection died while the handler ran
            };
            conn.inflight -= 1;
            conn.pending.insert(done.seq, (done.bytes, done.close));
            self.pump(done.token);
        }
    }

    fn sweep_timers(&mut self) {
        let now = self.clock.now();
        let Some(wheel) = self.wheel.as_mut() else {
            return;
        };
        let fired = wheel.expire(now);
        for (token, generation) in fired {
            let Some(conn) = self.conns.get_mut(&token) else {
                continue;
            };
            if conn.generation != generation {
                continue; // lazily cancelled: the conn was re-armed
            }
            if conn.inflight > 0 || !conn.pending.is_empty() {
                // The handler is still working — that is server time,
                // not client idle time. Push the deadline out.
                conn.generation += 1;
                conn.idle_deadline = now + (self.policy)().idle_timeout;
                let (generation, deadline) = (conn.generation, conn.idle_deadline);
                if let Some(w) = self.wheel.as_mut() {
                    w.insert(token, generation, deadline);
                }
                continue;
            }
            if now >= conn.idle_deadline {
                // Idle (or write-stalled) past the policy deadline:
                // close silently, exactly like the blocking read
                // timeout — a 400 here could be mistaken for the
                // response to a request racing the timeout.
                self.remove(token);
            }
        }
    }

    fn remove(&mut self, token: u64) {
        if let Some(conn) = self.conns.remove(&token) {
            #[cfg(unix)]
            {
                use std::os::unix::io::AsRawFd;
                let _ = self.poller.delete(conn.stream.as_raw_fd());
            }
            // conn.stream drops here, closing the socket.
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // -- parser ------------------------------------------------------------

    fn complete(buf: &[u8]) -> (Request, usize) {
        match try_parse(buf) {
            Parsed::Complete(req, n) => (*req, n),
            other => panic!("expected Complete, got {other:?}"),
        }
    }

    #[test]
    fn parses_a_get_without_body() {
        let (req, n) = complete(b"GET /health?x=1 HTTP/1.1\r\nhost: t\r\n\r\n");
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/health");
        assert_eq!(req.query, "x=1");
        assert_eq!(req.version, "HTTP/1.1");
        assert_eq!(req.header("host"), Some("t"));
        assert!(req.body.is_empty());
        assert_eq!(n, b"GET /health?x=1 HTTP/1.1\r\nhost: t\r\n\r\n".len());
    }

    #[test]
    fn parses_post_with_body_and_leftover_pipelined_bytes() {
        let raw = b"POST /q HTTP/1.1\r\ncontent-length: 4\r\n\r\nbodyGET / HTTP/1.1\r\n\r\n";
        let (req, n) = complete(raw);
        assert_eq!(req.body, b"body");
        // The second pipelined request parses from the leftover.
        let (req2, _) = complete(&raw[n..]);
        assert_eq!(req2.method, "GET");
    }

    #[test]
    fn incomplete_head_and_incomplete_body_need_more() {
        assert!(matches!(try_parse(b"GET / HTTP/1.1\r\nhos"), Parsed::NeedMore));
        assert!(matches!(
            try_parse(b"POST / HTTP/1.1\r\ncontent-length: 10\r\n\r\nabc"),
            Parsed::NeedMore
        ));
        assert!(matches!(try_parse(b""), Parsed::NeedMore));
    }

    #[test]
    fn bare_newlines_parse_like_the_blocking_reader() {
        let (req, _) = complete(b"GET /x HTTP/1.1\nhost: t\n\n");
        assert_eq!(req.path, "/x");
        assert_eq!(req.header("host"), Some("t"));
    }

    #[test]
    fn malformed_request_line_is_400() {
        assert!(matches!(try_parse(b"GARBAGE\r\n\r\n"), Parsed::Bad(400, _)));
    }

    #[test]
    fn transfer_encoding_is_rejected() {
        let raw = b"POST / HTTP/1.1\r\ntransfer-encoding: chunked\r\n\r\n";
        match try_parse(raw) {
            Parsed::Bad(400, msg) => assert!(msg.contains("transfer-encoding")),
            other => panic!("expected Bad(400), got {other:?}"),
        }
    }

    #[test]
    fn unparseable_content_length_is_400() {
        let raw = b"POST / HTTP/1.1\r\ncontent-length: banana\r\n\r\n";
        assert!(matches!(try_parse(raw), Parsed::Bad(400, _)));
    }

    #[test]
    fn oversized_body_is_413_before_the_body_arrives() {
        let raw = format!("POST / HTTP/1.1\r\ncontent-length: {}\r\n\r\n", MAX_BODY + 1);
        assert!(matches!(try_parse(raw.as_bytes()), Parsed::Bad(413, _)));
    }

    #[test]
    fn missing_version_defaults_to_http_10() {
        let (req, _) = complete(b"GET /\r\n\r\n");
        assert_eq!(req.version, "HTTP/1.0");
        assert!(!req.wants_keep_alive());
    }

    #[test]
    fn unterminated_head_is_bounded() {
        let mut raw = b"GET / HTTP/1.1\r\n".to_vec();
        raw.extend(std::iter::repeat_n(b'a', MAX_HEAD_BYTES + 16));
        assert!(matches!(try_parse(&raw), Parsed::Bad(400, _)));
    }

    // -- clock + wheel (the injected-clock idle-timeout harness) -----------

    #[test]
    fn test_clock_advances_only_by_hand() {
        let clock = TestClock::new();
        let t0 = clock.now();
        assert_eq!(clock.now(), t0);
        clock.advance(Duration::from_secs(5));
        assert_eq!(clock.now(), t0 + Duration::from_secs(5));
    }

    #[test]
    fn wheel_fires_exactly_once_at_the_deadline() {
        let clock = TestClock::new();
        let mut wheel = TimerWheel::new(16, Duration::from_millis(100), clock.now());
        wheel.insert(7, 0, clock.now() + Duration::from_millis(350));
        clock.advance(Duration::from_millis(300));
        assert!(wheel.expire(clock.now()).is_empty(), "not due yet");
        clock.advance(Duration::from_millis(100));
        assert_eq!(wheel.expire(clock.now()), vec![(7, 0)]);
        assert!(wheel.is_empty());
        clock.advance(Duration::from_secs(10));
        assert!(wheel.expire(clock.now()).is_empty(), "fires once");
    }

    #[test]
    fn wheel_survives_full_rotations() {
        // A deadline more than one rotation ahead must not fire early
        // when the cursor sweeps its slot the first time around.
        let clock = TestClock::new();
        let mut wheel = TimerWheel::new(4, Duration::from_millis(10), clock.now());
        wheel.insert(1, 0, clock.now() + Duration::from_millis(95));
        clock.advance(Duration::from_millis(50));
        assert!(wheel.expire(clock.now()).is_empty());
        clock.advance(Duration::from_millis(50));
        assert_eq!(wheel.expire(clock.now()), vec![(1, 0)]);
    }

    #[test]
    fn stale_generations_surface_for_lazy_cancellation() {
        // Re-arming is modelled by bumping the generation: the wheel
        // still returns the stale entry, and the owner skips it.
        let clock = TestClock::new();
        let mut wheel = TimerWheel::new(8, Duration::from_millis(10), clock.now());
        wheel.insert(3, 0, clock.now() + Duration::from_millis(20));
        wheel.insert(3, 1, clock.now() + Duration::from_millis(60));
        clock.advance(Duration::from_millis(30));
        assert_eq!(wheel.expire(clock.now()), vec![(3, 0)]);
        clock.advance(Duration::from_millis(40));
        assert_eq!(wheel.expire(clock.now()), vec![(3, 1)]);
    }

    #[test]
    fn past_deadlines_fire_on_the_next_sweep() {
        let clock = TestClock::new();
        let mut wheel = TimerWheel::new(8, Duration::from_millis(10), clock.now());
        clock.advance(Duration::from_millis(500));
        assert!(wheel.expire(clock.now()).is_empty());
        wheel.insert(9, 2, clock.now() - Duration::from_millis(100));
        clock.advance(Duration::from_millis(10));
        assert_eq!(wheel.expire(clock.now()), vec![(9, 2)]);
    }

    #[test]
    fn wheel_reports_wakeup_need() {
        let clock = TestClock::new();
        let mut wheel = TimerWheel::new(8, Duration::from_millis(10), clock.now());
        assert_eq!(wheel.next_wake(), None);
        wheel.insert(1, 0, clock.now() + Duration::from_millis(25));
        assert_eq!(wheel.next_wake(), Some(Duration::from_millis(10)));
        clock.advance(Duration::from_millis(30));
        wheel.expire(clock.now());
        assert_eq!(wheel.next_wake(), None);
    }

    // -- idle timeout through the event loop, injected clock ---------------

    /// The satellite fix: the keep-alive idle-timeout test advances a
    /// [`TestClock`] instead of sleeping through a real timeout. The
    /// only real waiting is the loop's (20 ms) tick cadence.
    #[test]
    #[cfg(target_os = "linux")]
    fn idle_keep_alive_connection_is_closed_by_the_wheel_without_real_sleeps() {
        use crate::http::ConnControl;
        use std::io::Read;

        let clock = Arc::new(TestClock::new());
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let handler: Handler = Arc::new(|_req| Response::text("text/plain", "ok"));
        let policy: ConnPolicy = Arc::new(|| ConnControl {
            idle_timeout: Duration::from_secs(10),
            shed: None,
        });
        let mut server =
            spawn_with_clock(listener, 2, handler, policy, clock.clone()).unwrap();

        let mut stream = TcpStream::connect(server.addr()).unwrap();
        stream.write_all(b"GET /x HTTP/1.1\r\n\r\n").unwrap();
        let mut buf = [0u8; 256];
        let n = stream.read(&mut buf).unwrap();
        assert!(std::str::from_utf8(&buf[..n]).unwrap().starts_with("HTTP/1.1 200"));

        // Ten virtual seconds pass in one step; no real 10 s sleep.
        clock.advance(Duration::from_secs(11));

        // The wheel sweeps on the next tick and closes the idle
        // connection silently (EOF, no status line).
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        let n = stream.read(&mut buf).unwrap();
        assert_eq!(n, 0, "idle connection must be closed silently");
        server.shutdown();
    }

    #[test]
    #[cfg(target_os = "linux")]
    fn active_connection_survives_virtual_idle_expiry_while_handler_runs() {
        use crate::http::ConnControl;
        use std::io::Read;

        let clock = Arc::new(TestClock::new());
        let gate = Arc::new(std::sync::Barrier::new(2));
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let handler_gate = gate.clone();
        let handler: Handler = Arc::new(move |_req| {
            handler_gate.wait(); // park until the test advanced the clock
            Response::text("text/plain", "late")
        });
        let policy: ConnPolicy = Arc::new(|| ConnControl {
            idle_timeout: Duration::from_secs(10),
            shed: None,
        });
        let mut server =
            spawn_with_clock(listener, 2, handler, policy, clock.clone()).unwrap();

        let mut stream = TcpStream::connect(server.addr()).unwrap();
        stream.write_all(b"GET /slow HTTP/1.1\r\n\r\n").unwrap();
        // Give the loop a beat to dispatch, then expire the deadline
        // while the handler is mid-flight: the conn must NOT be closed,
        // because in-flight handler time is server time.
        std::thread::sleep(Duration::from_millis(100));
        clock.advance(Duration::from_secs(60));
        std::thread::sleep(Duration::from_millis(100));
        gate.wait();
        let mut buf = Vec::new();
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        let mut chunk = [0u8; 256];
        let n = stream.read(&mut chunk).unwrap();
        buf.extend_from_slice(&chunk[..n]);
        let text = String::from_utf8_lossy(&buf);
        assert!(text.starts_with("HTTP/1.1 200"), "got: {text}");
        assert!(text.contains("late"));
        server.shutdown();
    }

    /// The connection-scaling soak: ≥ 256 sockets held open and
    /// keep-alive concurrently, each pipelining bursts of requests, all
    /// answered in order through a 4-worker pool. Handler concurrency
    /// (the dispatch queue's drain rate) must stay bounded by the worker
    /// count — idle and parked connections cost an fd, not a thread —
    /// and once the policy flips to critical, the accept boundary sheds
    /// new connections with a canned 503 before reading a byte.
    #[test]
    #[cfg(target_os = "linux")]
    fn soak_256_pipelined_connections_bounded_workers_and_shedding() {
        use crate::http::ConnControl;
        use std::io::Read;
        use std::sync::atomic::AtomicUsize;

        const CONNS: usize = 256;
        const DRIVERS: usize = 8;
        const PER_DRIVER: usize = CONNS / DRIVERS;
        const PIPELINE: usize = 4;
        const ROUNDS: usize = 2;
        const WORKERS: usize = 4;

        let inflight = Arc::new(AtomicUsize::new(0));
        let high_water = Arc::new(AtomicUsize::new(0));
        let served = Arc::new(AtomicUsize::new(0));
        let (hi, inf, srv) = (high_water.clone(), inflight.clone(), served.clone());
        let handler: Handler = Arc::new(move |req| {
            let cur = inf.fetch_add(1, Ordering::SeqCst) + 1;
            hi.fetch_max(cur, Ordering::SeqCst);
            let body = format!("ok:{}", req.path);
            srv.fetch_add(1, Ordering::SeqCst);
            inf.fetch_sub(1, Ordering::SeqCst);
            Response::text("text/plain", body)
        });
        let critical = Arc::new(AtomicBool::new(false));
        let crit = critical.clone();
        let policy: ConnPolicy = Arc::new(move || ConnControl {
            idle_timeout: Duration::from_secs(30),
            shed: crit.load(Ordering::SeqCst).then_some(7),
        });
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let mut server = spawn(listener, WORKERS, handler, policy).unwrap();
        let addr = server.addr();

        // Each driver thread holds PER_DRIVER sockets open for the whole
        // soak, so all 256 connections coexist; pipelined bursts go out
        // per round and the in-order responses are read back per socket.
        let drivers: Vec<_> = (0..DRIVERS)
            .map(|d| {
                std::thread::spawn(move || {
                    let mut socks: Vec<TcpStream> = (0..PER_DRIVER)
                        .map(|_| {
                            let s = TcpStream::connect(addr).unwrap();
                            s.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
                            s
                        })
                        .collect();
                    for round in 0..ROUNDS {
                        for (c, s) in socks.iter_mut().enumerate() {
                            let mut burst = Vec::new();
                            for p in 0..PIPELINE {
                                burst.extend_from_slice(
                                    format!("GET /{d}-{c}-{round}-{p} HTTP/1.1\r\n\r\n")
                                        .as_bytes(),
                                );
                            }
                            s.write_all(&burst).unwrap();
                        }
                        for (c, s) in socks.iter_mut().enumerate() {
                            let mut got = String::new();
                            let mut chunk = [0u8; 4096];
                            while got.matches("HTTP/1.1 200").count() < PIPELINE {
                                let n = s.read(&mut chunk).unwrap();
                                assert!(n > 0, "server closed a kept-alive soak conn");
                                got.push_str(&String::from_utf8_lossy(&chunk[..n]));
                            }
                            // In-order flush: responses carry the request
                            // path back, in pipeline order.
                            for p in 0..PIPELINE {
                                let a = got.find(&format!("ok:/{d}-{c}-{round}-{p}"));
                                assert!(a.is_some(), "missing response {p} on conn {d}-{c}");
                            }
                        }
                    }
                    socks // keep them open until the test joins
                })
            })
            .collect();
        let held: Vec<Vec<TcpStream>> = drivers.into_iter().map(|t| t.join().unwrap()).collect();
        assert_eq!(served.load(Ordering::SeqCst), CONNS * PIPELINE * ROUNDS);
        let high = high_water.load(Ordering::SeqCst);
        assert!(
            high <= WORKERS,
            "handler concurrency {high} exceeded the {WORKERS}-worker pool"
        );

        // Critical: the accept boundary sheds new connections with a
        // canned 503 + retry-after, written without reading a byte.
        critical.store(true, Ordering::SeqCst);
        let mut shed_conn = TcpStream::connect(addr).unwrap();
        shed_conn.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        let mut buf = Vec::new();
        let mut chunk = [0u8; 1024];
        loop {
            match shed_conn.read(&mut chunk) {
                Ok(0) => break,
                Ok(n) => buf.extend_from_slice(&chunk[..n]),
                Err(e) => panic!("shed read failed: {e}"),
            }
        }
        let text = String::from_utf8_lossy(&buf);
        assert!(text.starts_with("HTTP/1.1 503"), "got: {text}");
        assert!(text.to_lowercase().contains("retry-after: 7"), "got: {text}");
        drop(held);
        server.shutdown();
    }
}
