//! The time-window write coalescer: the server's write endpoints all
//! funnel through one [`WriteCoalescer`], which gathers the batches of
//! concurrent requests into a single [`Ingestor::apply_group`] call — so
//! small writes share one two-phase fsync pair *by default*, not only
//! when a client hand-assembles a bulk request.
//!
//! **Leader election.** A submitting thread enqueues its batch, then
//! takes the leader lock. If its reply already arrived while it waited,
//! a concurrent leader served it — done. Otherwise it *is* the leader:
//! it sleeps the coalescing window (giving stragglers time to enqueue),
//! drains the queue, and commits everything in one group. Replies are
//! delivered before the lock is released, so every follower wakes to a
//! finished verdict; a thread that finds the queue already drained
//! becomes the next leader. No thread can starve: each submitter either
//! receives a reply or leads its own commit.
//!
//! **Per-request error isolation.** Group admission in the ingest layer
//! is all-or-nothing — one malformed batch would reject the whole group,
//! poisoning innocent concurrent requests. When a group is rejected at
//! validation (nothing logged, nothing published), the leader falls back
//! to applying each batch individually, so every request gets exactly
//! the verdict it would have gotten alone. I/O failures mid-group keep
//! the ingest layer's prefix semantics: already-durable batches return
//! their outcomes, the suffix callers get the error.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc;
use std::time::Duration;

use parking_lot::Mutex;
use yask_exec::Executor;
use yask_ingest::{ApplyOutcome, GroupCommitConfig, IngestError, Ingestor, Update};

/// Knobs of the server-side write coalescer.
#[derive(Clone, Copy, Debug)]
pub struct CoalesceConfig {
    /// How long a leader waits for concurrent writes to join its commit
    /// group. Zero disables the wait: coalescing then happens only
    /// "naturally" (requests that queued while a previous commit was in
    /// flight). The window is latency *added to every write*, so keep it
    /// at fsync scale.
    pub window: Duration,
    /// Bounds on one commit group (forwarded to the ingest layer).
    pub group: GroupCommitConfig,
}

impl Default for CoalesceConfig {
    fn default() -> Self {
        CoalesceConfig {
            window: Duration::from_millis(1),
            group: GroupCommitConfig::default(),
        }
    }
}

/// How a coalesced write failed.
#[derive(Debug)]
pub enum WriteError {
    /// The batch itself was rejected at validation — the caller's fault,
    /// with the precise ingest error (maps to 4xx).
    Rejected(IngestError),
    /// The commit group hit an I/O failure before this batch became
    /// durable (maps to 500; the batch may be retried).
    Failed(String),
}

impl std::fmt::Display for WriteError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WriteError::Rejected(e) => write!(f, "{e}"),
            WriteError::Failed(why) => write!(f, "write group failed: {why}"),
        }
    }
}

type Reply = Result<ApplyOutcome, WriteError>;

struct Pending {
    batch: Vec<Update>,
    reply: mpsc::Sender<Reply>,
}

/// The shared coalescer (one per [`crate::YaskService`]).
pub struct WriteCoalescer {
    queue: Mutex<Vec<Pending>>,
    /// Held by the thread currently committing a group; serializes
    /// commits and doubles as the "was I served?" barrier for followers.
    leader: Mutex<()>,
    config: CoalesceConfig,
    groups: AtomicU64,
    batches: AtomicU64,
}

impl WriteCoalescer {
    /// Creates a coalescer with the given knobs.
    pub fn new(config: CoalesceConfig) -> Self {
        WriteCoalescer {
            queue: Mutex::new(Vec::new()),
            leader: Mutex::new(()),
            config,
            groups: AtomicU64::new(0),
            batches: AtomicU64::new(0),
        }
    }

    /// Commit groups led so far (each = one `apply_group` call).
    pub fn groups(&self) -> u64 {
        self.groups.load(Ordering::Relaxed)
    }

    /// Batches submitted so far; `batches / groups` is the coalescing
    /// factor.
    pub fn batches(&self) -> u64 {
        self.batches.load(Ordering::Relaxed)
    }

    /// Submits one batch, blocking until it is durably applied (or
    /// rejected). Concurrent submitters within the window share one
    /// commit group — and one fsync pair.
    pub fn submit(
        &self,
        ingest: &Ingestor,
        exec: &Executor,
        batch: Vec<Update>,
    ) -> Result<ApplyOutcome, WriteError> {
        let (tx, rx) = mpsc::channel();
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.queue.lock().push(Pending { batch, reply: tx });

        let _leader = self.leader.lock();
        if let Ok(reply) = rx.try_recv() {
            // A concurrent leader coalesced us into its group.
            return reply;
        }

        // We lead this group: wait for stragglers, then drain and commit.
        if !self.config.window.is_zero() {
            std::thread::sleep(self.config.window);
        }
        let pending: Vec<Pending> = std::mem::take(&mut *self.queue.lock());
        debug_assert!(!pending.is_empty(), "leader's own batch must be queued");

        let batches: Vec<Vec<Update>> = pending.iter().map(|p| p.batch.clone()).collect();
        match ingest.apply_group(exec, &batches, self.config.group) {
            Ok(outcomes) => {
                self.groups.fetch_add(1, Ordering::Relaxed);
                for (p, outcome) in pending.iter().zip(outcomes) {
                    let _ = p.reply.send(Ok(outcome));
                }
            }
            Err(e) if e.applied.is_empty() && is_rejection(&e.error) => {
                // Validation rejected the group before anything was
                // logged. Apply per batch so a malformed request cannot
                // poison its groupmates — each apply is then its own
                // commit group, and the counter says so (the reported
                // batches/groups ratio must not claim amortization the
                // fallback path did not deliver).
                self.groups.fetch_add(pending.len() as u64, Ordering::Relaxed);
                for p in &pending {
                    let verdict = ingest
                        .apply(exec, &p.batch)
                        .map_err(WriteError::Rejected);
                    let _ = p.reply.send(verdict);
                }
            }
            Err(e) => {
                // I/O failure mid-group: the durable prefix gets its
                // outcomes, the suffix gets the error.
                self.groups.fetch_add(1, Ordering::Relaxed);
                let why = e.error.to_string();
                let mut applied = e.applied.into_iter();
                for p in &pending {
                    let verdict = match applied.next() {
                        Some(outcome) => Ok(outcome),
                        None => Err(WriteError::Failed(why.clone())),
                    };
                    let _ = p.reply.send(verdict);
                }
            }
        }
        rx.recv().expect("leader serves its own batch")
    }
}

/// True for admission failures (the batch's own fault, nothing durable)
/// as opposed to I/O failures of the log.
fn is_rejection(e: &IngestError) -> bool {
    matches!(
        e,
        IngestError::EmptyBatch
            | IngestError::UnknownObject(_)
            | IngestError::DeadObject(_)
            | IngestError::DuplicateDelete(_)
            | IngestError::NonFiniteLocation
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use yask_exec::ExecConfig;
    use yask_geo::{Point, Space};
    use yask_index::{CorpusBuilder, ObjectId};
    use yask_ingest::NewObject;
    use yask_text::KeywordSet;

    fn corpus(n: usize) -> yask_index::Corpus {
        let mut b = CorpusBuilder::with_capacity(n).with_space(Space::unit());
        for i in 0..n {
            b.push(
                Point::new((i % 10) as f64 / 10.0, (i % 7) as f64 / 7.0),
                KeywordSet::from_raw([(i % 5) as u32]),
                format!("o{i}"),
            );
        }
        b.build()
    }

    fn insert(name: &str) -> Update {
        Update::Insert(NewObject::new(
            Point::new(0.4, 0.6),
            KeywordSet::from_raw([1u32]),
            name,
        ))
    }

    fn harness(window: Duration) -> (Arc<Ingestor>, Arc<Executor>, Arc<WriteCoalescer>) {
        let c = corpus(60);
        let ingest = Arc::new(Ingestor::new(c.clone()));
        let exec = Arc::new(Executor::new(c, ExecConfig::single_tree(Default::default())));
        let coalescer = Arc::new(WriteCoalescer::new(CoalesceConfig {
            window,
            group: GroupCommitConfig::default(),
        }));
        (ingest, exec, coalescer)
    }

    #[test]
    fn single_writes_apply_and_count() {
        let (ingest, exec, co) = harness(Duration::ZERO);
        let out = co.submit(&ingest, &exec, vec![insert("a")]).unwrap();
        assert_eq!(out.epoch, 1);
        assert_eq!(out.inserted, vec![ObjectId(60)]);
        let out = co.submit(&ingest, &exec, vec![Update::Delete(ObjectId(3))]).unwrap();
        assert_eq!(out.epoch, 2);
        assert_eq!((co.groups(), co.batches()), (2, 2));
    }

    #[test]
    fn concurrent_writes_share_a_commit_group() {
        // A generous window so all threads join the first leader's group.
        let (ingest, exec, co) = harness(Duration::from_millis(120));
        let mut handles = Vec::new();
        for i in 0..6 {
            let (ingest, exec, co) = (Arc::clone(&ingest), Arc::clone(&exec), Arc::clone(&co));
            handles.push(std::thread::spawn(move || {
                co.submit(&ingest, &exec, vec![insert(&format!("c{i}"))]).unwrap()
            }));
        }
        let outcomes: Vec<ApplyOutcome> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        // Every batch applied, one epoch each, all ids distinct.
        let mut epochs: Vec<u64> = outcomes.iter().map(|o| o.epoch).collect();
        epochs.sort_unstable();
        assert_eq!(epochs, vec![1, 2, 3, 4, 5, 6]);
        let mut ids: Vec<u32> = outcomes.iter().map(|o| o.inserted[0].0).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 6, "duplicate ids from coalesced inserts");
        assert_eq!(ingest.epoch(), 6);
        // Coalescing actually happened: fewer groups than batches.
        assert_eq!(co.batches(), 6);
        assert!(
            co.groups() < 6,
            "6 sequentially-fsynced groups despite a 120 ms window"
        );
    }

    #[test]
    fn bad_batch_does_not_poison_its_groupmates() {
        let (ingest, exec, co) = harness(Duration::from_millis(120));
        let good = {
            let (ingest, exec, co) = (Arc::clone(&ingest), Arc::clone(&exec), Arc::clone(&co));
            std::thread::spawn(move || co.submit(&ingest, &exec, vec![insert("good")]))
        };
        // Give the first thread time to become leader and start waiting.
        std::thread::sleep(Duration::from_millis(30));
        let bad = {
            let (ingest, exec, co) = (Arc::clone(&ingest), Arc::clone(&exec), Arc::clone(&co));
            std::thread::spawn(move || {
                co.submit(&ingest, &exec, vec![Update::Delete(ObjectId(9999))])
            })
        };
        let good = good.join().unwrap().expect("valid batch must succeed");
        assert_eq!(good.inserted, vec![ObjectId(60)]);
        match bad.join().unwrap() {
            Err(WriteError::Rejected(IngestError::UnknownObject(id))) => {
                assert_eq!(id, ObjectId(9999))
            }
            other => panic!("expected per-batch rejection, got {other:?}"),
        }
        assert_eq!(ingest.epoch(), 1, "only the valid batch became an epoch");
    }
}
