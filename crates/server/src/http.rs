//! Minimal HTTP/1.1 server over `std::net`.
//!
//! Enough of the protocol for the demo service and its tests: request
//! line + headers + `Content-Length` bodies in, status + headers + body
//! out, `Connection: close` semantics (one request per connection — the
//! demo's POST-per-action traffic pattern). Connections are dispatched to
//! a fixed worker pool over a crossbeam channel.

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Cap on request body size (1 MiB) — the demo's payloads are tiny, so
/// anything bigger is a client bug or abuse.
const MAX_BODY: usize = 1 << 20;

/// A parsed HTTP request.
#[derive(Clone, Debug)]
pub struct Request {
    /// `GET`, `POST`, …
    pub method: String,
    /// The path portion of the request target (no query string parsing —
    /// the API is JSON-body based).
    pub path: String,
    /// Header name/value pairs, names lower-cased.
    pub headers: Vec<(String, String)>,
    /// The request body.
    pub body: Vec<u8>,
}

impl Request {
    /// Case-insensitive header lookup.
    pub fn header(&self, name: &str) -> Option<&str> {
        let lower = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(k, _)| *k == lower)
            .map(|(_, v)| v.as_str())
    }

    /// Body as UTF-8.
    pub fn body_str(&self) -> Option<&str> {
        std::str::from_utf8(&self.body).ok()
    }
}

/// An HTTP response under construction.
#[derive(Clone, Debug)]
pub struct Response {
    /// Status code.
    pub status: u16,
    /// Content type header value.
    pub content_type: &'static str,
    /// The body.
    pub body: Vec<u8>,
}

impl Response {
    /// 200 with a JSON body.
    pub fn json(body: impl ToString) -> Response {
        Response {
            status: 200,
            content_type: "application/json",
            body: body.to_string().into_bytes(),
        }
    }

    /// An error status with a JSON `{"error": …}` body.
    pub fn error(status: u16, message: &str) -> Response {
        Response {
            status,
            content_type: "application/json",
            body: crate::json::Json::obj([("error", crate::json::Json::str(message))])
                .to_string()
                .into_bytes(),
        }
    }

    /// 200 with an HTML body (the demo landing page).
    pub fn html(body: impl Into<Vec<u8>>) -> Response {
        Response {
            status: 200,
            content_type: "text/html; charset=utf-8",
            body: body.into(),
        }
    }

    fn status_text(&self) -> &'static str {
        match self.status {
            200 => "OK",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            410 => "Gone",
            413 => "Payload Too Large",
            500 => "Internal Server Error",
            _ => "Unknown",
        }
    }

    fn write_to(&self, stream: &mut TcpStream) -> io::Result<()> {
        let head = format!(
            "HTTP/1.1 {} {}\r\ncontent-type: {}\r\ncontent-length: {}\r\nconnection: close\r\n\r\n",
            self.status,
            self.status_text(),
            self.content_type,
            self.body.len()
        );
        stream.write_all(head.as_bytes())?;
        stream.write_all(&self.body)?;
        stream.flush()
    }
}

/// Reads one request from a connection. `Ok(None)` on a cleanly closed
/// socket before any bytes.
pub fn read_request(stream: &mut TcpStream) -> io::Result<Option<Request>> {
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    if reader.read_line(&mut line)? == 0 {
        return Ok(None);
    }
    let mut parts = line.split_whitespace();
    let (method, target) = match (parts.next(), parts.next()) {
        (Some(m), Some(t)) => (m.to_owned(), t.to_owned()),
        _ => {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "malformed request line",
            ))
        }
    };
    let path = target.split('?').next().unwrap_or("/").to_owned();

    let mut headers = Vec::new();
    loop {
        let mut h = String::new();
        if reader.read_line(&mut h)? == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "connection closed mid-headers",
            ));
        }
        let h = h.trim_end_matches(['\r', '\n']);
        if h.is_empty() {
            break;
        }
        if let Some((k, v)) = h.split_once(':') {
            headers.push((k.trim().to_ascii_lowercase(), v.trim().to_owned()));
        }
    }

    let content_length = headers
        .iter()
        .find(|(k, _)| k == "content-length")
        .and_then(|(_, v)| v.parse::<usize>().ok())
        .unwrap_or(0);
    if content_length > MAX_BODY {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "body too large",
        ));
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;
    Ok(Some(Request {
        method,
        path,
        headers,
        body,
    }))
}

/// The request handler signature.
pub type Handler = Arc<dyn Fn(&Request) -> Response + Send + Sync>;

/// A running server with its worker pool.
pub struct HttpServer;

/// Handle to a spawned server: address for clients, shutdown for tests.
pub struct ServerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting and joins the accept loop. Idempotent.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Unblock accept() with a no-op connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl HttpServer {
    /// Binds `127.0.0.1:port` (port 0 = ephemeral, for tests) and serves
    /// `handler` on `workers` threads. Returns immediately.
    pub fn spawn(port: u16, workers: usize, handler: Handler) -> io::Result<ServerHandle> {
        assert!(workers >= 1);
        let listener = TcpListener::bind(("127.0.0.1", port))?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));

        let (tx, rx) = crossbeam::channel::unbounded::<TcpStream>();
        for _ in 0..workers {
            let rx = rx.clone();
            let handler = handler.clone();
            std::thread::spawn(move || {
                while let Ok(mut stream) = rx.recv() {
                    // A stalled or malicious client must not pin a worker:
                    // bound both directions of the conversation.
                    let _ = stream.set_read_timeout(Some(std::time::Duration::from_secs(10)));
                    let _ = stream.set_write_timeout(Some(std::time::Duration::from_secs(10)));
                    let response = match read_request(&mut stream) {
                        Ok(Some(req)) => handler(&req),
                        Ok(None) => continue,
                        Err(e) => Response::error(400, &e.to_string()),
                    };
                    let _ = response.write_to(&mut stream);
                }
            });
        }

        let stop_accept = stop.clone();
        let accept_thread = std::thread::spawn(move || {
            for stream in listener.incoming() {
                if stop_accept.load(Ordering::SeqCst) {
                    break;
                }
                match stream {
                    Ok(s) => {
                        let _ = tx.send(s);
                    }
                    Err(_) => continue,
                }
            }
            drop(tx); // workers drain and exit
        });

        Ok(ServerHandle {
            addr,
            stop,
            accept_thread: Some(accept_thread),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::{http_get, http_post};
    use crate::json::Json;

    fn echo_server() -> ServerHandle {
        HttpServer::spawn(
            0,
            2,
            Arc::new(|req: &Request| match (req.method.as_str(), req.path.as_str()) {
                ("GET", "/ping") => Response::json(Json::str("pong")),
                ("POST", "/echo") => Response {
                    status: 200,
                    content_type: "application/json",
                    body: req.body.clone(),
                },
                _ => Response::error(404, "no such route"),
            }),
        )
        .unwrap()
    }

    #[test]
    fn get_and_post_round_trip() {
        let server = echo_server();
        let (status, body) = http_get(server.addr(), "/ping").unwrap();
        assert_eq!(status, 200);
        assert_eq!(body, Json::str("pong"));

        let payload = Json::obj([("x", Json::Num(1.5)), ("tag", Json::str("香港"))]);
        let (status, body) = http_post(server.addr(), "/echo", &payload).unwrap();
        assert_eq!(status, 200);
        assert_eq!(body, payload);
    }

    #[test]
    fn unknown_route_is_404() {
        let server = echo_server();
        let (status, body) = http_get(server.addr(), "/nope").unwrap();
        assert_eq!(status, 404);
        assert!(body.get("error").is_some());
    }

    #[test]
    fn concurrent_clients_are_served() {
        let server = echo_server();
        let addr = server.addr();
        let mut handles = Vec::new();
        for t in 0..8 {
            handles.push(std::thread::spawn(move || {
                for i in 0..20 {
                    let payload = Json::obj([("t", Json::Num(t as f64)), ("i", Json::Num(i as f64))]);
                    let (status, body) = http_post(addr, "/echo", &payload).unwrap();
                    assert_eq!(status, 200);
                    assert_eq!(body, payload);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn shutdown_stops_accepting() {
        let mut server = echo_server();
        let addr = server.addr();
        server.shutdown();
        // Subsequent requests fail to connect or to complete.
        let result = http_get(addr, "/ping");
        assert!(result.is_err() || result.unwrap().0 != 200);
    }

    #[test]
    fn header_lookup_is_case_insensitive() {
        let req = Request {
            method: "GET".into(),
            path: "/".into(),
            headers: vec![("content-type".into(), "application/json".into())],
            body: Vec::new(),
        };
        assert_eq!(req.header("Content-Type"), Some("application/json"));
        assert_eq!(req.header("x-missing"), None);
    }
}
