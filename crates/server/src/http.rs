//! Minimal HTTP/1.1 server over `std::net`.
//!
//! Enough of the protocol for the demo service and its tests: request
//! line + headers + `Content-Length` bodies in, status + headers + body
//! out, HTTP/1.1 persistent connections (`Connection: keep-alive`
//! semantics, including pipelined requests — the reader is buffered per
//! connection, not per request). Connections are dispatched to a fixed
//! worker pool over a crossbeam channel.

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Cap on request body size (1 MiB). Single queries are tiny and even
/// bulk `/ingest` batches fit comfortably, so anything bigger is a client
/// bug or abuse; it is rejected with `413 Payload Too Large` and the
/// connection closes (the unread body cannot be skipped safely).
pub const MAX_BODY: usize = 1 << 20;

/// Cap on requests served over one persistent connection, so a chatty
/// client cannot pin a worker forever.
pub(crate) const MAX_REQUESTS_PER_CONNECTION: usize = 256;

/// A parsed HTTP request.
#[derive(Clone, Debug)]
pub struct Request {
    /// `GET`, `POST`, …
    pub method: String,
    /// The path portion of the request target.
    pub path: String,
    /// The raw query string after `?` (empty when absent). The API is
    /// JSON-body based; the query string only carries per-request flags
    /// like `?trace=1`.
    pub query: String,
    /// Protocol version from the request line (`HTTP/1.1`, `HTTP/1.0`).
    pub version: String,
    /// Header name/value pairs, names lower-cased.
    pub headers: Vec<(String, String)>,
    /// The request body.
    pub body: Vec<u8>,
}

impl Request {
    /// Case-insensitive header lookup.
    pub fn header(&self, name: &str) -> Option<&str> {
        let lower = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(k, _)| *k == lower)
            .map(|(_, v)| v.as_str())
    }

    /// Body as UTF-8.
    pub fn body_str(&self) -> Option<&str> {
        std::str::from_utf8(&self.body).ok()
    }

    /// The value of a `key=value` query parameter (no percent-decoding;
    /// the API only uses plain flags). A bare `key` yields `Some("")`.
    pub fn query_param(&self, name: &str) -> Option<&str> {
        self.query.split('&').find_map(|pair| {
            let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
            (k == name).then_some(v)
        })
    }

    /// Whether a boolean query flag is set: `?name`, `?name=1` or
    /// `?name=true`.
    pub fn query_flag(&self, name: &str) -> bool {
        matches!(self.query_param(name), Some("" | "1" | "true"))
    }

    /// Whether the client wants the connection kept open after the
    /// response: HTTP/1.1 defaults to keep-alive unless `Connection:
    /// close`; earlier versions must opt in with `Connection: keep-alive`.
    pub fn wants_keep_alive(&self) -> bool {
        match self.header("connection").map(str::to_ascii_lowercase) {
            Some(v) if v.split(',').any(|t| t.trim() == "close") => false,
            Some(v) if v.split(',').any(|t| t.trim() == "keep-alive") => true,
            _ => self.version == "HTTP/1.1",
        }
    }
}

/// An HTTP response under construction.
#[derive(Clone, Debug)]
pub struct Response {
    /// Status code.
    pub status: u16,
    /// Content type header value.
    pub content_type: &'static str,
    /// The body.
    pub body: Vec<u8>,
    /// Seconds for a `retry-after` header — shed responses (429/503)
    /// tell well-behaved clients when to come back.
    pub retry_after: Option<u64>,
}

impl Response {
    /// 200 with a JSON body.
    pub fn json(body: impl ToString) -> Response {
        Response {
            status: 200,
            content_type: "application/json",
            body: body.to_string().into_bytes(),
            retry_after: None,
        }
    }

    /// An error status with a JSON `{"error": …}` body.
    pub fn error(status: u16, message: &str) -> Response {
        Response {
            status,
            content_type: "application/json",
            body: crate::json::Json::obj([("error", crate::json::Json::str(message))])
                .to_string()
                .into_bytes(),
            retry_after: None,
        }
    }

    /// 200 with an HTML body (the demo landing page).
    pub fn html(body: impl Into<Vec<u8>>) -> Response {
        Response {
            status: 200,
            content_type: "text/html; charset=utf-8",
            body: body.into(),
            retry_after: None,
        }
    }

    /// 200 with an arbitrary text body (the `/metrics` exposition).
    pub fn text(content_type: &'static str, body: impl Into<Vec<u8>>) -> Response {
        Response {
            status: 200,
            content_type,
            body: body.into(),
            retry_after: None,
        }
    }

    /// Attaches a `retry-after` header value (seconds).
    pub fn with_retry_after(mut self, secs: u64) -> Response {
        self.retry_after = Some(secs);
        self
    }

    fn status_text(&self) -> &'static str {
        match self.status {
            200 => "OK",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            410 => "Gone",
            413 => "Payload Too Large",
            429 => "Too Many Requests",
            500 => "Internal Server Error",
            503 => "Service Unavailable",
            504 => "Gateway Timeout",
            _ => "Unknown",
        }
    }

    /// The full wire form (status line + headers + body) as one buffer —
    /// what the event loop queues for vectored writes.
    pub(crate) fn to_bytes(&self, keep_alive: bool) -> Vec<u8> {
        let retry = self
            .retry_after
            .map(|s| format!("retry-after: {s}\r\n"))
            .unwrap_or_default();
        let head = format!(
            "HTTP/1.1 {} {}\r\ncontent-type: {}\r\ncontent-length: {}\r\n{retry}connection: {}\r\n\r\n",
            self.status,
            self.status_text(),
            self.content_type,
            self.body.len(),
            if keep_alive { "keep-alive" } else { "close" }
        );
        let mut bytes = head.into_bytes();
        bytes.extend_from_slice(&self.body);
        bytes
    }

    fn write_to(&self, stream: &mut TcpStream, keep_alive: bool) -> io::Result<()> {
        stream.write_all(&self.to_bytes(keep_alive))?;
        stream.flush()
    }
}

/// Reads one request from a buffered connection. `Ok(None)` on a cleanly
/// closed socket before any bytes. The reader persists across requests on
/// a kept-alive connection, so pipelined bytes are never dropped.
pub fn read_request(reader: &mut BufReader<TcpStream>) -> io::Result<Option<Request>> {
    let mut line = String::new();
    if reader.read_line(&mut line)? == 0 {
        return Ok(None);
    }
    let mut parts = line.split_whitespace();
    let (method, target) = match (parts.next(), parts.next()) {
        (Some(m), Some(t)) => (m.to_owned(), t.to_owned()),
        _ => {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "malformed request line",
            ))
        }
    };
    let version = parts.next().unwrap_or("HTTP/1.0").to_owned();
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_owned(), q.to_owned()),
        None => (target, String::new()),
    };

    let mut headers = Vec::new();
    loop {
        let mut h = String::new();
        if reader.read_line(&mut h)? == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "connection closed mid-headers",
            ));
        }
        let h = h.trim_end_matches(['\r', '\n']);
        if h.is_empty() {
            break;
        }
        if let Some((k, v)) = h.split_once(':') {
            headers.push((k.trim().to_ascii_lowercase(), v.trim().to_owned()));
        }
    }

    // Chunked bodies are not implemented. On a persistent connection an
    // unread chunked body would be re-parsed as pipelined requests
    // (request smuggling), so reject the request — the error path closes
    // the connection, discarding any buffered body bytes.
    if headers.iter().any(|(k, _)| k == "transfer-encoding") {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "transfer-encoding is not supported; send a content-length body",
        ));
    }
    // A present-but-unparseable length must be an error, not 0: on a
    // persistent connection an unconsumed body would be re-parsed as
    // pipelined requests (same smuggling vector as transfer-encoding).
    let content_length = match headers.iter().find(|(k, _)| k == "content-length") {
        None => 0,
        Some((_, v)) => v.parse::<usize>().map_err(|_| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("invalid content-length {v:?}"),
            )
        })?,
    };
    // Oversized bodies get a distinguishable error kind so the worker
    // loop can answer 413 instead of a generic 400.
    if content_length > MAX_BODY {
        return Err(io::Error::new(
            io::ErrorKind::FileTooLarge,
            format!("body of {content_length} bytes exceeds the {MAX_BODY}-byte limit"),
        ));
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;
    Ok(Some(Request {
        method,
        path,
        query,
        version,
        headers,
        body,
    }))
}

/// The request handler signature.
pub type Handler = Arc<dyn Fn(&Request) -> Response + Send + Sync>;

/// Per-request-iteration connection control, consulted *before* the next
/// request is read off the wire — the cheapest place to shed: no parse,
/// no dispatch, no queueing.
#[derive(Clone, Copy, Debug)]
pub struct ConnControl {
    /// Read/write timeout for the next request on this connection. This
    /// doubles as the keep-alive idle timeout; an overload policy
    /// shrinks it to reclaim workers pinned by idle connections.
    pub idle_timeout: std::time::Duration,
    /// `Some(retry_after_secs)`: shed this connection now — a canned
    /// `503` with `retry-after` is written without reading a byte, and
    /// the connection closes.
    pub shed: Option<u64>,
}

impl Default for ConnControl {
    fn default() -> Self {
        ConnControl {
            idle_timeout: std::time::Duration::from_secs(10),
            shed: None,
        }
    }
}

/// The connection-policy signature: called once per request iteration
/// on every connection.
pub type ConnPolicy = Arc<dyn Fn() -> ConnControl + Send + Sync>;

/// A running server with its worker pool.
pub struct HttpServer;

/// Handle to a spawned server: address for clients, shutdown for tests.
pub struct ServerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
}

impl ServerHandle {
    /// Assembles a handle around an accept/event-loop thread. The no-op
    /// wake connection in [`ServerHandle::shutdown`] unblocks both a
    /// blocking `accept()` and an epoll wait (listener turns readable).
    pub(crate) fn from_parts(
        addr: SocketAddr,
        stop: Arc<AtomicBool>,
        thread: std::thread::JoinHandle<()>,
    ) -> ServerHandle {
        ServerHandle {
            addr,
            stop,
            accept_thread: Some(thread),
        }
    }

    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting and joins the accept loop. Idempotent.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Unblock accept() with a no-op connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl HttpServer {
    /// Binds `127.0.0.1:port` (port 0 = ephemeral, for tests) and serves
    /// `handler` on `workers` threads. Returns immediately.
    pub fn spawn(port: u16, workers: usize, handler: Handler) -> io::Result<ServerHandle> {
        Self::spawn_with_policy(port, workers, handler, Arc::new(ConnControl::default))
    }

    /// [`HttpServer::spawn`] with a connection policy: before each
    /// request is read, `policy` decides the idle timeout and whether to
    /// shed the connection outright (canned `503` + `retry-after`,
    /// written without reading the request — overload protection at the
    /// accept/read boundary, before any parse or queueing).
    pub fn spawn_with_policy(
        port: u16,
        workers: usize,
        handler: Handler,
        policy: ConnPolicy,
    ) -> io::Result<ServerHandle> {
        assert!(workers >= 1);
        let listener = TcpListener::bind(("127.0.0.1", port))?;
        if polling::supported() {
            // Readiness loop: one thread owns every socket, `workers`
            // threads run handlers. Idle keep-alive connections cost a
            // registered fd, not a parked worker.
            return crate::event_loop::spawn(listener, workers, handler, policy);
        }
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));

        let (tx, rx) = crossbeam::channel::unbounded::<TcpStream>();
        for _ in 0..workers {
            let rx = rx.clone();
            let handler = handler.clone();
            let policy = policy.clone();
            std::thread::spawn(move || {
                while let Ok(stream) = rx.recv() {
                    let mut reader = BufReader::new(stream);
                    let mut served = 0usize;
                    loop {
                        // A stalled or malicious client must not pin a
                        // worker: bound both directions, re-reading the
                        // policy each iteration so an overloaded server
                        // shrinks idle keep-alive holds too.
                        let control = policy();
                        if let Some(retry) = control.shed {
                            let _ = Response::error(
                                503,
                                "server overloaded; request not read",
                            )
                            .with_retry_after(retry)
                            .write_to(reader.get_mut(), false);
                            break;
                        }
                        let _ = reader.get_mut().set_read_timeout(Some(control.idle_timeout));
                        let _ = reader
                            .get_mut()
                            .set_write_timeout(Some(control.idle_timeout));
                        let (response, keep) = match read_request(&mut reader) {
                            Ok(Some(req)) => {
                                served += 1;
                                let keep = req.wants_keep_alive()
                                    && served < MAX_REQUESTS_PER_CONNECTION;
                                (handler(&req), keep)
                            }
                            Ok(None) => break, // client closed cleanly
                            // An idle kept-alive connection hitting the
                            // read timeout must close silently: a 400
                            // here could be read as the response to a
                            // request racing the timeout.
                            Err(e)
                                if matches!(
                                    e.kind(),
                                    io::ErrorKind::TimedOut | io::ErrorKind::WouldBlock
                                ) =>
                            {
                                break
                            }
                            Err(e) if e.kind() == io::ErrorKind::FileTooLarge => {
                                (Response::error(413, &e.to_string()), false)
                            }
                            Err(e) => (Response::error(400, &e.to_string()), false),
                        };
                        if response.write_to(reader.get_mut(), keep).is_err() || !keep {
                            break;
                        }
                    }
                }
            });
        }

        let stop_accept = stop.clone();
        let accept_thread = std::thread::spawn(move || {
            for stream in listener.incoming() {
                if stop_accept.load(Ordering::SeqCst) {
                    break;
                }
                match stream {
                    Ok(s) => {
                        let _ = tx.send(s);
                    }
                    Err(_) => continue,
                }
            }
            drop(tx); // workers drain and exit
        });

        Ok(ServerHandle {
            addr,
            stop,
            accept_thread: Some(accept_thread),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::{http_get, http_post};
    use crate::json::Json;

    fn echo_server() -> ServerHandle {
        HttpServer::spawn(
            0,
            2,
            Arc::new(|req: &Request| match (req.method.as_str(), req.path.as_str()) {
                ("GET", "/ping") => Response::json(Json::str("pong")),
                ("POST", "/echo") => Response {
                    status: 200,
                    content_type: "application/json",
                    body: req.body.clone(),
                    retry_after: None,
                },
                _ => Response::error(404, "no such route"),
            }),
        )
        .unwrap()
    }

    #[test]
    fn get_and_post_round_trip() {
        let server = echo_server();
        let (status, body) = http_get(server.addr(), "/ping").unwrap();
        assert_eq!(status, 200);
        assert_eq!(body, Json::str("pong"));

        let payload = Json::obj([("x", Json::Num(1.5)), ("tag", Json::str("香港"))]);
        let (status, body) = http_post(server.addr(), "/echo", &payload).unwrap();
        assert_eq!(status, 200);
        assert_eq!(body, payload);
    }

    #[test]
    fn unknown_route_is_404() {
        let server = echo_server();
        let (status, body) = http_get(server.addr(), "/nope").unwrap();
        assert_eq!(status, 404);
        assert!(body.get("error").is_some());
    }

    #[test]
    fn concurrent_clients_are_served() {
        let server = echo_server();
        let addr = server.addr();
        let mut handles = Vec::new();
        for t in 0..8 {
            handles.push(std::thread::spawn(move || {
                for i in 0..20 {
                    let payload = Json::obj([("t", Json::Num(t as f64)), ("i", Json::Num(i as f64))]);
                    let (status, body) = http_post(addr, "/echo", &payload).unwrap();
                    assert_eq!(status, 200);
                    assert_eq!(body, payload);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn shutdown_stops_accepting() {
        let mut server = echo_server();
        let addr = server.addr();
        server.shutdown();
        // Subsequent requests fail to connect or to complete.
        let result = http_get(addr, "/ping");
        assert!(result.is_err() || result.unwrap().0 != 200);
    }

    #[test]
    fn header_lookup_is_case_insensitive() {
        let req = Request {
            method: "GET".into(),
            path: "/".into(),
            query: String::new(),
            version: "HTTP/1.1".into(),
            headers: vec![("content-type".into(), "application/json".into())],
            body: Vec::new(),
        };
        assert_eq!(req.header("Content-Type"), Some("application/json"));
        assert_eq!(req.header("x-missing"), None);
    }

    #[test]
    fn query_string_parses_into_params_and_flags() {
        let req = |query: &str| Request {
            method: "GET".into(),
            path: "/query".into(),
            query: query.into(),
            version: "HTTP/1.1".into(),
            headers: vec![],
            body: Vec::new(),
        };
        assert!(req("trace=1").query_flag("trace"));
        assert!(req("trace").query_flag("trace"));
        assert!(req("a=2&trace=true").query_flag("trace"));
        assert!(!req("trace=0").query_flag("trace"));
        assert!(!req("").query_flag("trace"));
        assert!(!req("notrace=1").query_flag("trace"));
        assert_eq!(req("a=2&b=x").query_param("b"), Some("x"));
        assert_eq!(req("a=2").query_param("b"), None);
    }

    #[test]
    fn keep_alive_defaults_follow_http_version() {
        let req = |version: &str, conn: Option<&str>| Request {
            method: "GET".into(),
            path: "/".into(),
            query: String::new(),
            version: version.into(),
            headers: conn
                .map(|v| vec![("connection".to_owned(), v.to_owned())])
                .unwrap_or_default(),
            body: Vec::new(),
        };
        assert!(req("HTTP/1.1", None).wants_keep_alive());
        assert!(!req("HTTP/1.1", Some("close")).wants_keep_alive());
        assert!(!req("HTTP/1.0", None).wants_keep_alive());
        assert!(req("HTTP/1.0", Some("keep-alive")).wants_keep_alive());
        assert!(req("HTTP/1.1", Some("Keep-Alive, Upgrade")).wants_keep_alive());
    }

    #[test]
    fn keep_alive_serves_multiple_requests_on_one_connection() {
        use std::io::{BufRead, BufReader, Read, Write};

        let server = echo_server();
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        let read_one = |stream: &mut TcpStream| -> (u16, String, String) {
            let mut reader = BufReader::new(stream.try_clone().unwrap());
            let mut status_line = String::new();
            reader.read_line(&mut status_line).unwrap();
            let status: u16 = status_line.split_whitespace().nth(1).unwrap().parse().unwrap();
            let mut connection = String::new();
            let mut content_length = 0usize;
            loop {
                let mut h = String::new();
                reader.read_line(&mut h).unwrap();
                let h = h.trim_end();
                if h.is_empty() {
                    break;
                }
                if let Some((k, v)) = h.split_once(':') {
                    match k.trim().to_ascii_lowercase().as_str() {
                        "connection" => connection = v.trim().to_owned(),
                        "content-length" => content_length = v.trim().parse().unwrap(),
                        _ => {}
                    }
                }
            }
            let mut body = vec![0u8; content_length];
            reader.read_exact(&mut body).unwrap();
            (status, connection, String::from_utf8(body).unwrap())
        };

        for i in 0..3 {
            let payload = format!("{{\"i\": {i}}}");
            let req = format!(
                "POST /echo HTTP/1.1\r\nhost: t\r\ncontent-length: {}\r\n\r\n{payload}",
                payload.len()
            );
            stream.write_all(req.as_bytes()).unwrap();
            let (status, connection, body) = read_one(&mut stream);
            assert_eq!(status, 200, "request {i} on the shared connection");
            assert_eq!(connection, "keep-alive");
            assert_eq!(body, payload);
        }

        // An explicit close is honored: response says close, then EOF.
        stream
            .write_all(b"GET /ping HTTP/1.1\r\nconnection: close\r\n\r\n")
            .unwrap();
        let (status, connection, _) = read_one(&mut stream);
        assert_eq!(status, 200);
        assert_eq!(connection, "close");
        let mut rest = Vec::new();
        stream.read_to_end(&mut rest).unwrap();
        assert!(rest.is_empty(), "server must close after Connection: close");
    }

    #[test]
    fn invalid_content_length_is_rejected_and_connection_closed() {
        use std::io::{Read, Write};

        let server = echo_server();
        for bad in ["abc", "99999999999999999999999", "-1"] {
            let mut stream = TcpStream::connect(server.addr()).unwrap();
            let payload = format!(
                "POST /echo HTTP/1.1\r\ncontent-length: {bad}\r\n\r\nGET /ping HTTP/1.1\r\n\r\n"
            );
            stream.write_all(payload.as_bytes()).unwrap();
            let mut all = String::new();
            stream.read_to_string(&mut all).unwrap();
            // One 400 and a closed connection — the trailing bytes must
            // never be interpreted as a second request.
            assert!(all.starts_with("HTTP/1.1 400"), "{bad}: {all}");
            assert_eq!(all.matches("HTTP/1.1").count(), 1, "{bad}: {all}");
            assert!(all.contains("connection: close"));
        }
    }

    #[test]
    fn oversized_body_is_413_and_connection_closed() {
        use std::io::{Read, Write};

        let server = echo_server();
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        // Declare a body one byte over the named limit; the server must
        // answer 413 (not a generic 400) before reading any of it, then
        // close so the unread bytes are never parsed as requests.
        let req = format!(
            "POST /echo HTTP/1.1\r\ncontent-length: {}\r\n\r\n",
            MAX_BODY + 1
        );
        stream.write_all(req.as_bytes()).unwrap();
        let mut all = String::new();
        stream.read_to_string(&mut all).unwrap();
        assert!(all.starts_with("HTTP/1.1 413"), "{all}");
        assert!(all.contains("Payload Too Large"), "{all}");
        assert!(all.contains(&format!("{MAX_BODY}-byte limit")), "{all}");
        assert!(all.contains("connection: close"));
        // A body exactly at the limit is still readable (no off-by-one).
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        let body = vec![b'x'; MAX_BODY];
        let head = format!("POST /echo HTTP/1.1\r\ncontent-length: {MAX_BODY}\r\n\r\n");
        stream.write_all(head.as_bytes()).unwrap();
        stream.write_all(&body).unwrap();
        let mut first_line = [0u8; 12];
        stream.read_exact(&mut first_line).unwrap();
        assert_eq!(&first_line, b"HTTP/1.1 200");
    }

    #[test]
    fn chunked_bodies_are_rejected_and_connection_closed() {
        use std::io::{Read, Write};

        let server = echo_server();
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        // A chunked body whose content could smuggle a second request if
        // it were left in the connection buffer.
        stream
            .write_all(
                b"POST /echo HTTP/1.1\r\ntransfer-encoding: chunked\r\n\r\n\
                  24\r\nGET /ping HTTP/1.1\r\nhost: smuggled\r\n\r\n\r\n0\r\n\r\n",
            )
            .unwrap();
        let mut all = String::new();
        stream.read_to_string(&mut all).unwrap();
        // Exactly one response — the 400 — and the smuggled GET is never
        // answered because the connection closes.
        assert!(all.starts_with("HTTP/1.1 400"), "{all}");
        assert_eq!(all.matches("HTTP/1.1").count(), 1, "{all}");
        assert!(all.contains("connection: close"));
    }

    #[test]
    fn pipelined_requests_are_all_answered() {
        use std::io::{Read, Write};

        let server = echo_server();
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        // Two back-to-back requests in one write; the second arrives while
        // the first is still being processed and must not be lost.
        stream
            .write_all(
                b"GET /ping HTTP/1.1\r\n\r\nGET /ping HTTP/1.1\r\nconnection: close\r\n\r\n",
            )
            .unwrap();
        let mut all = String::new();
        stream.read_to_string(&mut all).unwrap();
        assert_eq!(all.matches("HTTP/1.1 200 OK").count(), 2, "{all}");
        assert_eq!(all.matches("pong").count(), 2);
    }
}
