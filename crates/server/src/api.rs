//! The YASK REST API (the server side of the demo's Fig 1).
//!
//! Routes:
//!
//! | Method | Path                 | Purpose                                   |
//! |--------|----------------------|-------------------------------------------|
//! | GET    | `/`                  | landing page (map placeholder)            |
//! | GET    | `/health`            | liveness + object count                   |
//! | GET    | `/stats`             | dataset + executor + ingest statistics    |
//! | GET    | `/metrics`           | Prometheus text exposition                |
//! | GET    | `/debug/slow`        | slow-query log with span trees            |
//! | GET    | `/debug/health`      | windowed rates + overload verdict         |
//! | GET    | `/debug/heatmap`     | per-STR-cell query/write heat + skew      |
//! | POST   | `/query`             | spatial keyword top-k query → session id  |
//! | POST   | `/whynot/explain`    | explanations for desired objects          |
//! | POST   | `/whynot/preference` | preference-adjusted refined query         |
//! | POST   | `/whynot/keywords`   | keyword-adapted refined query             |
//! | POST   | `/session/close`     | the user gave up asking why-not questions |
//! | POST   | `/objects`           | insert one object (live corpus update)    |
//! | DELETE | `/objects/{id}`      | delete one object                         |
//! | POST   | `/ingest`            | bulk insert/delete batch (one epoch)      |
//!
//! `/query` caches the initial query in the [`SessionStore`] **pinned to
//! the engine epoch it ran against**; the why-not endpoints reference it
//! by session id and keep answering over that pinned corpus version —
//! mirroring the paper's "server caches users' initial spatial keyword
//! queries", now stable under concurrent deletes (a session citing a
//! later-deleted object is no longer invalidated; it answers against its
//! epoch until it is closed or expires). The write endpoints run the
//! `yask_ingest` protocol — validate → write-ahead log (when configured)
//! → publish a new engine epoch — funnelled through the
//! [`WriteCoalescer`], so concurrent small writes share one group-commit
//! fsync pair by default.

use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::Mutex;
use yask_core::{Explanation, SessionId, SessionStore, WhyNotError, YaskConfig};
use yask_data::DatasetStats;
use yask_exec::{
    AdmissionConfig, AdmissionController, AdmissionSnapshot, AdmitDecision, CacheSnapshot,
    Deadline, EngineHandle, ExecConfig, ExecSnapshot, Executor, OverloadLevel, Route,
    RouteWindows,
};
use yask_geo::Point;
use yask_index::{Corpus, ObjectId};
use yask_ingest::{CheckpointConfig, IngestError, Ingestor, NewObject, Update};
use yask_obs::{FinishedTrace, Trace, TraceLog, WindowSnapshot, NO_PARENT};
use yask_query::{Query, RankedObject};
use yask_text::{KeywordId, KeywordSet, Vocabulary};

use crate::coalesce::{CoalesceConfig, WriteCoalescer, WriteError};
use crate::http::{ConnControl, ConnPolicy, Handler, Request, Response};
use crate::json::Json;
use crate::metrics::{render_metrics, MetricsInputs};

/// Service-level configuration: the execution subsystem plus session
/// lifecycle and write-path policy.
#[derive(Clone, Copy, Debug)]
pub struct ServiceConfig {
    /// The executor (shards, workers, caches, engine).
    pub exec: ExecConfig,
    /// Session time-to-live (the paper's "until users give up").
    pub session_ttl: Duration,
    /// The write coalescer (window + group-commit bounds).
    pub coalesce: CoalesceConfig,
    /// When to fold the write-ahead log into a checkpoint snapshot
    /// (durable deployments only).
    pub checkpoint: CheckpointConfig,
    /// Capacity of the recent-trace ring buffer behind `/debug/slow`.
    /// 0 disables ambient tracing: query and why-not requests then run
    /// untraced unless they opt in with `?trace=1`.
    pub trace_ring: usize,
    /// How many slowest traces (by total latency) the slow-query log
    /// keeps with their full span trees. 0 disables the slow log.
    pub slow_log: usize,
    /// When `GET /debug/health` reports the service as overloaded.
    pub overload: OverloadConfig,
    /// Admission control: when to shed or degrade requests instead of
    /// queueing them. Its depth/latency limits default to the same
    /// numbers as `overload`, so the health verdict and the valve flip
    /// together unless deliberately separated.
    pub admission: AdmissionConfig,
    /// Default deadline budget for query and why-not requests; a
    /// request overrides it with the `x-yask-deadline-ms` header.
    /// `None` = run to completion.
    pub default_deadline: Option<Duration>,
    /// How many epochs back a *degraded* top-k admission may serve a
    /// stale cached answer from (flagged `degraded: true`).
    pub degraded_lookback: u64,
    /// Keep-alive idle timeout under normal load.
    pub idle_timeout: Duration,
    /// Keep-alive idle timeout while overloaded: parked connections
    /// stop holding worker threads exactly when threads are scarce.
    pub overloaded_idle_timeout: Duration,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            exec: ExecConfig::default(),
            session_ttl: Duration::from_secs(600),
            coalesce: CoalesceConfig::default(),
            checkpoint: CheckpointConfig::default(),
            trace_ring: 256,
            slow_log: 16,
            overload: OverloadConfig::default(),
            admission: AdmissionConfig::default(),
            default_deadline: Some(Duration::from_secs(5)),
            degraded_lookback: 4,
            idle_timeout: Duration::from_secs(10),
            overloaded_idle_timeout: Duration::from_secs(1),
        }
    }
}

/// Overload thresholds for the `/debug/health` verdict. Either trigger
/// alone flips the verdict to overloaded; both are judged on *windowed*
/// observations, so a verdict clears on its own as the spike ages out —
/// no restart, no counter reset.
#[derive(Clone, Copy, Debug)]
pub struct OverloadConfig {
    /// Queue-depth trigger: overloaded when the highest pool queue depth
    /// any submit observed in the last minute exceeds this.
    pub max_queue_depth: usize,
    /// Latency trigger: overloaded when the top-k compute p99 over the
    /// last 10 seconds exceeds this (needs the executor's observatory;
    /// with `ExecConfig::observatory` off only the queue trigger fires).
    pub max_topk_p99: Duration,
}

impl Default for OverloadConfig {
    fn default() -> Self {
        OverloadConfig {
            max_queue_depth: 128,
            max_topk_p99: Duration::from_millis(500),
        }
    }
}

/// The stateful YASK web service.
pub struct YaskService {
    exec: Executor,
    ingest: Ingestor,
    coalescer: WriteCoalescer,
    sessions: SessionStore,
    vocab: Arc<Mutex<Vocabulary>>,
    /// Sidecar the vocabulary is snapshotted to before every durable
    /// write batch. The WAL records keyword *ids*, which are
    /// intern-order-dependent — without the string → id map persisted
    /// alongside, a replayed object's keywords would bind to whatever ids
    /// the post-restart intern order happens to assign.
    vocab_path: Option<std::path::PathBuf>,
    /// Vocabulary size at the last snapshot: the vocabulary is
    /// append-only, so an unchanged length means the sidecar is current
    /// and the write path skips the serialize + fsync + rename.
    vocab_persisted: std::sync::atomic::AtomicUsize,
    /// Finished query traces: a recent ring plus the slow-query log
    /// (`ServiceConfig::trace_ring` / `slow_log`), served by
    /// `GET /debug/slow`.
    traces: TraceLog,
    /// The `/debug/health` overload thresholds.
    overload: OverloadConfig,
    /// Admission policy + shed/degrade counters, shared by the HTTP
    /// edge (accept-boundary shedding) and the per-request check.
    admission: AdmissionController,
    /// Default deadline budget for read requests (header-overridable).
    default_deadline: Option<Duration>,
    /// Stale-cache lookback (epochs) for degraded top-k admissions.
    degraded_lookback: u64,
    /// Keep-alive idle timeouts: normal and overloaded.
    idle_timeout: Duration,
    overloaded_idle_timeout: Duration,
    /// When the service was built; `/metrics` exports the monotonic
    /// uptime so scrapers can spot restarts without a counter reset.
    started: Instant,
}

type ApiResult = Result<Json, (u16, String)>;

/// Handle to a background session-eviction thread; dropping it stops the
/// sweeper and joins the thread.
pub struct SessionSweeper {
    // Dropping the sender wakes the sweeper's recv_timeout immediately.
    stop: Option<std::sync::mpsc::Sender<()>>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl Drop for SessionSweeper {
    fn drop(&mut self) {
        drop(self.stop.take());
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl YaskService {
    /// Builds the service over a corpus and its vocabulary with the
    /// engine configuration (default executor: 4 shards, caches on).
    pub fn new(corpus: Corpus, vocab: Vocabulary, config: YaskConfig) -> Self {
        YaskService::with_config(
            corpus,
            vocab,
            ServiceConfig {
                exec: ExecConfig {
                    yask: config,
                    ..ExecConfig::default()
                },
                ..ServiceConfig::default()
            },
        )
    }

    /// Builds the service with full control over execution and sessions.
    /// Updates accepted through the write endpoints apply to the running
    /// engine but are volatile; use [`YaskService::with_wal`] for
    /// restart-surviving updates.
    pub fn with_config(corpus: Corpus, vocab: Vocabulary, config: ServiceConfig) -> Self {
        // No log, no fsync pair to amortize: a volatile service never
        // waits the coalescing window (batching still happens naturally
        // while a previous commit holds the leader lock).
        let coalesce = CoalesceConfig {
            window: Duration::ZERO,
            ..config.coalesce
        };
        YaskService {
            exec: Executor::new(corpus.clone(), config.exec),
            ingest: Ingestor::new(corpus),
            coalescer: WriteCoalescer::new(coalesce),
            sessions: SessionStore::new(config.session_ttl),
            vocab: Arc::new(Mutex::new(vocab)),
            vocab_path: None,
            vocab_persisted: std::sync::atomic::AtomicUsize::new(0),
            traces: TraceLog::new(config.trace_ring, config.slow_log),
            overload: config.overload,
            admission: AdmissionController::new(config.admission),
            default_deadline: config.default_deadline,
            degraded_lookback: config.degraded_lookback,
            idle_timeout: config.idle_timeout,
            overloaded_idle_timeout: config.overloaded_idle_timeout,
            started: Instant::now(),
        }
    }

    /// Builds the service with a durable write path: the write-ahead log
    /// at `wal_path` is opened (created when absent), the checkpoint
    /// snapshot next to it is loaded when one exists, and only the log
    /// records committed after the checkpoint are replayed before the
    /// engine starts — the service resumes at the epoch it crashed or
    /// shut down at, with restart time bounded by the checkpoint
    /// interval (`config.checkpoint`).
    pub fn with_wal(
        corpus: Corpus,
        vocab: Vocabulary,
        config: ServiceConfig,
        wal_path: &std::path::Path,
    ) -> Result<Self, IngestError> {
        // The WAL's keyword ids are only meaningful under the vocabulary
        // they were interned into; restore its snapshot before replay.
        let vocab_path = {
            let mut os = wal_path.as_os_str().to_owned();
            os.push(".vocab");
            std::path::PathBuf::from(os)
        };
        // The snapshots must extend the seed vocabulary verbatim —
        // anything else means the log belongs to a different seed.
        let verify_extends = |current: &Vocabulary, loaded: Vocabulary| {
            for (id, word) in current.iter() {
                if loaded.lookup(word) != Some(id) {
                    return Err(IngestError::WalCorrupt(format!(
                        "vocabulary snapshot does not cover word {word:?}"
                    )));
                }
            }
            Ok(loaded)
        };
        let vocab = match load_vocab_snapshot(&vocab_path)? {
            None => vocab,
            Some(loaded) => verify_extends(&vocab, loaded)?,
        };
        let ingest = Ingestor::with_wal_config(corpus, wal_path, config.checkpoint)?;
        // The checkpoint embeds the vocabulary too; if it is ahead of the
        // sidecar (e.g. the sidecar was lost), prefer it.
        let vocab = match ingest.recovered_vocab() {
            Some(words) if words.len() > vocab.len() => {
                verify_extends(&vocab, Vocabulary::from_words(words))?
            }
            _ => vocab,
        };
        let exec = Executor::new_at_epoch(ingest.corpus(), config.exec, ingest.epoch());
        let vocab = Arc::new(Mutex::new(vocab));
        // Checkpoints embed the vocabulary as interned at snapshot time.
        let vocab_for_ckpt = Arc::clone(&vocab);
        ingest.set_vocab_source(move || {
            vocab_for_ckpt
                .lock()
                .iter()
                .map(|(_, word)| word.to_owned())
                .collect()
        });
        let vocab_persisted = std::sync::atomic::AtomicUsize::new(vocab.lock().len());
        Ok(YaskService {
            exec,
            ingest,
            coalescer: WriteCoalescer::new(config.coalesce),
            sessions: SessionStore::new(config.session_ttl),
            vocab_persisted,
            vocab,
            vocab_path: Some(vocab_path),
            traces: TraceLog::new(config.trace_ring, config.slow_log),
            overload: config.overload,
            admission: AdmissionController::new(config.admission),
            default_deadline: config.default_deadline,
            degraded_lookback: config.degraded_lookback,
            idle_timeout: config.idle_timeout,
            overloaded_idle_timeout: config.overloaded_idle_timeout,
            started: Instant::now(),
        })
    }

    /// The demo deployment: the 539-hotel Hong Kong stand-in dataset on
    /// the sharded executor.
    pub fn hk_demo() -> Self {
        let (corpus, vocab) = yask_data::hk_hotels();
        YaskService::new(corpus, vocab, YaskConfig::default())
    }

    /// Pins the current engine epoch (for white-box tests).
    pub fn engine(&self) -> EngineHandle {
        self.exec.engine()
    }

    /// The current corpus version.
    pub fn corpus(&self) -> Corpus {
        self.exec.corpus()
    }

    /// The execution subsystem.
    pub fn executor(&self) -> &Executor {
        &self.exec
    }

    /// The write path coordinator.
    pub fn ingestor(&self) -> &Ingestor {
        &self.ingest
    }

    /// The admission controller (policy + shed/degrade counters).
    pub fn admission(&self) -> &AdmissionController {
        &self.admission
    }

    /// The connection policy for
    /// [`crate::http::HttpServer::spawn_with_policy`]: at the critical
    /// overload level connections are refused with a canned `503` +
    /// `Retry-After` *before their request is read* — the cheapest
    /// possible shed — and while merely overloaded the keep-alive idle
    /// timeout shrinks so parked connections release worker threads
    /// exactly when threads are scarce.
    pub fn conn_policy(self: &Arc<Self>) -> ConnPolicy {
        let service = Arc::clone(self);
        Arc::new(move || {
            let p = service.exec.pressure();
            if service.admission.shed_at_accept(&p) {
                service.admission.count_accept_shed();
                return ConnControl {
                    idle_timeout: service.overloaded_idle_timeout,
                    shed: Some(service.admission.config().retry_after_secs),
                };
            }
            ConnControl {
                idle_timeout: if service.admission.level(&p) == OverloadLevel::Normal {
                    service.idle_timeout
                } else {
                    service.overloaded_idle_timeout
                },
                shed: None,
            }
        })
    }

    /// The configured session time-to-live.
    pub fn session_ttl(&self) -> Duration {
        self.sessions.ttl()
    }

    /// Live session count.
    pub fn session_count(&self) -> usize {
        self.sessions.len()
    }

    /// Spawns a background thread sweeping expired sessions every
    /// `period`, independent of request traffic (idle servers no longer
    /// retain dead sessions until the next request). The sweeper stops
    /// when the returned handle drops.
    pub fn spawn_session_sweeper(self: &Arc<Self>, period: Duration) -> SessionSweeper {
        let service = Arc::clone(self);
        let (tx, rx) = std::sync::mpsc::channel::<()>();
        let thread = std::thread::spawn(move || {
            // Sleeps the whole period; the channel disconnecting (handle
            // dropped) wakes and ends the loop immediately.
            while let Err(std::sync::mpsc::RecvTimeoutError::Timeout) = rx.recv_timeout(period) {
                service.sessions.evict_expired();
            }
        });
        SessionSweeper {
            stop: Some(tx),
            thread: Some(thread),
        }
    }

    /// Wraps the service as an [`Handler`] for [`crate::HttpServer`].
    pub fn into_handler(self: Arc<Self>) -> Handler {
        Arc::new(move |req: &Request| self.handle(req))
    }

    /// Whether query/why-not requests are traced without asking for it.
    fn tracing_enabled(&self) -> bool {
        !self.traces.is_disabled()
    }

    /// Classifies a request for admission: the routes that queue engine
    /// or durability work. Debug/metrics/health surfaces are never shed
    /// — an operator must be able to see *why* requests are refused.
    fn admission_route(req: &Request) -> Option<Route> {
        match (req.method.as_str(), req.path.as_str()) {
            ("POST", "/query") => Some(Route::TopK),
            (
                "POST",
                "/whynot/explain" | "/whynot/preference" | "/whynot/keywords"
                | "/whynot/combined",
            ) => Some(Route::WhyNot),
            ("POST", "/objects" | "/ingest") => Some(Route::Write),
            ("DELETE", p) if p.starts_with("/objects/") => Some(Route::Write),
            _ => None,
        }
    }

    /// The request's deadline budget: the `x-yask-deadline-ms` header
    /// when present, else the configured default (`None` = unlimited).
    fn request_deadline(&self, req: &Request) -> Result<Option<Deadline>, (u16, String)> {
        match req.header("x-yask-deadline-ms") {
            None => Ok(self.default_deadline.map(Deadline::after)),
            Some(raw) => {
                let ms: u64 = raw.trim().parse().map_err(|_| {
                    (400, format!("x-yask-deadline-ms: {raw:?} is not a millisecond count"))
                })?;
                Ok(Some(Deadline::after(Duration::from_millis(ms))))
            }
        }
    }

    /// Routes one request.
    pub fn handle(&self, req: &Request) -> Response {
        self.sessions.evict_expired();
        // Admission runs before body parsing and before any trace or
        // engine work: a shed request costs the server one pressure
        // sample and one canned response.
        let mut degraded = false;
        let mut deadline: Option<Deadline> = None;
        if let Some(route) = Self::admission_route(req) {
            match self.admission.decide(route, &self.exec.pressure()) {
                AdmitDecision::Admit => {}
                AdmitDecision::Degrade { deadline: budget } => {
                    degraded = true;
                    deadline = Some(budget);
                }
                AdmitDecision::Shed { reason, retry_after_secs } => {
                    return Response::error(
                        429,
                        &format!(
                            "overloaded: shedding {} requests ({})",
                            route.label(),
                            reason.label()
                        ),
                    )
                    .with_retry_after(retry_after_secs);
                }
            }
            // Reads run on a wall-clock budget; the degraded budget (if
            // any) only ever tightens the request's own.
            if route != Route::Write {
                let requested = match self.request_deadline(req) {
                    Ok(d) => d,
                    Err((status, message)) => return Response::error(status, &message),
                };
                deadline = match (deadline, requested) {
                    (Some(a), Some(b)) => Some(tighter(a, b)),
                    (a, b) => a.or(b),
                };
            }
        }
        // The read paths carry a per-query trace when ambient tracing is
        // on (`trace_ring`/`slow_log` > 0) or the request opted in with
        // `?trace=1`; other routes never pay for one.
        let traced_route = matches!(
            (req.method.as_str(), req.path.as_str()),
            (
                "POST",
                "/query" | "/whynot/explain" | "/whynot/preference" | "/whynot/keywords"
                    | "/whynot/combined"
            )
        );
        let inline = req.query_flag("trace");
        let trace = (traced_route && (self.tracing_enabled() || inline))
            .then(|| Trace::new(req.path.clone()));
        let t = trace.as_ref();
        let result = match (req.method.as_str(), req.path.as_str()) {
            ("GET", "/") => return Response::html(LANDING_PAGE),
            ("GET", "/metrics") => return self.metrics(),
            ("GET", "/health") => self.health(),
            ("GET", "/stats") => self.stats(),
            ("GET", "/debug/slow") => self.debug_slow(),
            ("GET", "/debug/health") => self.debug_health(),
            ("GET", "/debug/heatmap") => self.debug_heatmap(),
            ("POST", "/query") => self.with_body(req, |s, b| s.query(b, t, deadline, degraded)),
            ("POST", "/whynot/explain") => self.with_body(req, |s, b| s.explain(b, t, deadline)),
            ("POST", "/whynot/preference") => {
                self.with_body(req, |s, b| s.preference(b, t, deadline))
            }
            ("POST", "/whynot/keywords") => self.with_body(req, |s, b| s.keywords(b, t, deadline)),
            ("POST", "/whynot/combined") => self.with_body(req, |s, b| s.combined(b, t, deadline)),
            ("POST", "/viewport") => self.with_body(req, |s, b| s.viewport(b)),
            ("POST", "/session/close") => self.with_body(req, |s, b| s.close(b)),
            ("POST", "/objects") => self.with_body(req, |s, b| s.insert_object(b)),
            ("POST", "/ingest") => self.with_body(req, |s, b| s.bulk_ingest(b)),
            ("DELETE", path) if path.starts_with("/objects/") => {
                self.delete_object(&path["/objects/".len()..])
            }
            ("GET", _) | ("POST", _) => Err((404, format!("no route {} {}", req.method, req.path))),
            _ => Err((405, format!("method {} not allowed", req.method))),
        };
        // Record after the handler so the trace covers the whole request
        // (body parse included in total, spans cover the engine work).
        let finished = trace.map(|tr| self.traces.record(tr.finish()));
        let result = match (result, finished) {
            (Ok(Json::Obj(mut fields)), Some(f)) if inline => {
                fields.push(("trace".to_owned(), render_trace(&f)));
                Ok(Json::Obj(fields))
            }
            (r, _) => r,
        };
        match result {
            Ok(body) => Response::json(body),
            Err((status, message)) => Response::error(status, &message),
        }
    }

    /// `GET /metrics` — the Prometheus text exposition (not JSON).
    fn metrics(&self) -> Response {
        let exec = self.exec.stats();
        let admission = self.admission.snapshot();
        let hists = self.ingest.latency_snapshots();
        let ckpt = self.ingest.checkpoint_stats();
        let copy = self.ingest.copy_stats();
        let text = render_metrics(&MetricsInputs {
            exec: &exec,
            admission: &admission,
            ingest_hists: &hists,
            wal: self.ingest.wal_stats(),
            ckpt: &ckpt,
            corpus_chunks_copied: copy.chunks_copied as u64,
            corpus_copy_bytes: copy.bytes_copied as u64,
            coalesce_groups: self.coalescer.groups(),
            coalesce_batches: self.coalescer.batches(),
            sessions_live: self.sessions.len(),
            sessions_pinned: self.pinned_sessions(),
            traces_recorded: self.traces.recorded(),
            uptime_seconds: self.started.elapsed().as_secs_f64(),
        });
        Response::text("text/plain; version=0.0.4; charset=utf-8", text)
    }

    /// `GET /debug/slow` — the slow-query log: the N slowest traced
    /// requests with their full span trees, plus the recent-trace count.
    fn debug_slow(&self) -> ApiResult {
        Ok(Json::obj([
            ("recorded", Json::Num(self.traces.recorded() as f64)),
            (
                "slowest",
                Json::Arr(self.traces.slowest().iter().map(|t| render_trace(t)).collect()),
            ),
        ]))
    }

    /// `GET /debug/health` — the overload surface: windowed rates and
    /// latency quantiles per route (1 s / 10 s / 1 m), queue depth, and
    /// the verdict against the configured [`OverloadConfig`] thresholds.
    /// Both triggers judge *windowed* observations, so the verdict
    /// clears on its own as a spike ages out.
    fn debug_health(&self) -> ApiResult {
        let s = self.exec.stats();
        // Each reason is machine-parseable: the signal that fired, the
        // observed value, and the exact threshold it crossed — alerting
        // rules key off `signal`, humans read `message`.
        let reason = |signal: &str, observed: f64, limit: f64, message: String| {
            Json::obj([
                ("signal", Json::str(signal)),
                ("observed", Json::Num(observed)),
                ("limit", Json::Num(limit)),
                ("message", Json::str(message)),
            ])
        };
        let mut reasons = Vec::new();
        if s.queue_depth_max_1m > self.overload.max_queue_depth {
            reasons.push(reason(
                "queue_depth_1m",
                s.queue_depth_max_1m as f64,
                self.overload.max_queue_depth as f64,
                format!(
                    "queue depth reached {} in the last minute (limit {})",
                    s.queue_depth_max_1m, self.overload.max_queue_depth
                ),
            ));
        }
        if let Some(w) = &s.workload {
            let p99 = Duration::from_nanos(w.topk.h10.p99());
            if p99 > self.overload.max_topk_p99 {
                let limit_ms = self.overload.max_topk_p99.as_secs_f64() * 1e3;
                let p99_ms = p99.as_secs_f64() * 1e3;
                reasons.push(reason(
                    "topk_p99_10s",
                    p99_ms,
                    limit_ms,
                    format!("top-k p99 {p99_ms:.1}ms over the last 10s (limit {limit_ms:.1}ms)"),
                ));
            }
        }
        let overloaded = !reasons.is_empty();
        let mut routes: Vec<(String, Json)> = Vec::new();
        if let Some(w) = &s.workload {
            routes.push(("topk".to_owned(), render_route_windows(&w.topk)));
            routes.push(("topk_hit".to_owned(), render_route_windows(&w.topk_hit)));
            for (module, rw) in w.whynot_named() {
                routes.push((format!("whynot_{module}"), render_route_windows(rw)));
            }
            routes.push(("writes".to_owned(), render_route_windows(&w.writes)));
        }
        let write_apply = self.ingest.write_apply_windows();
        Ok(Json::obj([
            ("status", Json::str(if overloaded { "overloaded" } else { "ok" })),
            ("overloaded", Json::Bool(overloaded)),
            ("reasons", Json::Arr(reasons)),
            // What the admission valve currently does about it.
            (
                "admission_level",
                Json::str(match self.admission.level(&self.exec.pressure()) {
                    OverloadLevel::Normal => "normal",
                    OverloadLevel::Overloaded => "overloaded",
                    OverloadLevel::Critical => "critical",
                }),
            ),
            ("uptime_seconds", Json::Num(self.started.elapsed().as_secs_f64())),
            ("observatory", Json::Bool(s.workload.is_some())),
            (
                "queue",
                Json::obj([
                    ("depth", Json::Num(s.queue_depth as f64)),
                    ("max_since_boot", Json::Num(s.queue_depth_max as f64)),
                    ("max_1m", Json::Num(s.queue_depth_max_1m as f64)),
                ]),
            ),
            (
                "limits",
                Json::obj([
                    ("max_queue_depth", Json::Num(self.overload.max_queue_depth as f64)),
                    (
                        "max_topk_p99_ms",
                        Json::Num(self.overload.max_topk_p99.as_secs_f64() * 1e3),
                    ),
                ]),
            ),
            ("routes", Json::Obj(routes)),
            (
                "write_apply",
                Json::Obj(
                    ["1s", "10s", "1m"]
                        .iter()
                        .zip(write_apply.iter())
                        .map(|(name, snap)| ((*name).to_owned(), render_window(snap)))
                        .collect(),
                ),
            ),
        ]))
    }

    /// `GET /debug/heatmap` — where the demand lands: per-STR-cell query
    /// and write heat (exponentially decayed), raw touch counts, the
    /// shard skew ratios, and the hottest query keywords resolved back
    /// to words. Empty shell when the observatory is disabled.
    fn debug_heatmap(&self) -> ApiResult {
        let s = self.exec.stats();
        let Some(w) = &s.workload else {
            return Ok(Json::obj([("enabled", Json::Bool(false))]));
        };
        let vocab = self.vocab.lock();
        let hot: Vec<Json> = w
            .hot_keywords
            .iter()
            .map(|&(id, count)| {
                Json::obj([
                    ("keyword", Json::str(vocab.resolve(KeywordId(id)))),
                    ("count", Json::Num(count as f64)),
                ])
            })
            .collect();
        drop(vocab);
        let cells: Vec<Json> = (0..w.query_heat.len())
            .map(|i| {
                Json::obj([
                    ("cell", Json::Num(i as f64)),
                    ("query_heat", Json::Num(w.query_heat[i])),
                    ("write_heat", Json::Num(w.write_heat[i])),
                    ("query_touches", Json::Num(w.query_touches[i] as f64)),
                    ("write_touches", Json::Num(w.write_touches[i] as f64)),
                ])
            })
            .collect();
        Ok(Json::obj([
            ("enabled", Json::Bool(true)),
            ("cells", Json::Arr(cells)),
            // Skew = hottest cell / mean cell: 0 cold, 1 balanced,
            // `cells` fully concentrated.
            ("query_skew", Json::Num(w.query_skew)),
            ("write_skew", Json::Num(w.write_skew)),
            ("half_life_seconds", Json::Num(w.heat_half_life.as_secs_f64())),
            ("hot_keywords", Json::Arr(hot)),
            ("keyword_total", Json::Num(w.keyword_total as f64)),
        ]))
    }

    /// Sessions still answering against a superseded engine epoch.
    fn pinned_sessions(&self) -> usize {
        let epoch = self.exec.epoch();
        self.sessions.count_where(|session| {
            session
                .pin
                .as_ref()
                .and_then(|p| p.downcast_ref::<EngineHandle>())
                .is_some_and(|h| h.epoch() < epoch)
        })
    }

    fn with_body(&self, req: &Request, f: impl Fn(&Self, &Json) -> ApiResult) -> ApiResult {
        let text = req
            .body_str()
            .ok_or_else(|| (400, "body is not UTF-8".to_owned()))?;
        let body = Json::parse(text).map_err(|e| (400, e.to_string()))?;
        f(self, &body)
    }

    fn health(&self) -> ApiResult {
        Ok(Json::obj([
            ("status", Json::str("ok")),
            ("objects", Json::Num(self.exec.corpus().len() as f64)),
            ("sessions", Json::Num(self.sessions.len() as f64)),
        ]))
    }

    fn stats(&self) -> ApiResult {
        let corpus = self.exec.corpus();
        let s = DatasetStats::of(&corpus);
        let wal = self.ingest.wal_stats();
        let ckpt = self.ingest.checkpoint_stats();
        let copy = self.ingest.copy_stats();
        let pinned_epochs = self.pinned_sessions();
        Ok(Json::obj([
            ("objects", Json::Num(s.objects as f64)),
            ("distinct_keywords", Json::Num(s.distinct_keywords as f64)),
            ("avg_doc", Json::Num(s.avg_doc)),
            ("max_doc", Json::Num(s.max_doc as f64)),
            ("exec", render_exec(&self.exec.stats())),
            ("admission", render_admission(&self.admission.snapshot())),
            (
                "sessions",
                Json::obj([
                    ("live", Json::Num(self.sessions.len() as f64)),
                    // Sessions still answering against a superseded
                    // epoch they pinned at creation.
                    ("pinned_epochs", Json::Num(pinned_epochs as f64)),
                ]),
            ),
            (
                "ingest",
                Json::obj([
                    ("epoch", Json::Num(self.ingest.epoch() as f64)),
                    ("slots", Json::Num(corpus.slot_count() as f64)),
                    ("tombstones", Json::Num(corpus.tombstones() as f64)),
                    ("durable", Json::Bool(wal.is_some())),
                    (
                        "wal_batches",
                        Json::Num(wal.map_or(0.0, |w| w.batches as f64)),
                    ),
                    ("wal_bytes", Json::Num(wal.map_or(0.0, |w| w.bytes as f64))),
                    (
                        "wal_groups",
                        Json::Num(wal.map_or(0.0, |w| w.groups as f64)),
                    ),
                    (
                        "wal_base_epoch",
                        Json::Num(wal.map_or(0.0, |w| w.base_epoch as f64)),
                    ),
                    // Durability-path buffer pools, priced the same way
                    // the shard pager's is (exec.pager): the log file's
                    // live pool and the cumulative counters of every
                    // checkpoint file written or recovered from.
                    (
                        "wal_pool_hits",
                        Json::Num(wal.map_or(0.0, |w| w.pool.hits as f64)),
                    ),
                    (
                        "wal_pool_misses",
                        Json::Num(wal.map_or(0.0, |w| w.pool.misses as f64)),
                    ),
                    (
                        "wal_pool_evictions",
                        Json::Num(wal.map_or(0.0, |w| w.pool.evictions as f64)),
                    ),
                    ("checkpoints", Json::Num(ckpt.checkpoints as f64)),
                    ("checkpoint_epoch", Json::Num(ckpt.last_epoch as f64)),
                    ("checkpoint_pool_hits", Json::Num(ckpt.pool.hits as f64)),
                    ("checkpoint_pool_misses", Json::Num(ckpt.pool.misses as f64)),
                    (
                        "checkpoint_pool_evictions",
                        Json::Num(ckpt.pool.evictions as f64),
                    ),
                    // Chunked-corpus write amplification: cumulative
                    // copy-on-write work over all batches — divided by
                    // exec.batches this stays flat as the corpus grows.
                    ("chunks", Json::Num(corpus.chunk_count() as f64)),
                    ("chunks_copied", Json::Num(copy.chunks_copied as f64)),
                    ("copy_bytes", Json::Num(copy.bytes_copied as f64)),
                    ("coalesce_groups", Json::Num(self.coalescer.groups() as f64)),
                    ("coalesce_batches", Json::Num(self.coalescer.batches() as f64)),
                ]),
            ),
        ]))
    }

    /// Interns a JSON keyword array into a [`KeywordSet`].
    fn intern_keywords(&self, words: &[Json]) -> Result<KeywordSet, (u16, String)> {
        let mut vocab = self.vocab.lock();
        let ids = words
            .iter()
            .map(|w| {
                w.as_str()
                    .map(|s| vocab.intern(&s.to_lowercase()))
                    .ok_or_else(|| (400, "keywords must be strings".to_owned()))
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(KeywordSet::from_ids(ids))
    }

    /// Maps a why-not failure to its HTTP status: an expired deadline is
    /// a `504` (counted), everything else a `400` validation error.
    fn whynot_status(&self, e: WhyNotError) -> (u16, String) {
        if matches!(e, WhyNotError::DeadlineExceeded) {
            self.admission.count_deadline_exceeded();
            (504, e.to_string())
        } else {
            (400, e.to_string())
        }
    }

    fn query(
        &self,
        body: &Json,
        trace: Option<&Trace>,
        deadline: Option<Deadline>,
        degraded: bool,
    ) -> ApiResult {
        let x = field_f64(body, "x")?;
        let y = field_f64(body, "y")?;
        let k = body
            .get("k")
            .and_then(Json::as_usize)
            .filter(|&k| k >= 1)
            .ok_or_else(|| (400, "field 'k' must be a positive integer".to_owned()))?;
        let words = body
            .get("keywords")
            .and_then(Json::as_array)
            .ok_or_else(|| (400, "field 'keywords' must be an array".to_owned()))?;
        let doc = self.intern_keywords(words)?;

        let query = Query::new(Point::new(x, y), doc, k);
        // Pin the engine epoch the query runs against: follow-up why-not
        // questions on this session keep answering over exactly this
        // corpus version, however many writes land in the meantime.
        let handle = self.exec.engine();
        // Hot-cell-aware priority: re-judge now that the query's target
        // cell is known (`Pressure::hot_cell_ratio`) — the flash-crowd
        // cell is what *creates* the overload, so it takes the budget
        // cut even while the engine still reads as healthy overall.
        let (deadline, degraded) = if degraded {
            (deadline, true)
        } else {
            match self.admission.decide(Route::TopK, &self.exec.pressure_for(&handle, &query)) {
                AdmitDecision::Admit => (deadline, false),
                AdmitDecision::Degrade { deadline: budget } => {
                    (Some(deadline.map_or(budget, |d| tighter(d, budget))), true)
                }
                AdmitDecision::Shed { reason, retry_after_secs } => {
                    return Err((
                        429,
                        format!(
                            "overloaded: top-k shed ({}); retry after {retry_after_secs}s",
                            reason.label()
                        ),
                    ));
                }
            }
        };
        // A degraded admission may serve a stale-epoch cached answer
        // instead of queueing any work — explicitly marked, with its
        // age in epochs, so the client knows what it got.
        if degraded {
            if let Some((results, age)) =
                self.exec.cached_topk_stale(&handle, &query, self.degraded_lookback)
            {
                if age > 0 {
                    self.admission.count_degraded_answer();
                }
                let rendered = render_results(handle.corpus(), &results);
                let session = self.sessions.create_pinned(query, results, Arc::new(handle));
                return Ok(Json::obj([
                    ("session", Json::Num(session.0 as f64)),
                    ("degraded", Json::Bool(age > 0)),
                    ("stale_epochs", Json::Num(age as f64)),
                    ("complete", Json::Bool(true)),
                    ("results", rendered),
                ]));
            }
        }
        let out = self.exec.top_k_deadline_on_traced(&handle, &query, trace, deadline);
        if !out.complete && out.results.is_empty() {
            // Nothing finished inside the budget: a clean 504 (the trace
            // is still recorded into the slow log by `handle`).
            self.admission.count_deadline_exceeded();
            return Err((504, "deadline expired before any shard finished".to_owned()));
        }
        if !out.complete {
            self.admission.count_degraded_answer();
        }
        let complete = out.complete;
        let rendered = render_results(handle.corpus(), &out.results);
        let session = self.sessions.create_pinned(query, out.results, Arc::new(handle));
        Ok(Json::obj([
            ("session", Json::Num(session.0 as f64)),
            ("degraded", Json::Bool(!complete)),
            ("complete", Json::Bool(complete)),
            ("results", rendered),
        ]))
    }

    fn explain(&self, body: &Json, trace: Option<&Trace>, deadline: Option<Deadline>) -> ApiResult {
        let (session, missing, handle) = self.session_and_missing(body)?;
        let explanations = self
            .exec
            .explain_on_traced(&handle, &session.query, &missing, trace, deadline)
            .map_err(|e| self.whynot_status(e))?;
        Ok(Json::obj([(
            "explanations",
            Json::Arr(explanations.iter().map(render_explanation).collect()),
        )]))
    }

    fn preference(
        &self,
        body: &Json,
        trace: Option<&Trace>,
        deadline: Option<Deadline>,
    ) -> ApiResult {
        let (session, missing, handle) = self.session_and_missing(body)?;
        let lambda = optional_lambda(body, self.exec.config().yask.default_lambda)?;
        let r = self
            .exec
            .refine_preference_on_traced(&handle, &session.query, &missing, lambda, trace, deadline)
            .map_err(|e| self.whynot_status(e))?;
        let results = self.refined_topk(&handle, &r.query, trace, deadline);
        Ok(Json::obj([
            (
                "refined",
                Json::obj([
                    ("k", Json::Num(r.query.k as f64)),
                    ("ws", Json::Num(r.query.weights.ws())),
                    ("wt", Json::Num(r.query.weights.wt())),
                ]),
            ),
            ("penalty", Json::Num(r.penalty)),
            ("rank", Json::Num(r.rank as f64)),
            ("initial_rank", Json::Num(r.initial_rank as f64)),
            ("delta_k", Json::Num(r.delta_k as f64)),
            ("delta_w", Json::Num(r.delta_w)),
            ("results", render_results(handle.corpus(), &results)),
        ]))
    }

    fn keywords(
        &self,
        body: &Json,
        trace: Option<&Trace>,
        deadline: Option<Deadline>,
    ) -> ApiResult {
        let (session, missing, handle) = self.session_and_missing(body)?;
        let lambda = optional_lambda(body, self.exec.config().yask.default_lambda)?;
        let r = self
            .exec
            .refine_keywords_on_traced(&handle, &session.query, &missing, lambda, trace, deadline)
            .map_err(|e| self.whynot_status(e))?;
        let results = self.refined_topk(&handle, &r.query, trace, deadline);
        let vocab = self.vocab.lock();
        let refined_words: Vec<Json> = r
            .query
            .doc
            .iter()
            .map(|id| Json::str(vocab.resolve(id)))
            .collect();
        drop(vocab);
        Ok(Json::obj([
            (
                "refined",
                Json::obj([
                    ("k", Json::Num(r.query.k as f64)),
                    ("keywords", Json::Arr(refined_words)),
                ]),
            ),
            ("penalty", Json::Num(r.penalty)),
            ("rank", Json::Num(r.rank as f64)),
            ("initial_rank", Json::Num(r.initial_rank as f64)),
            ("delta_k", Json::Num(r.delta_k as f64)),
            ("delta_doc", Json::Num(r.delta_doc as f64)),
            ("results", render_results(handle.corpus(), &results)),
        ]))
    }

    /// The map panel's object listing: all objects in a rectangle,
    /// optionally keyword-filtered (`mode` = "any" | "all").
    fn viewport(&self, body: &Json) -> ApiResult {
        let x0 = field_f64(body, "x0")?;
        let y0 = field_f64(body, "y0")?;
        let x1 = field_f64(body, "x1")?;
        let y1 = field_f64(body, "y1")?;
        if x0 > x1 || y0 > y1 {
            return Err((400, "inverted viewport rectangle".to_owned()));
        }
        let mode = match body.get("mode").and_then(Json::as_str).unwrap_or("all") {
            "any" => yask_query::MatchMode::Any,
            "all" => yask_query::MatchMode::All,
            other => return Err((400, format!("unknown mode {other:?}"))),
        };
        let words = body
            .get("keywords")
            .and_then(Json::as_array)
            .unwrap_or(&[]);
        let doc = self.intern_keywords(words)?;
        let rect = yask_geo::Rect::from_coords(x0, y0, x1, y1);
        let found = self.exec.viewport(&rect, &doc, mode);
        let corpus = self.exec.corpus();
        Ok(Json::obj([(
            "objects",
            Json::Arr(
                found
                    .iter()
                    .map(|&id| {
                        let o = corpus.get(id);
                        Json::obj([
                            ("id", Json::Num(id.0 as f64)),
                            ("name", Json::str(o.name.clone())),
                            ("x", Json::Num(o.loc.x)),
                            ("y", Json::Num(o.loc.y)),
                        ])
                    })
                    .collect(),
            ),
        )]))
    }

    fn combined(
        &self,
        body: &Json,
        trace: Option<&Trace>,
        deadline: Option<Deadline>,
    ) -> ApiResult {
        let (session, missing, handle) = self.session_and_missing(body)?;
        let lambda = optional_lambda(body, self.exec.config().yask.default_lambda)?;
        let r = self
            .exec
            .refine_combined_on_traced(&handle, &session.query, &missing, lambda, trace, deadline)
            .map_err(|e| self.whynot_status(e))?;
        let results = self.refined_topk(&handle, &r.query, trace, deadline);
        let vocab = self.vocab.lock();
        let refined_words: Vec<Json> = r
            .query
            .doc
            .iter()
            .map(|id| Json::str(vocab.resolve(id)))
            .collect();
        drop(vocab);
        Ok(Json::obj([
            (
                "refined",
                Json::obj([
                    ("k", Json::Num(r.query.k as f64)),
                    ("ws", Json::Num(r.query.weights.ws())),
                    ("wt", Json::Num(r.query.weights.wt())),
                    ("keywords", Json::Arr(refined_words)),
                ]),
            ),
            ("penalty", Json::Num(r.penalty)),
            ("rank", Json::Num(r.rank as f64)),
            ("delta_k", Json::Num(r.delta_k as f64)),
            ("delta_w", Json::Num(r.delta_w)),
            ("delta_doc", Json::Num(r.delta_doc as f64)),
            ("order", Json::str(format!("{:?}", r.order))),
            ("results", render_results(handle.corpus(), &results)),
        ]))
    }

    /// The refined query's result preview for a why-not answer, run
    /// under the same deadline. The refinement itself is exact (or the
    /// request already failed with 504); only this preview may be
    /// truncated, which counts as a degraded answer served.
    fn refined_topk(
        &self,
        handle: &EngineHandle,
        query: &Query,
        trace: Option<&Trace>,
        deadline: Option<Deadline>,
    ) -> Vec<RankedObject> {
        let out = self.exec.top_k_deadline_on_traced(handle, query, trace, deadline);
        if !out.complete {
            self.admission.count_degraded_answer();
        }
        out.results
    }

    fn close(&self, body: &Json) -> ApiResult {
        let id = SessionId(field_f64(body, "session")? as u64);
        Ok(Json::obj([("closed", Json::Bool(self.sessions.remove(id)))]))
    }

    // -- live corpus updates ------------------------------------------------

    /// Snapshots the vocabulary next to the WAL (durable services only).
    /// Runs *before* the batch is logged — a snapshot that is a superset
    /// of what the log references is harmless, the reverse is not — and
    /// skips the serialize + fsync when no word was interned since the
    /// last snapshot (the vocabulary is append-only, so equal length
    /// means equal content).
    fn persist_vocab(&self) -> Result<(), (u16, String)> {
        use std::sync::atomic::Ordering;
        let Some(path) = &self.vocab_path else {
            return Ok(());
        };
        // The lock is held across the file write: two concurrent writers
        // must not let an older (shorter) snapshot land after a newer one.
        // Growth is rare, so the occasional fsync under the lock is fine.
        let vocab = self.vocab.lock();
        if vocab.len() == self.vocab_persisted.load(Ordering::Acquire) {
            return Ok(());
        }
        let mut out = Vec::new();
        out.extend_from_slice(VOCAB_MAGIC);
        out.extend_from_slice(&(vocab.len() as u32).to_le_bytes());
        for (_, word) in vocab.iter() {
            out.extend_from_slice(&(word.len() as u32).to_le_bytes());
            out.extend_from_slice(word.as_bytes());
        }
        write_vocab_snapshot(path, &out)
            .map_err(|e| (500, format!("persist vocabulary snapshot: {e}")))?;
        self.vocab_persisted.store(vocab.len(), Ordering::Release);
        Ok(())
    }

    /// Parses one `{x, y, name?, keywords?}` insert payload.
    fn parse_new_object(&self, body: &Json) -> Result<NewObject, (u16, String)> {
        let x = field_f64(body, "x")?;
        let y = field_f64(body, "y")?;
        let name = body
            .get("name")
            .and_then(Json::as_str)
            .unwrap_or("")
            .to_owned();
        let words = body
            .get("keywords")
            .and_then(Json::as_array)
            .unwrap_or(&[]);
        let doc = self.intern_keywords(words)?;
        Ok(NewObject::new(Point::new(x, y), doc, name))
    }

    /// Runs one batch through the write coalescer (concurrent requests
    /// share a group commit), mapping failures to HTTP statuses.
    fn coalesced_write(&self, batch: Vec<Update>) -> Result<yask_ingest::ApplyOutcome, (u16, String)> {
        self.coalescer
            .submit(&self.ingest, &self.exec, batch)
            .map_err(|e| match e {
                WriteError::Rejected(inner) => ingest_status(inner),
                WriteError::Failed(why) => (500, why),
            })
    }

    /// `POST /objects` — insert one object.
    fn insert_object(&self, body: &Json) -> ApiResult {
        let obj = self.parse_new_object(body)?;
        self.persist_vocab()?;
        let out = self.coalesced_write(vec![Update::Insert(obj)])?;
        Ok(Json::obj([
            ("id", Json::Num(out.inserted[0].0 as f64)),
            ("epoch", Json::Num(out.epoch as f64)),
            ("rebalanced", Json::Bool(out.rebalanced)),
        ]))
    }

    /// `DELETE /objects/{id}` — tombstone one object. Sessions whose
    /// cached results reference it stay valid: they pinned their epoch at
    /// creation and keep answering against it.
    fn delete_object(&self, raw_id: &str) -> ApiResult {
        let id: u32 = raw_id
            .parse()
            .map_err(|_| (400, format!("invalid object id {raw_id:?}")))?;
        let out = self.coalesced_write(vec![Update::Delete(ObjectId(id))])?;
        Ok(Json::obj([
            ("deleted", Json::Num(id as f64)),
            ("epoch", Json::Num(out.epoch as f64)),
            ("rebalanced", Json::Bool(out.rebalanced)),
        ]))
    }

    /// `POST /ingest` — a bulk `{inserts: […], deletes: […]}` batch,
    /// committed as one epoch (and one WAL record).
    fn bulk_ingest(&self, body: &Json) -> ApiResult {
        let mut batch: Vec<Update> = Vec::new();
        if let Some(items) = body.get("inserts").and_then(Json::as_array) {
            for item in items {
                batch.push(Update::Insert(self.parse_new_object(item)?));
            }
        }
        if let Some(items) = body.get("deletes").and_then(Json::as_array) {
            for item in items {
                let idx = item
                    .as_usize()
                    .ok_or_else(|| (400, "deletes are non-negative object ids".to_owned()))?;
                let idx = u32::try_from(idx)
                    .map_err(|_| (400, format!("object id {idx} out of range")))?;
                batch.push(Update::Delete(ObjectId(idx)));
            }
        }
        self.persist_vocab()?;
        let out = self.coalesced_write(batch)?;
        Ok(Json::obj([
            ("epoch", Json::Num(out.epoch as f64)),
            (
                "inserted",
                Json::Arr(out.inserted.iter().map(|id| Json::Num(id.0 as f64)).collect()),
            ),
            ("deleted", Json::Num(out.deleted.len() as f64)),
            ("rebalanced", Json::Bool(out.rebalanced)),
        ]))
    }

    /// Resolves a why-not request body to its session, the missing-object
    /// ids, and the engine epoch the session pinned at creation — names
    /// and liveness resolve against the *pinned* corpus version, so a
    /// session keeps addressing objects deleted after its initial query.
    fn session_and_missing(
        &self,
        body: &Json,
    ) -> Result<(yask_core::Session, Vec<ObjectId>, EngineHandle), (u16, String)> {
        let id = SessionId(field_f64(body, "session")? as u64);
        let session = self
            .sessions
            .get(id)
            .ok_or_else(|| (410, format!("session {id} unknown or expired")))?;
        let handle = session
            .pin
            .as_ref()
            .and_then(|p| p.downcast_ref::<EngineHandle>())
            .cloned()
            // Sessions created without a pin answer against the live
            // engine (not produced by this server, but kept total).
            .unwrap_or_else(|| self.exec.engine());
        let raw = body
            .get("missing")
            .and_then(Json::as_array)
            .ok_or_else(|| (400, "field 'missing' must be an array".to_owned()))?;
        let corpus = handle.corpus();
        let mut missing = Vec::with_capacity(raw.len());
        for item in raw {
            let id = match item {
                Json::Num(_) => {
                    let idx = item
                        .as_usize()
                        .ok_or_else(|| (400, "object ids are non-negative integers".to_owned()))?;
                    if idx >= corpus.slot_count() {
                        return Err((400, format!("object id {idx} out of range")));
                    }
                    if !corpus.contains(ObjectId(idx as u32)) {
                        return Err((410, format!("object id {idx} was deleted")));
                    }
                    ObjectId(idx as u32)
                }
                Json::Str(name) => corpus
                    .find_by_name(name)
                    .map(|o| o.id)
                    .ok_or_else(|| (400, format!("no object named {name:?}")))?,
                _ => return Err((400, "missing entries are ids or names".to_owned())),
            };
            missing.push(id);
        }
        Ok((session, missing, handle))
    }
}

/// Renders a ranked result list against the corpus version it was
/// computed on (the session's pinned epoch for why-not answers).
fn render_results(corpus: &Corpus, results: &[RankedObject]) -> Json {
    Json::Arr(
        results
            .iter()
            .enumerate()
            .map(|(i, r)| {
                let o = corpus.get(r.id);
                Json::obj([
                    ("rank", Json::Num((i + 1) as f64)),
                    ("id", Json::Num(r.id.0 as f64)),
                    ("name", Json::str(o.name.clone())),
                    ("x", Json::Num(o.loc.x)),
                    ("y", Json::Num(o.loc.y)),
                    ("score", Json::Num(r.score)),
                ])
            })
            .collect(),
    )
}

/// The tighter of two deadlines (less remaining budget wins).
fn tighter(a: Deadline, b: Deadline) -> Deadline {
    if a.remaining() <= b.remaining() {
        a
    } else {
        b
    }
}

fn field_f64(body: &Json, name: &str) -> Result<f64, (u16, String)> {
    body.get(name)
        .and_then(Json::as_f64)
        .filter(|v| v.is_finite())
        .ok_or_else(|| (400, format!("field '{name}' must be a finite number")))
}

const VOCAB_MAGIC: &[u8; 8] = b"YASKVOC1";

/// Atomically (write-temp, fsync, rename) replaces the vocabulary
/// snapshot at `path`.
fn write_vocab_snapshot(path: &std::path::Path, bytes: &[u8]) -> std::io::Result<()> {
    use std::io::Write;
    let tmp = {
        let mut os = path.as_os_str().to_owned();
        os.push(".tmp");
        std::path::PathBuf::from(os)
    };
    let mut f = std::fs::File::create(&tmp)?;
    f.write_all(bytes)?;
    f.sync_all()?;
    drop(f);
    std::fs::rename(&tmp, path)
}

/// Loads the vocabulary snapshot at `path`; `Ok(None)` when absent.
fn load_vocab_snapshot(
    path: &std::path::Path,
) -> Result<Option<Vocabulary>, IngestError> {
    if !path.exists() {
        return Ok(None);
    }
    let bytes = std::fs::read(path)?;
    let corrupt = |why: &str| IngestError::WalCorrupt(format!("vocabulary snapshot: {why}"));
    if bytes.len() < 12 || &bytes[..8] != VOCAB_MAGIC {
        return Err(corrupt("bad magic"));
    }
    let count = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes")) as usize;
    let mut words = Vec::with_capacity(count.min(1 << 20));
    let mut pos = 12usize;
    for _ in 0..count {
        if pos + 4 > bytes.len() {
            return Err(corrupt("truncated"));
        }
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().expect("4 bytes")) as usize;
        pos += 4;
        if pos + len > bytes.len() {
            return Err(corrupt("truncated word"));
        }
        let word = std::str::from_utf8(&bytes[pos..pos + len]).map_err(|_| corrupt("not UTF-8"))?;
        words.push(word.to_owned());
        pos += len;
    }
    Ok(Some(Vocabulary::from_words(words)))
}

/// Maps a rejected or failed write batch to an HTTP status.
fn ingest_status(e: IngestError) -> (u16, String) {
    let status = match &e {
        IngestError::EmptyBatch
        | IngestError::NonFiniteLocation
        | IngestError::DuplicateDelete(_) => 400,
        IngestError::UnknownObject(_) => 404,
        IngestError::DeadObject(_) => 410,
        IngestError::WalBaseMismatch { .. } | IngestError::WalCorrupt(_) | IngestError::Io(_) => {
            500
        }
    };
    (status, e.to_string())
}

fn optional_lambda(body: &Json, default: f64) -> Result<f64, (u16, String)> {
    match body.get("lambda") {
        None => Ok(default),
        Some(v) => v
            .as_f64()
            .filter(|l| (0.0..=1.0).contains(l))
            .ok_or_else(|| (400, "field 'lambda' must be in [0, 1]".to_owned())),
    }
}

/// Renders one windowed aggregate as `{count, rate, p50_us, p99_us,
/// max_us}`.
fn render_window(w: &WindowSnapshot) -> Json {
    Json::obj([
        ("count", Json::Num(w.count as f64)),
        ("rate", Json::Num(w.rate_per_sec())),
        ("p50_us", Json::Num(w.p50() as f64 / 1e3)),
        ("p99_us", Json::Num(w.p99() as f64 / 1e3)),
        ("max_us", Json::Num(w.max_ns as f64 / 1e3)),
    ])
}

/// Renders one route's three standard horizons keyed `"1s"`, `"10s"`,
/// `"1m"`.
fn render_route_windows(rw: &RouteWindows) -> Json {
    Json::Obj(
        rw.iter_named()
            .iter()
            .map(|(name, snap)| ((*name).to_owned(), render_window(snap)))
            .collect(),
    )
}

fn render_cache(c: &CacheSnapshot) -> Json {
    Json::obj([
        ("hits", Json::Num(c.hits as f64)),
        ("misses", Json::Num(c.misses as f64)),
        ("insertions", Json::Num(c.insertions as f64)),
        ("evictions", Json::Num(c.evictions as f64)),
        ("hit_rate", Json::Num(c.hit_rate())),
        ("len", Json::Num(c.len as f64)),
        ("cap", Json::Num(c.cap as f64)),
    ])
}

/// Renders a finished trace as `{label, total_us, spans}` with each span
/// carrying its id and parent id (`null` for roots) so clients can
/// rebuild the tree.
fn render_trace(t: &FinishedTrace) -> Json {
    Json::obj([
        ("label", Json::str(t.label.clone())),
        ("total_us", Json::Num(t.total_ns as f64 / 1_000.0)),
        (
            "spans",
            Json::Arr(
                t.spans
                    .iter()
                    .map(|s| {
                        Json::obj([
                            ("id", Json::Num(s.id as f64)),
                            (
                                "parent",
                                if s.parent == NO_PARENT {
                                    Json::Null
                                } else {
                                    Json::Num(s.parent as f64)
                                },
                            ),
                            ("name", Json::str(s.name.clone())),
                            ("start_us", Json::Num(s.start_ns as f64 / 1_000.0)),
                            ("dur_us", Json::Num(s.dur_ns as f64 / 1_000.0)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

fn render_exec(s: &ExecSnapshot) -> Json {
    Json::obj([
        ("shards", Json::Num(s.shards as f64)),
        ("workers", Json::Num(s.workers as f64)),
        ("queue_depth", Json::Num(s.queue_depth as f64)),
        // High-water mark since startup: pool saturation between two
        // `/stats` scrapes is invisible in the point-in-time depth.
        ("queue_depth_max", Json::Num(s.queue_depth_max as f64)),
        // Reset-safe cousin: the highest depth in the last minute ages
        // out on its own, so old spikes don't read as current overload.
        ("queue_depth_max_1m", Json::Num(s.queue_depth_max_1m as f64)),
        // Submits that ran inline on the caller because the bounded
        // queue was full — backpressure reaching the submitters.
        ("queue_saturated", Json::Num(s.queue_saturated as f64)),
        ("queries", Json::Num(s.queries as f64)),
        ("scatter_queries", Json::Num(s.scatter_queries as f64)),
        ("single_queries", Json::Num(s.single_queries as f64)),
        ("epoch", Json::Num(s.epoch as f64)),
        ("live_objects", Json::Num(s.live_objects as f64)),
        ("tombstones", Json::Num(s.tombstones as f64)),
        ("batches", Json::Num(s.batches as f64)),
        ("inserts", Json::Num(s.inserts as f64)),
        ("deletes", Json::Num(s.deletes as f64)),
        ("rebalances", Json::Num(s.rebalances as f64)),
        ("index_nodes", Json::Num(s.index_nodes as f64)),
        ("index_bytes", Json::Num(s.index_bytes as f64)),
        // Path-copying tree write amplification: cumulative arena chunks
        // copied/created and bytes deep-copied deriving each epoch's
        // trees — the tree-side analogue of the ingest `chunks_copied` /
        // `copy_bytes` pair, O(spine) per batch.
        ("index_chunks_copied", Json::Num(s.index_chunks_copied as f64)),
        ("index_chunks_created", Json::Num(s.index_chunks_created as f64)),
        ("index_copy_bytes", Json::Num(s.index_copy_bytes as f64)),
        ("topk_cache", render_cache(&s.topk_cache)),
        ("answer_cache", render_cache(&s.answer_cache)),
        // Out-of-core shard pager: buffer-pool page counters plus
        // decoded-chunk fault counters when trees are served under a
        // resident budget; `null` when every tree is resident.
        (
            "pager",
            match &s.pager {
                None => Json::Null,
                Some(pg) => Json::obj([
                    ("paged_trees", Json::Num(pg.paged_trees as f64)),
                    ("budget_bytes", Json::Num(pg.budget_bytes as f64)),
                    ("pool_hits", Json::Num(pg.pool_hits as f64)),
                    ("pool_misses", Json::Num(pg.pool_misses as f64)),
                    ("pool_evictions", Json::Num(pg.pool_evictions as f64)),
                    ("pool_capacity", Json::Num(pg.pool_capacity as f64)),
                    ("pool_pages", Json::Num(pg.pool_pages as f64)),
                    ("chunk_hits", Json::Num(pg.chunk_hits as f64)),
                    ("chunk_misses", Json::Num(pg.chunk_misses as f64)),
                    ("chunk_evictions", Json::Num(pg.chunk_evictions as f64)),
                    ("resident_chunks", Json::Num(pg.resident_chunks as f64)),
                    ("chunk_count", Json::Num(pg.chunk_count as f64)),
                ]),
            },
        ),
        // Observatory summary: heat/skew per STR cell and the 1 m top-k
        // window — the full surface lives at /debug/heatmap and
        // /debug/health. `null` when the observatory is disabled.
        (
            "workload",
            match &s.workload {
                None => Json::Null,
                Some(w) => Json::obj([
                    ("query_skew", Json::Num(w.query_skew)),
                    ("write_skew", Json::Num(w.write_skew)),
                    (
                        "query_heat",
                        Json::Arr(w.query_heat.iter().map(|&h| Json::Num(h)).collect()),
                    ),
                    (
                        "write_heat",
                        Json::Arr(w.write_heat.iter().map(|&h| Json::Num(h)).collect()),
                    ),
                    ("topk_rate_1m", Json::Num(w.topk.h60.rate_per_sec())),
                    ("topk_p99_us_10s", Json::Num(w.topk.h10.p99() as f64 / 1e3)),
                ]),
            },
        ),
        (
            "per_shard",
            Json::Arr(
                s.per_shard
                    .iter()
                    .map(|p| {
                        Json::obj([
                            ("objects", Json::Num(p.objects as f64)),
                            ("nodes", Json::Num(p.nodes as f64)),
                            ("index_bytes", Json::Num(p.index_bytes as f64)),
                            ("queries", Json::Num(p.queries as f64)),
                            ("mean_us", Json::Num(p.mean_us)),
                            ("p50_us", Json::Num(p.p50_us)),
                            ("p99_us", Json::Num(p.p99_us)),
                            ("total_us", Json::Num(p.total_us)),
                            ("nodes_expanded", Json::Num(p.nodes_expanded as f64)),
                            ("objects_scored", Json::Num(p.objects_scored as f64)),
                            ("inserts", Json::Num(p.inserts as f64)),
                            ("deletes", Json::Num(p.deletes as f64)),
                            ("arena_chunks", Json::Num(p.arena_chunks as f64)),
                            ("arena_bytes", Json::Num(p.arena_bytes as f64)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

/// Renders the admission valve's counters: the `(route, reason)` shed
/// grid plus degraded/deadline totals.
fn render_admission(a: &AdmissionSnapshot) -> Json {
    Json::obj([
        ("shed_total", Json::Num(a.shed_total as f64)),
        ("degraded_admits", Json::Num(a.degraded_admits as f64)),
        ("degraded_answers", Json::Num(a.degraded_answers as f64)),
        ("deadline_exceeded", Json::Num(a.deadline_exceeded as f64)),
        (
            "shed",
            Json::Arr(
                a.shed
                    .iter()
                    .map(|c| {
                        Json::obj([
                            ("route", Json::str(c.route)),
                            ("reason", Json::str(c.reason)),
                            ("count", Json::Num(c.count as f64)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

fn render_explanation(e: &Explanation) -> Json {
    Json::obj([
        ("id", Json::Num(e.object.0 as f64)),
        ("name", Json::str(e.name.clone())),
        ("rank", Json::Num(e.rank as f64)),
        ("k", Json::Num(e.k as f64)),
        ("score", Json::Num(e.score)),
        ("spatial", Json::Num(e.spatial_part)),
        ("textual", Json::Num(e.textual_part)),
        ("reason", Json::str(format!("{:?}", e.reason))),
        ("message", Json::str(e.message.clone())),
    ])
}

/// The browser landing page — a text substitute for the Google-Maps GUI
/// of the demo (Figs 3–5); see DESIGN.md §3.
const LANDING_PAGE: &str = r#"<!doctype html>
<html><head><title>YASK — why-not spatial keyword queries</title></head>
<body>
<h1>YASK</h1>
<p>A whY-not question Answering engine for Spatial Keyword query services.</p>
<p>POST /query {"x":114.17,"y":22.30,"keywords":["clean","comfortable"],"k":3}</p>
<p>POST /whynot/explain {"session":ID,"missing":["Hotel Name"]}</p>
<p>POST /whynot/preference | /whynot/keywords | /whynot/combined {"session":ID,"missing":[...],"lambda":0.5}</p>
<p>POST /session/close {"session":ID}</p>
<p>POST /objects {"x":114.18,"y":22.31,"name":"New Hotel","keywords":["clean","spa"]}</p>
<p>DELETE /objects/ID</p>
<p>POST /ingest {"inserts":[...],"deletes":[ID,...]}</p>
</body></html>
"#;

#[cfg(test)]
mod tests {
    use super::*;

    fn service() -> YaskService {
        YaskService::hk_demo()
    }

    fn post(service: &YaskService, path: &str, body: Json) -> (u16, Json) {
        let req = Request {
            method: "POST".into(),
            path: path.into(),
            query: String::new(),
            version: "HTTP/1.1".into(),
            headers: vec![],
            body: body.to_string().into_bytes(),
        };
        let resp = service.handle(&req);
        let parsed = Json::parse(std::str::from_utf8(&resp.body).unwrap()).unwrap();
        (resp.status, parsed)
    }

    fn get(service: &YaskService, path: &str) -> (u16, Json) {
        let req = Request {
            method: "GET".into(),
            path: path.into(),
            query: String::new(),
            version: "HTTP/1.1".into(),
            headers: vec![],
            body: vec![],
        };
        let resp = service.handle(&req);
        if resp.content_type.starts_with("text/html") {
            return (resp.status, Json::Null);
        }
        let parsed = Json::parse(std::str::from_utf8(&resp.body).unwrap()).unwrap();
        (resp.status, parsed)
    }

    fn tst_query(service: &YaskService, k: usize) -> (u64, Vec<String>) {
        let (status, body) = post(
            service,
            "/query",
            Json::obj([
                ("x", Json::Num(114.172)),
                ("y", Json::Num(22.297)),
                ("keywords", Json::Arr(vec![Json::str("clean"), Json::str("comfortable")])),
                ("k", Json::Num(k as f64)),
            ]),
        );
        assert_eq!(status, 200, "{body}");
        let session = body.get("session").unwrap().as_f64().unwrap() as u64;
        let names = body
            .get("results")
            .unwrap()
            .as_array()
            .unwrap()
            .iter()
            .map(|r| r.get("name").unwrap().as_str().unwrap().to_owned())
            .collect();
        (session, names)
    }

    #[test]
    fn health_and_stats() {
        let s = service();
        let (status, body) = get(&s, "/health");
        assert_eq!(status, 200);
        assert_eq!(body.get("objects").unwrap().as_usize(), Some(539));
        let (status, body) = get(&s, "/stats");
        assert_eq!(status, 200);
        assert!(body.get("distinct_keywords").unwrap().as_usize().unwrap() > 50);
    }

    #[test]
    fn query_creates_session_with_k_results() {
        let s = service();
        let (session, names) = tst_query(&s, 3);
        assert!(session >= 1);
        assert_eq!(names.len(), 3);
        assert_eq!(s.session_count(), 1);
    }

    #[test]
    fn full_why_not_flow_over_the_api() {
        let s = service();
        let (session, top_names) = tst_query(&s, 3);

        // Find a hotel not in the result to ask about (by name).
        let corpus = s.corpus();
        let missing_name = corpus
            .iter()
            .map(|o| o.name.clone())
            .find(|n| !top_names.contains(n))
            .unwrap();

        let (status, body) = post(
            &s,
            "/whynot/explain",
            Json::obj([
                ("session", Json::Num(session as f64)),
                ("missing", Json::Arr(vec![Json::str(missing_name.clone())])),
            ]),
        );
        assert_eq!(status, 200, "{body}");
        let ex = &body.get("explanations").unwrap().as_array().unwrap()[0];
        assert_eq!(ex.get("name").unwrap().as_str(), Some(missing_name.as_str()));
        assert!(ex.get("rank").unwrap().as_usize().unwrap() > 3);

        for path in ["/whynot/preference", "/whynot/keywords", "/whynot/combined"] {
            let (status, body) = post(
                &s,
                path,
                Json::obj([
                    ("session", Json::Num(session as f64)),
                    ("missing", Json::Arr(vec![Json::str(missing_name.clone())])),
                    ("lambda", Json::Num(0.5)),
                ]),
            );
            assert_eq!(status, 200, "{path}: {body}");
            let penalty = body.get("penalty").unwrap().as_f64().unwrap();
            assert!((0.0..=1.0).contains(&penalty), "{path}");
            // The refined result must contain the missing hotel.
            let revived = body
                .get("results")
                .unwrap()
                .as_array()
                .unwrap()
                .iter()
                .any(|r| r.get("name").unwrap().as_str() == Some(missing_name.as_str()));
            assert!(revived, "{path} did not revive {missing_name}");
        }

        let (status, body) = post(
            &s,
            "/session/close",
            Json::obj([("session", Json::Num(session as f64))]),
        );
        assert_eq!(status, 200);
        assert_eq!(body.get("closed").unwrap().as_bool(), Some(true));
        assert_eq!(s.session_count(), 0);
    }

    #[test]
    fn viewport_lists_objects_in_rect() {
        let s = service();
        // Whole city, no filter.
        let (status, body) = post(
            &s,
            "/viewport",
            Json::obj([
                ("x0", Json::Num(114.0)),
                ("y0", Json::Num(22.0)),
                ("x1", Json::Num(115.0)),
                ("y1", Json::Num(23.0)),
            ]),
        );
        assert_eq!(status, 200, "{body}");
        assert_eq!(body.get("objects").unwrap().as_array().unwrap().len(), 539);
        // Keyword-filtered subset.
        let (status, body) = post(
            &s,
            "/viewport",
            Json::obj([
                ("x0", Json::Num(114.0)),
                ("y0", Json::Num(22.0)),
                ("x1", Json::Num(115.0)),
                ("y1", Json::Num(23.0)),
                ("keywords", Json::Arr(vec![Json::str("spa")])),
                ("mode", Json::str("any")),
            ]),
        );
        assert_eq!(status, 200);
        let n = body.get("objects").unwrap().as_array().unwrap().len();
        assert!(n > 0 && n < 539, "spa filter returned {n}");
        // Inverted rect rejected.
        let (status, _) = post(
            &s,
            "/viewport",
            Json::obj([
                ("x0", Json::Num(115.0)),
                ("y0", Json::Num(22.0)),
                ("x1", Json::Num(114.0)),
                ("y1", Json::Num(23.0)),
            ]),
        );
        assert_eq!(status, 400);
    }

    #[test]
    fn bad_requests_get_400() {
        let s = service();
        // Not JSON.
        let req = Request {
            method: "POST".into(),
            path: "/query".into(),
            query: String::new(),
            version: "HTTP/1.1".into(),
            headers: vec![],
            body: b"not json".to_vec(),
        };
        assert_eq!(s.handle(&req).status, 400);
        // Missing fields.
        let (status, _) = post(&s, "/query", Json::obj([("x", Json::Num(1.0))]));
        assert_eq!(status, 400);
        // Bad k.
        let (status, _) = post(
            &s,
            "/query",
            Json::obj([
                ("x", Json::Num(114.0)),
                ("y", Json::Num(22.0)),
                ("keywords", Json::Arr(vec![])),
                ("k", Json::Num(0.0)),
            ]),
        );
        assert_eq!(status, 400);
    }

    #[test]
    fn unknown_session_is_410() {
        let s = service();
        let (status, _) = post(
            &s,
            "/whynot/explain",
            Json::obj([
                ("session", Json::Num(999.0)),
                ("missing", Json::Arr(vec![Json::Num(1.0)])),
            ]),
        );
        assert_eq!(status, 410);
    }

    #[test]
    fn unknown_route_and_method() {
        let s = service();
        let (status, _) = get(&s, "/nope");
        assert_eq!(status, 404);
        let req = Request {
            method: "DELETE".into(),
            path: "/query".into(),
            query: String::new(),
            version: "HTTP/1.1".into(),
            headers: vec![],
            body: vec![],
        };
        assert_eq!(s.handle(&req).status, 405);
    }

    #[test]
    fn unknown_missing_name_is_400() {
        let s = service();
        let (session, _) = tst_query(&s, 3);
        let (status, body) = post(
            &s,
            "/whynot/explain",
            Json::obj([
                ("session", Json::Num(session as f64)),
                ("missing", Json::Arr(vec![Json::str("No Such Hotel")])),
            ]),
        );
        assert_eq!(status, 400);
        assert!(body.get("error").unwrap().as_str().unwrap().contains("No Such Hotel"));
    }

    #[test]
    fn stats_expose_exec_metrics() {
        let s = service();
        let (_, _) = tst_query(&s, 3);
        let (status, body) = get(&s, "/stats");
        assert_eq!(status, 200);
        let exec = body.get("exec").unwrap();
        assert_eq!(exec.get("shards").unwrap().as_usize(), Some(4));
        assert_eq!(exec.get("workers").unwrap().as_usize(), Some(4));
        assert_eq!(exec.get("scatter_queries").unwrap().as_usize(), Some(1));
        let topk = exec.get("topk_cache").unwrap();
        assert_eq!(topk.get("misses").unwrap().as_usize(), Some(1));
        let per_shard = exec.get("per_shard").unwrap().as_array().unwrap();
        assert_eq!(per_shard.len(), 4);
        let objects: usize = per_shard
            .iter()
            .map(|p| p.get("objects").unwrap().as_usize().unwrap())
            .sum();
        assert_eq!(objects, 539);
    }

    /// Satellite: `/stats` proves the global tree is gone — the index
    /// footprint is exactly the per-shard node/byte counters summed, and
    /// the per-shard live counts stay tombstone-adjusted after deletes.
    #[test]
    fn stats_expose_per_shard_index_shape() {
        let s = service();
        let (status, body) = get(&s, "/stats");
        assert_eq!(status, 200);
        let exec = body.get("exec").unwrap();
        let per_shard = exec.get("per_shard").unwrap().as_array().unwrap();
        let nodes: usize = per_shard
            .iter()
            .map(|p| p.get("nodes").unwrap().as_usize().unwrap())
            .sum();
        let bytes: usize = per_shard
            .iter()
            .map(|p| p.get("index_bytes").unwrap().as_usize().unwrap())
            .sum();
        assert!(nodes > 0);
        assert!(bytes > 0);
        assert_eq!(exec.get("index_nodes").unwrap().as_usize(), Some(nodes));
        assert_eq!(exec.get("index_bytes").unwrap().as_usize(), Some(bytes));
        // Arena view: every shard reports its chunked node slab, which
        // holds at least the reachable bytes; no batch has been applied
        // yet, so the tree-copy counters are zero.
        for p in per_shard {
            let arena = p.get("arena_bytes").unwrap().as_usize().unwrap();
            let reachable = p.get("index_bytes").unwrap().as_usize().unwrap();
            assert!(arena >= reachable, "arena {arena} < reachable {reachable}");
        }
        assert_eq!(exec.get("index_chunks_copied").unwrap().as_usize(), Some(0));
        assert_eq!(exec.get("index_copy_bytes").unwrap().as_usize(), Some(0));
        // A single-tree deployment of the same corpus reports one tree;
        // the sharded executor holds only its shards — no global tree on
        // top (the sharded node total stays in the same ballpark instead
        // of doubling).
        let (corpus, vocab) = yask_data::hk_hotels();
        let single = YaskService::with_config(
            corpus,
            vocab,
            ServiceConfig {
                exec: ExecConfig::single_tree(yask_core::YaskConfig::default()),
                session_ttl: Duration::from_secs(60),
                ..ServiceConfig::default()
            },
        );
        let single_nodes = single.executor().stats().index_nodes;
        assert!(single_nodes > 0);
        assert!(
            nodes < 2 * single_nodes,
            "sharded index carries a hidden global tree: {nodes} vs single {single_nodes}"
        );

        // Tombstone adjustment: delete one object, live counts follow.
        let live_before = exec.get("live_objects").unwrap().as_usize().unwrap();
        let del = Request {
            method: "DELETE".into(),
            path: "/objects/0".into(),
            query: String::new(),
            version: "HTTP/1.1".into(),
            headers: vec![],
            body: Vec::new(),
        };
        assert_eq!(s.handle(&del).status, 200);
        let (_, body) = get(&s, "/stats");
        let exec = body.get("exec").unwrap();
        assert_eq!(
            exec.get("live_objects").unwrap().as_usize(),
            Some(live_before - 1)
        );
        assert_eq!(exec.get("tombstones").unwrap().as_usize(), Some(1));
        // The delete batch paid a bounded path-copy bill, now visible in
        // the cumulative tree-copy counters.
        assert!(exec.get("index_chunks_copied").unwrap().as_usize().unwrap() >= 1);
        assert!(exec.get("index_copy_bytes").unwrap().as_usize().unwrap() > 0);
        let objects: usize = exec
            .get("per_shard")
            .unwrap()
            .as_array()
            .unwrap()
            .iter()
            .map(|p| p.get("objects").unwrap().as_usize().unwrap())
            .sum();
        assert_eq!(objects, live_before - 1, "per-shard live counts adjust");
    }

    /// Satellite: the WAL group counter is surfaced (0 groups for a
    /// volatile deployment, but the field must exist).
    #[test]
    fn stats_expose_wal_groups() {
        let s = service();
        let (_, body) = get(&s, "/stats");
        let ingest = body.get("ingest").unwrap();
        assert_eq!(ingest.get("wal_groups").unwrap().as_usize(), Some(0));
        assert_eq!(ingest.get("durable").unwrap(), &Json::Bool(false));
    }

    #[test]
    fn repeated_query_is_served_from_the_cache() {
        let s = service();
        let (_, names_a) = tst_query(&s, 3);
        let (_, names_b) = tst_query(&s, 3);
        assert_eq!(names_a, names_b);
        let exec = s.executor().stats();
        assert_eq!(exec.topk_cache.hits, 1);
        assert_eq!(exec.queries, 1, "second query must come from the cache");
    }

    #[test]
    fn session_ttl_is_configurable() {
        let (corpus, vocab) = yask_data::hk_hotels();
        let s = YaskService::with_config(
            corpus,
            vocab,
            ServiceConfig {
                exec: ExecConfig::single_tree(yask_core::YaskConfig::default()),
                session_ttl: Duration::from_millis(40),
                ..ServiceConfig::default()
            },
        );
        assert_eq!(s.session_ttl(), Duration::from_millis(40));
        let (_, _) = tst_query(&s, 2);
        assert_eq!(s.session_count(), 1);
        std::thread::sleep(Duration::from_millis(80));
        // The next request sweeps the expired session.
        let (status, _) = get(&s, "/health");
        assert_eq!(status, 200);
        assert_eq!(s.session_count(), 0);
    }

    #[test]
    fn background_sweeper_evicts_without_traffic() {
        let (corpus, vocab) = yask_data::hk_hotels();
        let s = Arc::new(YaskService::with_config(
            corpus,
            vocab,
            ServiceConfig {
                exec: ExecConfig::single_tree(yask_core::YaskConfig::default()),
                session_ttl: Duration::from_millis(30),
                ..ServiceConfig::default()
            },
        ));
        let _sweeper = s.spawn_session_sweeper(Duration::from_millis(10));
        let (_, _) = tst_query(&s, 2);
        assert_eq!(s.session_count(), 1);
        // No requests from here on: the sweeper alone must evict.
        let deadline = std::time::Instant::now() + Duration::from_secs(2);
        while s.session_count() > 0 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(10));
        }
        assert_eq!(s.session_count(), 0, "sweeper never fired");
    }

    fn delete(service: &YaskService, path: &str) -> (u16, Json) {
        let req = Request {
            method: "DELETE".into(),
            path: path.into(),
            query: String::new(),
            version: "HTTP/1.1".into(),
            headers: vec![],
            body: vec![],
        };
        let resp = service.handle(&req);
        let parsed = Json::parse(std::str::from_utf8(&resp.body).unwrap()).unwrap();
        (resp.status, parsed)
    }

    #[test]
    fn insert_object_is_immediately_queryable() {
        let s = service();
        // Insert a hotel at the test query location with both keywords —
        // at distance 0 with full textual match it must take rank 1.
        let (status, body) = post(
            &s,
            "/objects",
            Json::obj([
                ("x", Json::Num(114.172)),
                ("y", Json::Num(22.297)),
                ("name", Json::str("Fresh Hotel")),
                (
                    "keywords",
                    Json::Arr(vec![Json::str("clean"), Json::str("comfortable")]),
                ),
            ]),
        );
        assert_eq!(status, 200, "{body}");
        assert_eq!(body.get("id").unwrap().as_usize(), Some(539));
        assert_eq!(body.get("epoch").unwrap().as_usize(), Some(1));
        let (_, names) = tst_query(&s, 3);
        assert_eq!(names[0], "Fresh Hotel");
        let (_, health) = get(&s, "/health");
        assert_eq!(health.get("objects").unwrap().as_usize(), Some(540));
    }

    /// Satellite: per-epoch sessions. Deleting an object a session's
    /// cached results cite no longer kills the session — it pinned its
    /// epoch at creation and keeps answering against it, while *new*
    /// sessions see the post-delete corpus.
    #[test]
    fn delete_keeps_pinned_sessions_answering() {
        let s = service();
        let (session, names) = tst_query(&s, 3);
        let corpus = s.corpus();
        let top_id = corpus.find_by_name(&names[0]).unwrap().id;
        // A hotel outside the session's top-3 to ask why-not about.
        let missing_id = corpus
            .iter()
            .map(|o| o.id)
            .find(|&id| {
                let name = &corpus.get(id).name;
                id != top_id && !names.contains(name)
            })
            .unwrap();
        drop(corpus);
        // Delete the top result out from under the session, and the
        // missing object too — both stay alive in the pinned epoch.
        let (status, body) = delete(&s, &format!("/objects/{}", top_id.0));
        assert_eq!(status, 200, "{body}");
        assert_eq!(body.get("epoch").unwrap().as_usize(), Some(1));
        let (status, _) = delete(&s, &format!("/objects/{}", missing_id.0));
        assert_eq!(status, 200);
        assert_eq!(s.session_count(), 1, "pinned session must survive the deletes");
        // The session still answers why-not questions — even *about* the
        // deleted missing object, which is alive in its pinned epoch.
        let (status, body) = post(
            &s,
            "/whynot/explain",
            Json::obj([
                ("session", Json::Num(session as f64)),
                ("missing", Json::Arr(vec![Json::Num(missing_id.0 as f64)])),
            ]),
        );
        assert_eq!(status, 200, "{body}");
        let ex = &body.get("explanations").unwrap().as_array().unwrap()[0];
        assert!(ex.get("rank").unwrap().as_usize().unwrap() > 3);
        // /stats counts the session as pinned to a superseded epoch.
        let (_, stats) = get(&s, "/stats");
        let sessions = stats.get("sessions").unwrap();
        assert_eq!(sessions.get("live").unwrap().as_usize(), Some(1));
        assert_eq!(sessions.get("pinned_epochs").unwrap().as_usize(), Some(1));
        // A new query no longer returns the deleted hotel, and its *new*
        // session (pinned to the post-delete epoch) rejects the dead id.
        let (session2, names2) = tst_query(&s, 3);
        assert!(!names2.contains(&names[0]), "deleted hotel still served");
        let (status, body) = post(
            &s,
            "/whynot/explain",
            Json::obj([
                ("session", Json::Num(session2 as f64)),
                ("missing", Json::Arr(vec![Json::Num(top_id.0 as f64)])),
            ]),
        );
        assert_eq!(status, 410, "{body}");
        // The old session's refinements also run on the pinned epoch: the
        // deleted hotel is revivable there.
        let (status, body) = post(
            &s,
            "/whynot/preference",
            Json::obj([
                ("session", Json::Num(session as f64)),
                ("missing", Json::Arr(vec![Json::Num(missing_id.0 as f64)])),
                ("lambda", Json::Num(0.5)),
            ]),
        );
        assert_eq!(status, 200, "{body}");
        let revived = body
            .get("results")
            .unwrap()
            .as_array()
            .unwrap()
            .iter()
            .any(|r| r.get("id").unwrap().as_usize() == Some(missing_id.0 as usize));
        assert!(revived, "pinned refinement must revive the deleted hotel");
        // Closing the pinned session releases its epoch.
        let (status, _) = post(
            &s,
            "/session/close",
            Json::obj([("session", Json::Num(session as f64))]),
        );
        assert_eq!(status, 200);
        let (_, stats) = get(&s, "/stats");
        let sessions = stats.get("sessions").unwrap();
        assert_eq!(sessions.get("pinned_epochs").unwrap().as_usize(), Some(0));
        // Deleting again: already gone.
        let (status, _) = delete(&s, &format!("/objects/{}", top_id.0));
        assert_eq!(status, 410);
        // Unknown id and malformed id.
        let (status, _) = delete(&s, "/objects/99999");
        assert_eq!(status, 404);
        let (status, _) = delete(&s, "/objects/abc");
        assert_eq!(status, 400);
    }

    #[test]
    fn bulk_ingest_is_one_epoch_and_stats_report_it() {
        let s = service();
        let inserts = Json::Arr(
            (0..3)
                .map(|i| {
                    Json::obj([
                        ("x", Json::Num(114.1 + 0.01 * i as f64)),
                        ("y", Json::Num(22.3)),
                        ("name", Json::str(format!("Bulk {i}"))),
                        ("keywords", Json::Arr(vec![Json::str("bulk")])),
                    ])
                })
                .collect::<Vec<_>>(),
        );
        let (status, body) = post(
            &s,
            "/ingest",
            Json::obj([
                ("inserts", inserts),
                ("deletes", Json::Arr(vec![Json::Num(7.0), Json::Num(9.0)])),
            ]),
        );
        assert_eq!(status, 200, "{body}");
        assert_eq!(body.get("epoch").unwrap().as_usize(), Some(1), "one batch, one epoch");
        let ids: Vec<usize> = body
            .get("inserted")
            .unwrap()
            .as_array()
            .unwrap()
            .iter()
            .map(|v| v.as_usize().unwrap())
            .collect();
        assert_eq!(ids, vec![539, 540, 541]);
        assert_eq!(body.get("deleted").unwrap().as_usize(), Some(2));

        let (status, stats) = get(&s, "/stats");
        assert_eq!(status, 200);
        assert_eq!(stats.get("objects").unwrap().as_usize(), Some(540));
        let ingest = stats.get("ingest").unwrap();
        assert_eq!(ingest.get("epoch").unwrap().as_usize(), Some(1));
        assert_eq!(ingest.get("slots").unwrap().as_usize(), Some(542));
        assert_eq!(ingest.get("tombstones").unwrap().as_usize(), Some(2));
        assert_eq!(ingest.get("durable").unwrap().as_bool(), Some(false));
        let exec = stats.get("exec").unwrap();
        assert_eq!(exec.get("epoch").unwrap().as_usize(), Some(1));
        assert_eq!(exec.get("batches").unwrap().as_usize(), Some(1));
        assert_eq!(exec.get("inserts").unwrap().as_usize(), Some(3));
        assert_eq!(exec.get("deletes").unwrap().as_usize(), Some(2));
        // An empty batch is rejected.
        let (status, _) = post(&s, "/ingest", Json::obj([]));
        assert_eq!(status, 400);
    }

    #[test]
    fn wal_backed_service_survives_restart() {
        let mut path = std::env::temp_dir();
        path.push(format!("yask-api-{}.wal", std::process::id()));
        std::fs::remove_file(&path).ok();
        let config = ServiceConfig {
            exec: ExecConfig::single_tree(yask_core::YaskConfig::default()),
            ..ServiceConfig::default()
        };
        {
            let (corpus, vocab) = yask_data::hk_hotels();
            let s = YaskService::with_wal(corpus, vocab, config, &path).unwrap();
            // A query interns a brand-new word *before* the insert does:
            // without the vocabulary snapshot the replayed insert would
            // rebind to whatever id the post-restart intern order assigns.
            let (status, _) = post(
                &s,
                "/query",
                Json::obj([
                    ("x", Json::Num(114.2)),
                    ("y", Json::Num(22.3)),
                    ("keywords", Json::Arr(vec![Json::str("gymnasium")])),
                    ("k", Json::Num(1.0)),
                ]),
            );
            assert_eq!(status, 200);
            let (status, _) = post(
                &s,
                "/objects",
                Json::obj([
                    ("x", Json::Num(114.2)),
                    ("y", Json::Num(22.3)),
                    ("name", Json::str("Durable Hotel")),
                    ("keywords", Json::Arr(vec![Json::str("durable")])),
                ]),
            );
            assert_eq!(status, 200);
            let (status, _) = delete(&s, "/objects/0");
            assert_eq!(status, 200);
        }
        // Restart: same seed corpus + log ⇒ same epoch and contents.
        let (corpus, vocab) = yask_data::hk_hotels();
        let s = YaskService::with_wal(corpus, vocab, config, &path).unwrap();
        assert_eq!(s.ingestor().epoch(), 2);
        assert_eq!(s.executor().epoch(), 2);
        let corpus = s.corpus();
        assert_eq!(corpus.len(), 539); // 539 + 1 − 1
        assert!(corpus.find_by_name("Durable Hotel").is_some());
        assert!(!corpus.contains(yask_index::ObjectId(0)));
        // The replayed object is still *keyword*-searchable: "durable"
        // resolves to the id the WAL recorded, not to "gymnasium"'s.
        let (status, body) = post(
            &s,
            "/query",
            Json::obj([
                ("x", Json::Num(114.2)),
                ("y", Json::Num(22.3)),
                ("keywords", Json::Arr(vec![Json::str("durable")])),
                ("k", Json::Num(1.0)),
            ]),
        );
        assert_eq!(status, 200);
        let top = &body.get("results").unwrap().as_array().unwrap()[0];
        assert_eq!(top.get("name").unwrap().as_str(), Some("Durable Hotel"));
        assert_eq!(top.get("score").unwrap().as_f64(), Some(1.0), "{body}");
        let (_, stats) = get(&s, "/stats");
        let ingest = stats.get("ingest").unwrap();
        assert_eq!(ingest.get("durable").unwrap().as_bool(), Some(true));
        assert_eq!(ingest.get("wal_batches").unwrap().as_usize(), Some(2));
        std::fs::remove_file(&path).ok();
        let mut vocab_path = path.clone();
        vocab_path.as_mut_os_string().push(".vocab");
        std::fs::remove_file(&vocab_path).ok();
    }

    /// Tentpole: concurrent small writes share one group commit (and so
    /// one two-phase fsync pair) by default — no opt-in bulk request.
    #[test]
    fn concurrent_inserts_coalesce_into_group_commits() {
        let mut path = std::env::temp_dir();
        path.push(format!("yask-api-coalesce-{}.wal", std::process::id()));
        std::fs::remove_file(&path).ok();
        std::fs::remove_file(yask_ingest::checkpoint_path(&path)).ok();
        let (corpus, vocab) = yask_data::hk_hotels();
        let config = ServiceConfig {
            exec: ExecConfig::single_tree(yask_core::YaskConfig::default()),
            coalesce: crate::coalesce::CoalesceConfig {
                window: Duration::from_millis(150),
                ..Default::default()
            },
            ..ServiceConfig::default()
        };
        let s = Arc::new(YaskService::with_wal(corpus, vocab, config, &path).unwrap());
        let mut handles = Vec::new();
        for i in 0..5 {
            let s = Arc::clone(&s);
            handles.push(std::thread::spawn(move || {
                post(
                    &s,
                    "/objects",
                    Json::obj([
                        ("x", Json::Num(114.1 + 0.01 * i as f64)),
                        ("y", Json::Num(22.3)),
                        ("name", Json::str(format!("Coalesced {i}"))),
                        ("keywords", Json::Arr(vec![Json::str("co")])),
                    ]),
                )
            }));
        }
        let mut ids = Vec::new();
        for h in handles {
            let (status, body) = h.join().unwrap();
            assert_eq!(status, 200, "{body}");
            ids.push(body.get("id").unwrap().as_usize().unwrap());
        }
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 5, "coalesced inserts must get distinct ids");
        assert_eq!(s.ingestor().epoch(), 5, "one epoch per insert survives coalescing");
        let (_, stats) = get(&s, "/stats");
        let ingest = stats.get("ingest").unwrap();
        assert_eq!(ingest.get("coalesce_batches").unwrap().as_usize(), Some(5));
        let groups = ingest.get("wal_groups").unwrap().as_usize().unwrap();
        assert!(
            groups < 5,
            "5 writes inside a 150 ms window paid {groups} fsync pairs"
        );
        std::fs::remove_file(&path).ok();
        let mut vocab_path = path.clone();
        vocab_path.as_mut_os_string().push(".vocab");
        std::fs::remove_file(&vocab_path).ok();
    }

    /// Tentpole: `/stats` surfaces the checkpoint + chunk counters, the
    /// WAL folds into a snapshot past the threshold, and a restart
    /// replays only the post-checkpoint tail.
    #[test]
    fn checkpointing_service_truncates_wal_and_restarts_from_snapshot() {
        let mut path = std::env::temp_dir();
        path.push(format!("yask-api-ckpt-{}.wal", std::process::id()));
        std::fs::remove_file(&path).ok();
        std::fs::remove_file(yask_ingest::checkpoint_path(&path)).ok();
        let config = ServiceConfig {
            exec: ExecConfig::single_tree(yask_core::YaskConfig::default()),
            checkpoint: yask_ingest::CheckpointConfig {
                max_wal_batches: 2,
                max_wal_bytes: u64::MAX,
            },
            ..ServiceConfig::default()
        };
        {
            let (corpus, vocab) = yask_data::hk_hotels();
            let s = YaskService::with_wal(corpus, vocab, config, &path).unwrap();
            for i in 0..5 {
                let (status, _) = post(
                    &s,
                    "/objects",
                    Json::obj([
                        ("x", Json::Num(114.15 + 0.01 * i as f64)),
                        ("y", Json::Num(22.29)),
                        ("name", Json::str(format!("Ckpt Hotel {i}"))),
                        ("keywords", Json::Arr(vec![Json::str("checkpointed")])),
                    ]),
                );
                assert_eq!(status, 200);
            }
            let (_, stats) = get(&s, "/stats");
            let ingest = stats.get("ingest").unwrap();
            // 5 batches, threshold 2: checkpoints at epochs 2 and 4.
            assert_eq!(ingest.get("checkpoints").unwrap().as_usize(), Some(2));
            assert_eq!(ingest.get("checkpoint_epoch").unwrap().as_usize(), Some(4));
            assert_eq!(ingest.get("wal_base_epoch").unwrap().as_usize(), Some(4));
            assert_eq!(ingest.get("wal_batches").unwrap().as_usize(), Some(1));
            // Chunk counters: the hk corpus spans chunks and every batch
            // billed some copy work.
            assert!(ingest.get("chunks").unwrap().as_usize().unwrap() >= 2);
            assert!(ingest.get("chunks_copied").unwrap().as_usize().unwrap() >= 5);
            assert!(ingest.get("copy_bytes").unwrap().as_usize().unwrap() > 0);
        }
        // Restart: the snapshot carries epochs 1–4 (and the vocabulary,
        // so "checkpointed" still resolves); only epoch 5 replays.
        let (corpus, vocab) = yask_data::hk_hotels();
        let s = YaskService::with_wal(corpus, vocab, config, &path).unwrap();
        assert_eq!(s.ingestor().epoch(), 5);
        assert_eq!(s.corpus().len(), 544);
        let (status, body) = post(
            &s,
            "/query",
            Json::obj([
                ("x", Json::Num(114.16)),
                ("y", Json::Num(22.29)),
                ("keywords", Json::Arr(vec![Json::str("checkpointed")])),
                ("k", Json::Num(5.0)),
            ]),
        );
        assert_eq!(status, 200);
        let results = body.get("results").unwrap().as_array().unwrap();
        assert_eq!(results.len(), 5, "replayed + snapshotted inserts all searchable");
        for r in results {
            assert!(r
                .get("name")
                .unwrap()
                .as_str()
                .unwrap()
                .starts_with("Ckpt Hotel"));
        }
        std::fs::remove_file(&path).ok();
        std::fs::remove_file(yask_ingest::checkpoint_path(&path)).ok();
        let mut vocab_path = path.clone();
        vocab_path.as_mut_os_string().push(".vocab");
        std::fs::remove_file(&vocab_path).ok();
    }

    #[test]
    fn landing_page_is_html() {
        let s = service();
        let req = Request {
            method: "GET".into(),
            path: "/".into(),
            query: String::new(),
            version: "HTTP/1.1".into(),
            headers: vec![],
            body: vec![],
        };
        let resp = s.handle(&req);
        assert_eq!(resp.status, 200);
        assert!(resp.content_type.starts_with("text/html"));
        assert!(String::from_utf8(resp.body).unwrap().contains("YASK"));
    }

    /// POST with a query string (the in-process analogue of `?trace=1`).
    fn post_q(service: &YaskService, path: &str, query: &str, body: Json) -> (u16, Json) {
        let req = Request {
            method: "POST".into(),
            path: path.into(),
            query: query.into(),
            version: "HTTP/1.1".into(),
            headers: vec![],
            body: body.to_string().into_bytes(),
        };
        let resp = service.handle(&req);
        let parsed = Json::parse(std::str::from_utf8(&resp.body).unwrap()).unwrap();
        (resp.status, parsed)
    }

    fn get_raw(service: &YaskService, path: &str) -> Response {
        service.handle(&Request {
            method: "GET".into(),
            path: path.into(),
            query: String::new(),
            version: "HTTP/1.1".into(),
            headers: vec![],
            body: vec![],
        })
    }

    /// Tentpole: `/metrics` serves a valid Prometheus exposition covering
    /// the executor, cache, ingest and session counters plus all eight
    /// latency histogram families — checked with the same parser the CI
    /// smoke step runs against a live server.
    #[test]
    fn metrics_exposition_validates_and_covers_the_service() {
        let s = service();
        let (session, names) = tst_query(&s, 3);
        let corpus = s.corpus();
        let missing = corpus
            .iter()
            .map(|o| o.name.clone())
            .find(|n| !names.contains(n))
            .unwrap();
        drop(corpus);
        let (status, _) = post(
            &s,
            "/whynot/explain",
            Json::obj([
                ("session", Json::Num(session as f64)),
                ("missing", Json::Arr(vec![Json::str(missing)])),
            ]),
        );
        assert_eq!(status, 200);
        let (status, _) = post(
            &s,
            "/objects",
            Json::obj([
                ("x", Json::Num(114.1)),
                ("y", Json::Num(22.3)),
                ("name", Json::str("Metrics Hotel")),
                ("keywords", Json::Arr(vec![Json::str("metrics")])),
            ]),
        );
        assert_eq!(status, 200);

        let resp = get_raw(&s, "/metrics");
        assert_eq!(resp.status, 200);
        assert!(resp.content_type.starts_with("text/plain"), "{}", resp.content_type);
        let text = String::from_utf8(resp.body).unwrap();
        let summary = yask_obs::validate_exposition(&text).expect("exposition must validate");
        for family in [
            // counters across the subsystems
            "yask_queries_total",
            "yask_cache_hits_total",
            "yask_write_batches_total",
            "yask_coalesce_batches_total",
            "yask_sessions_live",
            "yask_traces_recorded_total",
            // the eight latency histogram families
            "yask_topk_latency_seconds",
            "yask_topk_cache_hit_latency_seconds",
            "yask_shard_search_latency_seconds",
            "yask_whynot_latency_seconds",
            "yask_wal_append_latency_seconds",
            "yask_wal_fsync_latency_seconds",
            "yask_checkpoint_latency_seconds",
            "yask_write_apply_latency_seconds",
        ] {
            assert!(summary.has_family(family), "{family} missing from /metrics");
        }
        // The query ran: its sample must be in the top-k histogram, and
        // the 4 shard families each carry 4 labelled series.
        assert!(text.contains("yask_queries_total 1"), "query not counted");
        assert!(
            text.contains("yask_topk_latency_seconds_count 1"),
            "top-k latency sample missing"
        );
        assert!(text.contains(r#"yask_shard_queries_total{shard="3"}"#));
        assert!(text.contains(r#"yask_whynot_latency_seconds_count{module="explain"} 1"#));
        assert!(text.contains("yask_write_apply_latency_seconds_count 1"));
        // The observatory / build-info families carry live samples.
        assert!(text.contains("yask_build_info{version="));
        assert!(summary.has_family("yask_uptime_seconds"));
        assert!(text.contains(r#"yask_route_rate{route="topk",window="1m"}"#));
        assert!(text.contains(r#"yask_route_p99_seconds{route="whynot_explain",window="10s"}"#));
        assert!(text.contains(r#"yask_cell_query_heat{cell="0"}"#));
        assert!(text.contains(r#"yask_cell_write_touches_total{cell="0"}"#));
        assert!(summary.has_family("yask_query_heat_skew"));
        assert!(summary.has_family("yask_queue_depth_max_1m"));
        // Buffer-pool families declare all three pools even on a fully
        // resident, volatile service (all-zero series, never absent).
        for family in [
            "yask_pager_hits_total",
            "yask_pager_misses_total",
            "yask_pager_evictions_total",
            "yask_paged_trees",
            "yask_paged_chunks_resident",
        ] {
            assert!(summary.has_family(family), "{family} missing from /metrics");
        }
        for pool in ["shard", "wal", "checkpoint"] {
            assert!(
                text.contains(&format!(r#"yask_pager_misses_total{{pool="{pool}"}}"#)),
                "pool={pool} series missing"
            );
        }
    }

    /// Out-of-core serving end to end: a service whose executor runs
    /// under a one-byte resident budget answers queries identically to
    /// the demo corpus' resident service, and the pager's faults are
    /// priced on `/stats` (`exec.pager`) and `/metrics`
    /// (`yask_pager_*_total{pool="shard"}`).
    #[test]
    fn out_of_core_service_answers_and_prices_faults() {
        let resident = service();
        let (corpus, vocab) = yask_data::hk_hotels();
        let paged = YaskService::with_config(
            corpus,
            vocab,
            ServiceConfig {
                exec: ExecConfig {
                    resident_budget: Some(1),
                    topk_cache: 0,
                    answer_cache: 0,
                    ..ExecConfig::default()
                },
                ..ServiceConfig::default()
            },
        );
        let query = Json::obj([
            ("x", Json::Num(114.17)),
            ("y", Json::Num(22.30)),
            ("keywords", Json::Arr(vec![Json::str("clean"), Json::str("wifi")])),
            ("k", Json::Num(3.0)),
        ]);
        let (sa, a) = post(&resident, "/query", query.clone());
        let (sb, b) = post(&paged, "/query", query);
        assert_eq!((sa, sb), (200, 200));
        assert_eq!(
            a.get("results").map(|r| r.to_string()),
            b.get("results").map(|r| r.to_string()),
            "paged service must answer byte-identically"
        );

        let (status, stats) = get(&paged, "/stats");
        assert_eq!(status, 200);
        let pager = stats.get("exec").and_then(|e| e.get("pager")).expect("exec.pager");
        let num = |k: &str| pager.get(k).and_then(Json::as_f64).unwrap_or(-1.0);
        assert!(num("paged_trees") >= 1.0, "pager: {pager}");
        assert!(num("chunk_misses") > 0.0, "one-byte budget must fault: {pager}");
        assert!(num("pool_misses") + num("pool_hits") > 0.0, "pager: {pager}");
        // Resident service: pager is null, families still render.
        let (_, rstats) = get(&resident, "/stats");
        assert!(
            matches!(rstats.get("exec").and_then(|e| e.get("pager")), Some(Json::Null)),
            "resident service must report pager: null"
        );

        let resp = get_raw(&paged, "/metrics");
        let text = String::from_utf8(resp.body).unwrap();
        yask_obs::validate_exposition(&text).expect("exposition must validate");
        let series = |name: &str| {
            text.lines()
                .find_map(|l| l.strip_prefix(&format!(r#"{name}{{pool="shard"}} "#)))
                .and_then(|v| v.trim().parse::<f64>().ok())
                .unwrap_or_else(|| panic!("{name} shard series missing"))
        };
        // Chunk faults go through the pool; whether a given page read
        // hits or misses depends on the pool capacity, so price the sum.
        assert!(
            series("yask_pager_hits_total") + series("yask_pager_misses_total") > 0.0,
            "shard pool saw no traffic"
        );
        assert!(text.contains("yask_paged_trees "), "paged tree gauge missing");
    }

    /// Tentpole: every traced request lands in the slow-query log with
    /// its span tree; `/debug/slow` serves them slowest-first.
    #[test]
    fn debug_slow_returns_span_trees() {
        let s = service();
        let (session, names) = tst_query(&s, 3);
        let corpus = s.corpus();
        let missing = corpus
            .iter()
            .map(|o| o.name.clone())
            .find(|n| !names.contains(n))
            .unwrap();
        drop(corpus);
        let (status, _) = post(
            &s,
            "/whynot/explain",
            Json::obj([
                ("session", Json::Num(session as f64)),
                ("missing", Json::Arr(vec![Json::str(missing)])),
            ]),
        );
        assert_eq!(status, 200);

        let (status, body) = get(&s, "/debug/slow");
        assert_eq!(status, 200, "{body}");
        assert_eq!(body.get("recorded").unwrap().as_usize(), Some(2));
        let slowest = body.get("slowest").unwrap().as_array().unwrap();
        assert_eq!(slowest.len(), 2);
        let labels: Vec<&str> = slowest
            .iter()
            .map(|t| t.get("label").unwrap().as_str().unwrap())
            .collect();
        assert!(labels.contains(&"/query"), "{labels:?}");
        assert!(labels.contains(&"/whynot/explain"), "{labels:?}");
        // Slowest-first ordering.
        let times: Vec<f64> = slowest
            .iter()
            .map(|t| t.get("total_us").unwrap().as_f64().unwrap())
            .collect();
        assert!(times[0] >= times[1], "{times:?}");
        // The /query trace carries the span tree: a scatter root with one
        // child per shard plus the gather step.
        let query_trace = slowest
            .iter()
            .find(|t| t.get("label").unwrap().as_str() == Some("/query"))
            .unwrap();
        let spans = query_trace.get("spans").unwrap().as_array().unwrap();
        let name_of = |s: &Json| s.get("name").unwrap().as_str().unwrap().to_owned();
        assert!(spans.iter().any(|s| name_of(s) == "cache_lookup"));
        let scatter = spans.iter().find(|s| name_of(s) == "scatter").unwrap();
        let scatter_id = scatter.get("id").unwrap().as_usize().unwrap();
        assert_eq!(scatter.get("parent").unwrap(), &Json::Null, "scatter is a root");
        let children: Vec<String> = spans
            .iter()
            .filter(|s| s.get("parent").unwrap().as_usize() == Some(scatter_id))
            .map(name_of)
            .collect();
        for shard in ["shard0", "shard1", "shard2", "shard3", "gather"] {
            assert!(children.contains(&shard.to_owned()), "{children:?} lacks {shard}");
        }
    }

    /// Tentpole: `?trace=1` returns the span tree inline with the
    /// response — even on a deployment with tracing rings disabled.
    #[test]
    fn trace_flag_inlines_the_span_tree() {
        let (corpus, vocab) = yask_data::hk_hotels();
        let s = YaskService::with_config(
            corpus,
            vocab,
            ServiceConfig {
                trace_ring: 0,
                slow_log: 0,
                ..ServiceConfig::default()
            },
        );
        // Untraced by default: no ring, no flag, no trace.
        let (_, _) = tst_query(&s, 3);
        assert_eq!(s.traces.recorded(), 0, "disabled rings must not trace");
        let (_, body) = get(&s, "/debug/slow");
        assert!(body.get("slowest").unwrap().as_array().unwrap().is_empty());

        // Opting in per-request still works (fresh coordinates dodge the
        // top-k cache so the engine actually runs).
        let (status, body) = post_q(
            &s,
            "/query",
            "trace=1",
            Json::obj([
                ("x", Json::Num(114.15)),
                ("y", Json::Num(22.28)),
                ("keywords", Json::Arr(vec![Json::str("clean")])),
                ("k", Json::Num(2.0)),
            ]),
        );
        assert_eq!(status, 200, "{body}");
        assert!(body.get("results").is_some(), "normal payload still present");
        let trace = body.get("trace").unwrap();
        assert_eq!(trace.get("label").unwrap().as_str(), Some("/query"));
        assert!(trace.get("total_us").unwrap().as_f64().unwrap() > 0.0);
        let spans = trace.get("spans").unwrap().as_array().unwrap();
        assert!(
            spans.iter().any(|sp| sp.get("name").unwrap().as_str() == Some("scatter")),
            "{spans:?}"
        );
        // Without the flag the response shape is unchanged.
        let (_, body) = post(
            &s,
            "/query",
            Json::obj([
                ("x", Json::Num(114.16)),
                ("y", Json::Num(22.28)),
                ("keywords", Json::Arr(vec![Json::str("clean")])),
                ("k", Json::Num(2.0)),
            ]),
        );
        assert!(body.get("trace").is_none());
    }

    /// Tentpole: `/debug/heatmap` reports per-cell heat whose skew ratio
    /// matches the hand-computed value for a deliberately skewed
    /// workload — every query at one point of a 4-shard deployment lands
    /// in one STR cell, so skew = hottest/mean = 4.0 exactly (all
    /// recordings share one decay generation within the test).
    #[test]
    fn heatmap_reports_hand_computed_skew_for_a_skewed_workload() {
        let s = service(); // 4 shards
        for _ in 0..12 {
            // Identical queries: 1 compute + 11 cache hits — the heat
            // map tracks *demand*, so all 12 must land.
            let (_, _) = tst_query(&s, 3);
        }
        let (status, body) = get(&s, "/debug/heatmap");
        assert_eq!(status, 200, "{body}");
        assert_eq!(body.get("enabled").unwrap().as_bool(), Some(true));
        let cells = body.get("cells").unwrap().as_array().unwrap();
        assert_eq!(cells.len(), 4, "one heat cell per shard");
        let touches: Vec<usize> = cells
            .iter()
            .map(|c| c.get("query_touches").unwrap().as_usize().unwrap())
            .collect();
        assert_eq!(touches.iter().sum::<usize>(), 12, "{touches:?}");
        assert_eq!(touches.iter().filter(|&&t| t > 0).count(), 1, "{touches:?}");
        // Hand-computed skew: heat [12x, 0, 0, 0] → max/mean = 4.
        let skew = body.get("query_skew").unwrap().as_f64().unwrap();
        assert!((skew - 4.0).abs() < 1e-9, "skew {skew} != 4.0");
        // The query keywords dominate the hot-keyword sketch.
        let hot = body.get("hot_keywords").unwrap().as_array().unwrap();
        let words: Vec<&str> = hot
            .iter()
            .map(|h| h.get("keyword").unwrap().as_str().unwrap())
            .collect();
        assert!(words.contains(&"clean"), "{words:?}");
        assert!(words.contains(&"comfortable"), "{words:?}");
        assert_eq!(hot[0].get("count").unwrap().as_usize(), Some(12));
        assert_eq!(body.get("keyword_total").unwrap().as_usize(), Some(24));
        // A write touches its owning cell.
        let (status, _) = post(
            &s,
            "/objects",
            Json::obj([
                ("x", Json::Num(114.172)),
                ("y", Json::Num(22.297)),
                ("name", Json::str("Heat Hotel")),
                ("keywords", Json::Arr(vec![Json::str("hot")])),
            ]),
        );
        assert_eq!(status, 200);
        let (_, body) = get(&s, "/debug/heatmap");
        let write_total: usize = body
            .get("cells")
            .unwrap()
            .as_array()
            .unwrap()
            .iter()
            .map(|c| c.get("write_touches").unwrap().as_usize().unwrap())
            .sum();
        assert_eq!(write_total, 1);
        assert!(body.get("write_skew").unwrap().as_f64().unwrap() > 1.0);
        // /stats carries the same skew summary.
        let (_, stats) = get(&s, "/stats");
        let workload = stats.get("exec").unwrap().get("workload").unwrap();
        let stats_skew = workload.get("query_skew").unwrap().as_f64().unwrap();
        assert!((stats_skew - 4.0).abs() < 1e-9, "{stats_skew}");
    }

    /// Tentpole: the `/debug/health` verdict flips from ok to overloaded
    /// when a windowed observation crosses its configured threshold.
    #[test]
    fn debug_health_verdict_flips_on_threshold() {
        let (corpus, vocab) = yask_data::hk_hotels();
        // Latency trigger only: any completed top-k (p99 > 0) overloads.
        let s = YaskService::with_config(
            corpus,
            vocab,
            ServiceConfig {
                overload: OverloadConfig {
                    max_queue_depth: usize::MAX,
                    max_topk_p99: Duration::ZERO,
                },
                ..ServiceConfig::default()
            },
        );
        let (status, body) = get(&s, "/debug/health");
        assert_eq!(status, 200, "{body}");
        assert_eq!(body.get("status").unwrap().as_str(), Some("ok"));
        assert_eq!(body.get("overloaded").unwrap().as_bool(), Some(false));
        assert!(body.get("reasons").unwrap().as_array().unwrap().is_empty());
        assert_eq!(body.get("observatory").unwrap().as_bool(), Some(true));
        let (_, _) = tst_query(&s, 3);
        let (_, body) = get(&s, "/debug/health");
        assert_eq!(body.get("status").unwrap().as_str(), Some("overloaded"), "{body}");
        let reasons = body.get("reasons").unwrap().as_array().unwrap();
        assert_eq!(reasons.len(), 1);
        // Machine-parseable: the signal, the observed value and the
        // exact limit it crossed, next to the human message.
        assert_eq!(reasons[0].get("signal").unwrap().as_str(), Some("topk_p99_10s"));
        assert_eq!(reasons[0].get("limit").unwrap().as_f64(), Some(0.0));
        assert!(reasons[0].get("observed").unwrap().as_f64().unwrap() > 0.0);
        assert!(
            reasons[0].get("message").unwrap().as_str().unwrap().contains("top-k p99"),
            "{reasons:?}"
        );
        // The windowed surfaces are all present.
        let routes = body.get("routes").unwrap();
        let topk_1m = routes.get("topk").unwrap().get("1m").unwrap();
        assert_eq!(topk_1m.get("count").unwrap().as_usize(), Some(1));
        assert!(topk_1m.get("rate").unwrap().as_f64().unwrap() > 0.0);
        assert!(routes.get("whynot_explain").is_some());
        assert!(body.get("write_apply").unwrap().get("1m").is_some());

        // Queue trigger: a scatter query's submits push the windowed
        // depth max to ≥ 1, over a limit of 0.
        let (corpus, vocab) = yask_data::hk_hotels();
        let s = YaskService::with_config(
            corpus,
            vocab,
            ServiceConfig {
                overload: OverloadConfig {
                    max_queue_depth: 0,
                    max_topk_p99: Duration::from_secs(3600),
                },
                ..ServiceConfig::default()
            },
        );
        let (_, _) = tst_query(&s, 3);
        let (_, body) = get(&s, "/debug/health");
        assert_eq!(body.get("status").unwrap().as_str(), Some("overloaded"), "{body}");
        let reasons = body.get("reasons").unwrap().as_array().unwrap();
        assert_eq!(reasons[0].get("signal").unwrap().as_str(), Some("queue_depth_1m"));
        assert_eq!(reasons[0].get("limit").unwrap().as_f64(), Some(0.0));
        assert!(reasons[0].get("observed").unwrap().as_f64().unwrap() >= 1.0);
        assert!(
            reasons[0].get("message").unwrap().as_str().unwrap().contains("queue depth"),
            "{reasons:?}"
        );
        assert!(body.get("queue").unwrap().get("max_1m").unwrap().as_usize().unwrap() >= 1);
    }

    /// Satellite: with the observatory disabled the debug surfaces stay
    /// total — the heatmap reports itself off, health judges queue depth
    /// only.
    #[test]
    fn heatmap_reports_disabled_without_observatory() {
        let (corpus, vocab) = yask_data::hk_hotels();
        let s = YaskService::with_config(
            corpus,
            vocab,
            ServiceConfig {
                exec: ExecConfig {
                    observatory: false,
                    ..ExecConfig::default()
                },
                ..ServiceConfig::default()
            },
        );
        let (_, _) = tst_query(&s, 3);
        let (status, body) = get(&s, "/debug/heatmap");
        assert_eq!(status, 200);
        assert_eq!(body.get("enabled").unwrap().as_bool(), Some(false));
        let (status, body) = get(&s, "/debug/health");
        assert_eq!(status, 200, "{body}");
        assert_eq!(body.get("observatory").unwrap().as_bool(), Some(false));
        assert_eq!(body.get("status").unwrap().as_str(), Some("ok"));
        // /stats renders the observatory as null, /metrics stays valid
        // with header-only observatory families.
        let (_, stats) = get(&s, "/stats");
        assert_eq!(stats.get("exec").unwrap().get("workload").unwrap(), &Json::Null);
        let resp = get_raw(&s, "/metrics");
        let text = String::from_utf8(resp.body).unwrap();
        let summary = yask_obs::validate_exposition(&text).expect("must validate");
        assert!(summary.has_family("yask_route_rate"));
        assert!(!text.contains(r#"yask_route_rate{route="topk""#), "no samples expected");
    }

    /// Satellite: `/stats` carries the pool high-water mark and per-shard
    /// latency percentiles next to the means.
    #[test]
    fn stats_expose_queue_depth_max_and_percentiles() {
        let s = service();
        let (_, _) = tst_query(&s, 3);
        let (_, body) = get(&s, "/stats");
        let exec = body.get("exec").unwrap();
        assert!(exec.get("queue_depth_max").unwrap().as_usize().is_some());
        for p in exec.get("per_shard").unwrap().as_array().unwrap() {
            assert_eq!(p.get("queries").unwrap().as_usize(), Some(1));
            let p50 = p.get("p50_us").unwrap().as_f64().unwrap();
            let p99 = p.get("p99_us").unwrap().as_f64().unwrap();
            let mean = p.get("mean_us").unwrap().as_f64().unwrap();
            assert!(p50 > 0.0 && p99 >= p50, "p50 {p50} p99 {p99}");
            // One sample: every estimator sits in the same bucket, so the
            // quantiles track the mean within the bucket error bound.
            assert!((p50 - mean).abs() / mean < 0.05, "p50 {p50} vs mean {mean}");
        }
    }
}
