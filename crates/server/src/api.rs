//! The YASK REST API (the server side of the demo's Fig 1).
//!
//! Routes:
//!
//! | Method | Path                 | Purpose                                   |
//! |--------|----------------------|-------------------------------------------|
//! | GET    | `/`                  | landing page (map placeholder)            |
//! | GET    | `/health`            | liveness + object count                   |
//! | GET    | `/stats`             | dataset + executor statistics             |
//! | POST   | `/query`             | spatial keyword top-k query → session id  |
//! | POST   | `/whynot/explain`    | explanations for desired objects          |
//! | POST   | `/whynot/preference` | preference-adjusted refined query         |
//! | POST   | `/whynot/keywords`   | keyword-adapted refined query             |
//! | POST   | `/session/close`     | the user gave up asking why-not questions |
//!
//! `/query` caches the initial query in the [`SessionStore`]; the why-not
//! endpoints reference it by session id, mirroring the paper's "server
//! caches users' initial spatial keyword queries".

use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;
use yask_core::{Explanation, SessionId, SessionStore, Yask, YaskConfig};
use yask_data::DatasetStats;
use yask_exec::{CacheSnapshot, ExecConfig, ExecSnapshot, Executor};
use yask_geo::Point;
use yask_index::{Corpus, ObjectId};
use yask_query::{Query, RankedObject};
use yask_text::{KeywordSet, Vocabulary};

use crate::http::{Handler, Request, Response};
use crate::json::Json;

/// Service-level configuration: the execution subsystem plus session
/// lifecycle policy.
#[derive(Clone, Copy, Debug)]
pub struct ServiceConfig {
    /// The executor (shards, workers, caches, engine).
    pub exec: ExecConfig,
    /// Session time-to-live (the paper's "until users give up").
    pub session_ttl: Duration,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            exec: ExecConfig::default(),
            session_ttl: Duration::from_secs(600),
        }
    }
}

/// The stateful YASK web service.
pub struct YaskService {
    exec: Executor,
    sessions: SessionStore,
    vocab: Mutex<Vocabulary>,
}

type ApiResult = Result<Json, (u16, String)>;

/// Handle to a background session-eviction thread; dropping it stops the
/// sweeper and joins the thread.
pub struct SessionSweeper {
    // Dropping the sender wakes the sweeper's recv_timeout immediately.
    stop: Option<std::sync::mpsc::Sender<()>>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl Drop for SessionSweeper {
    fn drop(&mut self) {
        drop(self.stop.take());
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl YaskService {
    /// Builds the service over a corpus and its vocabulary with the
    /// engine configuration (default executor: 4 shards, caches on).
    pub fn new(corpus: Corpus, vocab: Vocabulary, config: YaskConfig) -> Self {
        YaskService::with_config(
            corpus,
            vocab,
            ServiceConfig {
                exec: ExecConfig {
                    yask: config,
                    ..ExecConfig::default()
                },
                ..ServiceConfig::default()
            },
        )
    }

    /// Builds the service with full control over execution and sessions.
    pub fn with_config(corpus: Corpus, vocab: Vocabulary, config: ServiceConfig) -> Self {
        YaskService {
            exec: Executor::new(corpus, config.exec),
            sessions: SessionStore::new(config.session_ttl),
            vocab: Mutex::new(vocab),
        }
    }

    /// The demo deployment: the 539-hotel Hong Kong stand-in dataset on
    /// the sharded executor.
    pub fn hk_demo() -> Self {
        let (corpus, vocab) = yask_data::hk_hotels();
        YaskService::new(corpus, vocab, YaskConfig::default())
    }

    /// The underlying engine (for white-box tests).
    pub fn yask(&self) -> &Yask {
        self.exec.yask()
    }

    /// The execution subsystem.
    pub fn executor(&self) -> &Executor {
        &self.exec
    }

    /// The configured session time-to-live.
    pub fn session_ttl(&self) -> Duration {
        self.sessions.ttl()
    }

    /// Live session count.
    pub fn session_count(&self) -> usize {
        self.sessions.len()
    }

    /// Spawns a background thread sweeping expired sessions every
    /// `period`, independent of request traffic (idle servers no longer
    /// retain dead sessions until the next request). The sweeper stops
    /// when the returned handle drops.
    pub fn spawn_session_sweeper(self: &Arc<Self>, period: Duration) -> SessionSweeper {
        let service = Arc::clone(self);
        let (tx, rx) = std::sync::mpsc::channel::<()>();
        let thread = std::thread::spawn(move || {
            // Sleeps the whole period; the channel disconnecting (handle
            // dropped) wakes and ends the loop immediately.
            while let Err(std::sync::mpsc::RecvTimeoutError::Timeout) = rx.recv_timeout(period) {
                service.sessions.evict_expired();
            }
        });
        SessionSweeper {
            stop: Some(tx),
            thread: Some(thread),
        }
    }

    /// Wraps the service as an [`Handler`] for [`crate::HttpServer`].
    pub fn into_handler(self: Arc<Self>) -> Handler {
        Arc::new(move |req: &Request| self.handle(req))
    }

    /// Routes one request.
    pub fn handle(&self, req: &Request) -> Response {
        self.sessions.evict_expired();
        let result = match (req.method.as_str(), req.path.as_str()) {
            ("GET", "/") => return Response::html(LANDING_PAGE),
            ("GET", "/health") => self.health(),
            ("GET", "/stats") => self.stats(),
            ("POST", "/query") => self.with_body(req, |s, b| s.query(b)),
            ("POST", "/whynot/explain") => self.with_body(req, |s, b| s.explain(b)),
            ("POST", "/whynot/preference") => self.with_body(req, |s, b| s.preference(b)),
            ("POST", "/whynot/keywords") => self.with_body(req, |s, b| s.keywords(b)),
            ("POST", "/whynot/combined") => self.with_body(req, |s, b| s.combined(b)),
            ("POST", "/viewport") => self.with_body(req, |s, b| s.viewport(b)),
            ("POST", "/session/close") => self.with_body(req, |s, b| s.close(b)),
            ("GET", _) | ("POST", _) => Err((404, format!("no route {} {}", req.method, req.path))),
            _ => Err((405, format!("method {} not allowed", req.method))),
        };
        match result {
            Ok(body) => Response::json(body),
            Err((status, message)) => Response::error(status, &message),
        }
    }

    fn with_body(&self, req: &Request, f: impl Fn(&Self, &Json) -> ApiResult) -> ApiResult {
        let text = req
            .body_str()
            .ok_or_else(|| (400, "body is not UTF-8".to_owned()))?;
        let body = Json::parse(text).map_err(|e| (400, e.to_string()))?;
        f(self, &body)
    }

    fn health(&self) -> ApiResult {
        Ok(Json::obj([
            ("status", Json::str("ok")),
            ("objects", Json::Num(self.exec.corpus().len() as f64)),
            ("sessions", Json::Num(self.sessions.len() as f64)),
        ]))
    }

    fn stats(&self) -> ApiResult {
        let s = DatasetStats::of(self.exec.corpus());
        Ok(Json::obj([
            ("objects", Json::Num(s.objects as f64)),
            ("distinct_keywords", Json::Num(s.distinct_keywords as f64)),
            ("avg_doc", Json::Num(s.avg_doc)),
            ("max_doc", Json::Num(s.max_doc as f64)),
            ("exec", render_exec(&self.exec.stats())),
        ]))
    }

    fn query(&self, body: &Json) -> ApiResult {
        let x = field_f64(body, "x")?;
        let y = field_f64(body, "y")?;
        let k = body
            .get("k")
            .and_then(Json::as_usize)
            .filter(|&k| k >= 1)
            .ok_or_else(|| (400, "field 'k' must be a positive integer".to_owned()))?;
        let words = body
            .get("keywords")
            .and_then(Json::as_array)
            .ok_or_else(|| (400, "field 'keywords' must be an array".to_owned()))?;
        let mut vocab = self.vocab.lock();
        let ids = words
            .iter()
            .map(|w| {
                w.as_str()
                    .map(|s| vocab.intern(&s.to_lowercase()))
                    .ok_or_else(|| (400, "keywords must be strings".to_owned()))
            })
            .collect::<Result<Vec<_>, _>>()?;
        drop(vocab);

        let query = Query::new(Point::new(x, y), KeywordSet::from_ids(ids), k);
        let results = self.exec.top_k(&query);
        let rendered = self.render_results(&results);
        let session = self.sessions.create(query, results);
        Ok(Json::obj([
            ("session", Json::Num(session.0 as f64)),
            ("results", rendered),
        ]))
    }

    fn explain(&self, body: &Json) -> ApiResult {
        let (session, missing) = self.session_and_missing(body)?;
        let explanations = self
            .exec
            .explain(&session.query, &missing)
            .map_err(|e| (400, e.to_string()))?;
        Ok(Json::obj([(
            "explanations",
            Json::Arr(explanations.iter().map(render_explanation).collect()),
        )]))
    }

    fn preference(&self, body: &Json) -> ApiResult {
        let (session, missing) = self.session_and_missing(body)?;
        let lambda = optional_lambda(body, self.yask().config().default_lambda)?;
        let r = self
            .exec
            .refine_preference(&session.query, &missing, lambda)
            .map_err(|e| (400, e.to_string()))?;
        let results = self.exec.top_k(&r.query);
        Ok(Json::obj([
            (
                "refined",
                Json::obj([
                    ("k", Json::Num(r.query.k as f64)),
                    ("ws", Json::Num(r.query.weights.ws())),
                    ("wt", Json::Num(r.query.weights.wt())),
                ]),
            ),
            ("penalty", Json::Num(r.penalty)),
            ("rank", Json::Num(r.rank as f64)),
            ("initial_rank", Json::Num(r.initial_rank as f64)),
            ("delta_k", Json::Num(r.delta_k as f64)),
            ("delta_w", Json::Num(r.delta_w)),
            ("results", self.render_results(&results)),
        ]))
    }

    fn keywords(&self, body: &Json) -> ApiResult {
        let (session, missing) = self.session_and_missing(body)?;
        let lambda = optional_lambda(body, self.yask().config().default_lambda)?;
        let r = self
            .exec
            .refine_keywords(&session.query, &missing, lambda)
            .map_err(|e| (400, e.to_string()))?;
        let results = self.exec.top_k(&r.query);
        let vocab = self.vocab.lock();
        let refined_words: Vec<Json> = r
            .query
            .doc
            .iter()
            .map(|id| Json::str(vocab.resolve(id)))
            .collect();
        drop(vocab);
        Ok(Json::obj([
            (
                "refined",
                Json::obj([
                    ("k", Json::Num(r.query.k as f64)),
                    ("keywords", Json::Arr(refined_words)),
                ]),
            ),
            ("penalty", Json::Num(r.penalty)),
            ("rank", Json::Num(r.rank as f64)),
            ("initial_rank", Json::Num(r.initial_rank as f64)),
            ("delta_k", Json::Num(r.delta_k as f64)),
            ("delta_doc", Json::Num(r.delta_doc as f64)),
            ("results", self.render_results(&results)),
        ]))
    }

    /// The map panel's object listing: all objects in a rectangle,
    /// optionally keyword-filtered (`mode` = "any" | "all").
    fn viewport(&self, body: &Json) -> ApiResult {
        let x0 = field_f64(body, "x0")?;
        let y0 = field_f64(body, "y0")?;
        let x1 = field_f64(body, "x1")?;
        let y1 = field_f64(body, "y1")?;
        if x0 > x1 || y0 > y1 {
            return Err((400, "inverted viewport rectangle".to_owned()));
        }
        let mode = match body.get("mode").and_then(Json::as_str).unwrap_or("all") {
            "any" => yask_query::MatchMode::Any,
            "all" => yask_query::MatchMode::All,
            other => return Err((400, format!("unknown mode {other:?}"))),
        };
        let words = body
            .get("keywords")
            .and_then(Json::as_array)
            .unwrap_or(&[]);
        let mut vocab = self.vocab.lock();
        let ids = words
            .iter()
            .map(|w| {
                w.as_str()
                    .map(|s| vocab.intern(&s.to_lowercase()))
                    .ok_or_else(|| (400, "keywords must be strings".to_owned()))
            })
            .collect::<Result<Vec<_>, _>>()?;
        drop(vocab);
        let rect = yask_geo::Rect::from_coords(x0, y0, x1, y1);
        let doc = KeywordSet::from_ids(ids);
        let found = self.exec.viewport(&rect, &doc, mode);
        let corpus = self.exec.corpus();
        Ok(Json::obj([(
            "objects",
            Json::Arr(
                found
                    .iter()
                    .map(|&id| {
                        let o = corpus.get(id);
                        Json::obj([
                            ("id", Json::Num(id.0 as f64)),
                            ("name", Json::str(o.name.clone())),
                            ("x", Json::Num(o.loc.x)),
                            ("y", Json::Num(o.loc.y)),
                        ])
                    })
                    .collect(),
            ),
        )]))
    }

    fn combined(&self, body: &Json) -> ApiResult {
        let (session, missing) = self.session_and_missing(body)?;
        let lambda = optional_lambda(body, self.yask().config().default_lambda)?;
        let r = self
            .exec
            .refine_combined(&session.query, &missing, lambda)
            .map_err(|e| (400, e.to_string()))?;
        let results = self.exec.top_k(&r.query);
        let vocab = self.vocab.lock();
        let refined_words: Vec<Json> = r
            .query
            .doc
            .iter()
            .map(|id| Json::str(vocab.resolve(id)))
            .collect();
        drop(vocab);
        Ok(Json::obj([
            (
                "refined",
                Json::obj([
                    ("k", Json::Num(r.query.k as f64)),
                    ("ws", Json::Num(r.query.weights.ws())),
                    ("wt", Json::Num(r.query.weights.wt())),
                    ("keywords", Json::Arr(refined_words)),
                ]),
            ),
            ("penalty", Json::Num(r.penalty)),
            ("rank", Json::Num(r.rank as f64)),
            ("delta_k", Json::Num(r.delta_k as f64)),
            ("delta_w", Json::Num(r.delta_w)),
            ("delta_doc", Json::Num(r.delta_doc as f64)),
            ("order", Json::str(format!("{:?}", r.order))),
            ("results", self.render_results(&results)),
        ]))
    }

    fn close(&self, body: &Json) -> ApiResult {
        let id = SessionId(field_f64(body, "session")? as u64);
        Ok(Json::obj([("closed", Json::Bool(self.sessions.remove(id)))]))
    }

    fn session_and_missing(&self, body: &Json) -> Result<(yask_core::Session, Vec<ObjectId>), (u16, String)> {
        let id = SessionId(field_f64(body, "session")? as u64);
        let session = self
            .sessions
            .get(id)
            .ok_or_else(|| (410, format!("session {id} unknown or expired")))?;
        let raw = body
            .get("missing")
            .and_then(Json::as_array)
            .ok_or_else(|| (400, "field 'missing' must be an array".to_owned()))?;
        let corpus = self.exec.corpus();
        let mut missing = Vec::with_capacity(raw.len());
        for item in raw {
            let id = match item {
                Json::Num(_) => {
                    let idx = item
                        .as_usize()
                        .ok_or_else(|| (400, "object ids are non-negative integers".to_owned()))?;
                    if idx >= corpus.len() {
                        return Err((400, format!("object id {idx} out of range")));
                    }
                    ObjectId(idx as u32)
                }
                Json::Str(name) => corpus
                    .find_by_name(name)
                    .map(|o| o.id)
                    .ok_or_else(|| (400, format!("no object named {name:?}")))?,
                _ => return Err((400, "missing entries are ids or names".to_owned())),
            };
            missing.push(id);
        }
        Ok((session, missing))
    }

    fn render_results(&self, results: &[RankedObject]) -> Json {
        let corpus = self.exec.corpus();
        Json::Arr(
            results
                .iter()
                .enumerate()
                .map(|(i, r)| {
                    let o = corpus.get(r.id);
                    Json::obj([
                        ("rank", Json::Num((i + 1) as f64)),
                        ("id", Json::Num(r.id.0 as f64)),
                        ("name", Json::str(o.name.clone())),
                        ("x", Json::Num(o.loc.x)),
                        ("y", Json::Num(o.loc.y)),
                        ("score", Json::Num(r.score)),
                    ])
                })
                .collect(),
        )
    }
}

fn field_f64(body: &Json, name: &str) -> Result<f64, (u16, String)> {
    body.get(name)
        .and_then(Json::as_f64)
        .filter(|v| v.is_finite())
        .ok_or_else(|| (400, format!("field '{name}' must be a finite number")))
}

fn optional_lambda(body: &Json, default: f64) -> Result<f64, (u16, String)> {
    match body.get("lambda") {
        None => Ok(default),
        Some(v) => v
            .as_f64()
            .filter(|l| (0.0..=1.0).contains(l))
            .ok_or_else(|| (400, "field 'lambda' must be in [0, 1]".to_owned())),
    }
}

fn render_cache(c: &CacheSnapshot) -> Json {
    Json::obj([
        ("hits", Json::Num(c.hits as f64)),
        ("misses", Json::Num(c.misses as f64)),
        ("insertions", Json::Num(c.insertions as f64)),
        ("evictions", Json::Num(c.evictions as f64)),
        ("hit_rate", Json::Num(c.hit_rate())),
        ("len", Json::Num(c.len as f64)),
        ("cap", Json::Num(c.cap as f64)),
    ])
}

fn render_exec(s: &ExecSnapshot) -> Json {
    Json::obj([
        ("shards", Json::Num(s.shards as f64)),
        ("workers", Json::Num(s.workers as f64)),
        ("queue_depth", Json::Num(s.queue_depth as f64)),
        ("queries", Json::Num(s.queries as f64)),
        ("scatter_queries", Json::Num(s.scatter_queries as f64)),
        ("single_queries", Json::Num(s.single_queries as f64)),
        ("topk_cache", render_cache(&s.topk_cache)),
        ("answer_cache", render_cache(&s.answer_cache)),
        (
            "per_shard",
            Json::Arr(
                s.per_shard
                    .iter()
                    .map(|p| {
                        Json::obj([
                            ("objects", Json::Num(p.objects as f64)),
                            ("queries", Json::Num(p.queries as f64)),
                            ("mean_us", Json::Num(p.mean_us)),
                            ("total_us", Json::Num(p.total_us)),
                            ("nodes_expanded", Json::Num(p.nodes_expanded as f64)),
                            ("objects_scored", Json::Num(p.objects_scored as f64)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

fn render_explanation(e: &Explanation) -> Json {
    Json::obj([
        ("id", Json::Num(e.object.0 as f64)),
        ("name", Json::str(e.name.clone())),
        ("rank", Json::Num(e.rank as f64)),
        ("k", Json::Num(e.k as f64)),
        ("score", Json::Num(e.score)),
        ("spatial", Json::Num(e.spatial_part)),
        ("textual", Json::Num(e.textual_part)),
        ("reason", Json::str(format!("{:?}", e.reason))),
        ("message", Json::str(e.message.clone())),
    ])
}

/// The browser landing page — a text substitute for the Google-Maps GUI
/// of the demo (Figs 3–5); see DESIGN.md §3.
const LANDING_PAGE: &str = r#"<!doctype html>
<html><head><title>YASK — why-not spatial keyword queries</title></head>
<body>
<h1>YASK</h1>
<p>A whY-not question Answering engine for Spatial Keyword query services.</p>
<p>POST /query {"x":114.17,"y":22.30,"keywords":["clean","comfortable"],"k":3}</p>
<p>POST /whynot/explain {"session":ID,"missing":["Hotel Name"]}</p>
<p>POST /whynot/preference | /whynot/keywords | /whynot/combined {"session":ID,"missing":[...],"lambda":0.5}</p>
<p>POST /session/close {"session":ID}</p>
</body></html>
"#;

#[cfg(test)]
mod tests {
    use super::*;

    fn service() -> YaskService {
        YaskService::hk_demo()
    }

    fn post(service: &YaskService, path: &str, body: Json) -> (u16, Json) {
        let req = Request {
            method: "POST".into(),
            path: path.into(),
            version: "HTTP/1.1".into(),
            headers: vec![],
            body: body.to_string().into_bytes(),
        };
        let resp = service.handle(&req);
        let parsed = Json::parse(std::str::from_utf8(&resp.body).unwrap()).unwrap();
        (resp.status, parsed)
    }

    fn get(service: &YaskService, path: &str) -> (u16, Json) {
        let req = Request {
            method: "GET".into(),
            path: path.into(),
            version: "HTTP/1.1".into(),
            headers: vec![],
            body: vec![],
        };
        let resp = service.handle(&req);
        if resp.content_type.starts_with("text/html") {
            return (resp.status, Json::Null);
        }
        let parsed = Json::parse(std::str::from_utf8(&resp.body).unwrap()).unwrap();
        (resp.status, parsed)
    }

    fn tst_query(service: &YaskService, k: usize) -> (u64, Vec<String>) {
        let (status, body) = post(
            service,
            "/query",
            Json::obj([
                ("x", Json::Num(114.172)),
                ("y", Json::Num(22.297)),
                ("keywords", Json::Arr(vec![Json::str("clean"), Json::str("comfortable")])),
                ("k", Json::Num(k as f64)),
            ]),
        );
        assert_eq!(status, 200, "{body}");
        let session = body.get("session").unwrap().as_f64().unwrap() as u64;
        let names = body
            .get("results")
            .unwrap()
            .as_array()
            .unwrap()
            .iter()
            .map(|r| r.get("name").unwrap().as_str().unwrap().to_owned())
            .collect();
        (session, names)
    }

    #[test]
    fn health_and_stats() {
        let s = service();
        let (status, body) = get(&s, "/health");
        assert_eq!(status, 200);
        assert_eq!(body.get("objects").unwrap().as_usize(), Some(539));
        let (status, body) = get(&s, "/stats");
        assert_eq!(status, 200);
        assert!(body.get("distinct_keywords").unwrap().as_usize().unwrap() > 50);
    }

    #[test]
    fn query_creates_session_with_k_results() {
        let s = service();
        let (session, names) = tst_query(&s, 3);
        assert!(session >= 1);
        assert_eq!(names.len(), 3);
        assert_eq!(s.session_count(), 1);
    }

    #[test]
    fn full_why_not_flow_over_the_api() {
        let s = service();
        let (session, top_names) = tst_query(&s, 3);

        // Find a hotel not in the result to ask about (by name).
        let corpus = s.yask().corpus();
        let missing_name = corpus
            .iter()
            .map(|o| o.name.clone())
            .find(|n| !top_names.contains(n))
            .unwrap();

        let (status, body) = post(
            &s,
            "/whynot/explain",
            Json::obj([
                ("session", Json::Num(session as f64)),
                ("missing", Json::Arr(vec![Json::str(missing_name.clone())])),
            ]),
        );
        assert_eq!(status, 200, "{body}");
        let ex = &body.get("explanations").unwrap().as_array().unwrap()[0];
        assert_eq!(ex.get("name").unwrap().as_str(), Some(missing_name.as_str()));
        assert!(ex.get("rank").unwrap().as_usize().unwrap() > 3);

        for path in ["/whynot/preference", "/whynot/keywords", "/whynot/combined"] {
            let (status, body) = post(
                &s,
                path,
                Json::obj([
                    ("session", Json::Num(session as f64)),
                    ("missing", Json::Arr(vec![Json::str(missing_name.clone())])),
                    ("lambda", Json::Num(0.5)),
                ]),
            );
            assert_eq!(status, 200, "{path}: {body}");
            let penalty = body.get("penalty").unwrap().as_f64().unwrap();
            assert!((0.0..=1.0).contains(&penalty), "{path}");
            // The refined result must contain the missing hotel.
            let revived = body
                .get("results")
                .unwrap()
                .as_array()
                .unwrap()
                .iter()
                .any(|r| r.get("name").unwrap().as_str() == Some(missing_name.as_str()));
            assert!(revived, "{path} did not revive {missing_name}");
        }

        let (status, body) = post(
            &s,
            "/session/close",
            Json::obj([("session", Json::Num(session as f64))]),
        );
        assert_eq!(status, 200);
        assert_eq!(body.get("closed").unwrap().as_bool(), Some(true));
        assert_eq!(s.session_count(), 0);
    }

    #[test]
    fn viewport_lists_objects_in_rect() {
        let s = service();
        // Whole city, no filter.
        let (status, body) = post(
            &s,
            "/viewport",
            Json::obj([
                ("x0", Json::Num(114.0)),
                ("y0", Json::Num(22.0)),
                ("x1", Json::Num(115.0)),
                ("y1", Json::Num(23.0)),
            ]),
        );
        assert_eq!(status, 200, "{body}");
        assert_eq!(body.get("objects").unwrap().as_array().unwrap().len(), 539);
        // Keyword-filtered subset.
        let (status, body) = post(
            &s,
            "/viewport",
            Json::obj([
                ("x0", Json::Num(114.0)),
                ("y0", Json::Num(22.0)),
                ("x1", Json::Num(115.0)),
                ("y1", Json::Num(23.0)),
                ("keywords", Json::Arr(vec![Json::str("spa")])),
                ("mode", Json::str("any")),
            ]),
        );
        assert_eq!(status, 200);
        let n = body.get("objects").unwrap().as_array().unwrap().len();
        assert!(n > 0 && n < 539, "spa filter returned {n}");
        // Inverted rect rejected.
        let (status, _) = post(
            &s,
            "/viewport",
            Json::obj([
                ("x0", Json::Num(115.0)),
                ("y0", Json::Num(22.0)),
                ("x1", Json::Num(114.0)),
                ("y1", Json::Num(23.0)),
            ]),
        );
        assert_eq!(status, 400);
    }

    #[test]
    fn bad_requests_get_400() {
        let s = service();
        // Not JSON.
        let req = Request {
            method: "POST".into(),
            path: "/query".into(),
            version: "HTTP/1.1".into(),
            headers: vec![],
            body: b"not json".to_vec(),
        };
        assert_eq!(s.handle(&req).status, 400);
        // Missing fields.
        let (status, _) = post(&s, "/query", Json::obj([("x", Json::Num(1.0))]));
        assert_eq!(status, 400);
        // Bad k.
        let (status, _) = post(
            &s,
            "/query",
            Json::obj([
                ("x", Json::Num(114.0)),
                ("y", Json::Num(22.0)),
                ("keywords", Json::Arr(vec![])),
                ("k", Json::Num(0.0)),
            ]),
        );
        assert_eq!(status, 400);
    }

    #[test]
    fn unknown_session_is_410() {
        let s = service();
        let (status, _) = post(
            &s,
            "/whynot/explain",
            Json::obj([
                ("session", Json::Num(999.0)),
                ("missing", Json::Arr(vec![Json::Num(1.0)])),
            ]),
        );
        assert_eq!(status, 410);
    }

    #[test]
    fn unknown_route_and_method() {
        let s = service();
        let (status, _) = get(&s, "/nope");
        assert_eq!(status, 404);
        let req = Request {
            method: "DELETE".into(),
            path: "/query".into(),
            version: "HTTP/1.1".into(),
            headers: vec![],
            body: vec![],
        };
        assert_eq!(s.handle(&req).status, 405);
    }

    #[test]
    fn unknown_missing_name_is_400() {
        let s = service();
        let (session, _) = tst_query(&s, 3);
        let (status, body) = post(
            &s,
            "/whynot/explain",
            Json::obj([
                ("session", Json::Num(session as f64)),
                ("missing", Json::Arr(vec![Json::str("No Such Hotel")])),
            ]),
        );
        assert_eq!(status, 400);
        assert!(body.get("error").unwrap().as_str().unwrap().contains("No Such Hotel"));
    }

    #[test]
    fn stats_expose_exec_metrics() {
        let s = service();
        let (_, _) = tst_query(&s, 3);
        let (status, body) = get(&s, "/stats");
        assert_eq!(status, 200);
        let exec = body.get("exec").unwrap();
        assert_eq!(exec.get("shards").unwrap().as_usize(), Some(4));
        assert_eq!(exec.get("workers").unwrap().as_usize(), Some(4));
        assert_eq!(exec.get("scatter_queries").unwrap().as_usize(), Some(1));
        let topk = exec.get("topk_cache").unwrap();
        assert_eq!(topk.get("misses").unwrap().as_usize(), Some(1));
        let per_shard = exec.get("per_shard").unwrap().as_array().unwrap();
        assert_eq!(per_shard.len(), 4);
        let objects: usize = per_shard
            .iter()
            .map(|p| p.get("objects").unwrap().as_usize().unwrap())
            .sum();
        assert_eq!(objects, 539);
    }

    #[test]
    fn repeated_query_is_served_from_the_cache() {
        let s = service();
        let (_, names_a) = tst_query(&s, 3);
        let (_, names_b) = tst_query(&s, 3);
        assert_eq!(names_a, names_b);
        let exec = s.executor().stats();
        assert_eq!(exec.topk_cache.hits, 1);
        assert_eq!(exec.queries, 1, "second query must come from the cache");
    }

    #[test]
    fn session_ttl_is_configurable() {
        let (corpus, vocab) = yask_data::hk_hotels();
        let s = YaskService::with_config(
            corpus,
            vocab,
            ServiceConfig {
                exec: ExecConfig::single_tree(yask_core::YaskConfig::default()),
                session_ttl: Duration::from_millis(40),
            },
        );
        assert_eq!(s.session_ttl(), Duration::from_millis(40));
        let (_, _) = tst_query(&s, 2);
        assert_eq!(s.session_count(), 1);
        std::thread::sleep(Duration::from_millis(80));
        // The next request sweeps the expired session.
        let (status, _) = get(&s, "/health");
        assert_eq!(status, 200);
        assert_eq!(s.session_count(), 0);
    }

    #[test]
    fn background_sweeper_evicts_without_traffic() {
        let (corpus, vocab) = yask_data::hk_hotels();
        let s = Arc::new(YaskService::with_config(
            corpus,
            vocab,
            ServiceConfig {
                exec: ExecConfig::single_tree(yask_core::YaskConfig::default()),
                session_ttl: Duration::from_millis(30),
            },
        ));
        let _sweeper = s.spawn_session_sweeper(Duration::from_millis(10));
        let (_, _) = tst_query(&s, 2);
        assert_eq!(s.session_count(), 1);
        // No requests from here on: the sweeper alone must evict.
        let deadline = std::time::Instant::now() + Duration::from_secs(2);
        while s.session_count() > 0 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(10));
        }
        assert_eq!(s.session_count(), 0, "sweeper never fired");
    }

    #[test]
    fn landing_page_is_html() {
        let s = service();
        let req = Request {
            method: "GET".into(),
            path: "/".into(),
            version: "HTTP/1.1".into(),
            headers: vec![],
            body: vec![],
        };
        let resp = s.handle(&req);
        assert_eq!(resp.status, 200);
        assert!(resp.content_type.starts_with("text/html"));
        assert!(String::from_utf8(resp.body).unwrap().contains("YASK"));
    }
}
