//! Browser–server substrate for YASK (paper Fig 1, §3.2–3.3).
//!
//! The demo runs as a web service: clients POST spatial keyword queries
//! and follow-up why-not questions, the server answers with JSON, and the
//! server "caches users' initial spatial keyword queries until users give
//! up asking follow-up why-not questions". This crate reproduces that
//! service with zero external web dependencies:
//!
//! * [`json`] — a complete hand-rolled JSON value type, serializer and
//!   recursive-descent parser (serde_json is outside the approved
//!   dependency set — see DESIGN.md §4);
//! * [`http`] — a minimal HTTP/1.1 request reader / response writer over
//!   `std::net`, plus a crossbeam-channel worker-pool server;
//! * [`api`] — the YASK REST endpoints (`/query`, `/whynot/explain`,
//!   `/whynot/preference`, `/whynot/keywords`, `/session/close`, …)
//!   bridging HTTP to the sharded [`yask_exec::Executor`] (which wraps
//!   [`yask_core::Yask`]) and [`yask_core::SessionStore`];
//! * [`coalesce`] — the time-window write coalescer: concurrent write
//!   requests share one group-commit fsync pair by default;
//! * [`metrics`] — the `GET /metrics` Prometheus text exposition over
//!   the `yask_obs` counters and latency histograms (per-query span
//!   traces are served by `GET /debug/slow` and inline via `?trace=1`);
//! * [`client`] — a tiny blocking HTTP client used by the integration
//!   tests, the benches and the demo example, with an opt-in retry
//!   loop (capped exponential backoff + jitter, honoring the server's
//!   `Retry-After` on 429/503 sheds).

pub mod api;
pub mod client;
pub mod coalesce;
pub mod event_loop;
pub mod http;
pub mod json;
pub mod metrics;

pub use api::{ServiceConfig, SessionSweeper, YaskService};
pub use client::{
    http_get, http_get_text, http_post, http_post_retry, http_post_with_headers, retry_with,
    Reply, RetryPolicy,
};
pub use coalesce::{CoalesceConfig, WriteCoalescer, WriteError};
pub use event_loop::{Clock, SystemClock, TestClock, TimerWheel};
pub use http::{ConnControl, ConnPolicy, HttpServer, Request, Response, ServerHandle, MAX_BODY};
pub use json::Json;
