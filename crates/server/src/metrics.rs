//! The `GET /metrics` Prometheus exposition.
//!
//! Renders every counter `/stats` reports — executor, caches, ingest,
//! sessions — plus the `yask_obs` latency histograms into one text
//! document (exposition format 0.0.4). Metric names are `yask_`-prefixed;
//! per-shard series carry a `shard` label, per-module why-not series a
//! `module` label, and durations are exported in seconds per Prometheus
//! convention. The same `yask_obs::validate_exposition` parser that
//! checks this output in the unit tests also runs in the CI smoke step,
//! so "well-formed" means the same thing everywhere.

use yask_exec::{AdmissionSnapshot, ExecSnapshot, RouteWindows};
use yask_ingest::{CheckpointStats, IngestHistSnapshots, WalStats};
use yask_obs::prom::{LabelledHistogram, LabelledValue, PromText};
use yask_pager::PoolStats;

/// Everything one `/metrics` render needs, gathered by the service under
/// its own accessors so this module stays a pure formatter.
pub(crate) struct MetricsInputs<'a> {
    pub exec: &'a ExecSnapshot,
    pub admission: &'a AdmissionSnapshot,
    pub ingest_hists: &'a IngestHistSnapshots,
    pub wal: Option<WalStats>,
    pub ckpt: &'a CheckpointStats,
    pub corpus_chunks_copied: u64,
    pub corpus_copy_bytes: u64,
    pub coalesce_groups: u64,
    pub coalesce_batches: u64,
    pub sessions_live: usize,
    pub sessions_pinned: usize,
    pub traces_recorded: u64,
    pub uptime_seconds: f64,
}

fn shard_label(i: usize) -> Vec<(&'static str, String)> {
    vec![("shard", i.to_string())]
}

/// Per-shard series from one `u64` accessor.
fn shard_series(exec: &ExecSnapshot, f: impl Fn(usize) -> f64) -> Vec<LabelledValue<'static>> {
    (0..exec.per_shard.len())
        .map(|i| (shard_label(i), f(i)))
        .collect()
}

/// Renders the whole exposition document.
pub(crate) fn render_metrics(m: &MetricsInputs) -> String {
    let e = m.exec;
    let mut p = PromText::new();

    // -- query path ------------------------------------------------------
    p.counter("yask_queries_total", "Top-k queries computed (cache hits excluded)", e.queries);
    p.counter(
        "yask_scatter_queries_total",
        "Queries computed by scatter-gather across shards",
        e.scatter_queries,
    );
    p.counter(
        "yask_single_queries_total",
        "Queries computed on the single-tree path",
        e.single_queries,
    );
    p.gauge("yask_shards", "Configured shard count", e.shards as f64);
    p.gauge("yask_workers", "Scatter pool worker threads", e.workers as f64);
    p.gauge(
        "yask_queue_depth",
        "Pool jobs submitted but not yet started",
        e.queue_depth as f64,
    );
    p.gauge(
        "yask_queue_depth_max",
        "Highest queue depth any submit ever observed",
        e.queue_depth_max as f64,
    );
    p.gauge(
        "yask_queue_depth_max_1m",
        "Highest queue depth any submit observed in the last minute",
        e.queue_depth_max_1m as f64,
    );
    p.counter(
        "yask_queue_saturated_total",
        "Submits that ran inline because the bounded pool queue was full",
        e.queue_saturated as u64,
    );

    // -- admission / load shedding ---------------------------------------
    let shed_series: Vec<LabelledValue> = m
        .admission
        .shed
        .iter()
        .map(|c| {
            (
                vec![("route", c.route.to_string()), ("reason", c.reason.to_string())],
                c.count as f64,
            )
        })
        .collect();
    p.counter_family(
        "yask_shed_total",
        "Requests refused by admission control, by route and reason",
        &shed_series,
    );
    p.counter(
        "yask_deadline_exceeded_total",
        "Requests whose deadline budget expired (504s)",
        m.admission.deadline_exceeded,
    );
    p.counter(
        "yask_degraded_answers_total",
        "Responses served degraded (stale cache hit or truncated search)",
        m.admission.degraded_answers,
    );
    p.counter(
        "yask_degraded_admits_total",
        "Requests admitted at the degraded deadline budget",
        m.admission.degraded_admits,
    );

    // -- caches ----------------------------------------------------------
    let caches = [("topk", &e.topk_cache), ("answer", &e.answer_cache)];
    let cache_series = |f: &dyn Fn(&yask_exec::CacheSnapshot) -> f64| -> Vec<LabelledValue<'static>> {
        caches
            .iter()
            .map(|(name, c)| (vec![("cache", (*name).to_string())], f(c)))
            .collect()
    };
    p.counter_family(
        "yask_cache_hits_total",
        "Answer cache hits by cache",
        &cache_series(&|c| c.hits as f64),
    );
    p.counter_family(
        "yask_cache_misses_total",
        "Answer cache misses by cache",
        &cache_series(&|c| c.misses as f64),
    );
    p.counter_family(
        "yask_cache_insertions_total",
        "Answer cache insertions by cache",
        &cache_series(&|c| c.insertions as f64),
    );
    p.counter_family(
        "yask_cache_evictions_total",
        "Answer cache evictions by cache",
        &cache_series(&|c| c.evictions as f64),
    );
    p.gauge_family(
        "yask_cache_entries",
        "Live answer cache entries by cache",
        &cache_series(&|c| c.len as f64),
    );

    // -- corpus / epochs -------------------------------------------------
    p.gauge("yask_epoch", "Published corpus epoch", e.epoch as f64);
    p.gauge("yask_live_objects", "Live objects in the current epoch", e.live_objects as f64);
    p.gauge("yask_tombstones", "Tombstoned slots in the current epoch", e.tombstones as f64);

    // -- write path ------------------------------------------------------
    p.counter("yask_write_batches_total", "Write batches applied", e.batches);
    p.counter("yask_inserts_total", "Objects inserted across all batches", e.inserts);
    p.counter("yask_deletes_total", "Objects deleted across all batches", e.deletes);
    p.counter("yask_rebalances_total", "Skew-triggered shard re-splits", e.rebalances);
    p.counter(
        "yask_index_chunks_copied_total",
        "Arena chunks copied by path-copying tree updates",
        e.index_chunks_copied,
    );
    p.counter(
        "yask_index_chunks_created_total",
        "Arena chunks freshly created by tree updates",
        e.index_chunks_created,
    );
    p.counter(
        "yask_index_copy_bytes_total",
        "Bytes deep-copied by path-copying tree updates",
        e.index_copy_bytes,
    );
    p.counter(
        "yask_corpus_chunks_copied_total",
        "Corpus chunks copied deriving new epochs",
        m.corpus_chunks_copied,
    );
    p.counter(
        "yask_corpus_copy_bytes_total",
        "Corpus bytes copied deriving new epochs",
        m.corpus_copy_bytes,
    );
    p.gauge("yask_index_nodes", "Reachable tree nodes across all shards", e.index_nodes as f64);
    p.gauge("yask_index_bytes", "Estimated index bytes across all shards", e.index_bytes as f64);

    // -- WAL / checkpoints (gauges: the log truncates at checkpoints) ----
    p.gauge("yask_wal_durable", "1 when a write-ahead log is configured", m.wal.is_some() as u8 as f64);
    let wal = m.wal.unwrap_or_default();
    p.gauge("yask_wal_batches", "Committed batches in the log since its base", wal.batches as f64);
    p.gauge("yask_wal_bytes", "Committed payload bytes in the log", wal.bytes as f64);
    p.gauge("yask_wal_groups", "Commit groups flushed since the log base", wal.groups as f64);
    p.gauge("yask_wal_base_epoch", "Epoch the log's records apply on top of", wal.base_epoch as f64);
    p.counter("yask_checkpoints_total", "Checkpoint snapshots taken", m.ckpt.checkpoints);
    p.gauge(
        "yask_checkpoint_epoch",
        "Epoch of the most recent checkpoint",
        m.ckpt.last_epoch as f64,
    );
    // -- buffer pools / out-of-core pager --------------------------------
    // One family per counter, one series per pool: the out-of-core shard
    // pager (zero-valued while every tree is resident), the WAL's live
    // pool, and the cumulative counters of every checkpoint file touched.
    // All three are monotonic for the life of the process.
    let pg = e.pager.unwrap_or_default();
    let shard_pool = PoolStats {
        hits: pg.pool_hits,
        misses: pg.pool_misses,
        evictions: pg.pool_evictions,
    };
    let pools: [(&str, PoolStats); 3] =
        [("shard", shard_pool), ("wal", wal.pool), ("checkpoint", m.ckpt.pool)];
    let pool_series = |f: &dyn Fn(&PoolStats) -> u64| -> Vec<LabelledValue<'static>> {
        pools
            .iter()
            .map(|(name, s)| (vec![("pool", (*name).to_string())], f(s) as f64))
            .collect()
    };
    p.counter_family(
        "yask_pager_hits_total",
        "Buffer-pool page reads served from cache, by pool",
        &pool_series(&|s| s.hits),
    );
    p.counter_family(
        "yask_pager_misses_total",
        "Buffer-pool page reads that went to disk, by pool",
        &pool_series(&|s| s.misses),
    );
    p.counter_family(
        "yask_pager_evictions_total",
        "Buffer-pool frames evicted to make room, by pool",
        &pool_series(&|s| s.evictions),
    );
    // Decoded-chunk (node-arena) counters of the shard pager. These
    // aggregate the *live* paged trees — a re-paged shard starts fresh —
    // so they are gauges, not counters.
    p.gauge(
        "yask_paged_trees",
        "Shard trees currently served out-of-core",
        pg.paged_trees as f64,
    );
    p.gauge(
        "yask_paged_budget_bytes",
        "Decoded-chunk resident budget per paged tree",
        pg.budget_bytes as f64,
    );
    p.gauge(
        "yask_paged_chunks",
        "Node chunks across all paged trees",
        pg.chunk_count as f64,
    );
    p.gauge(
        "yask_paged_chunks_resident",
        "Node chunks currently decoded in memory across paged trees",
        pg.resident_chunks as f64,
    );
    p.gauge(
        "yask_paged_chunk_hits",
        "Node-chunk reads served from the decoded cache (live paged trees)",
        pg.chunk_hits as f64,
    );
    p.gauge(
        "yask_paged_chunk_misses",
        "Node-chunk faults decoded through the pager (live paged trees)",
        pg.chunk_misses as f64,
    );
    p.gauge(
        "yask_paged_chunk_evictions",
        "Decoded node chunks evicted under the resident budget (live paged trees)",
        pg.chunk_evictions as f64,
    );
    p.counter(
        "yask_coalesce_groups_total",
        "Write groups flushed by the request coalescer",
        m.coalesce_groups,
    );
    p.counter(
        "yask_coalesce_batches_total",
        "Write batches admitted through the request coalescer",
        m.coalesce_batches,
    );

    // -- build / uptime --------------------------------------------------
    p.gauge_family(
        "yask_build_info",
        "Build metadata carried as labels; the value is always 1",
        &[(vec![("version", env!("CARGO_PKG_VERSION").to_string())], 1.0)],
    );
    p.gauge(
        "yask_uptime_seconds",
        "Seconds since the service started (monotonic clock)",
        m.uptime_seconds,
    );

    // -- workload observatory --------------------------------------------
    // Windowed rates and quantiles per route at the 1 s / 10 s / 1 m
    // horizons, plus per-STR-cell heat. With the observatory disabled the
    // families render header-only (valid exposition) rather than
    // flapping out of existence.
    let mut route_rate: Vec<LabelledValue> = Vec::new();
    let mut route_p50: Vec<LabelledValue> = Vec::new();
    let mut route_p99: Vec<LabelledValue> = Vec::new();
    let mut cell_query_heat: Vec<LabelledValue> = Vec::new();
    let mut cell_write_heat: Vec<LabelledValue> = Vec::new();
    let mut cell_query_touches: Vec<LabelledValue> = Vec::new();
    let mut cell_write_touches: Vec<LabelledValue> = Vec::new();
    let (mut query_skew, mut write_skew) = (0.0, 0.0);
    if let Some(w) = &e.workload {
        let mut push_route = |route: &str, rw: &RouteWindows| {
            for (window, snap) in rw.iter_named() {
                let labels = vec![("route", route.to_string()), ("window", window.to_string())];
                route_rate.push((labels.clone(), snap.rate_per_sec()));
                route_p50.push((labels.clone(), snap.p50() as f64 / 1e9));
                route_p99.push((labels, snap.p99() as f64 / 1e9));
            }
        };
        push_route("topk", &w.topk);
        push_route("topk_hit", &w.topk_hit);
        for (module, rw) in w.whynot_named() {
            push_route(&format!("whynot_{module}"), rw);
        }
        push_route("writes", &w.writes);
        let cell_label = |i: usize| vec![("cell", i.to_string())];
        for (i, &h) in w.query_heat.iter().enumerate() {
            cell_query_heat.push((cell_label(i), h));
        }
        for (i, &h) in w.write_heat.iter().enumerate() {
            cell_write_heat.push((cell_label(i), h));
        }
        for (i, &t) in w.query_touches.iter().enumerate() {
            cell_query_touches.push((cell_label(i), t as f64));
        }
        for (i, &t) in w.write_touches.iter().enumerate() {
            cell_write_touches.push((cell_label(i), t as f64));
        }
        query_skew = w.query_skew;
        write_skew = w.write_skew;
    }
    p.gauge_family(
        "yask_route_rate",
        "Windowed request rate per route (events per second)",
        &route_rate,
    );
    p.gauge_family(
        "yask_route_p50_seconds",
        "Windowed median latency per route",
        &route_p50,
    );
    p.gauge_family(
        "yask_route_p99_seconds",
        "Windowed p99 latency per route",
        &route_p99,
    );
    p.gauge_family(
        "yask_cell_query_heat",
        "Exponentially decayed query touches per STR cell",
        &cell_query_heat,
    );
    p.gauge_family(
        "yask_cell_write_heat",
        "Exponentially decayed write ops per STR cell",
        &cell_write_heat,
    );
    p.counter_family(
        "yask_cell_query_touches_total",
        "Query touches routed per STR cell since startup",
        &cell_query_touches,
    );
    p.counter_family(
        "yask_cell_write_touches_total",
        "Write ops routed per STR cell since startup",
        &cell_write_touches,
    );
    p.gauge(
        "yask_query_heat_skew",
        "Query heat skew: hottest cell over mean cell (0 when cold)",
        query_skew,
    );
    p.gauge(
        "yask_write_heat_skew",
        "Write heat skew: hottest cell over mean cell (0 when cold)",
        write_skew,
    );

    // -- sessions / traces ----------------------------------------------
    p.gauge("yask_sessions_live", "Live why-not sessions", m.sessions_live as f64);
    p.gauge(
        "yask_sessions_pinned_epochs",
        "Sessions still answering against a superseded epoch",
        m.sessions_pinned as f64,
    );
    p.counter("yask_traces_recorded_total", "Query traces recorded into the ring", m.traces_recorded);

    // -- per-shard counters ---------------------------------------------
    // Families render unconditionally: with zero shards (synthetic empty
    // snapshots) they emit header-only — valid exposition since the
    // parser relaxation — so a scraper never sees a family flap in and
    // out of existence as the topology changes.
    p.counter_family(
        "yask_shard_queries_total",
        "Searches run per shard",
        &shard_series(e, |i| e.per_shard[i].queries as f64),
    );
    p.counter_family(
        "yask_shard_nodes_expanded_total",
        "Tree nodes expanded per shard",
        &shard_series(e, |i| e.per_shard[i].nodes_expanded as f64),
    );
    p.counter_family(
        "yask_shard_objects_scored_total",
        "Objects exactly scored per shard",
        &shard_series(e, |i| e.per_shard[i].objects_scored as f64),
    );
    p.counter_family(
        "yask_shard_inserts_total",
        "Inserts routed per shard",
        &shard_series(e, |i| e.per_shard[i].inserts as f64),
    );
    p.counter_family(
        "yask_shard_deletes_total",
        "Deletes routed per shard",
        &shard_series(e, |i| e.per_shard[i].deletes as f64),
    );
    p.gauge_family(
        "yask_shard_objects",
        "Objects indexed per shard",
        &shard_series(e, |i| e.per_shard[i].objects as f64),
    );
    p.gauge_family(
        "yask_shard_index_bytes",
        "Estimated index bytes per shard",
        &shard_series(e, |i| e.per_shard[i].index_bytes as f64),
    );

    // -- latency histograms ---------------------------------------------
    p.histogram(
        "yask_topk_latency_seconds",
        "Uncached top-k compute latency",
        &e.topk_hist,
    );
    p.histogram(
        "yask_topk_cache_hit_latency_seconds",
        "Top-k cache hit latency",
        &e.topk_hit_hist,
    );
    let shard_hists: Vec<LabelledHistogram> = e
        .shard_search_hists
        .iter()
        .enumerate()
        .map(|(i, h)| (shard_label(i), h.clone()))
        .collect();
    p.histogram_family(
        "yask_shard_search_latency_seconds",
        "Per-shard search latency",
        &shard_hists,
    );
    let whynot_hists: Vec<LabelledHistogram> = e
        .whynot_hists
        .iter_named()
        .iter()
        .map(|(name, h)| (vec![("module", (*name).to_string())], (*h).clone()))
        .collect();
    p.histogram_family(
        "yask_whynot_latency_seconds",
        "Why-not answering latency by module",
        &whynot_hists,
    );
    p.histogram(
        "yask_wal_append_latency_seconds",
        "Durable WAL commit latency (encode + write + both fsyncs)",
        &m.ingest_hists.wal_append,
    );
    p.histogram(
        "yask_wal_fsync_latency_seconds",
        "Individual commit-path fsync latency",
        &m.ingest_hists.wal_fsync,
    );
    p.histogram(
        "yask_checkpoint_latency_seconds",
        "Checkpoint fold latency (snapshot write + log truncation)",
        &m.ingest_hists.checkpoint,
    );
    p.histogram(
        "yask_write_apply_latency_seconds",
        "Executor batch publish latency",
        &m.ingest_hists.write_apply,
    );

    p.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use yask_obs::validate_exposition;

    #[test]
    fn empty_service_metrics_validate() {
        // The fully-empty snapshot: zero shards, observatory off, nothing
        // recorded. Every family must still be declared — zero-sample
        // families render header-only rather than vanishing, so a scraper
        // never sees one appear out of nowhere.
        let exec = ExecSnapshot::default();
        let hists = IngestHistSnapshots::default();
        let text = render_metrics(&MetricsInputs {
            exec: &exec,
            admission: &AdmissionSnapshot::default(),
            ingest_hists: &hists,
            wal: None,
            ckpt: &CheckpointStats::default(),
            corpus_chunks_copied: 0,
            corpus_copy_bytes: 0,
            coalesce_groups: 0,
            coalesce_batches: 0,
            sessions_live: 0,
            sessions_pinned: 0,
            traces_recorded: 0,
            uptime_seconds: 0.0,
        });
        let summary = validate_exposition(&text).expect("exposition must validate");
        for name in [
            "yask_topk_latency_seconds",
            "yask_topk_cache_hit_latency_seconds",
            "yask_shard_search_latency_seconds",
            "yask_whynot_latency_seconds",
            "yask_wal_append_latency_seconds",
            "yask_wal_fsync_latency_seconds",
            "yask_checkpoint_latency_seconds",
            "yask_write_apply_latency_seconds",
        ] {
            assert!(summary.has_family(name), "{name} missing");
        }
        assert_eq!(summary.histograms, 8, "histogram families: {}", summary.histograms);
        assert!(summary.has_family("yask_queries_total"));
        assert!(summary.has_family("yask_cache_hits_total"));
        assert!(summary.has_family("yask_sessions_live"));
        assert!(summary.has_family("yask_wal_durable"));
        // Per-shard and observatory families are declared even with no
        // shards and the observatory off (header-only).
        for name in [
            "yask_shard_queries_total",
            "yask_shard_objects",
            "yask_route_rate",
            "yask_route_p50_seconds",
            "yask_route_p99_seconds",
            "yask_cell_query_heat",
            "yask_cell_write_heat",
            "yask_query_heat_skew",
            "yask_build_info",
            "yask_uptime_seconds",
            "yask_queue_depth_max_1m",
            // Admission / robustness families declare themselves even
            // before anything was ever shed.
            "yask_shed_total",
            "yask_deadline_exceeded_total",
            "yask_degraded_answers_total",
            "yask_degraded_admits_total",
            "yask_queue_saturated_total",
        ] {
            assert!(summary.has_family(name), "{name} missing");
        }
        assert!(text.contains("yask_build_info{version="));
    }

    #[test]
    fn admission_counters_render_the_shed_grid() {
        use yask_exec::ShedCount;
        let exec = ExecSnapshot::default();
        let hists = IngestHistSnapshots::default();
        let admission = AdmissionSnapshot {
            shed: vec![
                ShedCount { route: "whynot", reason: "topk_p99", count: 3 },
                ShedCount { route: "topk", reason: "accept", count: 2 },
            ],
            shed_total: 5,
            degraded_admits: 4,
            degraded_answers: 2,
            deadline_exceeded: 1,
        };
        let text = render_metrics(&MetricsInputs {
            exec: &exec,
            admission: &admission,
            ingest_hists: &hists,
            wal: None,
            ckpt: &CheckpointStats::default(),
            corpus_chunks_copied: 0,
            corpus_copy_bytes: 0,
            coalesce_groups: 0,
            coalesce_batches: 0,
            sessions_live: 0,
            sessions_pinned: 0,
            traces_recorded: 0,
            uptime_seconds: 0.0,
        });
        validate_exposition(&text).expect("exposition must validate");
        assert!(text.contains(r#"yask_shed_total{route="whynot",reason="topk_p99"} 3"#));
        assert!(text.contains(r#"yask_shed_total{route="topk",reason="accept"} 2"#));
        assert!(text.contains("yask_deadline_exceeded_total 1"));
        assert!(text.contains("yask_degraded_answers_total 2"));
        assert!(text.contains("yask_degraded_admits_total 4"));
    }

    #[test]
    fn workload_observatory_renders_windowed_gauges() {
        use yask_exec::WorkloadSnapshot;
        let exec = ExecSnapshot {
            workload: Some(WorkloadSnapshot {
                query_heat: vec![8.0, 0.0],
                write_heat: vec![0.0, 2.0],
                query_touches: vec![8, 0],
                write_touches: vec![0, 2],
                query_skew: 2.0,
                write_skew: 2.0,
                ..Default::default()
            }),
            queue_depth_max_1m: 7,
            ..Default::default()
        };
        let hists = IngestHistSnapshots::default();
        let text = render_metrics(&MetricsInputs {
            exec: &exec,
            admission: &AdmissionSnapshot::default(),
            ingest_hists: &hists,
            wal: None,
            ckpt: &CheckpointStats::default(),
            corpus_chunks_copied: 0,
            corpus_copy_bytes: 0,
            coalesce_groups: 0,
            coalesce_batches: 0,
            sessions_live: 0,
            sessions_pinned: 0,
            traces_recorded: 0,
            uptime_seconds: 12.5,
        });
        validate_exposition(&text).expect("exposition must validate");
        // Every route appears at every horizon.
        for route in [
            "topk", "topk_hit", "whynot_explain", "whynot_preference", "whynot_keyword",
            "whynot_combined", "whynot_full", "writes",
        ] {
            for window in ["1s", "10s", "1m"] {
                let needle = format!(r#"yask_route_rate{{route="{route}",window="{window}"}}"#);
                assert!(text.contains(&needle), "{needle} missing");
            }
        }
        assert!(text.contains(r#"yask_cell_query_heat{cell="0"} 8"#));
        assert!(text.contains(r#"yask_cell_write_heat{cell="1"} 2"#));
        assert!(text.contains(r#"yask_cell_query_touches_total{cell="0"} 8"#));
        assert!(text.contains("yask_query_heat_skew 2"));
        assert!(text.contains("yask_queue_depth_max_1m 7"));
        assert!(text.contains("yask_uptime_seconds 12.5"));
    }
}
