//! A small, complete JSON implementation.
//!
//! Values, a serializer with proper string escaping, and a recursive-
//! descent parser covering the full grammar (nested containers, all
//! escape sequences including `\uXXXX` with surrogate pairs, scientific-
//! notation numbers). Objects preserve insertion order; duplicate keys
//! keep the first occurrence on lookup, mirroring typical service
//! behaviour.

use std::fmt;

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (stored as `f64`, like JavaScript).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Convenience object constructor.
    pub fn obj<I: IntoIterator<Item = (&'static str, Json)>>(pairs: I) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
    }

    /// Convenience string constructor.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Object field lookup (first occurrence).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Numeric accessor.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// Non-negative integer accessor (rejects fractional values).
    pub fn as_usize(&self) -> Option<usize> {
        match self {
            Json::Num(v) if *v >= 0.0 && v.fract() == 0.0 && *v <= u32::MAX as f64 => {
                Some(*v as usize)
            }
            _ => None,
        }
    }

    /// String accessor.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Boolean accessor.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Array accessor.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Parses a JSON document (must consume all non-whitespace input).
    pub fn parse(input: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters"));
        }
        Ok(v)
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Num(v) => {
                if v.is_finite() {
                    // Integers render without a trailing ".0".
                    if v.fract() == 0.0 && v.abs() < 1e15 {
                        write!(f, "{}", *v as i64)
                    } else {
                        write!(f, "{v}")
                    }
                } else {
                    // JSON has no Inf/NaN; degrade to null like browsers.
                    f.write_str("null")
                }
            }
            Json::Str(s) => write_escaped(f, s),
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{v}")?;
                }
                f.write_str("]")
            }
            Json::Obj(pairs) => {
                f.write_str("{")?;
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, k)?;
                    f.write_str(":")?;
                    write!(f, "{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            '\u{08}' => f.write_str("\\b")?,
            '\u{0C}' => f.write_str("\\f")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => f.write_fmt(format_args!("{c}"))?,
        }
    }
    f.write_str("\"")
}

/// Parse failure with byte offset.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    /// Byte position of the failure.
    pub pos: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error at byte {}: {}", self.pos, self.message)
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> JsonError {
        JsonError {
            pos: self.pos,
            message: msg.to_owned(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn literal(&mut self, lit: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{lit}'")))
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii number");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("invalid number"))
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{08}'),
                        Some(b'f') => out.push('\u{0C}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1; // past 'u'
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: require "\uXXXX" low half.
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let code =
                                    0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(code).ok_or_else(|| self.err("bad codepoint"))?
                            } else {
                                char::from_u32(hi).ok_or_else(|| self.err("bad codepoint"))?
                            };
                            out.push(c);
                            // hex4 already advanced past the digits.
                            continue;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid utf-8"))?;
                    let c = rest.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_scalars() {
        for (text, value) in [
            ("null", Json::Null),
            ("true", Json::Bool(true)),
            ("false", Json::Bool(false)),
            ("0", Json::Num(0.0)),
            ("-42", Json::Num(-42.0)),
            ("3.25", Json::Num(3.25)),
            ("1e3", Json::Num(1000.0)),
            ("\"hi\"", Json::str("hi")),
        ] {
            assert_eq!(Json::parse(text).unwrap(), value, "{text}");
        }
    }

    #[test]
    fn serializes_and_reparses_nested() {
        let v = Json::obj([
            ("name", Json::str("Grand Palace (Central)")),
            ("k", Json::Num(3.0)),
            ("tags", Json::Arr(vec![Json::str("wifi"), Json::str("pool")])),
            ("nested", Json::obj([("ok", Json::Bool(true))])),
            ("nothing", Json::Null),
        ]);
        let text = v.to_string();
        assert_eq!(Json::parse(&text).unwrap(), v);
    }

    #[test]
    fn escapes_round_trip() {
        let tricky = "quote\" backslash\\ newline\n tab\t unicode 香港 control\u{01}";
        let v = Json::Str(tricky.to_owned());
        let text = v.to_string();
        assert_eq!(Json::parse(&text).unwrap(), v);
    }

    #[test]
    fn parses_unicode_escapes_and_surrogates() {
        assert_eq!(Json::parse(r#""A""#).unwrap(), Json::str("A"));
        assert_eq!(Json::parse(r#""香港""#).unwrap(), Json::str("香港"));
        // U+1F600 as surrogate pair.
        assert_eq!(Json::parse(r#""😀""#).unwrap(), Json::str("😀"));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "", "{", "[1,", "{\"a\":}", "tru", "01x", "\"unterminated", "[1] extra",
            "{\"a\" 1}", r#""\q""#, r#""\ud800""#,
        ] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn accessors() {
        let v = Json::parse(r#"{"a": 2, "b": "x", "c": [1], "d": true}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_usize(), Some(2));
        assert_eq!(v.get("a").unwrap().as_f64(), Some(2.0));
        assert_eq!(v.get("b").unwrap().as_str(), Some("x"));
        assert_eq!(v.get("c").unwrap().as_array().unwrap().len(), 1);
        assert_eq!(v.get("d").unwrap().as_bool(), Some(true));
        assert!(v.get("missing").is_none());
        assert_eq!(Json::Num(1.5).as_usize(), None);
        assert_eq!(Json::Num(-1.0).as_usize(), None);
    }

    #[test]
    fn whitespace_everywhere() {
        let v = Json::parse(" { \"a\" : [ 1 , 2 ] , \"b\" : { } } ").unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 2);
    }

    #[test]
    fn non_finite_numbers_serialize_as_null() {
        assert_eq!(Json::Num(f64::NAN).to_string(), "null");
        assert_eq!(Json::Num(f64::INFINITY).to_string(), "null");
    }

    #[test]
    fn integers_render_without_decimal_point() {
        assert_eq!(Json::Num(42.0).to_string(), "42");
        assert_eq!(Json::Num(0.5).to_string(), "0.5");
    }

    #[test]
    fn duplicate_keys_first_wins_on_get() {
        let v = Json::parse(r#"{"k":1,"k":2}"#).unwrap();
        assert_eq!(v.get("k").unwrap().as_f64(), Some(1.0));
    }
}
