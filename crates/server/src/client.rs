//! A tiny blocking HTTP client for tests, benches and examples.
//!
//! Besides the one-shot helpers, [`http_post_retry`] layers a retry loop
//! on top: capped exponential backoff with deterministic jitter, and when
//! the server sheds load (429/503) its `Retry-After` hint overrides the
//! computed delay. The schedule itself is a pure function ([`retry_with`]
//! takes the sleep as a closure) so the unit tests run on an injected
//! clock and never actually wait.

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use crate::json::Json;

/// Issues a GET and parses the JSON response. Returns `(status, body)`.
pub fn http_get(addr: SocketAddr, path: &str) -> io::Result<(u16, Json)> {
    request(addr, "GET", path, None)
}

/// Issues a POST with a JSON body. Returns `(status, body)`.
pub fn http_post(addr: SocketAddr, path: &str, body: &Json) -> io::Result<(u16, Json)> {
    request(addr, "POST", path, Some(body.to_string()))
}

/// [`http_post`] with extra request headers (e.g. `x-yask-deadline-ms`),
/// returning the full [`Reply`] including any `Retry-After`.
pub fn http_post_with_headers(
    addr: SocketAddr,
    path: &str,
    body: &Json,
    headers: &[(&str, &str)],
) -> io::Result<Reply> {
    let extra: String = headers
        .iter()
        .map(|(name, value)| format!("{name}: {value}\r\n"))
        .collect();
    let raw = raw_request_with(addr, "POST", path, Some(body.to_string()), &extra)?;
    parse_reply(&raw)
}

/// Issues a GET and returns the raw text body unparsed — for non-JSON
/// endpoints like the `/metrics` Prometheus exposition.
pub fn http_get_text(addr: SocketAddr, path: &str) -> io::Result<(u16, String)> {
    let raw = raw_request(addr, "GET", path, None)?;
    let text = std::str::from_utf8(&raw)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
    let (head, body) = text
        .split_once("\r\n\r\n")
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "no header terminator"))?;
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "bad status line"))?;
    Ok((status, body.to_owned()))
}

fn request(addr: SocketAddr, method: &str, path: &str, body: Option<String>) -> io::Result<(u16, Json)> {
    let raw = raw_request(addr, method, path, body)?;
    parse_response(&raw)
}

fn raw_request(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: Option<String>,
) -> io::Result<Vec<u8>> {
    raw_request_with(addr, method, path, body, "")
}

fn raw_request_with(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: Option<String>,
    extra_headers: &str,
) -> io::Result<Vec<u8>> {
    let mut stream = TcpStream::connect_timeout(&addr, Duration::from_secs(5))?;
    stream.set_read_timeout(Some(Duration::from_secs(30)))?;
    let body = body.unwrap_or_default();
    let head = format!(
        "{method} {path} HTTP/1.1\r\nhost: {addr}\r\ncontent-type: application/json\r\ncontent-length: {}\r\n{extra_headers}connection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()?;

    let mut raw = Vec::new();
    stream.read_to_end(&mut raw)?;
    Ok(raw)
}

fn parse_response(raw: &[u8]) -> io::Result<(u16, Json)> {
    let reply = parse_reply(raw)?;
    Ok((reply.status, reply.body))
}

/// A parsed HTTP reply, keeping the shedding hint alongside the body.
#[derive(Debug, Clone)]
pub struct Reply {
    /// HTTP status code.
    pub status: u16,
    /// Seconds from the `retry-after` header, when the server sent one.
    pub retry_after: Option<u64>,
    /// Parsed JSON body (`Json::Null` when empty).
    pub body: Json,
}

fn parse_reply(raw: &[u8]) -> io::Result<Reply> {
    let text = std::str::from_utf8(raw)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
    let (head, body) = text
        .split_once("\r\n\r\n")
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "no header terminator"))?;
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "bad status line"))?;
    let retry_after = head.lines().find_map(|line| {
        let (name, value) = line.split_once(':')?;
        if name.trim().eq_ignore_ascii_case("retry-after") {
            value.trim().parse().ok()
        } else {
            None
        }
    });
    let json = if body.trim().is_empty() {
        Json::Null
    } else {
        Json::parse(body.trim())
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?
    };
    Ok(Reply {
        status,
        retry_after,
        body: json,
    })
}

// --- retry with capped exponential backoff ------------------------------

/// Backoff schedule for [`retry_with`] / [`http_post_retry`].
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// Total attempts, including the first (1 = no retries).
    pub max_attempts: u32,
    /// Delay before the first retry; doubles each further retry.
    pub base_delay: Duration,
    /// Ceiling the exponential (and any `Retry-After` hint) is clamped to.
    pub max_delay: Duration,
    /// Seed for the deterministic jitter stream.
    pub jitter_seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 4,
            base_delay: Duration::from_millis(50),
            max_delay: Duration::from_secs(5),
            jitter_seed: 0x9E37_79B9_7F4A_7C15,
        }
    }
}

impl RetryPolicy {
    /// The sleep before retry number `retry` (0-based): capped exponential
    /// plus up to 50% deterministic jitter, unless the server supplied a
    /// `Retry-After` hint — the server knows its own overload horizon, so
    /// the hint wins (still clamped to `max_delay`).
    fn delay(&self, retry: u32, retry_after: Option<u64>) -> Duration {
        if let Some(secs) = retry_after {
            return Duration::from_secs(secs).min(self.max_delay);
        }
        let exp = self
            .base_delay
            .saturating_mul(1u32 << retry.min(16))
            .min(self.max_delay);
        // splitmix64 over (seed, retry): deterministic, spread across clients.
        let mut z = self
            .jitter_seed
            .wrapping_add((retry as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        let half = exp.as_nanos() as u64 / 2;
        let jitter = Duration::from_nanos(if half == 0 { 0 } else { z % half });
        (exp + jitter).min(self.max_delay)
    }
}

/// Should this reply be retried? Overload sheds only — a 4xx other than
/// 429 is the caller's bug and retrying would just re-shed someone else.
fn retryable(status: u16) -> bool {
    status == 429 || status == 503
}

/// Runs `attempt` until it succeeds with a non-shed status, the policy's
/// attempt budget runs out, or a non-retryable reply arrives. `sleep` is
/// called with each computed backoff — pass `std::thread::sleep` for real
/// use, or a recording closure in tests. Transport errors (refused
/// connection, reset) are retried like sheds; the last error propagates.
pub fn retry_with(
    policy: &RetryPolicy,
    mut sleep: impl FnMut(Duration),
    mut attempt: impl FnMut(u32) -> io::Result<Reply>,
) -> io::Result<Reply> {
    let attempts = policy.max_attempts.max(1);
    let mut retry = 0u32;
    loop {
        match attempt(retry) {
            Ok(reply) if !retryable(reply.status) => return Ok(reply),
            Ok(reply) => {
                if retry + 1 >= attempts {
                    return Ok(reply);
                }
                sleep(policy.delay(retry, reply.retry_after));
            }
            Err(e) => {
                if retry + 1 >= attempts {
                    return Err(e);
                }
                sleep(policy.delay(retry, None));
            }
        }
        retry += 1;
    }
}

/// [`http_post`] with retries: backs off per `policy` (sleeping on the
/// calling thread) and honors the server's `Retry-After` on 429/503.
pub fn http_post_retry(
    addr: SocketAddr,
    path: &str,
    body: &Json,
    policy: &RetryPolicy,
) -> io::Result<Reply> {
    retry_with(policy, std::thread::sleep, |_| {
        let raw = raw_request(addr, "POST", path, Some(body.to_string()))?;
        parse_reply(&raw)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_canned_response() {
        let raw = b"HTTP/1.1 200 OK\r\ncontent-type: application/json\r\ncontent-length: 13\r\n\r\n{\"ok\": true}\n";
        let (status, body) = parse_response(raw).unwrap();
        assert_eq!(status, 200);
        assert_eq!(body.get("ok").unwrap().as_bool(), Some(true));
    }

    #[test]
    fn parses_error_statuses() {
        let raw = b"HTTP/1.1 404 Not Found\r\n\r\n{\"error\":\"x\"}";
        let (status, body) = parse_response(raw).unwrap();
        assert_eq!(status, 404);
        assert_eq!(body.get("error").unwrap().as_str(), Some("x"));
    }

    #[test]
    fn empty_body_is_null() {
        let raw = b"HTTP/1.1 200 OK\r\n\r\n";
        let (_, body) = parse_response(raw).unwrap();
        assert_eq!(body, Json::Null);
    }

    #[test]
    fn garbage_is_rejected() {
        assert!(parse_response(b"not http").is_err());
        assert!(parse_response(b"HTTP/1.1 abc\r\n\r\n{}").is_err());
    }

    #[test]
    fn retry_after_header_is_parsed_case_insensitively() {
        let raw = b"HTTP/1.1 503 Service Unavailable\r\nRetry-After: 7\r\n\r\n{\"error\":\"shed\"}";
        let reply = parse_reply(raw).unwrap();
        assert_eq!((reply.status, reply.retry_after), (503, Some(7)));
        let raw = b"HTTP/1.1 200 OK\r\n\r\n{}";
        assert_eq!(parse_reply(raw).unwrap().retry_after, None);
    }

    fn shed(retry_after: Option<u64>) -> Reply {
        Reply {
            status: 503,
            retry_after,
            body: Json::Null,
        }
    }

    fn ok() -> Reply {
        Reply {
            status: 200,
            retry_after: None,
            body: Json::Null,
        }
    }

    #[test]
    fn retry_honors_the_servers_retry_after_hint() {
        let policy = RetryPolicy::default();
        let mut sleeps = Vec::new();
        let reply = retry_with(
            &policy,
            |d| sleeps.push(d),
            |attempt| Ok(if attempt < 2 { shed(Some(2)) } else { ok() }),
        )
        .unwrap();
        assert_eq!(reply.status, 200);
        // Two sheds, each with Retry-After: 2 → exactly two 2 s sleeps,
        // no jitter (the server's hint is authoritative).
        assert_eq!(sleeps, vec![Duration::from_secs(2); 2]);
    }

    #[test]
    fn backoff_grows_exponentially_and_stays_capped() {
        let policy = RetryPolicy {
            max_attempts: 6,
            base_delay: Duration::from_millis(100),
            max_delay: Duration::from_millis(450),
            jitter_seed: 1,
        };
        let mut sleeps = Vec::new();
        let reply = retry_with(&policy, |d| sleeps.push(d), |_| Ok(shed(None))).unwrap();
        // Budget exhausted: the final shed is returned, not an error.
        assert_eq!(reply.status, 503);
        assert_eq!(sleeps.len(), 5);
        for (retry, d) in sleeps.iter().enumerate() {
            let exp = Duration::from_millis(100 * (1 << retry)).min(policy.max_delay);
            assert!(*d >= exp, "retry {retry}: {d:?} below exponential {exp:?}");
            assert!(
                *d <= policy.max_delay,
                "retry {retry}: {d:?} above cap {:?}",
                policy.max_delay
            );
        }
        // Jitter is deterministic: same policy, same schedule.
        let mut again = Vec::new();
        let _ = retry_with(&policy, |d| again.push(d), |_| Ok(shed(None)));
        assert_eq!(sleeps, again);
        // ...and a different seed moves it.
        let other = RetryPolicy {
            jitter_seed: 2,
            ..policy
        };
        let mut moved = Vec::new();
        let _ = retry_with(&other, |d| moved.push(d), |_| Ok(shed(None)));
        assert_ne!(sleeps, moved);
    }

    #[test]
    fn non_shed_errors_are_not_retried() {
        let mut calls = 0;
        let reply = retry_with(
            &RetryPolicy::default(),
            |_| panic!("must not sleep on a 400"),
            |_| {
                calls += 1;
                Ok(Reply {
                    status: 400,
                    retry_after: None,
                    body: Json::Null,
                })
            },
        )
        .unwrap();
        assert_eq!((reply.status, calls), (400, 1));
    }

    #[test]
    fn transport_errors_retry_then_propagate() {
        let mut sleeps = 0;
        let err = retry_with(
            &RetryPolicy {
                max_attempts: 3,
                ..RetryPolicy::default()
            },
            |_| sleeps += 1,
            |_| Err::<Reply, _>(io::Error::new(io::ErrorKind::ConnectionRefused, "down")),
        )
        .unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::ConnectionRefused);
        assert_eq!(sleeps, 2);
    }

    #[test]
    fn a_transport_error_can_recover_mid_schedule() {
        let mut calls = 0;
        let reply = retry_with(
            &RetryPolicy::default(),
            |_| {},
            |_| {
                calls += 1;
                if calls == 1 {
                    Err(io::Error::new(io::ErrorKind::ConnectionReset, "reset"))
                } else {
                    Ok(ok())
                }
            },
        )
        .unwrap();
        assert_eq!((reply.status, calls), (200, 2));
    }
}
