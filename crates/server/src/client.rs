//! A tiny blocking HTTP client for tests, benches and examples.

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use crate::json::Json;

/// Issues a GET and parses the JSON response. Returns `(status, body)`.
pub fn http_get(addr: SocketAddr, path: &str) -> io::Result<(u16, Json)> {
    request(addr, "GET", path, None)
}

/// Issues a POST with a JSON body. Returns `(status, body)`.
pub fn http_post(addr: SocketAddr, path: &str, body: &Json) -> io::Result<(u16, Json)> {
    request(addr, "POST", path, Some(body.to_string()))
}

/// Issues a GET and returns the raw text body unparsed — for non-JSON
/// endpoints like the `/metrics` Prometheus exposition.
pub fn http_get_text(addr: SocketAddr, path: &str) -> io::Result<(u16, String)> {
    let raw = raw_request(addr, "GET", path, None)?;
    let text = std::str::from_utf8(&raw)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
    let (head, body) = text
        .split_once("\r\n\r\n")
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "no header terminator"))?;
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "bad status line"))?;
    Ok((status, body.to_owned()))
}

fn request(addr: SocketAddr, method: &str, path: &str, body: Option<String>) -> io::Result<(u16, Json)> {
    let raw = raw_request(addr, method, path, body)?;
    parse_response(&raw)
}

fn raw_request(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: Option<String>,
) -> io::Result<Vec<u8>> {
    let mut stream = TcpStream::connect_timeout(&addr, Duration::from_secs(5))?;
    stream.set_read_timeout(Some(Duration::from_secs(30)))?;
    let body = body.unwrap_or_default();
    let head = format!(
        "{method} {path} HTTP/1.1\r\nhost: {addr}\r\ncontent-type: application/json\r\ncontent-length: {}\r\nconnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()?;

    let mut raw = Vec::new();
    stream.read_to_end(&mut raw)?;
    Ok(raw)
}

fn parse_response(raw: &[u8]) -> io::Result<(u16, Json)> {
    let text = std::str::from_utf8(raw)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
    let (head, body) = text
        .split_once("\r\n\r\n")
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "no header terminator"))?;
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "bad status line"))?;
    let json = if body.trim().is_empty() {
        Json::Null
    } else {
        Json::parse(body.trim())
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?
    };
    Ok((status, json))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_canned_response() {
        let raw = b"HTTP/1.1 200 OK\r\ncontent-type: application/json\r\ncontent-length: 13\r\n\r\n{\"ok\": true}\n";
        let (status, body) = parse_response(raw).unwrap();
        assert_eq!(status, 200);
        assert_eq!(body.get("ok").unwrap().as_bool(), Some(true));
    }

    #[test]
    fn parses_error_statuses() {
        let raw = b"HTTP/1.1 404 Not Found\r\n\r\n{\"error\":\"x\"}";
        let (status, body) = parse_response(raw).unwrap();
        assert_eq!(status, 404);
        assert_eq!(body.get("error").unwrap().as_str(), Some("x"));
    }

    #[test]
    fn empty_body_is_null() {
        let raw = b"HTTP/1.1 200 OK\r\n\r\n";
        let (_, body) = parse_response(raw).unwrap();
        assert_eq!(body, Json::Null);
    }

    #[test]
    fn garbage_is_rejected() {
        assert!(parse_response(b"not http").is_err());
        assert!(parse_response(b"HTTP/1.1 abc\r\n\r\n{}").is_err());
    }
}
