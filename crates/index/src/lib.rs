//! R-tree family indexes for YASK.
//!
//! The demo paper's server (Fig 1) is built on "R-tree based index"
//! structures; three augmented variants appear across the papers YASK
//! packages, all implemented here over one generic arena-based R-tree:
//!
//! * **plain R-tree** ([`aug::NoAug`]) — the structural baseline,
//! * **SetR-tree** ([`aug::SetAug`]) — every node carries the intersection
//!   and union of the keyword sets of the objects below it, giving tight
//!   Jaccard bounds for the top-k engine (paper §3.3),
//! * **KcR-tree** ([`aug::KcAug`]) — every node carries a keyword → count
//!   map plus an object count `cnt` (paper Fig 2), enabling bounds on *how
//!   many* objects in a subtree outrank a given score — the engine of the
//!   keyword-adaptation why-not module,
//! * **IR-tree** ([`aug::IrAug`]) — per-node inverted file (keyword →
//!   child bitmap) in the spirit of Cong et al. \[4\]; textually weaker for
//!   Jaccard (it lacks intersection information), which is exactly why the
//!   paper swaps in the SetR-tree. Kept as the comparison engine.
//!
//! Construction is either STR bulk loading ([`RTree::bulk_load`]) or
//! dynamic insertion with quadratic splits ([`RTree::insert`]); deletion
//! with subtree reinsertion is supported. Every variant maintains its
//! augmentation incrementally and can [`RTree::validate`] the full set of
//! structural + augmentation invariants (used heavily by the proptest
//! suite).

pub mod aug;
pub mod bulk;
pub mod corpus;
pub mod rtree;
pub mod stats;

pub use aug::{AugCodec, Augmentation, IrAug, KcAug, NoAug, SetAug, TextStats, TextualBound};
pub use corpus::{Corpus, CorpusBuilder, CopyStats, ObjectId, SpatioTextualObject, CHUNK_SIZE};
pub use rtree::{
    ArenaReadGuard, Node, NodeChunk, NodeId, NodeKind, NodeSource, RTree, RTreeParams, StructNode,
    TreeStructure, NODE_CHUNK_SIZE,
};
pub use stats::TreeStats;

/// A plain (unaugmented) R-tree.
pub type PlainRTree = RTree<NoAug>;
/// The SetR-tree of reference \[6\]: intersection/union keyword sets per node.
pub type SetRTree = RTree<SetAug>;
/// The KcR-tree of references \[6, 9\]: keyword-count maps per node (Fig 2).
pub type KcRTree = RTree<KcAug>;
/// The IR-tree of reference \[4\]: per-node inverted files.
pub type IrTree = RTree<IrAug>;
