//! Sort-Tile-Recursive (STR) bulk loading.
//!
//! The standard packing algorithm: sort entries by x, cut into vertical
//! slices of ~√(n/M) tiles, sort each slice by y, and chunk into nodes of
//! capacity `M`. The procedure repeats level by level (nodes become the
//! next level's entries, positioned at their MBR centers) until a single
//! root remains. Bulk-built trees are near-100% full, which is what the
//! benchmark sweeps want for fair index comparisons.

use yask_geo::{Point, Rect};

use crate::aug::Augmentation;
use crate::corpus::{Corpus, ObjectId};
use crate::rtree::{Node, NodeKind, RTree, RTreeParams};

/// Bulk-loads `ids` from `corpus` into a fresh tree.
pub fn str_bulk_load<A: Augmentation>(
    corpus: Corpus,
    ids: &[ObjectId],
    params: RTreeParams,
) -> RTree<A> {
    let mut tree: RTree<A> = RTree::new(corpus, params);
    if ids.is_empty() {
        return tree;
    }

    // Level 0: pack objects into leaves.
    let items: Vec<(Point, ObjectId)> = ids
        .iter()
        .map(|&id| (tree.corpus().get(id).loc, id))
        .collect();
    let groups = str_pack(items, params.max_entries);
    let mut level: Vec<crate::rtree::NodeId> = groups
        .into_iter()
        .map(|entries| {
            let id = tree.alloc(Node {
                mbr: Rect::EMPTY,
                aug: None,
                kind: NodeKind::Leaf(entries),
            });
            tree.refresh(id);
            id
        })
        .collect();
    let mut height = 1;

    // Upper levels: pack nodes by MBR center until one remains.
    while level.len() > 1 {
        let items: Vec<(Point, crate::rtree::NodeId)> = level
            .iter()
            .map(|&n| (tree.node(n).mbr.center(), n))
            .collect();
        let groups = str_pack(items, params.max_entries);
        level = groups
            .into_iter()
            .map(|children| {
                let id = tree.alloc(Node {
                    mbr: Rect::EMPTY,
                    aug: None,
                    kind: NodeKind::Internal(children),
                });
                tree.refresh(id);
                id
            })
            .collect();
        height += 1;
    }

    tree.set_root(Some(level[0]), height, ids.len());
    // Level-order allocation clusters the aug-heavy internal level into
    // the tail chunks — which sit on every root-to-leaf spine, so later
    // batches would re-copy the whole level each time. Repack in DFS
    // order to spread internals among their own (cheap) leaves.
    tree.relayout_dfs();
    // A fresh bulk build is not copy-on-write work; report a clean slate
    // so the first derived epoch's stats measure only its own batch.
    tree.reset_copy_stats();
    tree
}

/// Packs positioned items into groups of at most `cap`, STR-style.
///
/// Guarantees: every group non-empty, sizes ≤ cap, all items covered, and
/// at most one group per slice smaller than cap.
fn str_pack<T>(mut items: Vec<(Point, T)>, cap: usize) -> Vec<Vec<T>> {
    let n = items.len();
    debug_assert!(n > 0 && cap > 0);
    let n_groups = n.div_ceil(cap);
    let n_slices = (n_groups as f64).sqrt().ceil() as usize;
    let slice_len = n.div_ceil(n_slices);

    items.sort_by(|a, b| {
        a.0.x
            .partial_cmp(&b.0.x)
            .expect("finite x")
            .then(a.0.y.partial_cmp(&b.0.y).expect("finite y"))
    });

    let mut out = Vec::with_capacity(n_groups);
    let mut rest = items;
    while !rest.is_empty() {
        let take = slice_len.min(rest.len());
        let mut slice: Vec<(Point, T)> = rest.drain(..take).collect();
        slice.sort_by(|a, b| {
            a.0.y
                .partial_cmp(&b.0.y)
                .expect("finite y")
                .then(a.0.x.partial_cmp(&b.0.x).expect("finite x"))
        });
        let mut slice_rest = slice;
        while !slice_rest.is_empty() {
            let take = cap.min(slice_rest.len());
            out.push(slice_rest.drain(..take).map(|(_, t)| t).collect());
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_sizes_respect_cap() {
        let items: Vec<(Point, usize)> = (0..97)
            .map(|i| (Point::new((i % 13) as f64, (i / 13) as f64), i))
            .collect();
        let groups = str_pack(items, 10);
        let total: usize = groups.iter().map(|g| g.len()).sum();
        assert_eq!(total, 97);
        assert!(groups.iter().all(|g| !g.is_empty() && g.len() <= 10));
    }

    #[test]
    fn pack_single_item() {
        let groups = str_pack(vec![(Point::new(0.0, 0.0), 7u32)], 8);
        assert_eq!(groups, vec![vec![7]]);
    }

    #[test]
    fn pack_exact_multiple() {
        // 100 items, cap 10 → 4 slices of 25 → 3 groups per slice
        // (10 + 10 + 5): slice boundaries may leave one short group each.
        let items: Vec<(Point, usize)> = (0..100)
            .map(|i| (Point::new(i as f64, 0.0), i))
            .collect();
        let groups = str_pack(items, 10);
        let total: usize = groups.iter().map(|g| g.len()).sum();
        assert_eq!(total, 100);
        assert!(groups.len() >= 10 && groups.len() <= 12, "{}", groups.len());
        assert!(groups.iter().all(|g| !g.is_empty() && g.len() <= 10));
        let mut all: Vec<usize> = groups.iter().flatten().copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn pack_groups_are_spatially_coherent() {
        // A 10×10 grid with cap 10 should produce column-ish groups whose
        // MBRs are thin — a sanity check that tiling actually tiles.
        let items: Vec<(Point, usize)> = (0..100)
            .map(|i| (Point::new((i / 10) as f64, (i % 10) as f64), i))
            .collect();
        let lookup: Vec<Point> = (0..100)
            .map(|i| Point::new((i / 10) as f64, (i % 10) as f64))
            .collect();
        let groups = str_pack(items, 10);
        for g in &groups {
            let mut mbr = Rect::EMPTY;
            for &i in g {
                mbr.expand(&Rect::point(lookup[i]));
            }
            assert!(
                mbr.area() <= 9.0 * 2.0,
                "group mbr too large: {:?}",
                mbr
            );
        }
    }
}
