//! Node augmentations: what each R-tree variant stores per node.
//!
//! The generic [`crate::RTree`] delegates everything textual to an
//! [`Augmentation`]: a summary computed from the objects below a leaf
//! ([`Augmentation::for_leaf`]) or from child summaries
//! ([`Augmentation::for_internal`]). Four variants:
//!
//! | Aug      | Tree      | Per-node payload                                  |
//! |----------|-----------|---------------------------------------------------|
//! | [`NoAug`]| R-tree    | nothing                                           |
//! | [`SetAug`]| SetR-tree| intersection + union keyword sets                 |
//! | [`KcAug`]| KcR-tree  | keyword → count map + object count `cnt` (Fig 2)  |
//! | [`IrAug`]| IR-tree   | union keywords + inverted file (kw → child bitmap)|
//!
//! All textual score bounds funnel through [`TextStats`], which captures
//! the only quantities the similarity bounds need. Soundness argument (for
//! any object `o` in the node, `N.int ⊆ o.doc ⊆ N.uni`):
//!
//! * `|o.doc ∩ q| ≤ |N.uni ∩ q|` (= `max_inter`) and `≥ |N.int ∩ q|`
//!   (= `min_inter`);
//! * `|o.doc| ≥ |N.int|` and `≤ |N.uni|`;
//! * the bound for each model is the model evaluated at the extremal
//!   consistent configuration, which can only over/under-shoot the true
//!   value (verified exhaustively by property tests in this module and in
//!   the query crate).
//!
//! The KcR-tree recovers the same sets implicitly: a keyword with
//! `count == cnt` is in *every* object (node intersection), a keyword with
//! `count > 0` is in *some* object (node union) — so [`KcAug`] produces
//! exactly the same [`TextStats`] as [`SetAug`], plus counting information
//! no other variant has. The IR-tree only knows the union side, so its
//! `min_inter`/`int_len` are pessimistic zeros — the formal reason the
//! paper replaces the IR-tree with the SetR-tree for Jaccard scoring.

use yask_text::{KeywordSet, SimilarityModel};

use crate::corpus::SpatioTextualObject;

/// Per-node summary maintained by the generic R-tree.
pub trait Augmentation: Clone + std::fmt::Debug + PartialEq {
    /// Summary of a leaf node from the objects it stores. `objects` is
    /// never empty.
    fn for_leaf(objects: &[&SpatioTextualObject]) -> Self;

    /// Summary of an internal node from its children's summaries.
    /// `children` is never empty.
    fn for_internal(children: &[&Self]) -> Self;

    /// Estimated heap bytes owned by this summary beyond its inline size
    /// — feeds the per-shard index memory counters on `/stats`.
    fn heap_bytes(&self) -> usize {
        0
    }
}

/// Textual-similarity bounds over all objects below a node.
pub trait TextualBound {
    /// The [`TextStats`] of this node against query keywords `q`.
    fn text_stats(&self, q: &KeywordSet) -> TextStats;

    /// Upper bound of `model.similarity(q, o.doc)` over objects `o` below
    /// this node.
    fn sim_upper(&self, q: &KeywordSet, model: SimilarityModel) -> f64 {
        self.text_stats(q).upper(model)
    }

    /// Lower bound counterpart of [`TextualBound::sim_upper`].
    fn sim_lower(&self, q: &KeywordSet, model: SimilarityModel) -> f64 {
        self.text_stats(q).lower(model)
    }
}

/// The five integers every set-similarity bound needs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TextStats {
    /// `|q|`.
    pub q_len: usize,
    /// `|N.uni ∩ q|` — best possible match count.
    pub max_inter: usize,
    /// `|N.int ∩ q|` — guaranteed match count.
    pub min_inter: usize,
    /// `|N.int|` — minimum object doc size.
    pub int_len: usize,
    /// `|N.uni|` — maximum object doc size.
    pub uni_len: usize,
}

impl TextStats {
    /// Stats representing *no information* about the node (plain R-tree):
    /// the upper bound degenerates to 1 and the lower bound to 0.
    pub fn unknown(q_len: usize) -> Self {
        TextStats {
            q_len,
            max_inter: q_len,
            min_inter: 0,
            int_len: 0,
            uni_len: usize::MAX / 4,
        }
    }

    /// Upper bound of the model similarity consistent with these stats.
    pub fn upper(&self, model: SimilarityModel) -> f64 {
        if self.q_len == 0 || self.max_inter == 0 {
            return 0.0;
        }
        let m = self.max_inter as f64;
        let q = self.q_len as f64;
        // The object that realizes the best similarity has at least
        // max(int_len, max_inter, 1) keywords.
        let min_len = self.int_len.max(self.max_inter).max(1) as f64;
        let v = match model {
            SimilarityModel::Jaccard => {
                // |o ∪ q| ≥ |o| + |q| − |o ∩ q| ≥ min_len + q − m.
                m / (min_len + q - m).max(1.0)
            }
            SimilarityModel::Dice => 2.0 * m / (min_len + q),
            SimilarityModel::Overlap => m / min_len.min(q).max(1.0),
            SimilarityModel::Cosine => m / (min_len * q).sqrt(),
        };
        v.min(1.0)
    }

    /// Lower bound of the model similarity consistent with these stats.
    pub fn lower(&self, model: SimilarityModel) -> f64 {
        if self.q_len == 0 || self.min_inter == 0 {
            return 0.0;
        }
        let g = self.min_inter as f64;
        let q = self.q_len as f64;
        let max_len = self.uni_len.max(1) as f64;
        let v = match model {
            SimilarityModel::Jaccard => g / (max_len + q - g).max(1.0),
            SimilarityModel::Dice => 2.0 * g / (max_len + q),
            SimilarityModel::Overlap => g / max_len.min(q).max(1.0),
            SimilarityModel::Cosine => g / (max_len * q).sqrt(),
        };
        v.clamp(0.0, 1.0)
    }
}

// ---------------------------------------------------------------------------
// AugCodec — byte serialization for the paged arena
// ---------------------------------------------------------------------------

/// Exact byte serialization of an augmentation, so a paged (out-of-core)
/// arena chunk decodes to a node byte-identical to its resident
/// original. Integers are little-endian; every collection is
/// length-prefixed and written in its canonical (sorted) stored order,
/// so `decode(encode(a)) == a` exactly.
pub trait AugCodec: Sized {
    /// Appends the encoded form to `out`.
    fn encode_aug(&self, out: &mut Vec<u8>);

    /// Decodes one augmentation off the front of `buf`, advancing it.
    /// `None` on truncated or malformed input.
    fn decode_aug(buf: &mut &[u8]) -> Option<Self>;
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn take_u32(buf: &mut &[u8]) -> Option<u32> {
    let (head, rest) = buf.split_at_checked(4)?;
    *buf = rest;
    Some(u32::from_le_bytes(head.try_into().ok()?))
}

fn take_u64(buf: &mut &[u8]) -> Option<u64> {
    let (head, rest) = buf.split_at_checked(8)?;
    *buf = rest;
    Some(u64::from_le_bytes(head.try_into().ok()?))
}

fn put_keyword_set(out: &mut Vec<u8>, s: &KeywordSet) {
    put_u32(out, s.len() as u32);
    for &kw in s.raw() {
        put_u32(out, kw);
    }
}

fn take_keyword_set(buf: &mut &[u8]) -> Option<KeywordSet> {
    let n = take_u32(buf)? as usize;
    let mut kws = Vec::with_capacity(n.min(1 << 16));
    for _ in 0..n {
        kws.push(take_u32(buf)?);
    }
    Some(KeywordSet::from_raw(kws))
}

impl AugCodec for NoAug {
    fn encode_aug(&self, _out: &mut Vec<u8>) {}

    fn decode_aug(_buf: &mut &[u8]) -> Option<Self> {
        Some(NoAug)
    }
}

impl AugCodec for SetAug {
    fn encode_aug(&self, out: &mut Vec<u8>) {
        put_keyword_set(out, &self.int);
        put_keyword_set(out, &self.uni);
    }

    fn decode_aug(buf: &mut &[u8]) -> Option<Self> {
        let int = take_keyword_set(buf)?;
        let uni = take_keyword_set(buf)?;
        Some(SetAug { int, uni })
    }
}

impl AugCodec for KcAug {
    fn encode_aug(&self, out: &mut Vec<u8>) {
        put_u32(out, self.cnt);
        put_u32(out, self.counts.len() as u32);
        for &(kw, n) in self.counts.iter() {
            put_u32(out, kw);
            put_u32(out, n);
        }
    }

    fn decode_aug(buf: &mut &[u8]) -> Option<Self> {
        let cnt = take_u32(buf)?;
        let n = take_u32(buf)? as usize;
        let mut pairs = Vec::with_capacity(n.min(1 << 16));
        for _ in 0..n {
            let kw = take_u32(buf)?;
            let count = take_u32(buf)?;
            pairs.push((kw, count));
        }
        // `finish` re-sorts (already sorted — encoded in stored order)
        // and recomputes the derived `int_len`, which is a pure function
        // of (counts, cnt), so the round trip is exact.
        Some(KcAug::finish(pairs, cnt))
    }
}

impl AugCodec for IrAug {
    fn encode_aug(&self, out: &mut Vec<u8>) {
        put_keyword_set(out, &self.uni);
        put_u32(out, self.inv.len() as u32);
        for &(kw, bits) in self.inv.iter() {
            put_u32(out, kw);
            put_u64(out, bits);
        }
    }

    fn decode_aug(buf: &mut &[u8]) -> Option<Self> {
        let uni = take_keyword_set(buf)?;
        let n = take_u32(buf)? as usize;
        let mut inv = Vec::with_capacity(n.min(1 << 16));
        for _ in 0..n {
            let kw = take_u32(buf)?;
            let bits = take_u64(buf)?;
            inv.push((kw, bits));
        }
        Some(IrAug { uni, inv: inv.into() })
    }
}

// ---------------------------------------------------------------------------
// NoAug — plain R-tree
// ---------------------------------------------------------------------------

/// No textual augmentation: the plain R-tree.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NoAug;

impl Augmentation for NoAug {
    fn for_leaf(_objects: &[&SpatioTextualObject]) -> Self {
        NoAug
    }

    fn for_internal(_children: &[&Self]) -> Self {
        NoAug
    }
}

impl TextualBound for NoAug {
    fn text_stats(&self, q: &KeywordSet) -> TextStats {
        TextStats::unknown(q.len())
    }
}

// ---------------------------------------------------------------------------
// SetAug — SetR-tree
// ---------------------------------------------------------------------------

/// SetR-tree augmentation: "each SetR-tree node has pointers to the
/// intersection set and the union set of the keyword sets of all objects
/// indexed by the node" (paper §3.3).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SetAug {
    int: KeywordSet,
    uni: KeywordSet,
}

impl SetAug {
    /// The intersection of all object keyword sets below the node.
    pub fn intersection(&self) -> &KeywordSet {
        &self.int
    }

    /// The union of all object keyword sets below the node.
    pub fn union(&self) -> &KeywordSet {
        &self.uni
    }
}

impl Augmentation for SetAug {
    fn for_leaf(objects: &[&SpatioTextualObject]) -> Self {
        let mut it = objects.iter();
        let first = it.next().expect("leaf augmentation over empty object set");
        let mut int = first.doc.clone();
        let mut uni = first.doc.clone();
        for o in it {
            int = int.intersection(&o.doc);
            uni = uni.union(&o.doc);
        }
        SetAug { int, uni }
    }

    fn for_internal(children: &[&Self]) -> Self {
        let mut it = children.iter();
        let first = it.next().expect("internal augmentation over empty child set");
        let mut int = first.int.clone();
        let mut uni = first.uni.clone();
        for c in it {
            int = int.intersection(&c.int);
            uni = uni.union(&c.uni);
        }
        SetAug { int, uni }
    }

    fn heap_bytes(&self) -> usize {
        4 * (self.int.len() + self.uni.len())
    }
}

impl TextualBound for SetAug {
    fn text_stats(&self, q: &KeywordSet) -> TextStats {
        TextStats {
            q_len: q.len(),
            max_inter: self.uni.intersection_size(q),
            min_inter: self.int.intersection_size(q),
            int_len: self.int.len(),
            uni_len: self.uni.len(),
        }
    }
}

// ---------------------------------------------------------------------------
// KcAug — KcR-tree
// ---------------------------------------------------------------------------

/// KcR-tree augmentation (paper Fig 2): "each KcR-tree node is associated
/// with a key-value map, where each key is a keyword in the union set of
/// the keywords of the objects indexed by this node, and its corresponding
/// value is the number of objects in this node that contain this keyword.
/// In addition, each KcR-tree node has a `cnt` value that stores the number
/// of objects that are indexed by this node."
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct KcAug {
    /// `(keyword, object count)` sorted by keyword.
    counts: Box<[(u32, u32)]>,
    /// Number of objects below the node.
    cnt: u32,
    /// `#{kw : count(kw) == cnt}` — the size of the implicit intersection
    /// set, precomputed because every bound needs it.
    int_len: u32,
}

impl KcAug {
    /// Number of objects below the node (`cnt` in Fig 2).
    pub fn cnt(&self) -> u32 {
        self.cnt
    }

    /// The keyword-count map, sorted by keyword id.
    pub fn counts(&self) -> &[(u32, u32)] {
        &self.counts
    }

    /// Number of objects below the node containing keyword `kw`.
    pub fn count(&self, kw: u32) -> u32 {
        match self.counts.binary_search_by_key(&kw, |e| e.0) {
            Ok(i) => self.counts[i].1,
            Err(_) => 0,
        }
    }

    /// Σ over query keywords of `count(kw)`, clamped at `cnt`: an upper
    /// bound on the number of objects below the node containing *at least
    /// one* query keyword (i.e. with non-zero set similarity).
    pub fn matched_upper(&self, q: &KeywordSet) -> u32 {
        let mut sum: u64 = 0;
        for kw in q.raw() {
            sum += self.count(*kw) as u64;
        }
        sum.min(self.cnt as u64) as u32
    }

    /// A lower bound on the number of objects below the node containing at
    /// least one query keyword: by inclusion–exclusion it is at least the
    /// maximum single-keyword count.
    pub fn matched_lower(&self, q: &KeywordSet) -> u32 {
        q.raw().iter().map(|&kw| self.count(kw)).max().unwrap_or(0)
    }

    fn finish(mut pairs: Vec<(u32, u32)>, cnt: u32) -> Self {
        pairs.sort_unstable_by_key(|e| e.0);
        let int_len = pairs.iter().filter(|e| e.1 == cnt).count() as u32;
        KcAug {
            counts: pairs.into(),
            cnt,
            int_len,
        }
    }
}

impl Augmentation for KcAug {
    fn for_leaf(objects: &[&SpatioTextualObject]) -> Self {
        let mut map: std::collections::BTreeMap<u32, u32> = std::collections::BTreeMap::new();
        for o in objects {
            for kw in o.doc.raw() {
                *map.entry(*kw).or_insert(0) += 1;
            }
        }
        KcAug::finish(map.into_iter().collect(), objects.len() as u32)
    }

    fn for_internal(children: &[&Self]) -> Self {
        let mut map: std::collections::BTreeMap<u32, u32> = std::collections::BTreeMap::new();
        let mut cnt = 0;
        for c in children {
            cnt += c.cnt;
            for &(kw, n) in c.counts.iter() {
                *map.entry(kw).or_insert(0) += n;
            }
        }
        KcAug::finish(map.into_iter().collect(), cnt)
    }

    fn heap_bytes(&self) -> usize {
        8 * self.counts.len()
    }
}

impl TextualBound for KcAug {
    fn text_stats(&self, q: &KeywordSet) -> TextStats {
        let mut max_inter = 0;
        let mut min_inter = 0;
        for &kw in q.raw() {
            let c = self.count(kw);
            if c > 0 {
                max_inter += 1;
                if c == self.cnt {
                    min_inter += 1;
                }
            }
        }
        TextStats {
            q_len: q.len(),
            max_inter,
            min_inter,
            int_len: self.int_len as usize,
            uni_len: self.counts.len(),
        }
    }
}

// ---------------------------------------------------------------------------
// IrAug — IR-tree
// ---------------------------------------------------------------------------

/// IR-tree augmentation in the spirit of Cong et al. \[4\]: each node stores
/// an inverted file mapping keywords to the set of child slots whose
/// subtree contains the keyword (here a `u64` bitmap — node fanout is
/// capped at 64). The union keyword set is the posting dictionary.
///
/// Crucially there is *no intersection information*, so Jaccard bounds are
/// strictly looser than the SetR-tree's — which is the paper's stated
/// reason for not using the IR-tree with Jaccard similarity.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct IrAug {
    uni: KeywordSet,
    /// `(keyword, child bitmap)` sorted by keyword. For a leaf node the
    /// bits index objects in entry order; for an internal node, children.
    inv: Box<[(u32, u64)]>,
}

impl IrAug {
    /// The union of keywords below this node (the posting dictionary).
    pub fn union(&self) -> &KeywordSet {
        &self.uni
    }

    /// The posting bitmap for a keyword (0 when absent).
    pub fn postings(&self, kw: u32) -> u64 {
        match self.inv.binary_search_by_key(&kw, |e| e.0) {
            Ok(i) => self.inv[i].1,
            Err(_) => 0,
        }
    }

    /// Bitmap of child slots whose subtree contains at least one keyword
    /// of `q` — lets a traversal compute per-child match counts without
    /// touching the children (the I/O-saving trick of the IR-tree).
    pub fn children_matching(&self, q: &KeywordSet) -> u64 {
        let mut mask = 0;
        for &kw in q.raw() {
            mask |= self.postings(kw);
        }
        mask
    }

    /// For child slot `slot`, the number of query keywords present in that
    /// child's subtree (its `max_inter` seen from the parent).
    pub fn child_match_count(&self, q: &KeywordSet, slot: usize) -> usize {
        debug_assert!(slot < 64);
        let bit = 1u64 << slot;
        q.raw()
            .iter()
            .filter(|&&kw| self.postings(kw) & bit != 0)
            .count()
    }

    fn from_keyword_sets<'a, I: Iterator<Item = &'a KeywordSet>>(sets: I) -> Self {
        let mut map: std::collections::BTreeMap<u32, u64> = std::collections::BTreeMap::new();
        let mut uni = KeywordSet::empty();
        for (slot, doc) in sets.enumerate() {
            assert!(slot < 64, "IR-tree fanout exceeds 64");
            for &kw in doc.raw() {
                *map.entry(kw).or_insert(0) |= 1 << slot;
            }
            uni = uni.union(doc);
        }
        IrAug {
            uni,
            inv: map.into_iter().collect::<Vec<_>>().into(),
        }
    }
}

impl Augmentation for IrAug {
    fn for_leaf(objects: &[&SpatioTextualObject]) -> Self {
        IrAug::from_keyword_sets(objects.iter().map(|o| &o.doc))
    }

    fn for_internal(children: &[&Self]) -> Self {
        IrAug::from_keyword_sets(children.iter().map(|c| &c.uni))
    }

    fn heap_bytes(&self) -> usize {
        4 * self.uni.len() + 12 * self.inv.len()
    }
}

impl TextualBound for IrAug {
    fn text_stats(&self, q: &KeywordSet) -> TextStats {
        TextStats {
            q_len: q.len(),
            max_inter: self.uni.intersection_size(q),
            min_inter: 0,
            int_len: 0,
            uni_len: self.uni.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::{CorpusBuilder, ObjectId};
    use yask_geo::Point;

    fn ks(ids: &[u32]) -> KeywordSet {
        KeywordSet::from_raw(ids.iter().copied())
    }

    fn objects(docs: &[&[u32]]) -> Vec<SpatioTextualObject> {
        let mut b = CorpusBuilder::new();
        for (i, d) in docs.iter().enumerate() {
            b.push(Point::new(i as f64, 0.0), ks(d), format!("o{i}"));
        }
        b.build().iter_slots().cloned().collect()
    }

    #[test]
    fn set_aug_leaf_and_internal() {
        let objs = objects(&[&[1, 2, 3], &[2, 3], &[2, 4]]);
        let refs: Vec<&SpatioTextualObject> = objs.iter().collect();
        let a = SetAug::for_leaf(&refs);
        assert_eq!(a.intersection(), &ks(&[2]));
        assert_eq!(a.union(), &ks(&[1, 2, 3, 4]));

        let b = SetAug::for_leaf(&refs[..1]);
        let merged = SetAug::for_internal(&[&a, &b]);
        assert_eq!(merged.intersection(), &ks(&[2]));
        assert_eq!(merged.union(), &ks(&[1, 2, 3, 4]));
    }

    #[test]
    fn kc_aug_counts_match_fig2_shape() {
        // Fig 2: R1 = {o1, o2, o3} with Chinese×2, restaurant×3, cnt=3.
        // Keywords: 0 = Chinese, 1 = restaurant, 2 = Spanish.
        let objs = objects(&[&[0, 1], &[0, 1], &[1]]);
        let refs: Vec<&SpatioTextualObject> = objs.iter().collect();
        let r1 = KcAug::for_leaf(&refs);
        assert_eq!(r1.cnt(), 3);
        assert_eq!(r1.count(0), 2);
        assert_eq!(r1.count(1), 3);
        assert_eq!(r1.count(2), 0);

        // R2 = {o4, o5}: Spanish×2, restaurant×2, cnt=2.
        let objs2 = objects(&[&[2, 1], &[2, 1]]);
        let refs2: Vec<&SpatioTextualObject> = objs2.iter().collect();
        let r2 = KcAug::for_leaf(&refs2);
        assert_eq!(r2.cnt(), 2);
        assert_eq!(r2.count(2), 2);
        assert_eq!(r2.count(1), 2);

        // R3 = {R1, R2}: Chinese×2, Spanish×2, restaurant×5, cnt=5.
        let r3 = KcAug::for_internal(&[&r1, &r2]);
        assert_eq!(r3.cnt(), 5);
        assert_eq!(r3.count(0), 2);
        assert_eq!(r3.count(2), 2);
        assert_eq!(r3.count(1), 5);
    }

    #[test]
    fn kc_aug_recovers_set_aug_stats() {
        let objs = objects(&[&[1, 2, 3], &[2, 3], &[2, 4, 5]]);
        let refs: Vec<&SpatioTextualObject> = objs.iter().collect();
        let set = SetAug::for_leaf(&refs);
        let kc = KcAug::for_leaf(&refs);
        for q in [ks(&[2]), ks(&[1, 2]), ks(&[3, 4, 9]), ks(&[7])] {
            assert_eq!(set.text_stats(&q), kc.text_stats(&q), "q = {q:?}");
        }
    }

    #[test]
    fn kc_matched_bounds() {
        let objs = objects(&[&[1, 2], &[2], &[3]]);
        let refs: Vec<&SpatioTextualObject> = objs.iter().collect();
        let kc = KcAug::for_leaf(&refs);
        let q = ks(&[1, 2]);
        // Objects with ≥1 query keyword: o0, o1 → 2. Bounds must bracket.
        assert!(kc.matched_lower(&q) <= 2);
        assert!(kc.matched_upper(&q) >= 2);
        assert_eq!(kc.matched_upper(&ks(&[9])), 0);
        assert_eq!(kc.matched_lower(&ks(&[9])), 0);
        // Sum clamps at cnt.
        assert!(kc.matched_upper(&ks(&[1, 2, 3])) <= 3);
    }

    #[test]
    fn ir_aug_postings_and_masks() {
        let objs = objects(&[&[1, 2], &[2, 3], &[4]]);
        let refs: Vec<&SpatioTextualObject> = objs.iter().collect();
        let ir = IrAug::for_leaf(&refs);
        assert_eq!(ir.postings(2), 0b011);
        assert_eq!(ir.postings(4), 0b100);
        assert_eq!(ir.postings(9), 0);
        assert_eq!(ir.children_matching(&ks(&[1, 4])), 0b101);
        assert_eq!(ir.child_match_count(&ks(&[2, 3]), 1), 2);
        assert_eq!(ir.child_match_count(&ks(&[2, 3]), 2), 0);
        assert_eq!(ir.union(), &ks(&[1, 2, 3, 4]));
    }

    #[test]
    fn ir_internal_merges_child_unions() {
        let objs = objects(&[&[1], &[2]]);
        let refs: Vec<&SpatioTextualObject> = objs.iter().collect();
        let a = IrAug::for_leaf(&refs[..1]);
        let b = IrAug::for_leaf(&refs[1..]);
        let p = IrAug::for_internal(&[&a, &b]);
        assert_eq!(p.postings(1), 0b01);
        assert_eq!(p.postings(2), 0b10);
    }

    #[test]
    fn bounds_bracket_exact_similarity_all_models() {
        // Node over three docs; check every model, several queries, and
        // all three informative augmentations.
        let objs = objects(&[&[1, 2, 3], &[2, 3, 4], &[2, 5]]);
        let refs: Vec<&SpatioTextualObject> = objs.iter().collect();
        let set = SetAug::for_leaf(&refs);
        let kc = KcAug::for_leaf(&refs);
        let ir = IrAug::for_leaf(&refs);
        let queries = [ks(&[2]), ks(&[2, 3]), ks(&[1, 5]), ks(&[6, 7]), ks(&[1, 2, 3, 4, 5])];
        for model in SimilarityModel::ALL {
            for q in &queries {
                for (name, lb, ub) in [
                    ("set", set.sim_lower(q, model), set.sim_upper(q, model)),
                    ("kc", kc.sim_lower(q, model), kc.sim_upper(q, model)),
                    ("ir", ir.sim_lower(q, model), ir.sim_upper(q, model)),
                ] {
                    assert!(lb <= ub + 1e-12, "{name} {model:?} {q:?}: lb>{ub}");
                    for o in &objs {
                        let s = model.similarity(q, &o.doc);
                        assert!(
                            s <= ub + 1e-12,
                            "{name} {model:?} q={q:?} o={:?}: {s} > ub {ub}",
                            o.id
                        );
                        assert!(
                            s + 1e-12 >= lb,
                            "{name} {model:?} q={q:?} o={:?}: {s} < lb {lb}",
                            o.id
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn setr_bounds_tighter_than_ir() {
        // The reason the paper swaps the IR-tree for the SetR-tree: with
        // intersection info the Jaccard upper bound can only be tighter.
        let objs = objects(&[&[1, 2, 3, 4], &[1, 2, 3, 5]]);
        let refs: Vec<&SpatioTextualObject> = objs.iter().collect();
        let set = SetAug::for_leaf(&refs);
        let ir = IrAug::for_leaf(&refs);
        let q = ks(&[1, 9]);
        let set_ub = set.sim_upper(&q, SimilarityModel::Jaccard);
        let ir_ub = ir.sim_upper(&q, SimilarityModel::Jaccard);
        assert!(set_ub <= ir_ub);
        assert!(set_ub < ir_ub, "expected strictly tighter: {set_ub} vs {ir_ub}");
    }

    #[test]
    fn no_aug_is_vacuous() {
        let objs = objects(&[&[1]]);
        let refs: Vec<&SpatioTextualObject> = objs.iter().collect();
        let a = NoAug::for_leaf(&refs);
        let q = ks(&[1, 2]);
        assert_eq!(a.sim_upper(&q, SimilarityModel::Jaccard), 1.0);
        assert_eq!(a.sim_lower(&q, SimilarityModel::Jaccard), 0.0);
        // Empty query still scores zero.
        assert_eq!(a.sim_upper(&KeywordSet::empty(), SimilarityModel::Jaccard), 0.0);
    }

    #[test]
    fn object_ids_are_stable_in_fixture() {
        let objs = objects(&[&[1], &[2]]);
        assert_eq!(objs[0].id, ObjectId(0));
        assert_eq!(objs[1].id, ObjectId(1));
    }

    fn roundtrip<A: AugCodec + PartialEq + std::fmt::Debug>(a: &A) {
        let mut bytes = Vec::new();
        a.encode_aug(&mut bytes);
        let mut cursor = bytes.as_slice();
        let back = A::decode_aug(&mut cursor).expect("decodes");
        assert_eq!(&back, a);
        assert!(cursor.is_empty(), "decoder must consume exactly its bytes");
    }

    #[test]
    fn codec_roundtrips_every_variant() {
        let objs = objects(&[&[1, 2, 3], &[2, 3, 9], &[3]]);
        let refs: Vec<&SpatioTextualObject> = objs.iter().collect();
        roundtrip(&NoAug::for_leaf(&refs));
        roundtrip(&SetAug::for_leaf(&refs));
        roundtrip(&KcAug::for_leaf(&refs));
        roundtrip(&IrAug::for_leaf(&refs));

        // Single-keyword edge.
        let one = objects(&[&[7]]);
        let one_refs: Vec<&SpatioTextualObject> = one.iter().collect();
        roundtrip(&SetAug::for_leaf(&one_refs));
        roundtrip(&KcAug::for_leaf(&one_refs));
        roundtrip(&IrAug::for_leaf(&one_refs));
    }

    #[test]
    fn kc_codec_restores_the_derived_intersection_length() {
        // Both objects share keyword 3, so int_len must survive the trip
        // (it is recomputed, not serialized).
        let objs = objects(&[&[3, 4], &[3, 5]]);
        let refs: Vec<&SpatioTextualObject> = objs.iter().collect();
        let a = KcAug::for_leaf(&refs);
        assert_eq!(a.int_len, 1);
        let mut bytes = Vec::new();
        a.encode_aug(&mut bytes);
        let back = KcAug::decode_aug(&mut bytes.as_slice()).unwrap();
        assert_eq!(back.int_len, 1);
    }

    #[test]
    fn codec_rejects_truncated_input() {
        let objs = objects(&[&[1, 2, 3]]);
        let refs: Vec<&SpatioTextualObject> = objs.iter().collect();
        let mut bytes = Vec::new();
        SetAug::for_leaf(&refs).encode_aug(&mut bytes);
        for cut in 0..bytes.len() {
            let mut cursor = &bytes[..cut];
            assert!(SetAug::decode_aug(&mut cursor).is_none(), "cut at {cut}");
        }
    }
}
