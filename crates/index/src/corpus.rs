//! The spatio-textual object corpus shared by all indexes.
//!
//! Paper §2.1: "Let `D` denote a database of spatial objects. Each object
//! `o ∈ D` is defined as a pair `(o.loc, o.doc)`." A [`Corpus`] is that
//! database plus the normalized [`Space`] in which `SDist` is computed.
//! Indexes and engines share one corpus through a cheap `Arc` clone, so the
//! SetR-tree, KcR-tree and IR-tree built over the same data never duplicate
//! object payloads.
//!
//! **Liveness.** A corpus version may carry tombstones: a deleted object
//! keeps its slot (so [`ObjectId`]s stay stable across updates and ids
//! recorded in write-ahead logs, tree structures and sessions never shift)
//! but is skipped by [`Corpus::iter`], excluded from [`Corpus::len`], and
//! invisible to scans. [`Corpus::with_updates`] derives a new version with
//! objects appended and/or tombstoned — the persistent-snapshot primitive
//! the ingest layer's epochs are built on. [`Corpus::get`] still resolves
//! tombstoned slots (index maintenance needs the payload to unindex it);
//! use [`Corpus::contains`] to test liveness.

use std::fmt;
use std::sync::Arc;

use yask_geo::{Point, Space};
use yask_text::KeywordSet;

/// Identifier of an object in a [`Corpus`]: its position in the object
/// array. Dense ids keep rank tie-breaking deterministic and make
/// object-indexed scratch arrays (used by the why-not sweeps) trivial.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ObjectId(pub u32);

impl ObjectId {
    /// The raw array index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ObjectId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "o{}", self.0)
    }
}

/// One spatial object: `(o.loc, o.doc)` plus an optional display name
/// (hotel name in the demo dataset).
#[derive(Clone, Debug, PartialEq)]
pub struct SpatioTextualObject {
    /// The object's id — always equal to its position in the corpus.
    pub id: ObjectId,
    /// `o.loc`.
    pub loc: Point,
    /// `o.doc`.
    pub doc: KeywordSet,
    /// Human-readable label used by explanations and the demo server.
    pub name: String,
}

/// An immutable, shareable database of spatial objects.
#[derive(Clone)]
pub struct Corpus {
    objects: Arc<[SpatioTextualObject]>,
    /// Tombstone flags, one per slot; `None` means every slot is live
    /// (the common, allocation-free case for freshly built corpora).
    dead: Option<Arc<[bool]>>,
    /// Cached live-object count (`slot_count()` minus tombstones).
    live: usize,
    space: Space,
}

impl Corpus {
    /// Number of *live* objects.
    #[inline]
    pub fn len(&self) -> usize {
        self.live
    }

    /// True when the corpus has no live objects.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Number of id slots, including tombstoned ones — the exclusive upper
    /// bound on valid [`ObjectId`] indexes.
    #[inline]
    pub fn slot_count(&self) -> usize {
        self.objects.len()
    }

    /// Number of tombstoned slots.
    #[inline]
    pub fn tombstones(&self) -> usize {
        self.objects.len() - self.live
    }

    /// True when `id` names an existing slot that has not been deleted.
    #[inline]
    pub fn contains(&self, id: ObjectId) -> bool {
        id.index() < self.objects.len()
            && self.dead.as_ref().is_none_or(|d| !d[id.index()])
    }

    /// The normalized data space (bounding box of all object locations
    /// unless overridden at build time).
    #[inline]
    pub fn space(&self) -> Space {
        self.space
    }

    /// The object stored in slot `id`. Panics on an out-of-range id;
    /// resolves tombstoned slots (the payload outlives the deletion so
    /// indexes can still locate the entry they must remove).
    #[inline]
    pub fn get(&self, id: ObjectId) -> &SpatioTextualObject {
        &self.objects[id.index()]
    }

    /// All slots in id order, *including* tombstoned ones — callers that
    /// must skip deleted objects use [`Corpus::iter`].
    #[inline]
    pub fn objects(&self) -> &[SpatioTextualObject] {
        &self.objects
    }

    /// Iterates the live objects.
    pub fn iter(&self) -> impl Iterator<Item = &SpatioTextualObject> {
        let dead = self.dead.as_deref();
        self.objects
            .iter()
            .enumerate()
            .filter(move |(i, _)| dead.is_none_or(|d| !d[*i]))
            .map(|(_, o)| o)
    }

    /// Ids of the live objects, ascending.
    pub fn live_ids(&self) -> Vec<ObjectId> {
        self.iter().map(|o| o.id).collect()
    }

    /// The union of all live object keyword sets — `D.doc`, used to
    /// normalize vocabulary-wide statistics.
    pub fn all_keywords(&self) -> KeywordSet {
        self.iter()
            .fold(KeywordSet::empty(), |acc, o| acc.union(&o.doc))
    }

    /// Looks up a live object by display name (linear scan; demo-scale
    /// only).
    pub fn find_by_name(&self, name: &str) -> Option<&SpatioTextualObject> {
        self.iter().find(|o| o.name == name)
    }

    /// Derives a new corpus version: `inserts` are appended to fresh slots
    /// (in iteration order) and `deletes` are tombstoned. The data space is
    /// carried over unchanged so score normalization stays stable across
    /// updates. Returns the new version and the ids assigned to the
    /// inserted objects.
    ///
    /// Panics when a delete targets an out-of-range or already-dead slot,
    /// or an insert location is non-finite — the ingest layer validates
    /// batches before applying them.
    pub fn with_updates(
        &self,
        inserts: impl IntoIterator<Item = (Point, KeywordSet, String)>,
        deletes: &[ObjectId],
    ) -> (Corpus, Vec<ObjectId>) {
        let mut objects: Vec<SpatioTextualObject> = self.objects.to_vec();
        let mut dead: Vec<bool> = match &self.dead {
            Some(d) => d.to_vec(),
            None => vec![false; objects.len()],
        };
        let mut live = self.live;
        for &id in deletes {
            assert!(
                id.index() < objects.len() && !dead[id.index()],
                "delete of unknown or dead object {id:?}"
            );
            dead[id.index()] = true;
            live -= 1;
        }
        let mut new_ids = Vec::new();
        for (loc, doc, name) in inserts {
            assert!(loc.is_finite(), "object location must be finite: {loc:?}");
            let id = ObjectId(u32::try_from(objects.len()).expect("corpus exceeds u32 ids"));
            objects.push(SpatioTextualObject { id, loc, doc, name });
            dead.push(false);
            live += 1;
            new_ids.push(id);
        }
        let corpus = Corpus {
            objects: objects.into(),
            dead: dead.iter().any(|&d| d).then(|| dead.into()),
            live,
            space: self.space,
        };
        (corpus, new_ids)
    }
}

impl fmt::Debug for Corpus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Corpus")
            .field("len", &self.len())
            .field("slots", &self.slot_count())
            .field("space", &self.space)
            .finish()
    }
}

/// Builder assembling a [`Corpus`], assigning dense ids in push order.
#[derive(Default)]
pub struct CorpusBuilder {
    objects: Vec<SpatioTextualObject>,
    dead: Vec<bool>,
    space_override: Option<Space>,
}

impl CorpusBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        CorpusBuilder::default()
    }

    /// Creates a builder expecting `n` objects.
    pub fn with_capacity(n: usize) -> Self {
        CorpusBuilder {
            objects: Vec::with_capacity(n),
            dead: Vec::with_capacity(n),
            space_override: None,
        }
    }

    /// Forces a specific data space instead of the fitted bounding box
    /// (useful when several corpora must share one normalization, e.g. in
    /// scalability sweeps).
    pub fn with_space(mut self, space: Space) -> Self {
        self.space_override = Some(space);
        self
    }

    /// Adds an object; returns its id. Non-finite locations are rejected.
    pub fn push(&mut self, loc: Point, doc: KeywordSet, name: impl Into<String>) -> ObjectId {
        assert!(loc.is_finite(), "object location must be finite: {loc:?}");
        let id = ObjectId(u32::try_from(self.objects.len()).expect("corpus exceeds u32 ids"));
        self.objects.push(SpatioTextualObject {
            id,
            loc,
            doc,
            name: name.into(),
        });
        self.dead.push(false);
        id
    }

    /// Tombstones a previously pushed slot — used when reloading a corpus
    /// version that already carried deletions (e.g. from the page store).
    pub fn kill(&mut self, id: ObjectId) {
        assert!(id.index() < self.objects.len(), "kill of unknown slot {id:?}");
        self.dead[id.index()] = true;
    }

    /// Number of objects pushed so far.
    pub fn len(&self) -> usize {
        self.objects.len()
    }

    /// True when nothing was pushed.
    pub fn is_empty(&self) -> bool {
        self.objects.is_empty()
    }

    /// Finalizes the corpus, fitting the data space if not overridden.
    /// An empty corpus gets the unit space.
    pub fn build(self) -> Corpus {
        // The space fits *all* slots, dead ones included, so reloading a
        // corpus that carries tombstones reproduces the original space.
        let space = self.space_override.unwrap_or_else(|| {
            Space::from_points(self.objects.iter().map(|o| o.loc)).unwrap_or_else(Space::unit)
        });
        let live = self.dead.iter().filter(|&&d| !d).count();
        Corpus {
            objects: self.objects.into(),
            dead: self.dead.iter().any(|&d| d).then(|| self.dead.into()),
            live,
            space,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ks(ids: &[u32]) -> KeywordSet {
        KeywordSet::from_raw(ids.iter().copied())
    }

    #[test]
    fn builder_assigns_dense_ids() {
        let mut b = CorpusBuilder::new();
        let a = b.push(Point::new(0.0, 0.0), ks(&[1]), "a");
        let c = b.push(Point::new(1.0, 1.0), ks(&[2]), "c");
        assert_eq!(a, ObjectId(0));
        assert_eq!(c, ObjectId(1));
        let corpus = b.build();
        assert_eq!(corpus.len(), 2);
        assert_eq!(corpus.get(a).name, "a");
        assert_eq!(corpus.get(c).doc, ks(&[2]));
    }

    #[test]
    fn space_fits_objects() {
        let mut b = CorpusBuilder::new();
        b.push(Point::new(-1.0, 2.0), ks(&[]), "p");
        b.push(Point::new(3.0, 8.0), ks(&[]), "q");
        let corpus = b.build();
        let bounds = corpus.space().bounds();
        assert!(bounds.contains_point(&Point::new(-1.0, 2.0)));
        assert!(bounds.contains_point(&Point::new(3.0, 8.0)));
    }

    #[test]
    fn space_override_is_respected() {
        let forced = Space::unit();
        let mut b = CorpusBuilder::new().with_space(forced);
        b.push(Point::new(100.0, 100.0), ks(&[]), "far");
        let corpus = b.build();
        assert_eq!(corpus.space(), forced);
    }

    #[test]
    fn empty_corpus_has_unit_space() {
        let corpus = CorpusBuilder::new().build();
        assert!(corpus.is_empty());
        assert_eq!(corpus.space(), Space::unit());
        assert!(corpus.all_keywords().is_empty());
    }

    #[test]
    fn all_keywords_is_union() {
        let mut b = CorpusBuilder::new();
        b.push(Point::new(0.0, 0.0), ks(&[1, 2]), "a");
        b.push(Point::new(0.1, 0.1), ks(&[2, 3]), "b");
        let corpus = b.build();
        assert_eq!(corpus.all_keywords(), ks(&[1, 2, 3]));
    }

    #[test]
    fn find_by_name_works() {
        let mut b = CorpusBuilder::new();
        b.push(Point::new(0.0, 0.0), ks(&[1]), "Starbucks");
        let corpus = b.build();
        assert_eq!(corpus.find_by_name("Starbucks").unwrap().id, ObjectId(0));
        assert!(corpus.find_by_name("Nowhere").is_none());
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn non_finite_location_rejected() {
        let mut b = CorpusBuilder::new();
        b.push(Point::new(f64::NAN, 0.0), ks(&[]), "bad");
    }

    #[test]
    fn with_updates_appends_and_tombstones() {
        let mut b = CorpusBuilder::new().with_space(Space::unit());
        b.push(Point::new(0.1, 0.1), ks(&[1]), "a");
        b.push(Point::new(0.2, 0.2), ks(&[2]), "b");
        b.push(Point::new(0.3, 0.3), ks(&[3]), "c");
        let v0 = b.build();
        let (v1, new_ids) = v0.with_updates(
            [(Point::new(0.4, 0.4), ks(&[4]), "d".to_owned())],
            &[ObjectId(1)],
        );
        // The old version is untouched.
        assert_eq!(v0.len(), 3);
        assert!(v0.contains(ObjectId(1)));
        // The new version: 3 live (a, c, d), 4 slots, b tombstoned.
        assert_eq!(new_ids, vec![ObjectId(3)]);
        assert_eq!(v1.len(), 3);
        assert_eq!(v1.slot_count(), 4);
        assert_eq!(v1.tombstones(), 1);
        assert!(!v1.contains(ObjectId(1)));
        assert!(v1.contains(ObjectId(3)));
        assert!(!v1.contains(ObjectId(4)), "out of range is not contained");
        // Dead slots keep their payload but vanish from iteration.
        assert_eq!(v1.get(ObjectId(1)).name, "b");
        let names: Vec<&str> = v1.iter().map(|o| o.name.as_str()).collect();
        assert_eq!(names, vec!["a", "c", "d"]);
        assert_eq!(v1.live_ids(), vec![ObjectId(0), ObjectId(2), ObjectId(3)]);
        assert!(v1.find_by_name("b").is_none());
        assert_eq!(v1.all_keywords(), ks(&[1, 3, 4]));
        // Space is carried over, not refitted.
        assert_eq!(v1.space(), v0.space());
    }

    #[test]
    #[should_panic(expected = "unknown or dead")]
    fn with_updates_rejects_double_delete() {
        let mut b = CorpusBuilder::new();
        b.push(Point::new(0.0, 0.0), ks(&[1]), "a");
        let (v1, _) = b.build().with_updates(std::iter::empty(), &[ObjectId(0)]);
        let _ = v1.with_updates(std::iter::empty(), &[ObjectId(0)]);
    }

    #[test]
    fn builder_kill_builds_tombstoned_corpus() {
        let mut b = CorpusBuilder::new();
        let a = b.push(Point::new(0.0, 0.0), ks(&[1]), "a");
        b.push(Point::new(1.0, 1.0), ks(&[2]), "b");
        b.kill(a);
        let corpus = b.build();
        assert_eq!(corpus.len(), 1);
        assert_eq!(corpus.slot_count(), 2);
        assert!(!corpus.contains(a));
        // Space still fits the dead slot (id stability across reloads).
        assert!(corpus.space().bounds().contains_point(&Point::new(0.0, 0.0)));
    }

    #[test]
    fn corpus_is_cheap_to_clone() {
        let mut b = CorpusBuilder::new();
        for i in 0..100 {
            b.push(Point::new(i as f64, 0.0), ks(&[i]), format!("o{i}"));
        }
        let corpus = b.build();
        let clone = corpus.clone();
        assert_eq!(clone.len(), corpus.len());
        // Same allocation behind both.
        assert!(std::ptr::eq(corpus.objects(), clone.objects()));
    }
}
