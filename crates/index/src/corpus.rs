//! The spatio-textual object corpus shared by all indexes.
//!
//! Paper §2.1: "Let `D` denote a database of spatial objects. Each object
//! `o ∈ D` is defined as a pair `(o.loc, o.doc)`." A [`Corpus`] is that
//! database plus the normalized [`Space`] in which `SDist` is computed.
//! Indexes and engines share one corpus through a cheap `Arc` clone, so the
//! SetR-tree, KcR-tree and IR-tree built over the same data never duplicate
//! object payloads.

use std::fmt;
use std::sync::Arc;

use yask_geo::{Point, Space};
use yask_text::KeywordSet;

/// Identifier of an object in a [`Corpus`]: its position in the object
/// array. Dense ids keep rank tie-breaking deterministic and make
/// object-indexed scratch arrays (used by the why-not sweeps) trivial.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ObjectId(pub u32);

impl ObjectId {
    /// The raw array index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ObjectId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "o{}", self.0)
    }
}

/// One spatial object: `(o.loc, o.doc)` plus an optional display name
/// (hotel name in the demo dataset).
#[derive(Clone, Debug, PartialEq)]
pub struct SpatioTextualObject {
    /// The object's id — always equal to its position in the corpus.
    pub id: ObjectId,
    /// `o.loc`.
    pub loc: Point,
    /// `o.doc`.
    pub doc: KeywordSet,
    /// Human-readable label used by explanations and the demo server.
    pub name: String,
}

/// An immutable, shareable database of spatial objects.
#[derive(Clone)]
pub struct Corpus {
    objects: Arc<[SpatioTextualObject]>,
    space: Space,
}

impl Corpus {
    /// Number of objects.
    #[inline]
    pub fn len(&self) -> usize {
        self.objects.len()
    }

    /// True when the corpus has no objects.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.objects.is_empty()
    }

    /// The normalized data space (bounding box of all object locations
    /// unless overridden at build time).
    #[inline]
    pub fn space(&self) -> Space {
        self.space
    }

    /// The object with id `id`. Panics on a foreign id.
    #[inline]
    pub fn get(&self, id: ObjectId) -> &SpatioTextualObject {
        &self.objects[id.index()]
    }

    /// All objects in id order.
    #[inline]
    pub fn objects(&self) -> &[SpatioTextualObject] {
        &self.objects
    }

    /// Iterates all objects.
    pub fn iter(&self) -> impl Iterator<Item = &SpatioTextualObject> {
        self.objects.iter()
    }

    /// The union of all object keyword sets — `D.doc`, used to normalize
    /// vocabulary-wide statistics.
    pub fn all_keywords(&self) -> KeywordSet {
        self.objects
            .iter()
            .fold(KeywordSet::empty(), |acc, o| acc.union(&o.doc))
    }

    /// Looks up an object by display name (linear scan; demo-scale only).
    pub fn find_by_name(&self, name: &str) -> Option<&SpatioTextualObject> {
        self.objects.iter().find(|o| o.name == name)
    }
}

impl fmt::Debug for Corpus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Corpus")
            .field("len", &self.len())
            .field("space", &self.space)
            .finish()
    }
}

/// Builder assembling a [`Corpus`], assigning dense ids in push order.
#[derive(Default)]
pub struct CorpusBuilder {
    objects: Vec<SpatioTextualObject>,
    space_override: Option<Space>,
}

impl CorpusBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        CorpusBuilder::default()
    }

    /// Creates a builder expecting `n` objects.
    pub fn with_capacity(n: usize) -> Self {
        CorpusBuilder {
            objects: Vec::with_capacity(n),
            space_override: None,
        }
    }

    /// Forces a specific data space instead of the fitted bounding box
    /// (useful when several corpora must share one normalization, e.g. in
    /// scalability sweeps).
    pub fn with_space(mut self, space: Space) -> Self {
        self.space_override = Some(space);
        self
    }

    /// Adds an object; returns its id. Non-finite locations are rejected.
    pub fn push(&mut self, loc: Point, doc: KeywordSet, name: impl Into<String>) -> ObjectId {
        assert!(loc.is_finite(), "object location must be finite: {loc:?}");
        let id = ObjectId(u32::try_from(self.objects.len()).expect("corpus exceeds u32 ids"));
        self.objects.push(SpatioTextualObject {
            id,
            loc,
            doc,
            name: name.into(),
        });
        id
    }

    /// Number of objects pushed so far.
    pub fn len(&self) -> usize {
        self.objects.len()
    }

    /// True when nothing was pushed.
    pub fn is_empty(&self) -> bool {
        self.objects.is_empty()
    }

    /// Finalizes the corpus, fitting the data space if not overridden.
    /// An empty corpus gets the unit space.
    pub fn build(self) -> Corpus {
        let space = self.space_override.unwrap_or_else(|| {
            Space::from_points(self.objects.iter().map(|o| o.loc)).unwrap_or_else(Space::unit)
        });
        Corpus {
            objects: self.objects.into(),
            space,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ks(ids: &[u32]) -> KeywordSet {
        KeywordSet::from_raw(ids.iter().copied())
    }

    #[test]
    fn builder_assigns_dense_ids() {
        let mut b = CorpusBuilder::new();
        let a = b.push(Point::new(0.0, 0.0), ks(&[1]), "a");
        let c = b.push(Point::new(1.0, 1.0), ks(&[2]), "c");
        assert_eq!(a, ObjectId(0));
        assert_eq!(c, ObjectId(1));
        let corpus = b.build();
        assert_eq!(corpus.len(), 2);
        assert_eq!(corpus.get(a).name, "a");
        assert_eq!(corpus.get(c).doc, ks(&[2]));
    }

    #[test]
    fn space_fits_objects() {
        let mut b = CorpusBuilder::new();
        b.push(Point::new(-1.0, 2.0), ks(&[]), "p");
        b.push(Point::new(3.0, 8.0), ks(&[]), "q");
        let corpus = b.build();
        let bounds = corpus.space().bounds();
        assert!(bounds.contains_point(&Point::new(-1.0, 2.0)));
        assert!(bounds.contains_point(&Point::new(3.0, 8.0)));
    }

    #[test]
    fn space_override_is_respected() {
        let forced = Space::unit();
        let mut b = CorpusBuilder::new().with_space(forced);
        b.push(Point::new(100.0, 100.0), ks(&[]), "far");
        let corpus = b.build();
        assert_eq!(corpus.space(), forced);
    }

    #[test]
    fn empty_corpus_has_unit_space() {
        let corpus = CorpusBuilder::new().build();
        assert!(corpus.is_empty());
        assert_eq!(corpus.space(), Space::unit());
        assert!(corpus.all_keywords().is_empty());
    }

    #[test]
    fn all_keywords_is_union() {
        let mut b = CorpusBuilder::new();
        b.push(Point::new(0.0, 0.0), ks(&[1, 2]), "a");
        b.push(Point::new(0.1, 0.1), ks(&[2, 3]), "b");
        let corpus = b.build();
        assert_eq!(corpus.all_keywords(), ks(&[1, 2, 3]));
    }

    #[test]
    fn find_by_name_works() {
        let mut b = CorpusBuilder::new();
        b.push(Point::new(0.0, 0.0), ks(&[1]), "Starbucks");
        let corpus = b.build();
        assert_eq!(corpus.find_by_name("Starbucks").unwrap().id, ObjectId(0));
        assert!(corpus.find_by_name("Nowhere").is_none());
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn non_finite_location_rejected() {
        let mut b = CorpusBuilder::new();
        b.push(Point::new(f64::NAN, 0.0), ks(&[]), "bad");
    }

    #[test]
    fn corpus_is_cheap_to_clone() {
        let mut b = CorpusBuilder::new();
        for i in 0..100 {
            b.push(Point::new(i as f64, 0.0), ks(&[i]), format!("o{i}"));
        }
        let corpus = b.build();
        let clone = corpus.clone();
        assert_eq!(clone.len(), corpus.len());
        // Same allocation behind both.
        assert!(std::ptr::eq(corpus.objects(), clone.objects()));
    }
}
