//! The spatio-textual object corpus shared by all indexes.
//!
//! Paper §2.1: "Let `D` denote a database of spatial objects. Each object
//! `o ∈ D` is defined as a pair `(o.loc, o.doc)`." A [`Corpus`] is that
//! database plus the normalized [`Space`] in which `SDist` is computed.
//! Indexes and engines share one corpus through a cheap `Arc` clone, so the
//! SetR-tree, KcR-tree and IR-tree built over the same data never duplicate
//! object payloads.
//!
//! **Liveness.** A corpus version may carry tombstones: a deleted object
//! keeps its slot (so [`ObjectId`]s stay stable across updates and ids
//! recorded in write-ahead logs, tree structures and sessions never shift)
//! but is skipped by [`Corpus::iter`], excluded from [`Corpus::len`], and
//! invisible to scans. [`Corpus::with_updates`] derives a new version with
//! objects appended and/or tombstoned — the persistent-snapshot primitive
//! the ingest layer's epochs are built on. [`Corpus::get`] still resolves
//! tombstoned slots (index maintenance needs the payload to unindex it);
//! use [`Corpus::contains`] to test liveness.
//!
//! **Chunked persistence.** Slots are stored in fixed-size chunks
//! ([`CHUNK_SIZE`] objects each) behind individual `Arc`s, with the chunk
//! spine itself behind one more `Arc`. Deriving a new version shares every
//! untouched chunk structurally and deep-copies only the chunks a batch's
//! deletes land in plus the tail chunk its inserts extend — so
//! [`Corpus::with_updates`] costs O(batch + touched chunks), not O(n), and
//! per-batch write amplification stays flat as the corpus grows. The copy
//! work is observable: [`Corpus::with_updates_counted`] reports the chunks
//! and approximate bytes each derivation actually duplicated, which the
//! ingest layer accumulates and `/stats` surfaces. The R-tree node arena
//! uses the same discipline on the index side (see [`crate::rtree`]):
//! [`crate::RTree::with_updates`] path-copies tree chunks exactly like
//! this and bills into the same [`CopyStats`] shape, so one epoch
//! derivation reports corpus-side and index-side write amplification in
//! one vocabulary.

use std::fmt;
use std::sync::Arc;

use yask_geo::{Point, Space};
use yask_text::KeywordSet;

/// Objects per chunk. A power of two so the slot → (chunk, offset) split
/// is a shift and a mask on the hot [`Corpus::get`] path. 256 keeps the
/// deep-copy cost of one touched chunk small (a single-object write batch
/// copies at most two chunks) while a 50 000-object corpus still has a
/// ~200-pointer spine, cheap to rebuild per batch.
pub const CHUNK_SIZE: usize = 256;
const CHUNK_BITS: u32 = CHUNK_SIZE.trailing_zeros();
const CHUNK_MASK: usize = CHUNK_SIZE - 1;

/// Identifier of an object in a [`Corpus`]: its position in the object
/// array. Dense ids keep rank tie-breaking deterministic and make
/// object-indexed scratch arrays (used by the why-not sweeps) trivial.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ObjectId(pub u32);

impl ObjectId {
    /// The raw array index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ObjectId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "o{}", self.0)
    }
}

/// One spatial object: `(o.loc, o.doc)` plus an optional display name
/// (hotel name in the demo dataset).
#[derive(Clone, Debug, PartialEq)]
pub struct SpatioTextualObject {
    /// The object's id — always equal to its position in the corpus.
    pub id: ObjectId,
    /// `o.loc`.
    pub loc: Point,
    /// `o.doc`.
    pub doc: KeywordSet,
    /// Human-readable label used by explanations and the demo server.
    pub name: String,
}

impl SpatioTextualObject {
    /// Approximate heap footprint, used to account copy-on-write work.
    #[inline]
    fn approx_bytes(&self) -> usize {
        std::mem::size_of::<SpatioTextualObject>() + self.name.len() + 4 * self.doc.len()
    }
}

/// One fixed-capacity run of consecutive slots. All chunks except the
/// last hold exactly [`CHUNK_SIZE`] objects.
#[derive(Clone)]
struct Chunk {
    objects: Vec<SpatioTextualObject>,
    /// Tombstone flags, one per slot; `None` means every slot is live
    /// (the common, allocation-free case for freshly built chunks).
    dead: Option<Vec<bool>>,
    /// Live objects in this chunk.
    live: usize,
}

impl Chunk {
    fn with_capacity() -> Chunk {
        Chunk {
            objects: Vec::with_capacity(CHUNK_SIZE),
            dead: None,
            live: 0,
        }
    }

    #[inline]
    fn is_dead(&self, offset: usize) -> bool {
        self.dead.as_ref().is_some_and(|d| d[offset])
    }

    fn kill(&mut self, offset: usize) {
        let dead = self
            .dead
            .get_or_insert_with(|| vec![false; self.objects.len()]);
        debug_assert!(!dead[offset], "double kill within a chunk");
        dead[offset] = true;
        self.live -= 1;
    }

    fn push(&mut self, o: SpatioTextualObject) {
        debug_assert!(self.objects.len() < CHUNK_SIZE, "chunk overflow");
        self.objects.push(o);
        if let Some(dead) = &mut self.dead {
            dead.push(false);
        }
        self.live += 1;
    }

    fn iter_live(&self) -> impl Iterator<Item = &SpatioTextualObject> {
        let dead = self.dead.as_deref();
        self.objects
            .iter()
            .enumerate()
            .filter(move |(i, _)| dead.is_none_or(|d| !d[*i]))
            .map(|(_, o)| o)
    }

    fn approx_bytes(&self) -> usize {
        self.objects.iter().map(|o| o.approx_bytes()).sum()
    }
}

/// What one [`Corpus::with_updates_counted`] derivation duplicated — the
/// observable proof that the write path is O(batch + touched chunks),
/// not O(n): at a fixed batch size these numbers stay flat as the corpus
/// grows.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CopyStats {
    /// Pre-existing chunks deep-copied because the batch touched them.
    pub chunks_copied: usize,
    /// Fresh chunks appended for inserts that overflowed the tail.
    pub chunks_created: usize,
    /// Approximate heap bytes of the deep-copied chunks (object structs,
    /// names, keyword ids) — the batch's actual copy-on-write bill.
    pub bytes_copied: usize,
}

impl CopyStats {
    /// Folds another derivation's counters in (cumulative accounting).
    pub fn absorb(&mut self, other: &CopyStats) {
        self.chunks_copied += other.chunks_copied;
        self.chunks_created += other.chunks_created;
        self.bytes_copied += other.bytes_copied;
    }
}

/// An immutable, shareable database of spatial objects.
#[derive(Clone)]
pub struct Corpus {
    /// The chunk spine. Cloning a corpus clones one `Arc`; deriving a
    /// version rebuilds the spine but shares every untouched chunk.
    chunks: Arc<[Arc<Chunk>]>,
    /// Total slot count, including tombstoned slots.
    slots: usize,
    /// Cached live-object count (`slot_count()` minus tombstones).
    live: usize,
    space: Space,
}

impl Corpus {
    /// Number of *live* objects.
    #[inline]
    pub fn len(&self) -> usize {
        self.live
    }

    /// True when the corpus has no live objects.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Number of id slots, including tombstoned ones — the exclusive upper
    /// bound on valid [`ObjectId`] indexes.
    #[inline]
    pub fn slot_count(&self) -> usize {
        self.slots
    }

    /// Number of tombstoned slots.
    #[inline]
    pub fn tombstones(&self) -> usize {
        self.slots - self.live
    }

    /// Number of chunks in this version's spine.
    #[inline]
    pub fn chunk_count(&self) -> usize {
        self.chunks.len()
    }

    /// True when both corpora are the *same version* (they share one
    /// chunk spine) — the chunked equivalent of pointer equality on the
    /// old flat object array.
    #[inline]
    pub fn same_version(&self, other: &Corpus) -> bool {
        Arc::ptr_eq(&self.chunks, &other.chunks)
    }

    /// True when `id` names an existing slot that has not been deleted.
    #[inline]
    pub fn contains(&self, id: ObjectId) -> bool {
        let i = id.index();
        i < self.slots && !self.chunks[i >> CHUNK_BITS].is_dead(i & CHUNK_MASK)
    }

    /// The normalized data space (bounding box of all object locations
    /// unless overridden at build time).
    #[inline]
    pub fn space(&self) -> Space {
        self.space
    }

    /// The object stored in slot `id`. Panics on an out-of-range id;
    /// resolves tombstoned slots (the payload outlives the deletion so
    /// indexes can still locate the entry they must remove).
    #[inline]
    pub fn get(&self, id: ObjectId) -> &SpatioTextualObject {
        let i = id.index();
        assert!(i < self.slots, "object id {id} out of range");
        &self.chunks[i >> CHUNK_BITS].objects[i & CHUNK_MASK]
    }

    /// All slots in id order, *including* tombstoned ones — callers that
    /// must skip deleted objects use [`Corpus::iter`].
    pub fn iter_slots(&self) -> impl Iterator<Item = &SpatioTextualObject> {
        self.chunks.iter().flat_map(|c| c.objects.iter())
    }

    /// Iterates the live objects.
    pub fn iter(&self) -> impl Iterator<Item = &SpatioTextualObject> {
        self.chunks.iter().flat_map(|c| c.iter_live())
    }

    /// Ids of the live objects, ascending.
    pub fn live_ids(&self) -> Vec<ObjectId> {
        self.iter().map(|o| o.id).collect()
    }

    /// The union of all live object keyword sets — `D.doc`, used to
    /// normalize vocabulary-wide statistics.
    pub fn all_keywords(&self) -> KeywordSet {
        self.iter()
            .fold(KeywordSet::empty(), |acc, o| acc.union(&o.doc))
    }

    /// Looks up a live object by display name (linear scan; demo-scale
    /// only).
    pub fn find_by_name(&self, name: &str) -> Option<&SpatioTextualObject> {
        self.iter().find(|o| o.name == name)
    }

    /// Derives a new corpus version: `inserts` are appended to fresh slots
    /// (in iteration order) and `deletes` are tombstoned. The data space is
    /// carried over unchanged so score normalization stays stable across
    /// updates. Returns the new version and the ids assigned to the
    /// inserted objects.
    ///
    /// Panics when a delete targets an out-of-range or already-dead slot,
    /// or an insert location is non-finite — the ingest layer validates
    /// batches before applying them.
    pub fn with_updates(
        &self,
        inserts: impl IntoIterator<Item = (Point, KeywordSet, String)>,
        deletes: &[ObjectId],
    ) -> (Corpus, Vec<ObjectId>) {
        let (corpus, new_ids, _) = self.with_updates_counted(inserts, deletes);
        (corpus, new_ids)
    }

    /// [`Corpus::with_updates`] reporting the copy-on-write work the
    /// derivation performed: only the chunks the batch touched are
    /// deep-copied, everything else is shared by `Arc` with `self`.
    pub fn with_updates_counted(
        &self,
        inserts: impl IntoIterator<Item = (Point, KeywordSet, String)>,
        deletes: &[ObjectId],
    ) -> (Corpus, Vec<ObjectId>, CopyStats) {
        let mut chunks: Vec<Arc<Chunk>> = self.chunks.to_vec();
        let mut stats = CopyStats::default();
        let mut slots = self.slots;
        let mut live = self.live;

        for &id in deletes {
            let i = id.index();
            // Liveness is checked against the *working* spine, not
            // `self`: a batch that deletes the same slot twice must trip
            // this assert on the second occurrence.
            assert!(
                i < slots && !chunks[i >> CHUNK_BITS].is_dead(i & CHUNK_MASK),
                "delete of unknown or dead object {id:?}"
            );
            chunk_mut(&mut chunks, i >> CHUNK_BITS, &mut stats).kill(i & CHUNK_MASK);
            live -= 1;
        }

        let mut new_ids = Vec::new();
        for (loc, doc, name) in inserts {
            assert!(loc.is_finite(), "object location must be finite: {loc:?}");
            let id = ObjectId(u32::try_from(slots).expect("corpus exceeds u32 ids"));
            let ci = slots >> CHUNK_BITS;
            if ci == chunks.len() {
                chunks.push(Arc::new(Chunk::with_capacity()));
                stats.chunks_created += 1;
            }
            chunk_mut(&mut chunks, ci, &mut stats).push(SpatioTextualObject {
                id,
                loc,
                doc,
                name,
            });
            slots += 1;
            live += 1;
            new_ids.push(id);
        }

        let corpus = Corpus {
            chunks: chunks.into(),
            slots,
            live,
            space: self.space,
        };
        (corpus, new_ids, stats)
    }
}

/// Copy-on-write access to one chunk of a spine under construction: the
/// first touch of a chunk still shared with older versions deep-copies
/// it (and bills the copy to `stats`); later touches in the same batch
/// see the unique copy and mutate in place.
fn chunk_mut<'a>(chunks: &'a mut [Arc<Chunk>], ci: usize, stats: &mut CopyStats) -> &'a mut Chunk {
    if Arc::get_mut(&mut chunks[ci]).is_none() {
        let copy = (*chunks[ci]).clone();
        stats.chunks_copied += 1;
        stats.bytes_copied += copy.approx_bytes();
        chunks[ci] = Arc::new(copy);
    }
    Arc::get_mut(&mut chunks[ci]).expect("chunk is unique after copy")
}

impl fmt::Debug for Corpus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Corpus")
            .field("len", &self.len())
            .field("slots", &self.slot_count())
            .field("chunks", &self.chunk_count())
            .field("space", &self.space)
            .finish()
    }
}

/// Builder assembling a [`Corpus`], assigning dense ids in push order.
#[derive(Default)]
pub struct CorpusBuilder {
    objects: Vec<SpatioTextualObject>,
    dead: Vec<bool>,
    space_override: Option<Space>,
}

impl CorpusBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        CorpusBuilder::default()
    }

    /// Creates a builder expecting `n` objects.
    pub fn with_capacity(n: usize) -> Self {
        CorpusBuilder {
            objects: Vec::with_capacity(n),
            dead: Vec::with_capacity(n),
            space_override: None,
        }
    }

    /// Forces a specific data space instead of the fitted bounding box
    /// (useful when several corpora must share one normalization, e.g. in
    /// scalability sweeps).
    pub fn with_space(mut self, space: Space) -> Self {
        self.space_override = Some(space);
        self
    }

    /// Adds an object; returns its id. Non-finite locations are rejected.
    pub fn push(&mut self, loc: Point, doc: KeywordSet, name: impl Into<String>) -> ObjectId {
        assert!(loc.is_finite(), "object location must be finite: {loc:?}");
        let id = ObjectId(u32::try_from(self.objects.len()).expect("corpus exceeds u32 ids"));
        self.objects.push(SpatioTextualObject {
            id,
            loc,
            doc,
            name: name.into(),
        });
        self.dead.push(false);
        id
    }

    /// Tombstones a previously pushed slot — used when reloading a corpus
    /// version that already carried deletions (e.g. from the page store).
    pub fn kill(&mut self, id: ObjectId) {
        assert!(id.index() < self.objects.len(), "kill of unknown slot {id:?}");
        self.dead[id.index()] = true;
    }

    /// Number of objects pushed so far.
    pub fn len(&self) -> usize {
        self.objects.len()
    }

    /// True when nothing was pushed.
    pub fn is_empty(&self) -> bool {
        self.objects.is_empty()
    }

    /// Finalizes the corpus, fitting the data space if not overridden.
    /// An empty corpus gets the unit space.
    pub fn build(self) -> Corpus {
        // The space fits *all* slots, dead ones included, so reloading a
        // corpus that carries tombstones reproduces the original space.
        let space = self.space_override.unwrap_or_else(|| {
            Space::from_points(self.objects.iter().map(|o| o.loc)).unwrap_or_else(Space::unit)
        });
        let slots = self.objects.len();
        let live = self.dead.iter().filter(|&&d| !d).count();
        let mut chunks: Vec<Arc<Chunk>> = Vec::with_capacity(slots.div_ceil(CHUNK_SIZE));
        let mut objects = self.objects.into_iter();
        let mut dead = self.dead.into_iter();
        while chunks.len() * CHUNK_SIZE < slots {
            let take = CHUNK_SIZE.min(slots - chunks.len() * CHUNK_SIZE);
            let mut chunk = Chunk::with_capacity();
            for _ in 0..take {
                chunk.push(objects.next().expect("object per slot"));
                if dead.next().expect("flag per slot") {
                    chunk.kill(chunk.objects.len() - 1);
                }
            }
            chunks.push(Arc::new(chunk));
        }
        Corpus {
            chunks: chunks.into(),
            slots,
            live,
            space,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ks(ids: &[u32]) -> KeywordSet {
        KeywordSet::from_raw(ids.iter().copied())
    }

    #[test]
    fn builder_assigns_dense_ids() {
        let mut b = CorpusBuilder::new();
        let a = b.push(Point::new(0.0, 0.0), ks(&[1]), "a");
        let c = b.push(Point::new(1.0, 1.0), ks(&[2]), "c");
        assert_eq!(a, ObjectId(0));
        assert_eq!(c, ObjectId(1));
        let corpus = b.build();
        assert_eq!(corpus.len(), 2);
        assert_eq!(corpus.get(a).name, "a");
        assert_eq!(corpus.get(c).doc, ks(&[2]));
    }

    #[test]
    fn space_fits_objects() {
        let mut b = CorpusBuilder::new();
        b.push(Point::new(-1.0, 2.0), ks(&[]), "p");
        b.push(Point::new(3.0, 8.0), ks(&[]), "q");
        let corpus = b.build();
        let bounds = corpus.space().bounds();
        assert!(bounds.contains_point(&Point::new(-1.0, 2.0)));
        assert!(bounds.contains_point(&Point::new(3.0, 8.0)));
    }

    #[test]
    fn space_override_is_respected() {
        let forced = Space::unit();
        let mut b = CorpusBuilder::new().with_space(forced);
        b.push(Point::new(100.0, 100.0), ks(&[]), "far");
        let corpus = b.build();
        assert_eq!(corpus.space(), forced);
    }

    #[test]
    fn empty_corpus_has_unit_space() {
        let corpus = CorpusBuilder::new().build();
        assert!(corpus.is_empty());
        assert_eq!(corpus.space(), Space::unit());
        assert!(corpus.all_keywords().is_empty());
        assert_eq!(corpus.chunk_count(), 0);
    }

    #[test]
    fn all_keywords_is_union() {
        let mut b = CorpusBuilder::new();
        b.push(Point::new(0.0, 0.0), ks(&[1, 2]), "a");
        b.push(Point::new(0.1, 0.1), ks(&[2, 3]), "b");
        let corpus = b.build();
        assert_eq!(corpus.all_keywords(), ks(&[1, 2, 3]));
    }

    #[test]
    fn find_by_name_works() {
        let mut b = CorpusBuilder::new();
        b.push(Point::new(0.0, 0.0), ks(&[1]), "Starbucks");
        let corpus = b.build();
        assert_eq!(corpus.find_by_name("Starbucks").unwrap().id, ObjectId(0));
        assert!(corpus.find_by_name("Nowhere").is_none());
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn non_finite_location_rejected() {
        let mut b = CorpusBuilder::new();
        b.push(Point::new(f64::NAN, 0.0), ks(&[]), "bad");
    }

    #[test]
    fn with_updates_appends_and_tombstones() {
        let mut b = CorpusBuilder::new().with_space(Space::unit());
        b.push(Point::new(0.1, 0.1), ks(&[1]), "a");
        b.push(Point::new(0.2, 0.2), ks(&[2]), "b");
        b.push(Point::new(0.3, 0.3), ks(&[3]), "c");
        let v0 = b.build();
        let (v1, new_ids) = v0.with_updates(
            [(Point::new(0.4, 0.4), ks(&[4]), "d".to_owned())],
            &[ObjectId(1)],
        );
        // The old version is untouched.
        assert_eq!(v0.len(), 3);
        assert!(v0.contains(ObjectId(1)));
        // The new version: 3 live (a, c, d), 4 slots, b tombstoned.
        assert_eq!(new_ids, vec![ObjectId(3)]);
        assert_eq!(v1.len(), 3);
        assert_eq!(v1.slot_count(), 4);
        assert_eq!(v1.tombstones(), 1);
        assert!(!v1.contains(ObjectId(1)));
        assert!(v1.contains(ObjectId(3)));
        assert!(!v1.contains(ObjectId(4)), "out of range is not contained");
        // Dead slots keep their payload but vanish from iteration.
        assert_eq!(v1.get(ObjectId(1)).name, "b");
        let names: Vec<&str> = v1.iter().map(|o| o.name.as_str()).collect();
        assert_eq!(names, vec!["a", "c", "d"]);
        assert_eq!(v1.live_ids(), vec![ObjectId(0), ObjectId(2), ObjectId(3)]);
        assert!(v1.find_by_name("b").is_none());
        assert_eq!(v1.all_keywords(), ks(&[1, 3, 4]));
        // Space is carried over, not refitted.
        assert_eq!(v1.space(), v0.space());
    }

    #[test]
    #[should_panic(expected = "unknown or dead")]
    fn with_updates_rejects_double_delete() {
        let mut b = CorpusBuilder::new();
        b.push(Point::new(0.0, 0.0), ks(&[1]), "a");
        let (v1, _) = b.build().with_updates(std::iter::empty(), &[ObjectId(0)]);
        let _ = v1.with_updates(std::iter::empty(), &[ObjectId(0)]);
    }

    #[test]
    #[should_panic(expected = "unknown or dead")]
    fn with_updates_rejects_duplicate_delete_within_one_batch() {
        let mut b = CorpusBuilder::new();
        b.push(Point::new(0.0, 0.0), ks(&[1]), "a");
        b.push(Point::new(0.1, 0.1), ks(&[2]), "b");
        let _ = b
            .build()
            .with_updates(std::iter::empty(), &[ObjectId(0), ObjectId(0)]);
    }

    #[test]
    fn builder_kill_builds_tombstoned_corpus() {
        let mut b = CorpusBuilder::new();
        let a = b.push(Point::new(0.0, 0.0), ks(&[1]), "a");
        b.push(Point::new(1.0, 1.0), ks(&[2]), "b");
        b.kill(a);
        let corpus = b.build();
        assert_eq!(corpus.len(), 1);
        assert_eq!(corpus.slot_count(), 2);
        assert!(!corpus.contains(a));
        // Space still fits the dead slot (id stability across reloads).
        assert!(corpus.space().bounds().contains_point(&Point::new(0.0, 0.0)));
    }

    #[test]
    fn corpus_is_cheap_to_clone() {
        let mut b = CorpusBuilder::new();
        for i in 0..100 {
            b.push(Point::new(i as f64, 0.0), ks(&[i]), format!("o{i}"));
        }
        let corpus = b.build();
        let clone = corpus.clone();
        assert_eq!(clone.len(), corpus.len());
        // Same chunk spine behind both.
        assert!(corpus.same_version(&clone));
    }

    fn big_corpus(n: usize) -> Corpus {
        let mut b = CorpusBuilder::with_capacity(n).with_space(Space::unit());
        for i in 0..n {
            b.push(
                Point::new((i % 97) as f64 / 97.0, (i % 89) as f64 / 89.0),
                ks(&[(i % 23) as u32]),
                format!("obj-{i}"),
            );
        }
        b.build()
    }

    #[test]
    fn builder_fills_fixed_size_chunks() {
        let n = 3 * CHUNK_SIZE + 17;
        let corpus = big_corpus(n);
        assert_eq!(corpus.chunk_count(), 4);
        assert_eq!(corpus.slot_count(), n);
        // Iteration order is id order across chunk boundaries.
        let ids: Vec<u32> = corpus.iter().map(|o| o.id.0).collect();
        assert_eq!(ids, (0..n as u32).collect::<Vec<_>>());
        assert_eq!(corpus.get(ObjectId(CHUNK_SIZE as u32)).name, format!("obj-{CHUNK_SIZE}"));
    }

    #[test]
    fn with_updates_copies_only_touched_chunks() {
        let n = 8 * CHUNK_SIZE;
        let v0 = big_corpus(n);
        // One delete in chunk 2, one insert extending the (full) tail:
        // the insert opens a fresh chunk, so exactly one pre-existing
        // chunk is deep-copied.
        let (v1, ids, stats) = v0.with_updates_counted(
            [(Point::new(0.5, 0.5), ks(&[1]), "new".to_owned())],
            &[ObjectId((2 * CHUNK_SIZE + 3) as u32)],
        );
        assert_eq!(ids, vec![ObjectId(n as u32)]);
        assert_eq!(stats.chunks_copied, 1);
        assert_eq!(stats.chunks_created, 1);
        assert!(stats.bytes_copied > 0);
        assert!(
            stats.bytes_copied < 3 * CHUNK_SIZE * 64,
            "copied more than ~one chunk: {} bytes",
            stats.bytes_copied
        );
        // A second single-object batch on the new version touches the
        // (now partial) tail chunk only.
        let (_, _, stats2) = v1.with_updates_counted(
            [(Point::new(0.6, 0.6), ks(&[2]), "new2".to_owned())],
            &[],
        );
        assert_eq!(stats2.chunks_copied, 1);
        assert_eq!(stats2.chunks_created, 0);
    }

    #[test]
    fn copy_work_is_flat_in_corpus_size() {
        // The acceptance bar: at a fixed batch size, bytes copied per
        // batch must not grow with n.
        let small = big_corpus(4 * CHUNK_SIZE);
        let large = big_corpus(16 * CHUNK_SIZE);
        let batch = [(Point::new(0.5, 0.5), ks(&[1]), "x".to_owned())];
        let (_, _, s_small) =
            small.with_updates_counted(batch.clone(), &[ObjectId(7)]);
        let (_, _, s_large) = large.with_updates_counted(batch, &[ObjectId(7)]);
        assert_eq!(s_small.chunks_copied, s_large.chunks_copied);
        assert_eq!(s_small.bytes_copied, s_large.bytes_copied);
    }

    #[test]
    fn repeated_deletes_in_one_chunk_copy_it_once() {
        let v0 = big_corpus(2 * CHUNK_SIZE);
        let victims: Vec<ObjectId> = (0..10).map(|i| ObjectId(i * 3)).collect();
        let (v1, _, stats) = v0.with_updates_counted(std::iter::empty(), &victims);
        assert_eq!(stats.chunks_copied, 1, "all victims live in chunk 0");
        assert_eq!(v1.tombstones(), 10);
        assert_eq!(v0.tombstones(), 0, "old version untouched");
        // Untouched chunks are shared, not copied: deriving again from v0
        // bills the same single chunk.
        let (_, _, again) = v0.with_updates_counted(std::iter::empty(), &[ObjectId(1)]);
        assert_eq!(again.chunks_copied, 1);
    }

    #[test]
    fn copy_stats_absorb_accumulates() {
        let mut total = CopyStats::default();
        total.absorb(&CopyStats {
            chunks_copied: 2,
            chunks_created: 1,
            bytes_copied: 100,
        });
        total.absorb(&CopyStats {
            chunks_copied: 1,
            chunks_created: 0,
            bytes_copied: 50,
        });
        assert_eq!(
            total,
            CopyStats {
                chunks_copied: 3,
                chunks_created: 1,
                bytes_copied: 150,
            }
        );
    }

    #[test]
    fn iter_slots_includes_tombstones() {
        let v0 = big_corpus(CHUNK_SIZE + 5);
        let (v1, _) = v0.with_updates(std::iter::empty(), &[ObjectId(3), ObjectId(260)]);
        assert_eq!(v1.iter_slots().count(), CHUNK_SIZE + 5);
        assert_eq!(v1.iter().count(), CHUNK_SIZE + 3);
        // iter_slots stays in id order.
        let ids: Vec<u32> = v1.iter_slots().map(|o| o.id.0).collect();
        assert_eq!(ids, (0..(CHUNK_SIZE + 5) as u32).collect::<Vec<_>>());
    }
}
