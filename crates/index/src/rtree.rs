//! The generic arena-based R-tree.
//!
//! One structural implementation serves all four index variants; the
//! per-node textual payload is the [`Augmentation`] type parameter.
//! Supported operations:
//!
//! * [`RTree::bulk_load`] — Sort-Tile-Recursive packing (see [`crate::bulk`]),
//! * [`RTree::insert`] — Guttman insertion with quadratic splits,
//! * [`RTree::delete`] — with subtree condensation and reinsertion,
//! * [`RTree::range`] / [`RTree::nearest`] — spatial queries,
//! * [`RTree::validate`] — full structural + augmentation invariant check.
//!
//! Nodes live in an arena (`Vec<Node<A>>` plus a free list), so `NodeId`s
//! are stable across splits and the traversal code in the query and
//! why-not crates can hold plain ids.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use yask_geo::{Point, Rect};
use yask_util::Scored;

use crate::aug::Augmentation;
use crate::corpus::{Corpus, ObjectId};

/// Identifier of a node in the tree arena.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The raw arena index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Leaf/internal payload of a node.
#[derive(Clone, Debug)]
pub enum NodeKind {
    /// Object entries (ids into the corpus).
    Leaf(Vec<ObjectId>),
    /// Child node ids.
    Internal(Vec<NodeId>),
}

/// One R-tree node: bounding rectangle, textual augmentation, entries.
#[derive(Clone, Debug)]
pub struct Node<A> {
    /// Minimum bounding rectangle of everything below this node.
    pub mbr: Rect,
    /// Textual augmentation; `None` only for an empty root leaf.
    pub(crate) aug: Option<A>,
    /// Entries.
    pub kind: NodeKind,
}

impl<A> Node<A> {
    /// True for leaf nodes.
    pub fn is_leaf(&self) -> bool {
        matches!(self.kind, NodeKind::Leaf(_))
    }

    /// Leaf entries. Panics on internal nodes.
    pub fn entries(&self) -> &[ObjectId] {
        match &self.kind {
            NodeKind::Leaf(e) => e,
            NodeKind::Internal(_) => panic!("entries() on internal node"),
        }
    }

    /// Child ids. Panics on leaf nodes.
    pub fn children(&self) -> &[NodeId] {
        match &self.kind {
            NodeKind::Internal(c) => c,
            NodeKind::Leaf(_) => panic!("children() on leaf node"),
        }
    }

    /// Number of entries (objects or children).
    pub fn entry_count(&self) -> usize {
        match &self.kind {
            NodeKind::Leaf(e) => e.len(),
            NodeKind::Internal(c) => c.len(),
        }
    }

    /// The augmentation. Panics on an empty node (possible only for the
    /// root of an empty tree, which traversals never visit).
    pub fn aug(&self) -> &A {
        self.aug.as_ref().expect("augmentation of empty node")
    }
}

/// Fanout parameters.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RTreeParams {
    /// Maximum entries per node (≤ 64 so IR-tree bitmaps fit in a `u64`).
    pub max_entries: usize,
    /// Minimum entries per non-root node after deletion condensation.
    pub min_entries: usize,
}

impl RTreeParams {
    /// Creates parameters, checking `2 ≤ min ≤ max/2` and `max ≤ 64`.
    pub fn new(max_entries: usize, min_entries: usize) -> Self {
        assert!(max_entries <= 64, "fanout {max_entries} exceeds 64 (IR bitmap width)");
        assert!(min_entries >= 2, "min_entries must be ≥ 2");
        assert!(
            min_entries * 2 <= max_entries,
            "min_entries {min_entries} must be ≤ max_entries/2 ({max_entries}/2)"
        );
        RTreeParams {
            max_entries,
            min_entries,
        }
    }
}

impl Default for RTreeParams {
    /// Fanout 32/12, the classic 40% minimum fill.
    fn default() -> Self {
        RTreeParams::new(32, 12)
    }
}

/// The generic R-tree. See the module docs for the variant taxonomy.
#[derive(Clone, Debug)]
pub struct RTree<A: Augmentation> {
    corpus: Corpus,
    nodes: Vec<Node<A>>,
    free: Vec<u32>,
    root: Option<NodeId>,
    /// Number of levels (0 for an empty tree; 1 for a root-leaf tree).
    height: usize,
    /// Number of indexed objects.
    len: usize,
    params: RTreeParams,
}

impl<A: Augmentation> RTree<A> {
    /// Creates an empty tree over `corpus` (no objects indexed yet).
    pub fn new(corpus: Corpus, params: RTreeParams) -> Self {
        RTree {
            corpus,
            nodes: Vec::new(),
            free: Vec::new(),
            root: None,
            height: 0,
            len: 0,
            params,
        }
    }

    /// Bulk-loads every object of the corpus (STR packing).
    pub fn bulk_load(corpus: Corpus, params: RTreeParams) -> Self {
        let ids: Vec<ObjectId> = corpus.iter().map(|o| o.id).collect();
        Self::bulk_load_subset(corpus, &ids, params)
    }

    /// Bulk-loads a subset of the corpus (STR packing).
    pub fn bulk_load_subset(corpus: Corpus, ids: &[ObjectId], params: RTreeParams) -> Self {
        crate::bulk::str_bulk_load(corpus, ids, params)
    }

    /// Builds by repeated insertion — used by tests to exercise the
    /// dynamic path against the bulk path.
    pub fn build_by_insertion(corpus: Corpus, params: RTreeParams) -> Self {
        let ids: Vec<ObjectId> = corpus.iter().map(|o| o.id).collect();
        let mut t = RTree::new(corpus, params);
        for id in ids {
            t.insert(id);
        }
        t
    }

    // -- accessors ---------------------------------------------------------

    /// The corpus this tree indexes.
    pub fn corpus(&self) -> &Corpus {
        &self.corpus
    }

    /// Swaps in a newer version of the corpus. The new version must keep
    /// every existing slot (ids are positional), which every corpus
    /// derived through [`Corpus::with_updates`] does; the tree itself is
    /// untouched — follow up with [`RTree::insert`] / [`RTree::delete`]
    /// for the objects that changed.
    pub fn set_corpus(&mut self, corpus: Corpus) {
        assert!(
            corpus.slot_count() >= self.corpus.slot_count(),
            "corpus version shrank: {} < {} slots",
            corpus.slot_count(),
            self.corpus.slot_count()
        );
        self.corpus = corpus;
    }

    /// Root node id, `None` for an empty tree.
    pub fn root(&self) -> Option<NodeId> {
        self.root
    }

    /// Borrow a node.
    pub fn node(&self, id: NodeId) -> &Node<A> {
        &self.nodes[id.index()]
    }

    /// Number of indexed objects.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no objects are indexed.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Tree height in levels (0 when empty, 1 for a single leaf).
    pub fn height(&self) -> usize {
        self.height
    }

    /// Fanout parameters.
    pub fn params(&self) -> RTreeParams {
        self.params
    }

    /// All indexed object ids (DFS order).
    pub fn object_ids(&self) -> Vec<ObjectId> {
        let mut out = Vec::with_capacity(self.len);
        if let Some(root) = self.root {
            let mut stack = vec![root];
            while let Some(n) = stack.pop() {
                match &self.node(n).kind {
                    NodeKind::Leaf(entries) => out.extend_from_slice(entries),
                    NodeKind::Internal(children) => stack.extend_from_slice(children),
                }
            }
        }
        out
    }

    /// Iterates every live (reachable) node id with its depth (root = 0).
    pub fn walk(&self) -> Vec<(NodeId, usize)> {
        let mut out = Vec::new();
        if let Some(root) = self.root {
            let mut stack = vec![(root, 0usize)];
            while let Some((n, d)) = stack.pop() {
                out.push((n, d));
                if let NodeKind::Internal(children) = &self.node(n).kind {
                    stack.extend(children.iter().map(|&c| (c, d + 1)));
                }
            }
        }
        out
    }

    // -- spatial queries ----------------------------------------------------

    /// All indexed objects whose location lies inside `rect`.
    pub fn range(&self, rect: &Rect) -> Vec<ObjectId> {
        let mut out = Vec::new();
        let Some(root) = self.root else {
            return out;
        };
        let mut stack = vec![root];
        while let Some(n) = stack.pop() {
            let node = self.node(n);
            if !node.mbr.intersects(rect) {
                continue;
            }
            match &node.kind {
                NodeKind::Leaf(entries) => {
                    for &id in entries {
                        if rect.contains_point(&self.corpus.get(id).loc) {
                            out.push(id);
                        }
                    }
                }
                NodeKind::Internal(children) => stack.extend_from_slice(children),
            }
        }
        out
    }

    /// The `k` objects nearest to `p` by raw Euclidean distance
    /// (best-first search; ties broken towards smaller ids).
    pub fn nearest(&self, p: &Point, k: usize) -> Vec<(f64, ObjectId)> {
        #[derive(PartialEq, Eq, PartialOrd, Ord, Clone, Copy, Debug)]
        enum Entry {
            Node(NodeId),
            Object(ObjectId),
        }
        let mut out = Vec::with_capacity(k);
        let Some(root) = self.root else {
            return out;
        };
        if k == 0 {
            return out;
        }
        // Min-heap on distance; on equal distance `Reverse(Scored)` pops
        // the *larger* Entry first, and Object > Node in derive order, so
        // objects surface before equally-distant nodes — required for
        // correct early termination.
        let mut heap: BinaryHeap<Reverse<Scored<Entry>>> = BinaryHeap::new();
        heap.push(Reverse(Scored::new(
            self.node(root).mbr.min_dist2(p),
            Entry::Node(root),
        )));
        while let Some(Reverse(top)) = heap.pop() {
            match top.item {
                Entry::Object(id) => {
                    out.push((top.score.get().sqrt(), id));
                    if out.len() == k {
                        break;
                    }
                }
                Entry::Node(n) => match &self.node(n).kind {
                    NodeKind::Leaf(entries) => {
                        for &id in entries {
                            let d2 = self.corpus.get(id).loc.dist2(p);
                            heap.push(Reverse(Scored::new(d2, Entry::Object(id))));
                        }
                    }
                    NodeKind::Internal(children) => {
                        for &c in children {
                            let d2 = self.node(c).mbr.min_dist2(p);
                            heap.push(Reverse(Scored::new(d2, Entry::Node(c))));
                        }
                    }
                },
            }
        }
        out
    }

    // -- construction internals ---------------------------------------------

    pub(crate) fn alloc(&mut self, node: Node<A>) -> NodeId {
        if let Some(slot) = self.free.pop() {
            self.nodes[slot as usize] = node;
            NodeId(slot)
        } else {
            let id = NodeId(u32::try_from(self.nodes.len()).expect("node arena overflow"));
            self.nodes.push(node);
            id
        }
    }

    fn dealloc(&mut self, id: NodeId) {
        // Leave a tombstone; slot will be reused by `alloc`.
        self.nodes[id.index()] = Node {
            mbr: Rect::EMPTY,
            aug: None,
            kind: NodeKind::Leaf(Vec::new()),
        };
        self.free.push(id.0);
    }

    pub(crate) fn set_root(&mut self, root: Option<NodeId>, height: usize, len: usize) {
        self.root = root;
        self.height = height;
        self.len = len;
    }

    /// Recomputes `mbr` and `aug` of a node from its entries.
    pub(crate) fn refresh(&mut self, n: NodeId) {
        let (mbr, aug) = self.compute_summary(n);
        let node = &mut self.nodes[n.index()];
        node.mbr = mbr;
        node.aug = aug;
    }

    fn compute_summary(&self, n: NodeId) -> (Rect, Option<A>) {
        match &self.nodes[n.index()].kind {
            NodeKind::Leaf(entries) => {
                if entries.is_empty() {
                    return (Rect::EMPTY, None);
                }
                let mut mbr = Rect::EMPTY;
                let mut objs = Vec::with_capacity(entries.len());
                for &id in entries {
                    let o = self.corpus.get(id);
                    mbr.expand(&Rect::point(o.loc));
                    objs.push(o);
                }
                (mbr, Some(A::for_leaf(&objs)))
            }
            NodeKind::Internal(children) => {
                debug_assert!(!children.is_empty());
                let mut mbr = Rect::EMPTY;
                let mut augs = Vec::with_capacity(children.len());
                for &c in children {
                    let child = &self.nodes[c.index()];
                    mbr.expand(&child.mbr);
                    augs.push(child.aug());
                }
                (mbr, Some(A::for_internal(&augs)))
            }
        }
    }

    // -- insertion -----------------------------------------------------------

    /// Inserts one object (must belong to this tree's corpus and not be
    /// indexed already — enforced only by `validate`, not here, to keep
    /// the hot path lean).
    pub fn insert(&mut self, id: ObjectId) {
        assert!(id.index() < self.corpus.slot_count(), "foreign object id {id:?}");
        match self.root {
            None => {
                let root = self.alloc(Node {
                    mbr: Rect::EMPTY,
                    aug: None,
                    kind: NodeKind::Leaf(vec![id]),
                });
                self.refresh(root);
                self.root = Some(root);
                self.height = 1;
            }
            Some(root) => {
                if let Some(sibling) = self.insert_rec(root, id) {
                    // Root split: grow a new root above.
                    let new_root = self.alloc(Node {
                        mbr: Rect::EMPTY,
                        aug: None,
                        kind: NodeKind::Internal(vec![root, sibling]),
                    });
                    self.refresh(new_root);
                    self.root = Some(new_root);
                    self.height += 1;
                }
            }
        }
        self.len += 1;
    }

    /// Recursive insert; returns a newly created sibling when `n` split.
    fn insert_rec(&mut self, n: NodeId, id: ObjectId) -> Option<NodeId> {
        let is_leaf = self.nodes[n.index()].is_leaf();
        if is_leaf {
            if let NodeKind::Leaf(entries) = &mut self.nodes[n.index()].kind {
                entries.push(id);
            }
        } else {
            let child = self.choose_subtree(n, &self.corpus.get(id).loc);
            if let Some(new_child) = self.insert_rec(child, id) {
                if let NodeKind::Internal(children) = &mut self.nodes[n.index()].kind {
                    children.push(new_child);
                }
            }
        }
        if self.nodes[n.index()].entry_count() > self.params.max_entries {
            let sibling = self.split(n);
            self.refresh(n);
            self.refresh(sibling);
            Some(sibling)
        } else {
            self.refresh(n);
            None
        }
    }

    /// Guttman's ChooseLeaf heuristic: least MBR enlargement, ties by
    /// least area, then first-listed.
    fn choose_subtree(&self, n: NodeId, p: &Point) -> NodeId {
        let children = self.nodes[n.index()].children();
        let target = Rect::point(*p);
        let mut best = children[0];
        let mut best_enl = f64::INFINITY;
        let mut best_area = f64::INFINITY;
        for &c in children {
            let mbr = self.nodes[c.index()].mbr;
            let enl = mbr.enlargement(&target);
            let area = mbr.area();
            if enl < best_enl || (enl == best_enl && area < best_area) {
                best = c;
                best_enl = enl;
                best_area = area;
            }
        }
        best
    }

    /// Quadratic split: moves roughly half the entries of `n` into a new
    /// sibling node, which is returned (summaries of both are stale —
    /// caller must `refresh`).
    fn split(&mut self, n: NodeId) -> NodeId {
        let rects: Vec<Rect> = match &self.nodes[n.index()].kind {
            NodeKind::Leaf(entries) => entries
                .iter()
                .map(|&id| Rect::point(self.corpus.get(id).loc))
                .collect(),
            NodeKind::Internal(children) => children
                .iter()
                .map(|&c| self.nodes[c.index()].mbr)
                .collect(),
        };
        let (g1, g2) = quadratic_partition(&rects, self.params.min_entries);
        let node = &mut self.nodes[n.index()];
        let sibling_kind = match &mut node.kind {
            NodeKind::Leaf(entries) => {
                let (keep, give) = partition_by_index(entries, &g1, &g2);
                *entries = keep;
                NodeKind::Leaf(give)
            }
            NodeKind::Internal(children) => {
                let (keep, give) = partition_by_index(children, &g1, &g2);
                *children = keep;
                NodeKind::Internal(give)
            }
        };
        self.alloc(Node {
            mbr: Rect::EMPTY,
            aug: None,
            kind: sibling_kind,
        })
    }

    // -- deletion -------------------------------------------------------------

    /// Deletes one object; returns `false` when it was not indexed.
    ///
    /// Underflowing nodes are dissolved and every object below them is
    /// re-inserted (the classic condense-tree strategy, simplified to
    /// object-granularity reinsertion, which preserves all invariants).
    pub fn delete(&mut self, id: ObjectId) -> bool {
        let Some(root) = self.root else {
            return false;
        };
        let p = self.corpus.get(id).loc;
        let Some(path) = self.find_path(root, &p, id) else {
            return false;
        };
        // Remove the entry from its leaf.
        let leaf = *path.last().expect("path is never empty");
        if let NodeKind::Leaf(entries) = &mut self.nodes[leaf.index()].kind {
            entries.retain(|&e| e != id);
        }
        self.len -= 1;

        // Condense bottom-up, collecting orphaned objects.
        let mut orphans: Vec<ObjectId> = Vec::new();
        for i in (1..path.len()).rev() {
            let node = path[i];
            let parent = path[i - 1];
            if self.nodes[node.index()].entry_count() < self.params.min_entries {
                self.collect_objects(node, &mut orphans);
                if let NodeKind::Internal(children) = &mut self.nodes[parent.index()].kind {
                    children.retain(|&c| c != node);
                }
                self.dealloc_subtree(node);
            }
        }
        for &n in path.iter().rev() {
            // Nodes deallocated above become tombstones; refreshing them is
            // harmless, but skip ones no longer reachable for clarity.
            if !self.free.contains(&n.0) {
                self.refresh(n);
            }
        }

        // Shrink the root while it is an internal node with one child.
        while let Some(r) = self.root {
            match &self.nodes[r.index()].kind {
                NodeKind::Internal(children) if children.len() == 1 => {
                    let only = children[0];
                    self.dealloc(r);
                    self.root = Some(only);
                    self.height -= 1;
                }
                NodeKind::Internal(children) if children.is_empty() => {
                    self.dealloc(r);
                    self.root = None;
                    self.height = 0;
                }
                NodeKind::Leaf(entries) if entries.is_empty() => {
                    self.dealloc(r);
                    self.root = None;
                    self.height = 0;
                }
                _ => break,
            }
        }

        // Reinsert orphans (objects that lived under dissolved nodes).
        let reinserted = orphans.len();
        self.len -= reinserted;
        for oid in orphans {
            self.insert(oid);
        }
        true
    }

    /// Path from `n` down to the leaf containing `(p, id)`.
    fn find_path(&self, n: NodeId, p: &Point, id: ObjectId) -> Option<Vec<NodeId>> {
        let node = self.node(n);
        if !node.mbr.contains_point(p) {
            return None;
        }
        match &node.kind {
            NodeKind::Leaf(entries) => entries.contains(&id).then(|| vec![n]),
            NodeKind::Internal(children) => {
                for &c in children {
                    if let Some(mut path) = self.find_path(c, p, id) {
                        path.insert(0, n);
                        return Some(path);
                    }
                }
                None
            }
        }
    }

    fn collect_objects(&self, n: NodeId, out: &mut Vec<ObjectId>) {
        match &self.node(n).kind {
            NodeKind::Leaf(entries) => out.extend_from_slice(entries),
            NodeKind::Internal(children) => {
                for &c in children.clone().iter() {
                    self.collect_objects(c, out);
                }
            }
        }
    }

    fn dealloc_subtree(&mut self, n: NodeId) {
        if let NodeKind::Internal(children) = self.nodes[n.index()].kind.clone() {
            for c in children {
                self.dealloc_subtree(c);
            }
        }
        self.dealloc(n);
    }

    // -- persistence bridge -------------------------------------------------

    /// Exports the reachable tree structure in a topology-only form (no
    /// MBRs, no augmentations — both are derived data). Used by the pager
    /// crate to serialize an index; [`RTree::from_structure`] restores it.
    pub fn structure(&self) -> TreeStructure {
        let mut nodes = Vec::new();
        let mut remap: std::collections::HashMap<u32, u32> = std::collections::HashMap::new();
        // First pass: assign dense ids in walk order.
        let walk = self.walk();
        for (i, &(nid, _)) in walk.iter().enumerate() {
            remap.insert(nid.0, i as u32);
        }
        for &(nid, _) in &walk {
            let node = self.node(nid);
            nodes.push(match &node.kind {
                NodeKind::Leaf(entries) => StructNode {
                    is_leaf: true,
                    entries: entries.iter().map(|e| e.0).collect(),
                },
                NodeKind::Internal(children) => StructNode {
                    is_leaf: false,
                    entries: children.iter().map(|c| remap[&c.0]).collect(),
                },
            });
        }
        TreeStructure {
            nodes,
            root: self.root.map(|r| remap[&r.0]),
            height: self.height,
            len: self.len,
        }
    }

    /// Rebuilds a tree from an exported [`TreeStructure`]: node topology
    /// is restored verbatim, MBRs and augmentations are recomputed
    /// bottom-up (they are derived data). Panics on malformed structures;
    /// run [`RTree::validate`] afterwards for untrusted input.
    pub fn from_structure(corpus: Corpus, params: RTreeParams, s: &TreeStructure) -> Self {
        let mut tree = RTree::new(corpus, params);
        let mut ids: Vec<NodeId> = Vec::with_capacity(s.nodes.len());
        for n in &s.nodes {
            let kind = if n.is_leaf {
                NodeKind::Leaf(n.entries.iter().map(|&e| ObjectId(e)).collect())
            } else {
                NodeKind::Internal(Vec::new()) // children patched below
            };
            ids.push(tree.alloc(Node {
                mbr: Rect::EMPTY,
                aug: None,
                kind,
            }));
        }
        for (i, n) in s.nodes.iter().enumerate() {
            if !n.is_leaf {
                let children: Vec<NodeId> = n.entries.iter().map(|&e| ids[e as usize]).collect();
                if let NodeKind::Internal(c) = &mut tree.nodes[ids[i].index()].kind {
                    *c = children;
                }
            }
        }
        // Refresh bottom-up: children precede parents nowhere in general,
        // so refresh in reverse BFS order from the root.
        if let Some(root_idx) = s.root {
            let root = ids[root_idx as usize];
            let mut order = Vec::new();
            let mut stack = vec![root];
            while let Some(n) = stack.pop() {
                order.push(n);
                if let NodeKind::Internal(children) = &tree.nodes[n.index()].kind {
                    stack.extend_from_slice(children);
                }
            }
            for &n in order.iter().rev() {
                tree.refresh(n);
            }
            tree.set_root(Some(root), s.height, s.len);
        }
        tree
    }

    // -- validation -------------------------------------------------------------

    /// Checks every structural and augmentation invariant; returns a
    /// description of the first violation.
    ///
    /// Checked: reachable-node entry counts (≥1, ≤ max); uniform leaf
    /// depth; exact MBRs; exact augmentations; each object indexed exactly
    /// once; `len` consistent; free list disjoint from reachable nodes.
    pub fn validate(&self) -> Result<(), String> {
        let Some(root) = self.root else {
            return if self.len == 0 && self.height == 0 {
                Ok(())
            } else {
                Err(format!("empty root but len={} height={}", self.len, self.height))
            };
        };
        let mut seen_objects: std::collections::HashMap<ObjectId, u32> =
            std::collections::HashMap::new();
        let mut reachable: std::collections::HashSet<u32> = std::collections::HashSet::new();
        let mut leaf_depths: Vec<usize> = Vec::new();
        let mut stack = vec![(root, 0usize)];
        while let Some((n, depth)) = stack.pop() {
            if !reachable.insert(n.0) {
                return Err(format!("node {n:?} reachable twice"));
            }
            let node = self.node(n);
            let count = node.entry_count();
            if count == 0 {
                return Err(format!("empty node {n:?}"));
            }
            if count > self.params.max_entries {
                return Err(format!("node {n:?} overflows: {count}"));
            }
            let (mbr, aug) = self.compute_summary(n);
            if mbr != node.mbr {
                return Err(format!("node {n:?} stale mbr: {:?} != {:?}", node.mbr, mbr));
            }
            match (&aug, &node.aug) {
                (Some(a), Some(b)) if a == b => {}
                _ => return Err(format!("node {n:?} stale augmentation")),
            }
            match &node.kind {
                NodeKind::Leaf(entries) => {
                    leaf_depths.push(depth);
                    for &id in entries {
                        if id.index() >= self.corpus.slot_count() {
                            return Err(format!("foreign object {id:?}"));
                        }
                        *seen_objects.entry(id).or_insert(0) += 1;
                    }
                }
                NodeKind::Internal(children) => {
                    for &c in children {
                        if !node.mbr.contains_rect(&self.node(c).mbr) {
                            return Err(format!("child {c:?} escapes parent {n:?} mbr"));
                        }
                        stack.push((c, depth + 1));
                    }
                }
            }
        }
        if let Some(&d0) = leaf_depths.first() {
            if leaf_depths.iter().any(|&d| d != d0) {
                return Err("leaves at different depths".into());
            }
            if d0 + 1 != self.height {
                return Err(format!("height {} but leaf depth {}", self.height, d0));
            }
        }
        let total: u32 = seen_objects.values().sum();
        if total as usize != self.len {
            return Err(format!("len {} but {} entries", self.len, total));
        }
        if let Some((id, n)) = seen_objects.iter().find(|(_, &n)| n > 1) {
            return Err(format!("object {id:?} indexed {n} times"));
        }
        for f in &self.free {
            if reachable.contains(f) {
                return Err(format!("free node {f} is reachable"));
            }
        }
        Ok(())
    }
}

/// Topology-only export of a tree (see [`RTree::structure`]). `entries`
/// holds object ids for leaves and dense node indexes for internal nodes.
#[derive(Clone, Debug, PartialEq)]
pub struct TreeStructure {
    /// Nodes in a root-first walk order, re-indexed densely.
    pub nodes: Vec<StructNode>,
    /// Index of the root node, `None` for an empty tree.
    pub root: Option<u32>,
    /// Tree height.
    pub height: usize,
    /// Indexed object count.
    pub len: usize,
}

/// One node of a [`TreeStructure`].
#[derive(Clone, Debug, PartialEq)]
pub struct StructNode {
    /// Leaf (entries are object ids) or internal (entries are node
    /// indexes).
    pub is_leaf: bool,
    /// Entry payload.
    pub entries: Vec<u32>,
}

/// Splits `items` into (kept, given) according to index groups `g1`/`g2`.
fn partition_by_index<T: Copy>(items: &[T], g1: &[usize], g2: &[usize]) -> (Vec<T>, Vec<T>) {
    (
        g1.iter().map(|&i| items[i]).collect(),
        g2.iter().map(|&i| items[i]).collect(),
    )
}

/// Guttman's quadratic split over entry rectangles: returns two disjoint,
/// covering index groups, each of size ≥ `min_entries`.
fn quadratic_partition(rects: &[Rect], min_entries: usize) -> (Vec<usize>, Vec<usize>) {
    let n = rects.len();
    debug_assert!(n >= 2);
    // Seed selection: the pair wasting the most area if grouped together.
    let (mut s1, mut s2, mut worst) = (0, 1, f64::NEG_INFINITY);
    for i in 0..n {
        for j in (i + 1)..n {
            let waste = rects[i].union(&rects[j]).area() - rects[i].area() - rects[j].area();
            if waste > worst {
                worst = waste;
                s1 = i;
                s2 = j;
            }
        }
    }
    let mut g1 = vec![s1];
    let mut g2 = vec![s2];
    let mut mbr1 = rects[s1];
    let mut mbr2 = rects[s2];
    let mut remaining: Vec<usize> = (0..n).filter(|&i| i != s1 && i != s2).collect();

    while !remaining.is_empty() {
        // Forced assignment when one group must absorb all that remains.
        if g1.len() + remaining.len() == min_entries {
            for i in remaining.drain(..) {
                g1.push(i);
                mbr1.expand(&rects[i]);
            }
            break;
        }
        if g2.len() + remaining.len() == min_entries {
            for i in remaining.drain(..) {
                g2.push(i);
                mbr2.expand(&rects[i]);
            }
            break;
        }
        // PickNext: the entry with the strongest group preference.
        let (pos, _) = remaining
            .iter()
            .enumerate()
            .map(|(pos, &i)| {
                let d1 = mbr1.enlargement(&rects[i]);
                let d2 = mbr2.enlargement(&rects[i]);
                (pos, (d1 - d2).abs())
            })
            .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite enlargement"))
            .expect("remaining non-empty");
        let i = remaining.swap_remove(pos);
        let d1 = mbr1.enlargement(&rects[i]);
        let d2 = mbr2.enlargement(&rects[i]);
        // Resolve: less enlargement, then smaller area, then fewer entries.
        let to_g1 = match d1.partial_cmp(&d2).expect("finite") {
            std::cmp::Ordering::Less => true,
            std::cmp::Ordering::Greater => false,
            std::cmp::Ordering::Equal => {
                if mbr1.area() != mbr2.area() {
                    mbr1.area() < mbr2.area()
                } else {
                    g1.len() <= g2.len()
                }
            }
        };
        if to_g1 {
            g1.push(i);
            mbr1.expand(&rects[i]);
        } else {
            g2.push(i);
            mbr2.expand(&rects[i]);
        }
    }
    (g1, g2)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aug::{KcAug, NoAug, SetAug};
    use crate::corpus::CorpusBuilder;
    use yask_text::KeywordSet;
    use yask_util::Xoshiro256;

    fn random_corpus(n: usize, seed: u64) -> Corpus {
        let mut rng = Xoshiro256::seed_from_u64(seed);
        let mut b = CorpusBuilder::with_capacity(n);
        for i in 0..n {
            let loc = Point::new(rng.next_f64(), rng.next_f64());
            let nkw = 1 + rng.below(5);
            let doc = KeywordSet::from_raw((0..nkw).map(|_| rng.below(30) as u32));
            b.push(loc, doc, format!("obj{i}"));
        }
        b.build()
    }

    #[test]
    fn params_validation() {
        let p = RTreeParams::default();
        assert_eq!(p.max_entries, 32);
        assert_eq!(p.min_entries, 12);
    }

    #[test]
    #[should_panic(expected = "exceeds 64")]
    fn params_reject_wide_fanout() {
        RTreeParams::new(128, 32);
    }

    #[test]
    #[should_panic(expected = "min_entries")]
    fn params_reject_large_min() {
        RTreeParams::new(10, 6);
    }

    #[test]
    fn empty_tree_behaves() {
        let t: RTree<NoAug> = RTree::new(random_corpus(0, 1), RTreeParams::default());
        assert!(t.is_empty());
        assert_eq!(t.height(), 0);
        assert!(t.range(&Rect::from_coords(0.0, 0.0, 1.0, 1.0)).is_empty());
        assert!(t.nearest(&Point::new(0.5, 0.5), 3).is_empty());
        t.validate().unwrap();
    }

    #[test]
    fn insert_small_and_validate() {
        let corpus = random_corpus(10, 2);
        let t: RTree<SetAug> = RTree::build_by_insertion(corpus, RTreeParams::new(4, 2));
        assert_eq!(t.len(), 10);
        t.validate().unwrap();
        let mut ids = t.object_ids();
        ids.sort();
        assert_eq!(ids.len(), 10);
    }

    #[test]
    fn insertion_splits_grow_height() {
        let corpus = random_corpus(200, 3);
        let t: RTree<NoAug> = RTree::build_by_insertion(corpus, RTreeParams::new(8, 3));
        assert!(t.height() >= 3, "height = {}", t.height());
        t.validate().unwrap();
    }

    #[test]
    fn bulk_load_validates_across_sizes_and_augs() {
        for n in [0usize, 1, 2, 5, 33, 100, 1000] {
            let corpus = random_corpus(n, 42 + n as u64);
            let t: RTree<SetAug> = RTree::bulk_load(corpus.clone(), RTreeParams::default());
            assert_eq!(t.len(), n);
            t.validate().unwrap_or_else(|e| panic!("n={n}: {e}"));
            let t2: RTree<KcAug> = RTree::bulk_load(corpus, RTreeParams::new(8, 3));
            t2.validate().unwrap_or_else(|e| panic!("kc n={n}: {e}"));
        }
    }

    #[test]
    fn range_matches_scan() {
        let corpus = random_corpus(300, 7);
        let t: RTree<NoAug> = RTree::bulk_load(corpus.clone(), RTreeParams::new(8, 3));
        let rect = Rect::from_coords(0.2, 0.2, 0.6, 0.7);
        let mut got = t.range(&rect);
        got.sort();
        let mut want: Vec<ObjectId> = corpus
            .iter()
            .filter(|o| rect.contains_point(&o.loc))
            .map(|o| o.id)
            .collect();
        want.sort();
        assert_eq!(got, want);
        assert!(!got.is_empty(), "degenerate fixture");
    }

    #[test]
    fn nearest_matches_scan() {
        let corpus = random_corpus(250, 8);
        let t: RTree<NoAug> = RTree::bulk_load(corpus.clone(), RTreeParams::new(8, 3));
        let q = Point::new(0.33, 0.66);
        let got = t.nearest(&q, 10);
        let mut want: Vec<(f64, ObjectId)> =
            corpus.iter().map(|o| (o.loc.dist(&q), o.id)).collect();
        want.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap().then(a.1.cmp(&b.1)));
        want.truncate(10);
        let got_ids: Vec<ObjectId> = got.iter().map(|e| e.1).collect();
        let want_ids: Vec<ObjectId> = want.iter().map(|e| e.1).collect();
        assert_eq!(got_ids, want_ids);
        for (g, w) in got.iter().zip(&want) {
            assert!((g.0 - w.0).abs() < 1e-12);
        }
    }

    #[test]
    fn delete_removes_and_revalidates() {
        let corpus = random_corpus(120, 9);
        let mut t: RTree<SetAug> = RTree::bulk_load(corpus.clone(), RTreeParams::new(8, 3));
        let mut rng = Xoshiro256::seed_from_u64(99);
        let mut ids: Vec<ObjectId> = corpus.iter().map(|o| o.id).collect();
        rng.shuffle(&mut ids);
        for (i, id) in ids.iter().enumerate() {
            assert!(t.delete(*id), "delete {id:?}");
            t.validate()
                .unwrap_or_else(|e| panic!("after deleting {} objects: {e}", i + 1));
        }
        assert!(t.is_empty());
        assert_eq!(t.height(), 0);
        // Deleting again reports absence.
        assert!(!t.delete(ids[0]));
    }

    #[test]
    fn mixed_insert_delete_stays_consistent() {
        let corpus = random_corpus(200, 10);
        let mut t: RTree<KcAug> = RTree::new(corpus.clone(), RTreeParams::new(6, 2));
        let mut rng = Xoshiro256::seed_from_u64(5);
        let mut live: Vec<ObjectId> = Vec::new();
        let mut next = 0usize;
        for step in 0..400 {
            if next < 200 && (live.is_empty() || rng.chance(0.6)) {
                let id = corpus.get(ObjectId(next as u32)).id;
                t.insert(id);
                live.push(id);
                next += 1;
            } else {
                let pos = rng.below(live.len());
                let id = live.swap_remove(pos);
                assert!(t.delete(id));
            }
            if step % 50 == 0 {
                t.validate().unwrap_or_else(|e| panic!("step {step}: {e}"));
            }
        }
        t.validate().unwrap();
        assert_eq!(t.len(), live.len());
        let mut got = t.object_ids();
        got.sort();
        live.sort();
        assert_eq!(got, live);
    }

    #[test]
    fn corpus_version_swap_supports_incremental_updates() {
        use yask_text::KeywordSet;
        let corpus = random_corpus(60, 21);
        let mut t: RTree<KcAug> = RTree::bulk_load(corpus.clone(), RTreeParams::new(8, 3));
        // Publish a new corpus version: two inserts, one delete.
        let (v1, new_ids) = corpus.with_updates(
            [
                (Point::new(0.5, 0.5), KeywordSet::from_raw([1u32]), "n0".to_owned()),
                (Point::new(0.9, 0.1), KeywordSet::from_raw([2u32]), "n1".to_owned()),
            ],
            &[ObjectId(7)],
        );
        t.set_corpus(v1.clone());
        assert!(t.delete(ObjectId(7)), "dead slot still locatable for unindexing");
        for &id in &new_ids {
            t.insert(id);
        }
        t.validate().unwrap();
        assert_eq!(t.len(), 61);
        let mut got = t.object_ids();
        got.sort();
        assert_eq!(got, v1.live_ids());
    }

    #[test]
    #[should_panic(expected = "shrank")]
    fn corpus_version_swap_rejects_shrinking() {
        let big = random_corpus(10, 22);
        let small = random_corpus(5, 23);
        let mut t: RTree<NoAug> = RTree::bulk_load(big, RTreeParams::default());
        t.set_corpus(small);
    }

    #[test]
    fn quadratic_partition_respects_minimum() {
        let rects: Vec<Rect> = (0..10)
            .map(|i| Rect::point(Point::new(i as f64, 0.0)))
            .collect();
        let (g1, g2) = quadratic_partition(&rects, 4);
        assert!(g1.len() >= 4, "g1 = {g1:?}");
        assert!(g2.len() >= 4, "g2 = {g2:?}");
        assert_eq!(g1.len() + g2.len(), 10);
        let mut all: Vec<usize> = g1.iter().chain(&g2).copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn node_accessors_panic_on_wrong_kind() {
        let corpus = random_corpus(3, 11);
        let t: RTree<NoAug> = RTree::bulk_load(corpus, RTreeParams::default());
        let root = t.root().unwrap();
        assert!(t.node(root).is_leaf());
        let entries = t.node(root).entries();
        assert_eq!(entries.len(), 3);
        let r = std::panic::catch_unwind(|| t.node(root).children());
        assert!(r.is_err());
    }

    #[test]
    fn structure_round_trips_exactly() {
        let corpus = random_corpus(300, 13);
        let t: RTree<SetAug> = RTree::bulk_load(corpus.clone(), RTreeParams::new(8, 3));
        let s = t.structure();
        assert_eq!(s.len, 300);
        let back: RTree<SetAug> = RTree::from_structure(corpus.clone(), t.params(), &s);
        back.validate().unwrap();
        assert_eq!(back.len(), t.len());
        assert_eq!(back.height(), t.height());
        // Identical topology ⇒ identical structure export.
        assert_eq!(back.structure(), s);
        // And identical query behaviour.
        let q = Point::new(0.4, 0.6);
        assert_eq!(back.nearest(&q, 10), t.nearest(&q, 10));
        // Even into a different augmentation type.
        let kc: RTree<KcAug> = RTree::from_structure(corpus, t.params(), &s);
        kc.validate().unwrap();
    }

    #[test]
    fn empty_structure_round_trips() {
        let corpus = random_corpus(0, 14);
        let t: RTree<NoAug> = RTree::bulk_load(corpus.clone(), RTreeParams::default());
        let s = t.structure();
        assert_eq!(s.root, None);
        let back: RTree<NoAug> = RTree::from_structure(corpus, RTreeParams::default(), &s);
        assert!(back.is_empty());
        back.validate().unwrap();
    }

    #[test]
    fn walk_covers_all_nodes() {
        let corpus = random_corpus(100, 12);
        let t: RTree<NoAug> = RTree::bulk_load(corpus, RTreeParams::new(8, 3));
        let walked = t.walk();
        assert!(walked.iter().any(|&(_, d)| d == 0));
        let max_d = walked.iter().map(|&(_, d)| d).max().unwrap();
        assert_eq!(max_d + 1, t.height());
    }
}
