//! The generic arena-based R-tree.
//!
//! One structural implementation serves all four index variants; the
//! per-node textual payload is the [`Augmentation`] type parameter.
//! Supported operations:
//!
//! * [`RTree::bulk_load`] — Sort-Tile-Recursive packing (see [`crate::bulk`]),
//! * [`RTree::insert`] — Guttman insertion with quadratic splits,
//! * [`RTree::delete`] — with subtree condensation and reinsertion,
//! * [`RTree::with_updates`] — persistent path-copying batch derivation,
//! * [`RTree::range`] / [`RTree::nearest`] — spatial queries,
//! * [`RTree::validate`] — full structural + augmentation invariant check.
//!
//! **Persistent chunked arena.** Nodes live in fixed-size chunks
//! ([`NODE_CHUNK_SIZE`] slots each) behind individual `Arc`s, with the
//! chunk spine itself behind one more `Arc` — the same layout as the
//! chunked [`Corpus`]. `NodeId`s are stable flat indexes (`slot >> bits`
//! selects the chunk, `slot & mask` the offset), so splits never move
//! nodes and the traversal code in the query and why-not crates can hold
//! plain ids. Cloning a tree clones one `Arc`; the first mutation after a
//! clone copies the spine (a pointer array) and each touched chunk
//! copy-on-write, so two tree versions *structurally share* every chunk
//! no root-to-leaf spine, split, or condensation wrote into. That makes
//! [`RTree::with_updates`] O(spine × chunk), not O(n): deriving the next
//! epoch's tree from a batch copies only the chunks holding the touched
//! paths, and the work is reported as a [`CopyStats`] the executor
//! accumulates onto `/stats`.
//!
//! Freed slots are tracked by a free-list stack plus a bitset
//! (`RTree::dealloc` never writes the slot itself — older versions may
//! still share the chunk, so tombstoning in place would force a pointless
//! chunk copy; the slot is rewritten only when `RTree::alloc` reuses it).

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::Arc;

use yask_geo::{Point, Rect};
use yask_util::Scored;

use crate::aug::Augmentation;
use crate::corpus::{CopyStats, Corpus, ObjectId};

/// Nodes per arena chunk. A power of two so the slot → (chunk, offset)
/// split is a shift and a mask on the hot [`RTree::node`] path. The value
/// balances two costs: a batch's copy bill is O(spine × chunk bytes), so
/// big chunks overpay per touched path (at default fanout 32, a whole
/// 20k-object shard tree is ~160 nodes — a 256-node chunk would make
/// "path copying" copy the entire tree); tiny chunks bloat the spine
/// (one `Arc` per chunk, spine rebuilt per batch). Chunk *composition*
/// matters as much as size: augmented internal nodes near the root carry
/// keyword maps orders of magnitude heavier than leaves, so bulk loads
/// place nodes in DFS order (see `RTree::relayout_dfs`) — each
/// internal sits beside its own children instead of clustering with the
/// other internals — and 16-node chunks keep a spine chunk's bill close
/// to its one heavy node plus a few cheap leaf neighbours.
pub const NODE_CHUNK_SIZE: usize = 16;
const NODE_CHUNK_BITS: u32 = NODE_CHUNK_SIZE.trailing_zeros();
const NODE_CHUNK_MASK: usize = NODE_CHUNK_SIZE - 1;

/// Identifier of a node in the tree arena.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The raw arena index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Leaf/internal payload of a node.
#[derive(Clone, Debug)]
pub enum NodeKind {
    /// Object entries (ids into the corpus).
    Leaf(Vec<ObjectId>),
    /// Child node ids.
    Internal(Vec<NodeId>),
}

/// One R-tree node: bounding rectangle, textual augmentation, entries.
#[derive(Clone, Debug)]
pub struct Node<A> {
    /// Minimum bounding rectangle of everything below this node.
    pub mbr: Rect,
    /// Textual augmentation; `None` only for an empty root leaf.
    pub(crate) aug: Option<A>,
    /// Entries.
    pub kind: NodeKind,
}

impl<A> Node<A> {
    /// True for leaf nodes.
    pub fn is_leaf(&self) -> bool {
        matches!(self.kind, NodeKind::Leaf(_))
    }

    /// Leaf entries. Panics on internal nodes.
    pub fn entries(&self) -> &[ObjectId] {
        match &self.kind {
            NodeKind::Leaf(e) => e,
            NodeKind::Internal(_) => panic!("entries() on internal node"),
        }
    }

    /// Child ids. Panics on leaf nodes.
    pub fn children(&self) -> &[NodeId] {
        match &self.kind {
            NodeKind::Internal(c) => c,
            NodeKind::Leaf(_) => panic!("children() on leaf node"),
        }
    }

    /// Number of entries (objects or children).
    pub fn entry_count(&self) -> usize {
        match &self.kind {
            NodeKind::Leaf(e) => e.len(),
            NodeKind::Internal(c) => c.len(),
        }
    }

    /// The augmentation. Panics on an empty node (possible only for the
    /// root of an empty tree, which traversals never visit).
    pub fn aug(&self) -> &A {
        self.aug.as_ref().expect("augmentation of empty node")
    }

    /// The augmentation as stored, `None` for an empty root leaf — the
    /// non-panicking accessor the node codec serializes through.
    pub fn aug_opt(&self) -> Option<&A> {
        self.aug.as_ref()
    }

    /// Reassembles a node from codec parts (the paged-arena load path).
    pub fn from_parts(mbr: Rect, aug: Option<A>, kind: NodeKind) -> Node<A> {
        Node { mbr, aug, kind }
    }
}

/// Approximate resident bytes of one node: frame, entry vector, and the
/// augmentation's heap payload — the unit the arena's copy-on-write
/// accounting bills in.
fn node_approx_bytes<A: Augmentation>(n: &Node<A>) -> usize {
    std::mem::size_of::<Node<A>>() + 4 * n.entry_count() + n.aug.as_ref().map_or(0, |a| a.heap_bytes())
}

/// One fixed-capacity run of consecutive node slots. All chunks except
/// the last hold exactly [`NODE_CHUNK_SIZE`] nodes.
#[derive(Clone, Debug)]
pub struct NodeChunk<A> {
    pub(crate) nodes: Vec<Node<A>>,
}

impl<A> NodeChunk<A> {
    fn with_capacity() -> Self {
        NodeChunk {
            nodes: Vec::with_capacity(NODE_CHUNK_SIZE),
        }
    }

    /// Rebuilds a chunk from decoded nodes (the paged-arena load path).
    /// All chunks except the arena's last hold [`NODE_CHUNK_SIZE`] nodes.
    pub fn from_nodes(nodes: Vec<Node<A>>) -> Self {
        assert!(nodes.len() <= NODE_CHUNK_SIZE, "oversized node chunk");
        NodeChunk { nodes }
    }

    /// The nodes of this chunk, in slot order.
    pub fn nodes(&self) -> &[Node<A>] {
        &self.nodes
    }
}

impl<A: Augmentation> NodeChunk<A> {
    /// Approximate resident bytes of the chunk's nodes.
    pub fn approx_bytes(&self) -> usize {
        self.nodes.iter().map(node_approx_bytes).sum()
    }
}

/// A fault-in provider of arena chunks — the out-of-core backing of a
/// paged tree. Implementations (e.g. `yask_pager`'s buffer-pool-backed
/// source) cache decoded chunks under a resident budget and may *evict*
/// them again, so reads follow a guard protocol:
///
/// 1. [`NodeSource::begin_read`] before the first [`NodeSource::chunk`]
///    call (done by [`RTree::read_guard`]);
/// 2. borrow chunks freely — an eviction must keep any chunk handed out
///    since the oldest active `begin_read` alive (graveyard);
/// 3. [`NodeSource::end_read`] when the last reference is dropped (the
///    guard's `Drop`), after which evicted chunks may be freed.
///
/// References returned by [`NodeSource::chunk`] must not outlive the
/// enclosing guard.
pub trait NodeSource<A>: Send + Sync + std::fmt::Debug {
    /// Number of chunks in the paged arena (spine length).
    fn chunk_count(&self) -> usize;

    /// Approximate decoded bytes of the whole arena (the resident
    /// equivalent of [`RTree::arena_bytes`]).
    fn approx_bytes(&self) -> usize;

    /// Marks the start of a read section (see the guard protocol above).
    fn begin_read(&self);

    /// Marks the end of a read section.
    fn end_read(&self);

    /// Borrows chunk `ci`, faulting it in if necessary. Must only be
    /// called between [`NodeSource::begin_read`] and
    /// [`NodeSource::end_read`].
    fn chunk(&self, ci: usize) -> &NodeChunk<A>;
}

/// RAII read section over a tree's arena. A no-op for resident trees;
/// for paged trees it pins faulted chunks (evictions are deferred to a
/// graveyard) until every concurrent guard is dropped. Acquire one via
/// [`RTree::read_guard`] before any raw [`RTree::node`] traversal loop
/// and keep it alive while node references are held.
pub struct ArenaReadGuard<'a, A> {
    source: Option<&'a dyn NodeSource<A>>,
}

impl<A> Drop for ArenaReadGuard<'_, A> {
    fn drop(&mut self) {
        if let Some(s) = self.source {
            s.end_read();
        }
    }
}

/// Fanout parameters.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RTreeParams {
    /// Maximum entries per node (≤ 64 so IR-tree bitmaps fit in a `u64`).
    pub max_entries: usize,
    /// Minimum entries per non-root node after deletion condensation.
    pub min_entries: usize,
}

impl RTreeParams {
    /// Creates parameters, checking `2 ≤ min ≤ max/2` and `max ≤ 64`.
    pub fn new(max_entries: usize, min_entries: usize) -> Self {
        assert!(max_entries <= 64, "fanout {max_entries} exceeds 64 (IR bitmap width)");
        assert!(min_entries >= 2, "min_entries must be ≥ 2");
        assert!(
            min_entries * 2 <= max_entries,
            "min_entries {min_entries} must be ≤ max_entries/2 ({max_entries}/2)"
        );
        RTreeParams {
            max_entries,
            min_entries,
        }
    }
}

impl Default for RTreeParams {
    /// Fanout 32/12, the classic 40% minimum fill.
    fn default() -> Self {
        RTreeParams::new(32, 12)
    }
}

/// The generic R-tree. See the module docs for the variant taxonomy and
/// the persistent arena layout.
#[derive(Clone, Debug)]
pub struct RTree<A: Augmentation> {
    corpus: Corpus,
    /// The chunk spine. Cloning a tree clones one `Arc`; mutation copies
    /// the spine and each touched chunk copy-on-write. Empty when the
    /// arena is paged (see `paged`).
    chunks: Arc<Vec<Arc<NodeChunk<A>>>>,
    /// Out-of-core backing: when set, node reads fault chunks through
    /// this source instead of the resident spine, and any mutation first
    /// [`RTree::materialize`]s the tree back to resident form.
    paged: Option<Arc<dyn NodeSource<A>>>,
    /// Total allocated slots (including freed ones) — the exclusive upper
    /// bound on valid `NodeId` indexes.
    slots: usize,
    /// Freed slot stack, popped by [`RTree::alloc`] for reuse.
    free: Vec<u32>,
    /// Freed-slot bitset (one bit per slot) — O(1) membership for the
    /// delete condensation path, where a linear `free.contains` scan made
    /// delete-heavy batches quadratic.
    freed: Vec<u64>,
    root: Option<NodeId>,
    /// Number of levels (0 for an empty tree; 1 for a root-leaf tree).
    height: usize,
    /// Number of indexed objects.
    len: usize,
    params: RTreeParams,
    /// Copy-on-write work since the last [`RTree::reset_copy_stats`].
    copy: CopyStats,
}

impl<A: Augmentation> RTree<A> {
    /// Creates an empty tree over `corpus` (no objects indexed yet).
    pub fn new(corpus: Corpus, params: RTreeParams) -> Self {
        RTree {
            corpus,
            chunks: Arc::new(Vec::new()),
            paged: None,
            slots: 0,
            free: Vec::new(),
            freed: Vec::new(),
            root: None,
            height: 0,
            len: 0,
            params,
            copy: CopyStats::default(),
        }
    }

    /// Bulk-loads every object of the corpus (STR packing).
    pub fn bulk_load(corpus: Corpus, params: RTreeParams) -> Self {
        let ids: Vec<ObjectId> = corpus.iter().map(|o| o.id).collect();
        Self::bulk_load_subset(corpus, &ids, params)
    }

    /// Bulk-loads a subset of the corpus (STR packing).
    pub fn bulk_load_subset(corpus: Corpus, ids: &[ObjectId], params: RTreeParams) -> Self {
        crate::bulk::str_bulk_load(corpus, ids, params)
    }

    /// Builds by repeated insertion — used by tests to exercise the
    /// dynamic path against the bulk path.
    pub fn build_by_insertion(corpus: Corpus, params: RTreeParams) -> Self {
        let ids: Vec<ObjectId> = corpus.iter().map(|o| o.id).collect();
        let mut t = RTree::new(corpus, params);
        for id in ids {
            t.insert(id);
        }
        t
    }

    // -- accessors ---------------------------------------------------------

    /// The corpus this tree indexes.
    pub fn corpus(&self) -> &Corpus {
        &self.corpus
    }

    /// Swaps in a newer version of the corpus. The new version must keep
    /// every existing slot (ids are positional), which every corpus
    /// derived through [`Corpus::with_updates`] does; the tree itself is
    /// untouched — follow up with [`RTree::insert`] / [`RTree::delete`]
    /// for the objects that changed.
    pub fn set_corpus(&mut self, corpus: Corpus) {
        assert!(
            corpus.slot_count() >= self.corpus.slot_count(),
            "corpus version shrank: {} < {} slots",
            corpus.slot_count(),
            self.corpus.slot_count()
        );
        self.corpus = corpus;
    }

    /// Root node id, `None` for an empty tree.
    pub fn root(&self) -> Option<NodeId> {
        self.root
    }

    /// Borrow a node. On a paged tree this may fault the chunk in from
    /// disk; hold an [`RTree::read_guard`] across any loop of `node`
    /// calls whose references are retained (resident trees need none,
    /// the guard is free there).
    #[inline]
    pub fn node(&self, id: NodeId) -> &Node<A> {
        let i = id.index();
        match &self.paged {
            None => &self.chunks[i >> NODE_CHUNK_BITS].nodes[i & NODE_CHUNK_MASK],
            Some(src) => &src.chunk(i >> NODE_CHUNK_BITS).nodes[i & NODE_CHUNK_MASK],
        }
    }

    /// Opens a read section over the arena (see [`ArenaReadGuard`]).
    pub fn read_guard(&self) -> ArenaReadGuard<'_, A> {
        let source = self.paged.as_deref();
        if let Some(s) = source {
            s.begin_read();
        }
        ArenaReadGuard { source }
    }

    /// True when the arena is served out-of-core through a
    /// [`NodeSource`] instead of resident chunks.
    pub fn is_paged(&self) -> bool {
        self.paged.is_some()
    }

    /// Switches the arena to out-of-core backing: `source` must hold
    /// exactly this tree's chunks (same count, same slot layout),
    /// typically built by encoding a resident tree into a page file.
    /// Reads fault chunks through the source from now on; the first
    /// mutation [`RTree::materialize`]s the tree back to resident form.
    pub fn page_out(&mut self, source: Arc<dyn NodeSource<A>>) {
        assert!(self.paged.is_none(), "tree is already paged");
        assert_eq!(
            source.chunk_count(),
            self.chunks.len(),
            "paged source shape does not match the arena spine"
        );
        self.chunks = Arc::new(Vec::new());
        self.paged = Some(source);
    }

    /// Rebuilds the resident chunk spine from the paged source and drops
    /// the source — the inverse of [`RTree::page_out`]. No-op on
    /// resident trees. The copy is billed to [`RTree::copy_stats`] like
    /// any other arena materialization work.
    pub fn materialize(&mut self) {
        let Some(src) = self.paged.take() else { return };
        src.begin_read();
        let spine: Vec<Arc<NodeChunk<A>>> = (0..src.chunk_count())
            .map(|ci| Arc::new(src.chunk(ci).clone()))
            .collect();
        src.end_read();
        for c in &spine {
            self.copy.chunks_copied += 1;
            self.copy.bytes_copied += c.approx_bytes();
        }
        self.chunks = Arc::new(spine);
    }

    /// Number of indexed objects.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no objects are indexed.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Tree height in levels (0 when empty, 1 for a single leaf).
    pub fn height(&self) -> usize {
        self.height
    }

    /// Fanout parameters.
    pub fn params(&self) -> RTreeParams {
        self.params
    }

    // -- arena introspection ------------------------------------------------

    /// Number of chunks in the node arena's spine.
    pub fn arena_chunk_count(&self) -> usize {
        match &self.paged {
            None => self.chunks.len(),
            Some(src) => src.chunk_count(),
        }
    }

    /// Borrows the nodes of resident arena chunk `ci` — the export
    /// surface the paged-source builder encodes from. Panics on a paged
    /// tree (its chunks live behind the [`NodeSource`] already).
    pub fn arena_chunk(&self, ci: usize) -> &[Node<A>] {
        assert!(self.paged.is_none(), "arena_chunk on a paged tree");
        &self.chunks[ci].nodes
    }

    /// Total allocated node slots, including freed ones.
    pub fn arena_slots(&self) -> usize {
        self.slots
    }

    /// Number of freed (reusable) node slots.
    pub fn free_slots(&self) -> usize {
        self.free.len()
    }

    /// Approximate resident bytes of the whole node slab — every
    /// allocated slot, freed ones included (their payload is retained
    /// until reuse; see the module docs). Compare with
    /// [`crate::TreeStats::bytes`], which counts reachable nodes only.
    pub fn arena_bytes(&self) -> usize {
        match &self.paged {
            None => self.chunks.iter().map(|c| c.approx_bytes()).sum(),
            Some(src) => src.approx_bytes(),
        }
    }

    /// True when both trees are the *same arena version* (they share one
    /// chunk spine, or one paged source) — the tree equivalent of
    /// [`Corpus::same_version`].
    pub fn same_arena(&self, other: &Self) -> bool {
        match (&self.paged, &other.paged) {
            (None, None) => Arc::ptr_eq(&self.chunks, &other.chunks),
            (Some(a), Some(b)) => Arc::ptr_eq(a, b),
            _ => false,
        }
    }

    /// True when chunk `i` is physically shared (one allocation) between
    /// both trees — the assertion surface of the epoch-sharing tests.
    pub fn shares_chunk(&self, other: &Self, i: usize) -> bool {
        match (self.chunks.get(i), other.chunks.get(i)) {
            (Some(a), Some(b)) => Arc::ptr_eq(a, b),
            _ => false,
        }
    }

    /// Number of spine positions whose chunk is physically shared with
    /// `other`. For a tree derived by [`RTree::with_updates`] this equals
    /// the common spine length minus the chunks the batch copied.
    pub fn shared_chunk_count(&self, other: &Self) -> usize {
        self.chunks
            .iter()
            .zip(other.chunks.iter())
            .filter(|(a, b)| Arc::ptr_eq(a, b))
            .count()
    }

    /// Copy-on-write work performed by this tree instance since it was
    /// built, cloned from another tree, or last
    /// [`RTree::reset_copy_stats`].
    pub fn copy_stats(&self) -> CopyStats {
        self.copy
    }

    /// Resets the copy-on-write counters (e.g. at the start of a batch).
    pub fn reset_copy_stats(&mut self) {
        self.copy = CopyStats::default();
    }

    /// All indexed object ids (DFS order).
    pub fn object_ids(&self) -> Vec<ObjectId> {
        let mut out = Vec::with_capacity(self.len);
        let _guard = self.read_guard();
        if let Some(root) = self.root {
            let mut stack = vec![root];
            while let Some(n) = stack.pop() {
                match &self.node(n).kind {
                    NodeKind::Leaf(entries) => out.extend_from_slice(entries),
                    NodeKind::Internal(children) => stack.extend_from_slice(children),
                }
            }
        }
        out
    }

    /// Iterates every live (reachable) node id with its depth (root = 0).
    pub fn walk(&self) -> Vec<(NodeId, usize)> {
        let mut out = Vec::new();
        let _guard = self.read_guard();
        if let Some(root) = self.root {
            let mut stack = vec![(root, 0usize)];
            while let Some((n, d)) = stack.pop() {
                out.push((n, d));
                if let NodeKind::Internal(children) = &self.node(n).kind {
                    stack.extend(children.iter().map(|&c| (c, d + 1)));
                }
            }
        }
        out
    }

    /// Repacks the arena: live nodes move to slots `0..live` in DFS
    /// ([`RTree::walk`]) order, freed slack is dropped, and the chunk
    /// spine is rebuilt fresh (nothing shared with prior versions).
    ///
    /// DFS order is what keeps the copy-on-write bill of *later* batches
    /// small. Augmented internal nodes near the root carry keyword maps
    /// orders of magnitude heavier than leaves; a level-order layout (the
    /// natural output of STR bulk loading) packs that entire internal
    /// level into the tail chunks, which sit on every root-to-leaf spine
    /// — so every batch re-copies the whole internal level. In DFS order
    /// each internal lands beside its own subtree, spreading the heavy
    /// nodes roughly one per chunk, and a copied spine chunk bills one
    /// heavy node plus cheap leaf neighbours.
    ///
    /// Called at the end of bulk loading; incremental updates do not pay
    /// the full-rewrite cost (their allocations interleave naturally).
    pub(crate) fn relayout_dfs(&mut self) {
        self.materialize();
        let Some(root) = self.root else { return };
        let order = self.walk();
        let mut remap = vec![u32::MAX; self.slots];
        for (new, (old, _)) in order.iter().enumerate() {
            remap[old.index()] = u32::try_from(new).expect("node arena overflow");
        }
        let mut packed: Vec<NodeChunk<A>> = Vec::with_capacity(order.len().div_ceil(NODE_CHUNK_SIZE));
        for (old, _) in &order {
            let mut node = self.node(*old).clone();
            if let NodeKind::Internal(children) = &mut node.kind {
                for c in children {
                    *c = NodeId(remap[c.index()]);
                }
            }
            if packed.last().is_none_or(|c| c.nodes.len() == NODE_CHUNK_SIZE) {
                packed.push(NodeChunk::with_capacity());
            }
            packed.last_mut().expect("chunk pushed above").nodes.push(node);
        }
        self.chunks = Arc::new(packed.into_iter().map(Arc::new).collect());
        self.slots = order.len();
        self.free.clear();
        self.freed.clear();
        self.root = Some(NodeId(remap[root.index()]));
    }

    // -- spatial queries ----------------------------------------------------

    /// All indexed objects whose location lies inside `rect`.
    pub fn range(&self, rect: &Rect) -> Vec<ObjectId> {
        let mut out = Vec::new();
        let Some(root) = self.root else {
            return out;
        };
        let _guard = self.read_guard();
        let mut stack = vec![root];
        while let Some(n) = stack.pop() {
            let node = self.node(n);
            if !node.mbr.intersects(rect) {
                continue;
            }
            match &node.kind {
                NodeKind::Leaf(entries) => {
                    for &id in entries {
                        if rect.contains_point(&self.corpus.get(id).loc) {
                            out.push(id);
                        }
                    }
                }
                NodeKind::Internal(children) => stack.extend_from_slice(children),
            }
        }
        out
    }

    /// The `k` objects nearest to `p` by raw Euclidean distance
    /// (best-first search; ties broken towards smaller ids).
    pub fn nearest(&self, p: &Point, k: usize) -> Vec<(f64, ObjectId)> {
        #[derive(PartialEq, Eq, PartialOrd, Ord, Clone, Copy, Debug)]
        enum Entry {
            Node(NodeId),
            Object(ObjectId),
        }
        let mut out = Vec::with_capacity(k);
        let Some(root) = self.root else {
            return out;
        };
        if k == 0 {
            return out;
        }
        let _guard = self.read_guard();
        // Min-heap on distance; on equal distance `Reverse(Scored)` pops
        // the *larger* Entry first, and Object > Node in derive order, so
        // objects surface before equally-distant nodes — required for
        // correct early termination.
        let mut heap: BinaryHeap<Reverse<Scored<Entry>>> = BinaryHeap::new();
        heap.push(Reverse(Scored::new(
            self.node(root).mbr.min_dist2(p),
            Entry::Node(root),
        )));
        while let Some(Reverse(top)) = heap.pop() {
            match top.item {
                Entry::Object(id) => {
                    out.push((top.score.get().sqrt(), id));
                    if out.len() == k {
                        break;
                    }
                }
                Entry::Node(n) => match &self.node(n).kind {
                    NodeKind::Leaf(entries) => {
                        for &id in entries {
                            let d2 = self.corpus.get(id).loc.dist2(p);
                            heap.push(Reverse(Scored::new(d2, Entry::Object(id))));
                        }
                    }
                    NodeKind::Internal(children) => {
                        for &c in children {
                            let d2 = self.node(c).mbr.min_dist2(p);
                            heap.push(Reverse(Scored::new(d2, Entry::Node(c))));
                        }
                    }
                },
            }
        }
        out
    }

    // -- construction internals ---------------------------------------------

    /// Copy-on-write access to one arena chunk: the first touch of a
    /// chunk still shared with other tree versions deep-copies it (and
    /// bills the copy); later touches see the unique copy and mutate in
    /// place. The spine itself is copied (a pointer array) on the first
    /// mutation after a clone.
    fn chunk_mut(&mut self, ci: usize) -> &mut NodeChunk<A> {
        debug_assert!(self.paged.is_none(), "chunk_mut on a paged arena");
        let spine = Arc::make_mut(&mut self.chunks);
        if Arc::get_mut(&mut spine[ci]).is_none() {
            let copy = (*spine[ci]).clone();
            self.copy.chunks_copied += 1;
            self.copy.bytes_copied += copy.approx_bytes();
            spine[ci] = Arc::new(copy);
        }
        Arc::get_mut(&mut spine[ci]).expect("chunk is unique after copy")
    }

    /// Mutable access to a node, copy-on-write at chunk granularity.
    fn node_mut(&mut self, id: NodeId) -> &mut Node<A> {
        let i = id.index();
        &mut self.chunk_mut(i >> NODE_CHUNK_BITS).nodes[i & NODE_CHUNK_MASK]
    }

    pub(crate) fn alloc(&mut self, node: Node<A>) -> NodeId {
        if let Some(slot) = self.free.pop() {
            self.clear_freed(slot);
            *self.node_mut(NodeId(slot)) = node;
            NodeId(slot)
        } else {
            let slot = u32::try_from(self.slots).expect("node arena overflow");
            let ci = self.slots >> NODE_CHUNK_BITS;
            if ci == self.chunks.len() {
                Arc::make_mut(&mut self.chunks).push(Arc::new(NodeChunk::with_capacity()));
                self.copy.chunks_created += 1;
            }
            self.chunk_mut(ci).nodes.push(node);
            self.slots += 1;
            NodeId(slot)
        }
    }

    /// Frees a slot *without* writing it: older tree versions may still
    /// share the chunk, so a tombstone write would force a chunk copy for
    /// nothing. The stale payload stays until [`RTree::alloc`] reuses the
    /// slot (at which point the write pays the copy-on-write bill if the
    /// chunk is still shared).
    fn dealloc(&mut self, id: NodeId) {
        debug_assert!(!self.is_freed(id.0), "double free of node {id:?}");
        self.set_freed(id.0);
        self.free.push(id.0);
    }

    #[inline]
    fn is_freed(&self, slot: u32) -> bool {
        self.freed
            .get(slot as usize / 64)
            .is_some_and(|w| (w >> (slot % 64)) & 1 == 1)
    }

    fn set_freed(&mut self, slot: u32) {
        let w = slot as usize / 64;
        if w >= self.freed.len() {
            self.freed.resize(w + 1, 0);
        }
        self.freed[w] |= 1u64 << (slot % 64);
    }

    fn clear_freed(&mut self, slot: u32) {
        self.freed[slot as usize / 64] &= !(1u64 << (slot % 64));
    }

    pub(crate) fn set_root(&mut self, root: Option<NodeId>, height: usize, len: usize) {
        self.root = root;
        self.height = height;
        self.len = len;
    }

    /// Recomputes `mbr` and `aug` of a node from its entries.
    pub(crate) fn refresh(&mut self, n: NodeId) {
        let (mbr, aug) = self.compute_summary(n);
        let node = self.node_mut(n);
        node.mbr = mbr;
        node.aug = aug;
    }

    fn compute_summary(&self, n: NodeId) -> (Rect, Option<A>) {
        match &self.node(n).kind {
            NodeKind::Leaf(entries) => {
                if entries.is_empty() {
                    return (Rect::EMPTY, None);
                }
                let mut mbr = Rect::EMPTY;
                let mut objs = Vec::with_capacity(entries.len());
                for &id in entries {
                    let o = self.corpus.get(id);
                    mbr.expand(&Rect::point(o.loc));
                    objs.push(o);
                }
                (mbr, Some(A::for_leaf(&objs)))
            }
            NodeKind::Internal(children) => {
                debug_assert!(!children.is_empty());
                let mut mbr = Rect::EMPTY;
                let mut augs = Vec::with_capacity(children.len());
                for &c in children {
                    let child = self.node(c);
                    mbr.expand(&child.mbr);
                    augs.push(child.aug());
                }
                (mbr, Some(A::for_internal(&augs)))
            }
        }
    }

    // -- batch derivation ----------------------------------------------------

    /// Derives the next tree version from a write batch, persistently:
    /// the returned tree shares every arena chunk this batch's
    /// delete/insert paths did not write into with `self` (which stays
    /// fully usable — older epochs keep answering queries against it).
    ///
    /// `corpus` is the next corpus version (derived through
    /// [`Corpus::with_updates`] from this tree's version), `inserted` its
    /// freshly appended slots and `deleted` the newly tombstoned ones
    /// (which must all be indexed here). The returned [`CopyStats`] is
    /// the batch's actual copy bill — O(height × chunk) per routed op,
    /// independent of tree size.
    pub fn with_updates(
        &self,
        corpus: Corpus,
        inserted: &[ObjectId],
        deleted: &[ObjectId],
    ) -> (Self, CopyStats) {
        let mut next = self.clone();
        next.reset_copy_stats();
        next.set_corpus(corpus);
        for &id in deleted {
            let removed = next.delete(id);
            debug_assert!(removed, "delete {id:?} missed the tree");
        }
        for &id in inserted {
            next.insert(id);
        }
        let stats = next.copy_stats();
        (next, stats)
    }

    // -- insertion -----------------------------------------------------------

    /// Inserts one object (must belong to this tree's corpus and not be
    /// indexed already — enforced only by `validate`, not here, to keep
    /// the hot path lean).
    pub fn insert(&mut self, id: ObjectId) {
        assert!(id.index() < self.corpus.slot_count(), "foreign object id {id:?}");
        self.materialize();
        match self.root {
            None => {
                let root = self.alloc(Node {
                    mbr: Rect::EMPTY,
                    aug: None,
                    kind: NodeKind::Leaf(vec![id]),
                });
                self.refresh(root);
                self.root = Some(root);
                self.height = 1;
            }
            Some(root) => {
                if let Some(sibling) = self.insert_rec(root, id) {
                    // Root split: grow a new root above.
                    let new_root = self.alloc(Node {
                        mbr: Rect::EMPTY,
                        aug: None,
                        kind: NodeKind::Internal(vec![root, sibling]),
                    });
                    self.refresh(new_root);
                    self.root = Some(new_root);
                    self.height += 1;
                }
            }
        }
        self.len += 1;
    }

    /// Recursive insert; returns a newly created sibling when `n` split.
    fn insert_rec(&mut self, n: NodeId, id: ObjectId) -> Option<NodeId> {
        let is_leaf = self.node(n).is_leaf();
        if is_leaf {
            if let NodeKind::Leaf(entries) = &mut self.node_mut(n).kind {
                entries.push(id);
            }
        } else {
            let child = self.choose_subtree(n, &self.corpus.get(id).loc);
            if let Some(new_child) = self.insert_rec(child, id) {
                if let NodeKind::Internal(children) = &mut self.node_mut(n).kind {
                    children.push(new_child);
                }
            }
        }
        if self.node(n).entry_count() > self.params.max_entries {
            let sibling = self.split(n);
            self.refresh(n);
            self.refresh(sibling);
            Some(sibling)
        } else {
            self.refresh(n);
            None
        }
    }

    /// Guttman's ChooseLeaf heuristic: least MBR enlargement, ties by
    /// least area, then first-listed.
    fn choose_subtree(&self, n: NodeId, p: &Point) -> NodeId {
        let children = self.node(n).children();
        let target = Rect::point(*p);
        let mut best = children[0];
        let mut best_enl = f64::INFINITY;
        let mut best_area = f64::INFINITY;
        for &c in children {
            let mbr = self.node(c).mbr;
            let enl = mbr.enlargement(&target);
            let area = mbr.area();
            if enl < best_enl || (enl == best_enl && area < best_area) {
                best = c;
                best_enl = enl;
                best_area = area;
            }
        }
        best
    }

    /// Quadratic split: moves roughly half the entries of `n` into a new
    /// sibling node, which is returned (summaries of both are stale —
    /// caller must `refresh`).
    fn split(&mut self, n: NodeId) -> NodeId {
        let rects: Vec<Rect> = match &self.node(n).kind {
            NodeKind::Leaf(entries) => entries
                .iter()
                .map(|&id| Rect::point(self.corpus.get(id).loc))
                .collect(),
            NodeKind::Internal(children) => children
                .iter()
                .map(|&c| self.node(c).mbr)
                .collect(),
        };
        let (g1, g2) = quadratic_partition(&rects, self.params.min_entries);
        let node = self.node_mut(n);
        let sibling_kind = match &mut node.kind {
            NodeKind::Leaf(entries) => {
                let (keep, give) = partition_by_index(entries, &g1, &g2);
                *entries = keep;
                NodeKind::Leaf(give)
            }
            NodeKind::Internal(children) => {
                let (keep, give) = partition_by_index(children, &g1, &g2);
                *children = keep;
                NodeKind::Internal(give)
            }
        };
        self.alloc(Node {
            mbr: Rect::EMPTY,
            aug: None,
            kind: sibling_kind,
        })
    }

    // -- deletion -------------------------------------------------------------

    /// Deletes one object; returns `false` when it was not indexed.
    ///
    /// Underflowing nodes are dissolved and every object below them is
    /// re-inserted (the classic condense-tree strategy, simplified to
    /// object-granularity reinsertion, which preserves all invariants).
    pub fn delete(&mut self, id: ObjectId) -> bool {
        let Some(root) = self.root else {
            return false;
        };
        self.materialize();
        let p = self.corpus.get(id).loc;
        let mut path = Vec::with_capacity(self.height);
        if !self.find_path(root, &p, id, &mut path) {
            return false;
        }
        // Remove the entry from its leaf.
        let leaf = *path.last().expect("path is never empty");
        if let NodeKind::Leaf(entries) = &mut self.node_mut(leaf).kind {
            entries.retain(|&e| e != id);
        }
        self.len -= 1;

        // Condense bottom-up, collecting orphaned objects.
        let mut orphans: Vec<ObjectId> = Vec::new();
        for i in (1..path.len()).rev() {
            let node = path[i];
            let parent = path[i - 1];
            if self.node(node).entry_count() < self.params.min_entries {
                self.collect_objects(node, &mut orphans);
                if let NodeKind::Internal(children) = &mut self.node_mut(parent).kind {
                    children.retain(|&c| c != node);
                }
                self.dealloc_subtree(node);
            }
        }
        for &n in path.iter().rev() {
            // Nodes dissolved above are in the freed set; skip them — a
            // bitset probe, not a free-list scan, so delete-heavy batches
            // stay linear.
            if !self.is_freed(n.0) {
                self.refresh(n);
            }
        }

        // Shrink the root while it is an internal node with one child.
        while let Some(r) = self.root {
            enum Shrink {
                Promote(NodeId),
                Empty,
                Done,
            }
            let action = match &self.node(r).kind {
                NodeKind::Internal(children) if children.len() == 1 => Shrink::Promote(children[0]),
                NodeKind::Internal(children) if children.is_empty() => Shrink::Empty,
                NodeKind::Leaf(entries) if entries.is_empty() => Shrink::Empty,
                _ => Shrink::Done,
            };
            match action {
                Shrink::Promote(only) => {
                    self.dealloc(r);
                    self.root = Some(only);
                    self.height -= 1;
                }
                Shrink::Empty => {
                    self.dealloc(r);
                    self.root = None;
                    self.height = 0;
                }
                Shrink::Done => break,
            }
        }

        // Reinsert orphans (objects that lived under dissolved nodes).
        let reinserted = orphans.len();
        self.len -= reinserted;
        for oid in orphans {
            self.insert(oid);
        }
        true
    }

    /// Extends `path` with the root-first spine from `n` down to the leaf
    /// containing `(p, id)`; returns `false` (leaving `path` as it found
    /// it) when the object is not under `n`. Appending and backtracking
    /// with pops keeps this O(depth) — the old build-by-`insert(0)`
    /// shifted every ancestor per level.
    fn find_path(&self, n: NodeId, p: &Point, id: ObjectId, path: &mut Vec<NodeId>) -> bool {
        let node = self.node(n);
        if !node.mbr.contains_point(p) {
            return false;
        }
        path.push(n);
        match &node.kind {
            NodeKind::Leaf(entries) => {
                if entries.contains(&id) {
                    return true;
                }
            }
            NodeKind::Internal(children) => {
                for &c in children {
                    if self.find_path(c, p, id, path) {
                        return true;
                    }
                }
            }
        }
        path.pop();
        false
    }

    /// Collects every object below `n` (no per-level child clones — the
    /// borrows are all shared).
    fn collect_objects(&self, n: NodeId, out: &mut Vec<ObjectId>) {
        match &self.node(n).kind {
            NodeKind::Leaf(entries) => out.extend_from_slice(entries),
            NodeKind::Internal(children) => {
                for &c in children {
                    self.collect_objects(c, out);
                }
            }
        }
    }

    /// Frees every node of the subtree rooted at `n`. Iterative with an
    /// explicit stack: the child ids are read once per node before its
    /// slot is freed, so no child vector is ever cloned.
    fn dealloc_subtree(&mut self, n: NodeId) {
        let mut stack = vec![n];
        while let Some(id) = stack.pop() {
            if let NodeKind::Internal(children) = &self.node(id).kind {
                stack.extend_from_slice(children);
            }
            self.dealloc(id);
        }
    }

    // -- persistence bridge -------------------------------------------------

    /// Exports the reachable tree structure in a topology-only form (no
    /// MBRs, no augmentations — both are derived data; freed arena slots
    /// and chunk boundaries don't appear either, so the export is
    /// independent of the slab layout). Used by the pager crate to
    /// serialize an index; [`RTree::from_structure`] restores it.
    pub fn structure(&self) -> TreeStructure {
        let _guard = self.read_guard();
        let mut nodes = Vec::new();
        let mut remap: std::collections::HashMap<u32, u32> = std::collections::HashMap::new();
        // First pass: assign dense ids in walk order.
        let walk = self.walk();
        for (i, &(nid, _)) in walk.iter().enumerate() {
            remap.insert(nid.0, i as u32);
        }
        for &(nid, _) in &walk {
            let node = self.node(nid);
            nodes.push(match &node.kind {
                NodeKind::Leaf(entries) => StructNode {
                    is_leaf: true,
                    entries: entries.iter().map(|e| e.0).collect(),
                },
                NodeKind::Internal(children) => StructNode {
                    is_leaf: false,
                    entries: children.iter().map(|c| remap[&c.0]).collect(),
                },
            });
        }
        TreeStructure {
            nodes,
            root: self.root.map(|r| remap[&r.0]),
            height: self.height,
            len: self.len,
        }
    }

    /// Rebuilds a tree from an exported [`TreeStructure`]: node topology
    /// is restored verbatim (into a fresh, densely packed arena), MBRs
    /// and augmentations are recomputed bottom-up (they are derived
    /// data). Panics on malformed structures; run [`RTree::validate`]
    /// afterwards for untrusted input.
    pub fn from_structure(corpus: Corpus, params: RTreeParams, s: &TreeStructure) -> Self {
        let mut tree = RTree::new(corpus, params);
        let mut ids: Vec<NodeId> = Vec::with_capacity(s.nodes.len());
        for n in &s.nodes {
            let kind = if n.is_leaf {
                NodeKind::Leaf(n.entries.iter().map(|&e| ObjectId(e)).collect())
            } else {
                NodeKind::Internal(Vec::new()) // children patched below
            };
            ids.push(tree.alloc(Node {
                mbr: Rect::EMPTY,
                aug: None,
                kind,
            }));
        }
        for (i, n) in s.nodes.iter().enumerate() {
            if !n.is_leaf {
                let children: Vec<NodeId> = n.entries.iter().map(|&e| ids[e as usize]).collect();
                if let NodeKind::Internal(c) = &mut tree.node_mut(ids[i]).kind {
                    *c = children;
                }
            }
        }
        // Refresh bottom-up: children precede parents nowhere in general,
        // so refresh in reverse BFS order from the root.
        if let Some(root_idx) = s.root {
            let root = ids[root_idx as usize];
            let mut order = Vec::new();
            let mut stack = vec![root];
            while let Some(n) = stack.pop() {
                order.push(n);
                if let NodeKind::Internal(children) = &tree.node(n).kind {
                    stack.extend_from_slice(children);
                }
            }
            for &n in order.iter().rev() {
                tree.refresh(n);
            }
            tree.set_root(Some(root), s.height, s.len);
        }
        tree.reset_copy_stats();
        tree
    }

    // -- validation -------------------------------------------------------------

    /// Checks every structural and augmentation invariant; returns a
    /// description of the first violation.
    ///
    /// Checked: reachable-node entry counts (≥1, ≤ max); uniform leaf
    /// depth; exact MBRs; exact augmentations; each object indexed exactly
    /// once; `len` consistent; free list disjoint from reachable nodes
    /// and consistent with the freed bitset.
    pub fn validate(&self) -> Result<(), String> {
        let _guard = self.read_guard();
        // Free list / bitset consistency holds even for an empty tree.
        let mut free_sorted = self.free.clone();
        free_sorted.sort_unstable();
        free_sorted.dedup();
        if free_sorted.len() != self.free.len() {
            return Err("duplicate slots on the free list".into());
        }
        for &f in &self.free {
            if !self.is_freed(f) {
                return Err(format!("free-list slot {f} not in the freed bitset"));
            }
            if f as usize >= self.slots {
                return Err(format!("free-list slot {f} beyond the arena ({})", self.slots));
            }
        }
        let freed_bits: usize = (0..self.slots).filter(|&s| self.is_freed(s as u32)).count();
        if freed_bits != self.free.len() {
            return Err(format!(
                "freed bitset has {freed_bits} bits but the free list {} slots",
                self.free.len()
            ));
        }

        let Some(root) = self.root else {
            return if self.len == 0 && self.height == 0 {
                Ok(())
            } else {
                Err(format!("empty root but len={} height={}", self.len, self.height))
            };
        };
        let mut seen_objects: std::collections::HashMap<ObjectId, u32> =
            std::collections::HashMap::new();
        let mut reachable: std::collections::HashSet<u32> = std::collections::HashSet::new();
        let mut leaf_depths: Vec<usize> = Vec::new();
        let mut stack = vec![(root, 0usize)];
        while let Some((n, depth)) = stack.pop() {
            if !reachable.insert(n.0) {
                return Err(format!("node {n:?} reachable twice"));
            }
            let node = self.node(n);
            let count = node.entry_count();
            if count == 0 {
                return Err(format!("empty node {n:?}"));
            }
            if count > self.params.max_entries {
                return Err(format!("node {n:?} overflows: {count}"));
            }
            let (mbr, aug) = self.compute_summary(n);
            if mbr != node.mbr {
                return Err(format!("node {n:?} stale mbr: {:?} != {:?}", node.mbr, mbr));
            }
            match (&aug, &node.aug) {
                (Some(a), Some(b)) if a == b => {}
                _ => return Err(format!("node {n:?} stale augmentation")),
            }
            match &node.kind {
                NodeKind::Leaf(entries) => {
                    leaf_depths.push(depth);
                    for &id in entries {
                        if id.index() >= self.corpus.slot_count() {
                            return Err(format!("foreign object {id:?}"));
                        }
                        *seen_objects.entry(id).or_insert(0) += 1;
                    }
                }
                NodeKind::Internal(children) => {
                    for &c in children {
                        if !node.mbr.contains_rect(&self.node(c).mbr) {
                            return Err(format!("child {c:?} escapes parent {n:?} mbr"));
                        }
                        stack.push((c, depth + 1));
                    }
                }
            }
        }
        if let Some(&d0) = leaf_depths.first() {
            if leaf_depths.iter().any(|&d| d != d0) {
                return Err("leaves at different depths".into());
            }
            if d0 + 1 != self.height {
                return Err(format!("height {} but leaf depth {}", self.height, d0));
            }
        }
        let total: u32 = seen_objects.values().sum();
        if total as usize != self.len {
            return Err(format!("len {} but {} entries", self.len, total));
        }
        if let Some((id, n)) = seen_objects.iter().find(|(_, &n)| n > 1) {
            return Err(format!("object {id:?} indexed {n} times"));
        }
        for f in &self.free {
            if reachable.contains(f) {
                return Err(format!("free node {f} is reachable"));
            }
        }
        Ok(())
    }
}

/// Topology-only export of a tree (see [`RTree::structure`]). `entries`
/// holds object ids for leaves and dense node indexes for internal nodes.
#[derive(Clone, Debug, PartialEq)]
pub struct TreeStructure {
    /// Nodes in a root-first walk order, re-indexed densely.
    pub nodes: Vec<StructNode>,
    /// Index of the root node, `None` for an empty tree.
    pub root: Option<u32>,
    /// Tree height.
    pub height: usize,
    /// Indexed object count.
    pub len: usize,
}

/// One node of a [`TreeStructure`].
#[derive(Clone, Debug, PartialEq)]
pub struct StructNode {
    /// Leaf (entries are object ids) or internal (entries are node
    /// indexes).
    pub is_leaf: bool,
    /// Entry payload.
    pub entries: Vec<u32>,
}

/// Splits `items` into (kept, given) according to index groups `g1`/`g2`.
fn partition_by_index<T: Copy>(items: &[T], g1: &[usize], g2: &[usize]) -> (Vec<T>, Vec<T>) {
    (
        g1.iter().map(|&i| items[i]).collect(),
        g2.iter().map(|&i| items[i]).collect(),
    )
}

/// Guttman's quadratic split over entry rectangles: returns two disjoint,
/// covering index groups, each of size ≥ `min_entries`.
fn quadratic_partition(rects: &[Rect], min_entries: usize) -> (Vec<usize>, Vec<usize>) {
    let n = rects.len();
    debug_assert!(n >= 2);
    // Seed selection: the pair wasting the most area if grouped together.
    let (mut s1, mut s2, mut worst) = (0, 1, f64::NEG_INFINITY);
    for i in 0..n {
        for j in (i + 1)..n {
            let waste = rects[i].union(&rects[j]).area() - rects[i].area() - rects[j].area();
            if waste > worst {
                worst = waste;
                s1 = i;
                s2 = j;
            }
        }
    }
    let mut g1 = vec![s1];
    let mut g2 = vec![s2];
    let mut mbr1 = rects[s1];
    let mut mbr2 = rects[s2];
    let mut remaining: Vec<usize> = (0..n).filter(|&i| i != s1 && i != s2).collect();

    while !remaining.is_empty() {
        // Forced assignment when one group must absorb all that remains.
        if g1.len() + remaining.len() == min_entries {
            for i in remaining.drain(..) {
                g1.push(i);
                mbr1.expand(&rects[i]);
            }
            break;
        }
        if g2.len() + remaining.len() == min_entries {
            for i in remaining.drain(..) {
                g2.push(i);
                mbr2.expand(&rects[i]);
            }
            break;
        }
        // PickNext: the entry with the strongest group preference.
        let (pos, _) = remaining
            .iter()
            .enumerate()
            .map(|(pos, &i)| {
                let d1 = mbr1.enlargement(&rects[i]);
                let d2 = mbr2.enlargement(&rects[i]);
                (pos, (d1 - d2).abs())
            })
            .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite enlargement"))
            .expect("remaining non-empty");
        let i = remaining.swap_remove(pos);
        let d1 = mbr1.enlargement(&rects[i]);
        let d2 = mbr2.enlargement(&rects[i]);
        // Resolve: less enlargement, then smaller area, then fewer entries.
        let to_g1 = match d1.partial_cmp(&d2).expect("finite") {
            std::cmp::Ordering::Less => true,
            std::cmp::Ordering::Greater => false,
            std::cmp::Ordering::Equal => {
                if mbr1.area() != mbr2.area() {
                    mbr1.area() < mbr2.area()
                } else {
                    g1.len() <= g2.len()
                }
            }
        };
        if to_g1 {
            g1.push(i);
            mbr1.expand(&rects[i]);
        } else {
            g2.push(i);
            mbr2.expand(&rects[i]);
        }
    }
    (g1, g2)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aug::{KcAug, NoAug, SetAug};
    use crate::corpus::CorpusBuilder;
    use yask_text::KeywordSet;
    use yask_util::Xoshiro256;

    fn random_corpus(n: usize, seed: u64) -> Corpus {
        let mut rng = Xoshiro256::seed_from_u64(seed);
        let mut b = CorpusBuilder::with_capacity(n);
        for i in 0..n {
            let loc = Point::new(rng.next_f64(), rng.next_f64());
            let nkw = 1 + rng.below(5);
            let doc = KeywordSet::from_raw((0..nkw).map(|_| rng.below(30) as u32));
            b.push(loc, doc, format!("obj{i}"));
        }
        b.build()
    }

    #[test]
    fn params_validation() {
        let p = RTreeParams::default();
        assert_eq!(p.max_entries, 32);
        assert_eq!(p.min_entries, 12);
    }

    #[test]
    #[should_panic(expected = "exceeds 64")]
    fn params_reject_wide_fanout() {
        RTreeParams::new(128, 32);
    }

    #[test]
    #[should_panic(expected = "min_entries")]
    fn params_reject_large_min() {
        RTreeParams::new(10, 6);
    }

    #[test]
    fn empty_tree_behaves() {
        let t: RTree<NoAug> = RTree::new(random_corpus(0, 1), RTreeParams::default());
        assert!(t.is_empty());
        assert_eq!(t.height(), 0);
        assert_eq!(t.arena_chunk_count(), 0);
        assert!(t.range(&Rect::from_coords(0.0, 0.0, 1.0, 1.0)).is_empty());
        assert!(t.nearest(&Point::new(0.5, 0.5), 3).is_empty());
        t.validate().unwrap();
    }

    #[test]
    fn insert_small_and_validate() {
        let corpus = random_corpus(10, 2);
        let t: RTree<SetAug> = RTree::build_by_insertion(corpus, RTreeParams::new(4, 2));
        assert_eq!(t.len(), 10);
        t.validate().unwrap();
        let mut ids = t.object_ids();
        ids.sort();
        assert_eq!(ids.len(), 10);
    }

    #[test]
    fn insertion_splits_grow_height() {
        let corpus = random_corpus(200, 3);
        let t: RTree<NoAug> = RTree::build_by_insertion(corpus, RTreeParams::new(8, 3));
        assert!(t.height() >= 3, "height = {}", t.height());
        t.validate().unwrap();
    }

    #[test]
    fn bulk_load_validates_across_sizes_and_augs() {
        for n in [0usize, 1, 2, 5, 33, 100, 1000] {
            let corpus = random_corpus(n, 42 + n as u64);
            let t: RTree<SetAug> = RTree::bulk_load(corpus.clone(), RTreeParams::default());
            assert_eq!(t.len(), n);
            t.validate().unwrap_or_else(|e| panic!("n={n}: {e}"));
            let t2: RTree<KcAug> = RTree::bulk_load(corpus, RTreeParams::new(8, 3));
            t2.validate().unwrap_or_else(|e| panic!("kc n={n}: {e}"));
        }
    }

    #[test]
    fn range_matches_scan() {
        let corpus = random_corpus(300, 7);
        let t: RTree<NoAug> = RTree::bulk_load(corpus.clone(), RTreeParams::new(8, 3));
        let rect = Rect::from_coords(0.2, 0.2, 0.6, 0.7);
        let mut got = t.range(&rect);
        got.sort();
        let mut want: Vec<ObjectId> = corpus
            .iter()
            .filter(|o| rect.contains_point(&o.loc))
            .map(|o| o.id)
            .collect();
        want.sort();
        assert_eq!(got, want);
        assert!(!got.is_empty(), "degenerate fixture");
    }

    #[test]
    fn nearest_matches_scan() {
        let corpus = random_corpus(250, 8);
        let t: RTree<NoAug> = RTree::bulk_load(corpus.clone(), RTreeParams::new(8, 3));
        let q = Point::new(0.33, 0.66);
        let got = t.nearest(&q, 10);
        let mut want: Vec<(f64, ObjectId)> =
            corpus.iter().map(|o| (o.loc.dist(&q), o.id)).collect();
        want.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap().then(a.1.cmp(&b.1)));
        want.truncate(10);
        let got_ids: Vec<ObjectId> = got.iter().map(|e| e.1).collect();
        let want_ids: Vec<ObjectId> = want.iter().map(|e| e.1).collect();
        assert_eq!(got_ids, want_ids);
        for (g, w) in got.iter().zip(&want) {
            assert!((g.0 - w.0).abs() < 1e-12);
        }
    }

    #[test]
    fn delete_removes_and_revalidates() {
        let corpus = random_corpus(120, 9);
        let mut t: RTree<SetAug> = RTree::bulk_load(corpus.clone(), RTreeParams::new(8, 3));
        let mut rng = Xoshiro256::seed_from_u64(99);
        let mut ids: Vec<ObjectId> = corpus.iter().map(|o| o.id).collect();
        rng.shuffle(&mut ids);
        for (i, id) in ids.iter().enumerate() {
            assert!(t.delete(*id), "delete {id:?}");
            t.validate()
                .unwrap_or_else(|e| panic!("after deleting {} objects: {e}", i + 1));
        }
        assert!(t.is_empty());
        assert_eq!(t.height(), 0);
        // Deleting again reports absence.
        assert!(!t.delete(ids[0]));
    }

    #[test]
    fn mixed_insert_delete_stays_consistent() {
        let corpus = random_corpus(200, 10);
        let mut t: RTree<KcAug> = RTree::new(corpus.clone(), RTreeParams::new(6, 2));
        let mut rng = Xoshiro256::seed_from_u64(5);
        let mut live: Vec<ObjectId> = Vec::new();
        let mut next = 0usize;
        for step in 0..400 {
            if next < 200 && (live.is_empty() || rng.chance(0.6)) {
                let id = corpus.get(ObjectId(next as u32)).id;
                t.insert(id);
                live.push(id);
                next += 1;
            } else {
                let pos = rng.below(live.len());
                let id = live.swap_remove(pos);
                assert!(t.delete(id));
            }
            if step % 50 == 0 {
                t.validate().unwrap_or_else(|e| panic!("step {step}: {e}"));
            }
        }
        t.validate().unwrap();
        assert_eq!(t.len(), live.len());
        let mut got = t.object_ids();
        got.sort();
        live.sort();
        assert_eq!(got, live);
    }

    #[test]
    fn corpus_version_swap_supports_incremental_updates() {
        use yask_text::KeywordSet;
        let corpus = random_corpus(60, 21);
        let mut t: RTree<KcAug> = RTree::bulk_load(corpus.clone(), RTreeParams::new(8, 3));
        // Publish a new corpus version: two inserts, one delete.
        let (v1, new_ids) = corpus.with_updates(
            [
                (Point::new(0.5, 0.5), KeywordSet::from_raw([1u32]), "n0".to_owned()),
                (Point::new(0.9, 0.1), KeywordSet::from_raw([2u32]), "n1".to_owned()),
            ],
            &[ObjectId(7)],
        );
        t.set_corpus(v1.clone());
        assert!(t.delete(ObjectId(7)), "dead slot still locatable for unindexing");
        for &id in &new_ids {
            t.insert(id);
        }
        t.validate().unwrap();
        assert_eq!(t.len(), 61);
        let mut got = t.object_ids();
        got.sort();
        assert_eq!(got, v1.live_ids());
    }

    #[test]
    #[should_panic(expected = "shrank")]
    fn corpus_version_swap_rejects_shrinking() {
        let big = random_corpus(10, 22);
        let small = random_corpus(5, 23);
        let mut t: RTree<NoAug> = RTree::bulk_load(big, RTreeParams::default());
        t.set_corpus(small);
    }

    #[test]
    fn quadratic_partition_respects_minimum() {
        let rects: Vec<Rect> = (0..10)
            .map(|i| Rect::point(Point::new(i as f64, 0.0)))
            .collect();
        let (g1, g2) = quadratic_partition(&rects, 4);
        assert!(g1.len() >= 4, "g1 = {g1:?}");
        assert!(g2.len() >= 4, "g2 = {g2:?}");
        assert_eq!(g1.len() + g2.len(), 10);
        let mut all: Vec<usize> = g1.iter().chain(&g2).copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn node_accessors_panic_on_wrong_kind() {
        let corpus = random_corpus(3, 11);
        let t: RTree<NoAug> = RTree::bulk_load(corpus, RTreeParams::default());
        let root = t.root().unwrap();
        assert!(t.node(root).is_leaf());
        let entries = t.node(root).entries();
        assert_eq!(entries.len(), 3);
        let r =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| t.node(root).children()));
        assert!(r.is_err());
    }

    #[test]
    fn structure_round_trips_exactly() {
        let corpus = random_corpus(300, 13);
        let t: RTree<SetAug> = RTree::bulk_load(corpus.clone(), RTreeParams::new(8, 3));
        let s = t.structure();
        assert_eq!(s.len, 300);
        let back: RTree<SetAug> = RTree::from_structure(corpus.clone(), t.params(), &s);
        back.validate().unwrap();
        assert_eq!(back.len(), t.len());
        assert_eq!(back.height(), t.height());
        // Identical topology ⇒ identical structure export.
        assert_eq!(back.structure(), s);
        // And identical query behaviour.
        let q = Point::new(0.4, 0.6);
        assert_eq!(back.nearest(&q, 10), t.nearest(&q, 10));
        // Even into a different augmentation type.
        let kc: RTree<KcAug> = RTree::from_structure(corpus, t.params(), &s);
        kc.validate().unwrap();
    }

    #[test]
    fn empty_structure_round_trips() {
        let corpus = random_corpus(0, 14);
        let t: RTree<NoAug> = RTree::bulk_load(corpus.clone(), RTreeParams::default());
        let s = t.structure();
        assert_eq!(s.root, None);
        let back: RTree<NoAug> = RTree::from_structure(corpus, RTreeParams::default(), &s);
        assert!(back.is_empty());
        back.validate().unwrap();
    }

    #[test]
    fn walk_covers_all_nodes() {
        let corpus = random_corpus(100, 12);
        let t: RTree<NoAug> = RTree::bulk_load(corpus, RTreeParams::new(8, 3));
        let walked = t.walk();
        assert!(walked.iter().any(|&(_, d)| d == 0));
        let max_d = walked.iter().map(|&(_, d)| d).max().unwrap();
        assert_eq!(max_d + 1, t.height());
    }

    // -- persistent arena ----------------------------------------------------

    #[test]
    fn clone_shares_the_whole_arena() {
        let corpus = random_corpus(2000, 31);
        let t: RTree<KcAug> = RTree::bulk_load(corpus, RTreeParams::new(4, 2));
        assert!(t.arena_chunk_count() >= 2, "fixture too small to chunk");
        let c = t.clone();
        assert!(t.same_arena(&c));
        assert_eq!(t.shared_chunk_count(&c), t.arena_chunk_count());
    }

    #[test]
    fn mutation_after_clone_leaves_the_original_intact() {
        let corpus = random_corpus(500, 32);
        let t: RTree<KcAug> = RTree::bulk_load(corpus.clone(), RTreeParams::new(4, 2));
        let before = t.structure();
        let mut derived = t.clone();
        derived.reset_copy_stats();
        let mut rng = Xoshiro256::seed_from_u64(8);
        for _ in 0..40 {
            let live = derived.object_ids();
            let victim = live[rng.below(live.len())];
            assert!(derived.delete(victim));
        }
        derived.validate().unwrap();
        // The original is byte-for-byte untouched and still validates.
        t.validate().unwrap();
        assert_eq!(t.structure(), before);
        // The two versions diverged but still share untouched chunks.
        assert!(!derived.same_arena(&t));
        let stats = derived.copy_stats();
        assert!(stats.chunks_copied >= 1);
        assert!(stats.bytes_copied > 0);
    }

    #[test]
    fn with_updates_shares_untouched_chunks() {
        let corpus = random_corpus(10_000, 33);
        let t: RTree<KcAug> = RTree::bulk_load(corpus.clone(), RTreeParams::new(4, 2));
        let old_chunks = t.arena_chunk_count();
        assert!(old_chunks >= 8, "fixture too small: {old_chunks} chunks");
        let (v1, new_ids) = corpus.with_updates(
            [(Point::new(0.5, 0.5), KeywordSet::from_raw([1u32]), "n".to_owned())],
            &[ObjectId(3)],
        );
        let (next, stats) = t.with_updates(v1.clone(), &new_ids, &[ObjectId(3)]);
        next.validate().unwrap();
        t.validate().unwrap();
        assert_eq!(next.len(), t.len());
        // Shared = common spine minus exactly the copied chunks.
        let common = old_chunks.min(next.arena_chunk_count());
        assert_eq!(next.shared_chunk_count(&t), common - stats.chunks_copied);
        assert!(
            stats.chunks_copied < old_chunks,
            "single-op batch copied every chunk ({old_chunks})"
        );
        // Queries on both versions reflect their own corpus.
        assert!(t.object_ids().contains(&ObjectId(3)));
        assert!(!next.object_ids().contains(&ObjectId(3)));
        assert!(next.object_ids().contains(&new_ids[0]));
    }

    #[test]
    fn freed_slots_are_reused_before_growing_the_arena() {
        let corpus = random_corpus(150, 34);
        let mut t: RTree<SetAug> = RTree::bulk_load(corpus.clone(), RTreeParams::new(4, 2));
        let slots_before = t.arena_slots();
        let mut rng = Xoshiro256::seed_from_u64(3);
        // Deleting frees slots...
        for _ in 0..60 {
            let live = t.object_ids();
            assert!(t.delete(live[rng.below(live.len())]));
        }
        assert!(t.free_slots() > 0);
        let free_after_deletes = t.free_slots();
        // ...and re-inserting consumes them before the slab grows.
        let dead: Vec<ObjectId> = (0..corpus.slot_count() as u32)
            .map(ObjectId)
            .filter(|id| !t.object_ids().contains(id))
            .collect();
        for id in dead {
            t.insert(id);
        }
        t.validate().unwrap();
        assert!(t.free_slots() < free_after_deletes);
        assert_eq!(t.arena_slots(), slots_before.max(t.arena_slots()));
    }
}
