//! Tree shape statistics — reported by the index-build experiments (E4/E9
//! in DESIGN.md) and useful when eyeballing fill factors.

use crate::aug::Augmentation;
use crate::rtree::{NodeKind, RTree};

/// Aggregate shape statistics of one R-tree.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TreeStats {
    /// Total reachable nodes.
    pub nodes: usize,
    /// Leaf nodes.
    pub leaves: usize,
    /// Tree height in levels.
    pub height: usize,
    /// Indexed objects.
    pub objects: usize,
    /// Mean leaf fill ratio (entries / max_entries).
    pub avg_leaf_fill: f64,
    /// Mean internal fill ratio.
    pub avg_internal_fill: f64,
    /// Estimated resident bytes of the reachable tree structure: node
    /// frames, entry vectors, and augmentation heap payloads
    /// ([`Augmentation::heap_bytes`]). Excludes the shared corpus — this
    /// is the *index* overhead the per-shard `/stats` counters report, the
    /// number that halves when a redundant global tree is dropped.
    pub bytes: usize,
    /// Chunks in the node arena's spine (see
    /// [`crate::rtree::NODE_CHUNK_SIZE`]). Chunks may be physically
    /// shared with other epochs' trees — this counts spine positions, not
    /// exclusive ownership.
    pub chunks: usize,
    /// Approximate resident bytes of the whole node slab, freed slots
    /// included (their payload is retained until reuse). `arena_bytes ≥
    /// bytes`; the gap is slack from freed slots awaiting reuse. Shared
    /// chunks are counted in full here — divide by the number of epochs
    /// holding them for amortized cost.
    pub arena_bytes: usize,
}

impl<A: Augmentation> RTree<A> {
    /// Computes shape statistics by walking the tree.
    pub fn stats(&self) -> TreeStats {
        let _guard = self.read_guard();
        let mut nodes = 0usize;
        let mut leaves = 0usize;
        let mut leaf_entries = 0usize;
        let mut internal_entries = 0usize;
        let mut bytes = 0usize;
        for (id, _) in self.walk() {
            nodes += 1;
            let node = self.node(id);
            match &node.kind {
                NodeKind::Leaf(e) => {
                    leaves += 1;
                    leaf_entries += e.len();
                    bytes += 4 * e.len(); // ObjectId entries
                }
                NodeKind::Internal(c) => {
                    internal_entries += c.len();
                    bytes += 4 * c.len(); // NodeId entries
                }
            }
            bytes += std::mem::size_of::<crate::rtree::Node<A>>();
            bytes += node.aug().heap_bytes();
        }
        let max = self.params().max_entries as f64;
        let internals = nodes - leaves;
        TreeStats {
            nodes,
            leaves,
            height: self.height(),
            objects: self.len(),
            avg_leaf_fill: if leaves > 0 {
                leaf_entries as f64 / (leaves as f64 * max)
            } else {
                0.0
            },
            avg_internal_fill: if internals > 0 {
                internal_entries as f64 / (internals as f64 * max)
            } else {
                0.0
            },
            bytes,
            chunks: self.arena_chunk_count(),
            arena_bytes: self.arena_bytes(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aug::NoAug;
    use crate::corpus::CorpusBuilder;
    use crate::rtree::RTreeParams;
    use yask_geo::Point;
    use yask_text::KeywordSet;

    fn corpus(n: usize) -> crate::corpus::Corpus {
        let mut b = CorpusBuilder::new();
        for i in 0..n {
            b.push(
                Point::new((i % 17) as f64, (i / 17) as f64),
                KeywordSet::from_raw([i as u32 % 5]),
                format!("o{i}"),
            );
        }
        b.build()
    }

    #[test]
    fn empty_tree_stats() {
        let t: RTree<NoAug> = RTree::new(corpus(0), RTreeParams::default());
        let s = t.stats();
        assert_eq!(s.nodes, 0);
        assert_eq!(s.objects, 0);
        assert_eq!(s.avg_leaf_fill, 0.0);
    }

    #[test]
    fn bulk_loaded_tree_is_well_filled() {
        let t: RTree<NoAug> = RTree::bulk_load(corpus(500), RTreeParams::new(16, 6));
        let s = t.stats();
        assert_eq!(s.objects, 500);
        assert!(s.leaves >= 500 / 16);
        assert!(s.avg_leaf_fill > 0.8, "fill = {}", s.avg_leaf_fill);
        assert_eq!(s.height, t.height());
        assert!(s.nodes > s.leaves);
        // At minimum every entry and node frame is accounted for.
        assert!(s.bytes >= s.nodes * std::mem::size_of::<crate::rtree::Node<NoAug>>() + 4 * 500);
        // The arena holds every reachable node (and possibly freed slack).
        assert!(s.chunks >= 1);
        assert!(s.arena_bytes >= s.bytes, "{} < {}", s.arena_bytes, s.bytes);
    }

    #[test]
    fn augmented_trees_report_more_bytes_than_plain() {
        use crate::aug::KcAug;
        let c = corpus(400);
        let plain: RTree<NoAug> = RTree::bulk_load(c.clone(), RTreeParams::new(16, 6));
        let kc: RTree<KcAug> = RTree::bulk_load(c, RTreeParams::new(16, 6));
        // Same topology, but the KcR-tree carries keyword-count maps.
        assert_eq!(plain.stats().nodes, kc.stats().nodes);
        assert!(
            kc.stats().bytes > plain.stats().bytes,
            "kc {} !> plain {}",
            kc.stats().bytes,
            plain.stats().bytes
        );
    }
}
