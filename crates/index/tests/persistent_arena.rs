//! Property tests of the persistent chunked node arena: successive
//! epochs must *physically* share every chunk a batch's paths did not
//! write into (`Arc::ptr_eq`, surfaced as `shares_chunk`), the per-batch
//! copy bill must be O(spine) — bounded by the tree height, not the tree
//! size — and the delete hot path must stay linear over a 10k burst.

use yask_geo::{Point, Rect};
use yask_index::{Corpus, CorpusBuilder, KcRTree, ObjectId, RTreeParams, NODE_CHUNK_SIZE};
use yask_text::KeywordSet;
use yask_util::Xoshiro256;

const VOCAB: u64 = 40;

fn random_corpus(n: usize, seed: u64) -> Corpus {
    let mut rng = Xoshiro256::seed_from_u64(seed);
    let mut b = CorpusBuilder::with_capacity(n);
    for i in 0..n {
        let doc = KeywordSet::from_raw((0..1 + rng.below(4)).map(|_| rng.below(VOCAB as usize) as u32));
        b.push(Point::new(rng.next_f64(), rng.next_f64()), doc, format!("o{i}"));
    }
    b.build()
}

/// One random single-insert/single-delete batch against `(corpus, tree)`.
fn step(
    corpus: &Corpus,
    tree: &KcRTree,
    rng: &mut Xoshiro256,
    tag: usize,
) -> (Corpus, KcRTree, yask_index::CopyStats) {
    let live = corpus.live_ids();
    let victim = live[rng.below(live.len())];
    let (next_corpus, new_ids) = corpus.with_updates(
        [(
            Point::new(rng.next_f64(), rng.next_f64()),
            KeywordSet::from_raw([rng.below(VOCAB as usize) as u32]),
            format!("e{tag}"),
        )],
        &[victim],
    );
    let (next_tree, stats) = tree.with_updates(next_corpus.clone(), &new_ids, &[victim]);
    (next_corpus, next_tree, stats)
}

#[test]
fn successive_epochs_share_untouched_chunks() {
    let params = RTreeParams::new(8, 3);
    let mut corpus = random_corpus(20_000, 1);
    let mut tree = KcRTree::bulk_load(corpus.clone(), params);
    let total_chunks = tree.arena_chunk_count();
    assert!(total_chunks >= 8, "fixture too small: {total_chunks} chunks");
    let mut rng = Xoshiro256::seed_from_u64(2);

    for round in 0..20 {
        let (next_corpus, next_tree, stats) = step(&corpus, &tree, &mut rng, round);

        // Sharing is exact: common spine positions minus the copied
        // chunks are the same physical allocation in both epochs.
        let common = tree.arena_chunk_count().min(next_tree.arena_chunk_count());
        assert_eq!(
            next_tree.shared_chunk_count(&tree),
            common - stats.chunks_copied,
            "round {round}: sharing must equal common - copied"
        );
        // And `shares_chunk` agrees position by position.
        let shared_positions = (0..common)
            .filter(|&i| next_tree.shares_chunk(&tree, i))
            .count();
        assert_eq!(shared_positions, common - stats.chunks_copied);

        // A single-op batch touches O(spine) chunks: the delete spine,
        // the insert spine, condensation fallout and orphan reinsertion
        // are each height-bounded — nowhere near the whole arena.
        let h = next_tree.height();
        assert!(
            stats.chunks_copied + stats.chunks_created <= 4 * h + 4,
            "round {round}: copied {} + created {} chunks exceeds the \
             spine bound for height {h}",
            stats.chunks_copied,
            stats.chunks_created,
        );
        assert!(
            stats.chunks_copied < total_chunks / 2,
            "round {round}: copied {}/{total_chunks} chunks — not path-copying",
            stats.chunks_copied
        );
        (corpus, tree) = (next_corpus, next_tree);
    }
    tree.validate().unwrap();
}

#[test]
fn spine_copy_bytes_stay_height_bounded() {
    // The byte bill of a single-op batch never exceeds (spine × chunk):
    // each copied chunk costs at most its full resident size, and only a
    // height-bounded number of chunks is copied.
    let params = RTreeParams::new(8, 3);
    let corpus = random_corpus(30_000, 3);
    let tree = KcRTree::bulk_load(corpus.clone(), params);
    let node_bytes = std::mem::size_of::<yask_index::Node<yask_index::KcAug>>();
    // Static per-chunk ceiling: full chunk of max-fanout nodes whose
    // keyword-count maps span the whole (small) test vocabulary.
    let chunk_ceiling = NODE_CHUNK_SIZE * (node_bytes + 4 * params.max_entries + 8 * VOCAB as usize);

    let mut rng = Xoshiro256::seed_from_u64(4);
    let (mut c, mut t) = (corpus, tree);
    for round in 0..10 {
        let (nc, nt, stats) = step(&c, &t, &mut rng, round);
        let h = nt.height();
        assert!(
            stats.bytes_copied <= (4 * h + 4) * chunk_ceiling,
            "round {round}: {} bytes copied exceeds height-bounded ceiling {}",
            stats.bytes_copied,
            (4 * h + 4) * chunk_ceiling
        );
        // The bill is also far below the resident arena: O(spine), not O(n).
        assert!(
            stats.bytes_copied < nt.arena_bytes() / 2,
            "round {round}: copied {} of {} arena bytes",
            stats.bytes_copied,
            nt.arena_bytes()
        );
        (c, t) = (nc, nt);
    }
}

#[test]
fn old_epochs_answer_queries_unchanged() {
    // Chained path-copying derivations never disturb published epochs:
    // every retained tree keeps answering range queries against *its*
    // corpus version, exactly.
    let params = RTreeParams::new(8, 3);
    let mut corpus = random_corpus(5_000, 5);
    let mut tree = KcRTree::bulk_load(corpus.clone(), params);
    let mut epochs = vec![(corpus.clone(), tree.clone())];
    let mut rng = Xoshiro256::seed_from_u64(6);
    for round in 0..8 {
        let (nc, nt, _) = step(&corpus, &tree, &mut rng, round);
        epochs.push((nc.clone(), nt.clone()));
        (corpus, tree) = (nc, nt);
    }
    let rect = Rect::from_coords(0.2, 0.3, 0.7, 0.8);
    for (i, (c, t)) in epochs.iter().enumerate() {
        t.validate().unwrap_or_else(|e| panic!("epoch {i}: {e}"));
        let mut got = t.range(&rect);
        got.sort();
        let mut want: Vec<ObjectId> = c
            .iter()
            .filter(|o| rect.contains_point(&o.loc))
            .map(|o| o.id)
            .collect();
        want.sort();
        assert_eq!(got, want, "epoch {i} answers drifted");
    }
}

#[test]
fn delete_burst_10k_stays_linear() {
    // Regression: delete condensation used to scan the free *list* per
    // visited node (`free.contains`), turning delete-heavy batches
    // quadratic in the number of accumulated frees. With the freed
    // bitset the whole burst is height-bounded work per op.
    let params = RTreeParams::new(8, 3);
    let corpus = random_corpus(12_000, 7);
    let mut tree = KcRTree::bulk_load(corpus.clone(), params);
    let mut rng = Xoshiro256::seed_from_u64(8);
    let mut live: Vec<ObjectId> = corpus.iter().map(|o| o.id).collect();
    rng.shuffle(&mut live);
    let start = std::time::Instant::now();
    for &id in live.iter().take(10_000) {
        assert!(tree.delete(id));
    }
    let elapsed = start.elapsed();
    assert_eq!(tree.len(), 2_000);
    assert!(tree.free_slots() > 0, "the burst must have freed slots");
    tree.validate().unwrap();
    // Generous wall-clock ceiling — the quadratic free-list scan blew
    // well past this; the bitset path finishes in well under a second.
    assert!(
        elapsed < std::time::Duration::from_secs(30),
        "10k-delete burst took {elapsed:?}"
    );
}
