//! Dataset statistics (experiment E13: the dataset description table).

use yask_index::Corpus;
use yask_text::KeywordSet;

/// Summary statistics of one corpus, as reported by `experiments e13`.
#[derive(Clone, Debug, PartialEq)]
pub struct DatasetStats {
    /// Number of objects.
    pub objects: usize,
    /// Number of distinct keywords across all objects.
    pub distinct_keywords: usize,
    /// Total keyword occurrences.
    pub total_keywords: usize,
    /// Smallest document size.
    pub min_doc: usize,
    /// Mean document size.
    pub avg_doc: f64,
    /// Largest document size.
    pub max_doc: usize,
    /// Width × height of the spatial bounding box.
    pub extent: (f64, f64),
}

impl DatasetStats {
    /// Computes the statistics for a corpus.
    pub fn of(corpus: &Corpus) -> DatasetStats {
        let mut uni = KeywordSet::empty();
        let mut total = 0usize;
        let mut min_doc = usize::MAX;
        let mut max_doc = 0usize;
        for o in corpus.iter() {
            total += o.doc.len();
            min_doc = min_doc.min(o.doc.len());
            max_doc = max_doc.max(o.doc.len());
            uni = uni.union(&o.doc);
        }
        let bounds = corpus.space().bounds();
        DatasetStats {
            objects: corpus.len(),
            distinct_keywords: uni.len(),
            total_keywords: total,
            min_doc: if corpus.is_empty() { 0 } else { min_doc },
            avg_doc: if corpus.is_empty() {
                0.0
            } else {
                total as f64 / corpus.len() as f64
            },
            max_doc,
            extent: (bounds.width(), bounds.height()),
        }
    }
}

impl std::fmt::Display for DatasetStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "objects={} vocab={} keywords={} doc(min/avg/max)={}/{:.2}/{} extent={:.4}x{:.4}",
            self.objects,
            self.distinct_keywords,
            self.total_keywords,
            self.min_doc,
            self.avg_doc,
            self.max_doc,
            self.extent.0,
            self.extent.1
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hk::hk_hotels;
    use crate::synth::SynthConfig;

    #[test]
    fn hk_stats_match_the_paper_scale() {
        let (corpus, _) = hk_hotels();
        let s = DatasetStats::of(&corpus);
        assert_eq!(s.objects, 539);
        assert!(s.distinct_keywords >= 100);
        assert!(s.min_doc >= 1);
        assert!(s.max_doc <= 15);
        assert!(s.avg_doc > 5.0 && s.avg_doc < 12.0);
    }

    #[test]
    fn synth_stats_track_config() {
        let c = SynthConfig::default().with_n(300).build();
        let s = DatasetStats::of(&c);
        assert_eq!(s.objects, 300);
        assert!(s.min_doc >= 3 && s.max_doc <= 10);
    }

    #[test]
    fn empty_corpus_stats() {
        let c = yask_index::CorpusBuilder::new().build();
        let s = DatasetStats::of(&c);
        assert_eq!(s.objects, 0);
        assert_eq!(s.min_doc, 0);
        assert_eq!(s.avg_doc, 0.0);
    }

    #[test]
    fn display_renders() {
        let (corpus, _) = hk_hotels();
        let line = DatasetStats::of(&corpus).to_string();
        assert!(line.contains("objects=539"), "{line}");
    }
}
