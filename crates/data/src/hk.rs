//! The 539-hotel Hong Kong stand-in dataset (see DESIGN.md §3).
//!
//! Fully deterministic: [`hk_hotels`] always produces the same corpus, so
//! examples, tests and EXPERIMENTS.md all reference identical data.
//! Construction: each hotel is assigned to a district by weight, scattered
//! around its centre with a Gaussian, given a combinatorial name tagged
//! with the district, and assigned 6–14 keywords — a Zipf-skewed draw from
//! the global facility vocabulary plus a district flavour term, which
//! gives neighbouring hotels the overlapping-but-distinct vocabularies the
//! keyword-adaptation module needs to be interesting.

use yask_geo::Point;
use yask_index::{Corpus, CorpusBuilder};
use yask_text::{KeywordSet, Vocabulary};
use yask_util::{Xoshiro256, Zipf};

use crate::vocabularies::{HK_DISTRICTS, HOTEL_KEYWORDS, NAME_PREFIXES, NAME_SUFFIXES};

/// Number of hotels, matching the paper's "some 539 hotels".
pub const HK_HOTEL_COUNT: usize = 539;

/// The fixed generation seed.
pub const HK_SEED: u64 = 0x59_41_53_4B; // "YASK"

/// District flavour keywords appended to the global vocabulary; hotels of
/// district `i` draw their flavour term from index `i`.
const DISTRICT_FLAVOURS: &[&str] = &[
    "promenade", "finance", "fashion", "streetfood", "exhibition2", "jade2", "quayside",
    "antiques", "stadium",
];

/// Builds the deterministic 539-hotel corpus and its vocabulary.
///
/// ```
/// let (corpus, vocab) = yask_data::hk_hotels();
/// assert_eq!(corpus.len(), 539);
/// assert!(vocab.lookup("harbour").is_some());
/// ```
pub fn hk_hotels() -> (Corpus, Vocabulary) {
    let mut vocab = Vocabulary::from_words(HOTEL_KEYWORDS.iter().copied());
    for flavour in DISTRICT_FLAVOURS {
        vocab.intern(flavour);
    }

    let mut rng = Xoshiro256::seed_from_u64(HK_SEED);
    let zipf = Zipf::new(HOTEL_KEYWORDS.len(), 0.9);

    // Deterministic district assignment proportional to weights.
    let mut counts: Vec<usize> = HK_DISTRICTS
        .iter()
        .map(|d| (d.weight * HK_HOTEL_COUNT as f64).floor() as usize)
        .collect();
    let mut assigned: usize = counts.iter().sum();
    let n_districts = counts.len();
    let mut i = 0;
    while assigned < HK_HOTEL_COUNT {
        counts[i % n_districts] += 1;
        assigned += 1;
        i += 1;
    }

    let mut builder = CorpusBuilder::with_capacity(HK_HOTEL_COUNT);
    let mut used_names = std::collections::HashSet::new();
    for (d_idx, district) in HK_DISTRICTS.iter().enumerate() {
        for _ in 0..counts[d_idx] {
            let lon = rng.normal(district.lon, district.sigma);
            let lat = rng.normal(district.lat, district.sigma);

            // 6–14 keywords: Zipf draws + the district flavour term.
            let n_kw = 6 + rng.below(9);
            let mut ids = Vec::with_capacity(n_kw + 1);
            for _ in 0..n_kw {
                let rank = zipf.sample(&mut rng);
                ids.push(
                    vocab
                        .lookup(HOTEL_KEYWORDS[rank])
                        .expect("vocabulary pre-filled"),
                );
            }
            if rng.chance(0.6) {
                ids.push(
                    vocab
                        .lookup(DISTRICT_FLAVOURS[d_idx])
                        .expect("flavour interned"),
                );
            }
            let doc = KeywordSet::from_ids(ids);

            // Distinct combinatorial name, suffixed on collision.
            let mut name = format!(
                "{} {} ({})",
                NAME_PREFIXES[rng.below(NAME_PREFIXES.len())],
                NAME_SUFFIXES[rng.below(NAME_SUFFIXES.len())],
                district.name
            );
            let mut suffix = 2;
            while !used_names.insert(name.clone()) {
                name = format!("{} #{}", name.trim_end_matches(|c: char| c == '#' || c.is_ascii_digit() || c == ' '), suffix);
                suffix += 1;
            }
            builder.push(Point::new(lon, lat), doc, name);
        }
    }
    (builder.build(), vocab)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn has_exactly_539_hotels() {
        let (corpus, _) = hk_hotels();
        assert_eq!(corpus.len(), HK_HOTEL_COUNT);
    }

    #[test]
    fn is_deterministic() {
        let (a, _) = hk_hotels();
        let (b, _) = hk_hotels();
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x.loc, y.loc);
            assert_eq!(x.doc, y.doc);
            assert_eq!(x.name, y.name);
        }
    }

    #[test]
    fn names_are_unique() {
        let (corpus, _) = hk_hotels();
        let names: std::collections::HashSet<&str> =
            corpus.iter().map(|o| o.name.as_str()).collect();
        assert_eq!(names.len(), corpus.len());
    }

    #[test]
    fn locations_are_in_hong_kong() {
        let (corpus, _) = hk_hotels();
        for o in corpus.iter() {
            assert!((114.0..114.4).contains(&o.loc.x), "{}: {:?}", o.name, o.loc);
            assert!((22.1..22.5).contains(&o.loc.y), "{}: {:?}", o.name, o.loc);
        }
    }

    #[test]
    fn keyword_sets_are_plausible() {
        let (corpus, vocab) = hk_hotels();
        let mut total = 0usize;
        for o in corpus.iter() {
            assert!(!o.doc.is_empty(), "{} has no keywords", o.name);
            assert!(o.doc.len() <= 15, "{} has {} keywords", o.name, o.doc.len());
            total += o.doc.len();
            for id in o.doc.iter() {
                // Every id resolves in the vocabulary.
                let _ = vocab.resolve(id);
            }
        }
        let avg = total as f64 / corpus.len() as f64;
        assert!((5.0..12.0).contains(&avg), "avg doc len {avg}");
    }

    #[test]
    fn common_keywords_are_frequent() {
        // Zipf skew: "wifi" (rank 0) must appear in far more hotels than a
        // tail keyword.
        let (corpus, vocab) = hk_hotels();
        let wifi = vocab.lookup("wifi").unwrap();
        let opera = vocab.lookup("opera").unwrap();
        let wifi_n = corpus.iter().filter(|o| o.doc.contains(wifi)).count();
        let opera_n = corpus.iter().filter(|o| o.doc.contains(opera)).count();
        assert!(wifi_n > 5 * opera_n.max(1), "wifi {wifi_n} vs opera {opera_n}");
        assert!(wifi_n > 200, "wifi in only {wifi_n} hotels");
    }

    #[test]
    fn spatially_clustered_by_district() {
        // The corpus bounding box is city-sized, but hotels concentrate:
        // a district-sized box around TST must hold far more than a
        // uniform share.
        let (corpus, _) = hk_hotels();
        let tst = corpus
            .iter()
            .filter(|o| {
                (114.160..114.184).contains(&o.loc.x) && (22.288..22.306).contains(&o.loc.y)
            })
            .count();
        assert!(tst > 80, "TST box holds only {tst} hotels");
    }
}
