//! Datasets for YASK.
//!
//! The demonstration uses "a small and focussed data set containing hotels
//! in Hong Kong … crawled from booking.com and contains some 539 hotels"
//! whose keywords were "extracted from the facilities and user comments"
//! (paper §4). That crawl is not redistributable, so [`hk`] provides a
//! **deterministic stand-in**: 539 synthetic hotels whose locations follow
//! a mixture of Gaussians centred on real Hong Kong districts and whose
//! keyword sets are Zipf-skewed draws from a 110-term facility/comment
//! vocabulary with per-district biases (see DESIGN.md §3 for why this
//! preserves the behaviour the algorithms care about).
//!
//! [`synth`] scales the same recipe to arbitrary sizes for the
//! performance sweeps, and adds workload helpers (random queries, missing
//! object selection). [`csv`] round-trips corpora through a plain TSV
//! format. [`stats`] summarizes a dataset the way experiment E13 reports
//! it.

pub mod csv;
pub mod hk;
pub mod stats;
pub mod synth;
pub mod vocabularies;

pub use hk::{hk_hotels, HK_HOTEL_COUNT, HK_SEED};
pub use stats::DatasetStats;
pub use synth::{gen_queries, gen_selective_queries, pick_missing, SpatialDistribution,
                SynthConfig};
