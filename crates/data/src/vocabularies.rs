//! Term lists for the synthetic hotel datasets.
//!
//! The facility/comment vocabulary is ordered roughly by how often such
//! terms appear in real hotel listings; the Zipf samplers exploit that
//! order (rank 0 = most frequent). Name parts combine into plausible
//! hotel names; districts carry real Hong Kong coordinates so the spatial
//! clustering of the stand-in dataset mirrors the city's actual hotel
//! geography.

/// Facility and comment keywords, most frequent first (110 terms).
pub const HOTEL_KEYWORDS: &[&str] = &[
    "wifi", "clean", "comfortable", "breakfast", "staff", "friendly", "service", "location",
    "metro", "restaurant", "aircon", "tv", "shower", "spacious", "quiet", "modern", "bar",
    "helpful", "view", "harbour", "gym", "pool", "family", "business", "central", "shopping",
    "elevator", "reception", "desk", "fridge", "safe", "laundry", "budget", "luxury", "parking",
    "buffet", "kitchen", "balcony", "bathtub", "towels", "toiletries", "minibar", "lounge",
    "airport", "shuttle", "spa", "rooftop", "terrace", "concierge", "heating", "slippers",
    "robe", "coffee", "juice", "vegetarian", "seafood", "dimsum", "cantonese", "noodles",
    "karaoke", "market", "tram", "ferry", "pier", "boutique", "historic", "renovated", "cozy",
    "stylish", "elegant", "checkin", "checkout", "downtown", "skyline", "garden", "pets",
    "nonsmoking", "accessible", "wheelchair", "crib", "sofa", "suite", "penthouse", "studio",
    "hostel", "dorm", "twin", "double", "king", "queen", "ocean", "mountain", "city",
    "nightlife", "temple", "museum", "park", "playground", "beach", "hiking", "convention",
    "exhibition", "mall", "cinema", "theater", "massage", "sauna", "jacuzzi", "yoga", "tennis",
    "opera",
];

/// First components of generated hotel names.
pub const NAME_PREFIXES: &[&str] = &[
    "Grand", "Royal", "Golden", "Harbour", "Imperial", "Pearl", "Lucky", "Jade", "Dragon",
    "Silver", "Star", "Crown", "Garden", "Ocean", "Victoria", "Kowloon", "Island", "Metro",
    "City", "Fortune",
];

/// Second components of generated hotel names.
pub const NAME_SUFFIXES: &[&str] = &[
    "Palace Hotel", "Plaza", "Court", "House", "Inn", "Lodge", "Residence", "Suites", "Hotel",
    "Mansion", "Tower", "Bayview", "Terrace Hotel", "Harbour Hotel", "Garden Hotel",
    "Boutique Hotel",
];

/// A Hong Kong district with its (longitude, latitude) centre, the
/// standard deviation of the hotel scatter around it (degrees), and its
/// share of the 539 hotels.
#[derive(Clone, Copy, Debug)]
pub struct District {
    /// Display name.
    pub name: &'static str,
    /// Longitude of the centre.
    pub lon: f64,
    /// Latitude of the centre.
    pub lat: f64,
    /// Scatter (standard deviation, degrees).
    pub sigma: f64,
    /// Relative weight when assigning hotels to districts.
    pub weight: f64,
}

/// The districts hosting the stand-in hotels, with real coordinates.
pub const HK_DISTRICTS: &[District] = &[
    District { name: "Tsim Sha Tsui", lon: 114.172, lat: 22.297, sigma: 0.0045, weight: 0.22 },
    District { name: "Central", lon: 114.158, lat: 22.281, sigma: 0.0040, weight: 0.14 },
    District { name: "Causeway Bay", lon: 114.184, lat: 22.280, sigma: 0.0040, weight: 0.14 },
    District { name: "Mong Kok", lon: 114.169, lat: 22.319, sigma: 0.0050, weight: 0.13 },
    District { name: "Wan Chai", lon: 114.173, lat: 22.277, sigma: 0.0035, weight: 0.11 },
    District { name: "Yau Ma Tei", lon: 114.170, lat: 22.305, sigma: 0.0040, weight: 0.10 },
    District { name: "North Point", lon: 114.200, lat: 22.291, sigma: 0.0045, weight: 0.06 },
    District { name: "Sheung Wan", lon: 114.150, lat: 22.286, sigma: 0.0035, weight: 0.06 },
    District { name: "Hung Hom", lon: 114.182, lat: 22.303, sigma: 0.0050, weight: 0.04 },
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keyword_list_is_deduplicated() {
        let set: std::collections::HashSet<&&str> = HOTEL_KEYWORDS.iter().collect();
        assert_eq!(set.len(), HOTEL_KEYWORDS.len());
        assert!(HOTEL_KEYWORDS.len() >= 100, "vocabulary too small");
    }

    #[test]
    fn district_weights_sum_to_one() {
        let total: f64 = HK_DISTRICTS.iter().map(|d| d.weight).sum();
        assert!((total - 1.0).abs() < 1e-9, "weights sum to {total}");
    }

    #[test]
    fn districts_are_within_hong_kong() {
        for d in HK_DISTRICTS {
            assert!((114.1..114.3).contains(&d.lon), "{}", d.name);
            assert!((22.2..22.4).contains(&d.lat), "{}", d.name);
            assert!(d.sigma > 0.0 && d.sigma < 0.02);
        }
    }

    #[test]
    fn name_parts_available() {
        assert!(NAME_PREFIXES.len() * NAME_SUFFIXES.len() >= 300);
    }
}
