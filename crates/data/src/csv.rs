//! Plain-text corpus persistence (tab-separated).
//!
//! Format, one object per line:
//!
//! ```text
//! x <TAB> y <TAB> name <TAB> kw1 kw2 kw3 ...
//! ```
//!
//! Keywords are stored as strings (resolved through the vocabulary), so a
//! file is self-contained and diff-able; loading re-interns them. Floats
//! round-trip exactly via Rust's shortest-representation formatting.

use std::io::{self, BufRead, BufWriter, Write};
use std::path::Path;

use yask_geo::Point;
use yask_index::{Corpus, CorpusBuilder};
use yask_text::{KeywordSet, Vocabulary};

/// Saves a corpus to `path`.
pub fn save_corpus(path: &Path, corpus: &Corpus, vocab: &Vocabulary) -> io::Result<()> {
    let mut out = BufWriter::new(std::fs::File::create(path)?);
    for o in corpus.iter() {
        let kws: Vec<&str> = o.doc.iter().map(|id| vocab.resolve(id)).collect();
        writeln!(out, "{}\t{}\t{}\t{}", o.loc.x, o.loc.y, o.name, kws.join(" "))?;
    }
    out.flush()
}

/// Loads a corpus from `path`, building a fresh vocabulary.
pub fn load_corpus(path: &Path) -> io::Result<(Corpus, Vocabulary)> {
    let file = std::fs::File::open(path)?;
    let mut vocab = Vocabulary::new();
    let mut builder = CorpusBuilder::new();
    let mut line = String::new();
    let mut reader = io::BufReader::new(file);
    let mut lineno = 0usize;
    while reader.read_line(&mut line)? != 0 {
        lineno += 1;
        let trimmed = line.trim_end_matches(['\n', '\r']);
        if trimmed.is_empty() {
            line.clear();
            continue;
        }
        let mut fields = trimmed.splitn(4, '\t');
        let parse = |s: Option<&str>, what: &str| -> io::Result<f64> {
            s.and_then(|v| v.parse().ok()).ok_or_else(|| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("line {lineno}: bad {what}"),
                )
            })
        };
        let x = parse(fields.next(), "x")?;
        let y = parse(fields.next(), "y")?;
        let name = fields
            .next()
            .ok_or_else(|| {
                io::Error::new(io::ErrorKind::InvalidData, format!("line {lineno}: no name"))
            })?
            .to_owned();
        let kws = fields.next().unwrap_or("");
        let doc = KeywordSet::from_ids(kws.split_whitespace().map(|w| vocab.intern(w)));
        builder.push(Point::new(x, y), doc, name);
        line.clear();
    }
    Ok((builder.build(), vocab))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hk::hk_hotels;

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("yask-csv-{}-{}", std::process::id(), name));
        p
    }

    #[test]
    fn round_trips_the_hk_dataset() {
        let (corpus, vocab) = hk_hotels();
        let path = tmp("roundtrip.tsv");
        save_corpus(&path, &corpus, &vocab).unwrap();
        let (loaded, loaded_vocab) = load_corpus(&path).unwrap();
        assert_eq!(loaded.len(), corpus.len());
        for (a, b) in corpus.iter().zip(loaded.iter()) {
            assert_eq!(a.loc, b.loc, "{}", a.name);
            assert_eq!(a.name, b.name);
            // Keyword identity survives through the string round-trip.
            let a_words: std::collections::BTreeSet<&str> =
                a.doc.iter().map(|id| vocab.resolve(id)).collect();
            let b_words: std::collections::BTreeSet<&str> =
                b.doc.iter().map(|id| loaded_vocab.resolve(id)).collect();
            assert_eq!(a_words, b_words, "{}", a.name);
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_file_loads_empty_corpus() {
        let path = tmp("empty.tsv");
        std::fs::write(&path, "").unwrap();
        let (corpus, vocab) = load_corpus(&path).unwrap();
        assert!(corpus.is_empty());
        assert!(vocab.is_empty());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn malformed_line_is_reported_with_number() {
        let path = tmp("bad.tsv");
        std::fs::write(&path, "0.1\t0.2\tok\twifi\nnot-a-number\t0.2\tbad\twifi\n").unwrap();
        let err = load_corpus(&path).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("line 2"), "{err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn blank_lines_are_skipped() {
        let path = tmp("blank.tsv");
        std::fs::write(&path, "0.5\t0.5\ta\twifi pool\n\n0.6\t0.6\tb\t\n").unwrap();
        let (corpus, _) = load_corpus(&path).unwrap();
        assert_eq!(corpus.len(), 2);
        assert_eq!(corpus.get(yask_index::ObjectId(1)).doc.len(), 0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_errors() {
        assert!(load_corpus(Path::new("/nonexistent/yask.tsv")).is_err());
    }
}
