//! Scalable synthetic workloads for the performance experiments.
//!
//! [`SynthConfig`] scales the HK recipe to arbitrary sizes: uniform or
//! clustered locations in the unit square, Zipf-skewed keyword draws from
//! a configurable vocabulary. The helpers [`gen_queries`] and
//! [`pick_missing`] generate the query workloads and why-not scenarios
//! used by the benches and the experiments binary.

use yask_geo::{Point, Space};
use yask_index::{Corpus, CorpusBuilder, ObjectId};
use yask_query::{topk_scan, Query, ScoreParams, Weights};
use yask_text::KeywordSet;
use yask_util::{Xoshiro256, Zipf};

/// Location distribution of a synthetic corpus.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum SpatialDistribution {
    /// Uniform over the unit square.
    Uniform,
    /// A mixture of `clusters` Gaussians with the given standard
    /// deviation, centres drawn uniformly — models city districts.
    Clustered {
        /// Number of cluster centres.
        clusters: usize,
        /// Per-cluster standard deviation.
        sigma: f64,
    },
}

/// Synthetic dataset configuration.
#[derive(Clone, Copy, Debug)]
pub struct SynthConfig {
    /// Number of objects.
    pub n: usize,
    /// Vocabulary size (keyword ids `0..vocab`).
    pub vocab: usize,
    /// Minimum keywords per object.
    pub min_doc: usize,
    /// Maximum keywords per object (inclusive).
    pub max_doc: usize,
    /// Zipf skew of keyword draws (0 = uniform; ≈1 = natural language).
    pub zipf_s: f64,
    /// Location distribution.
    pub spatial: SpatialDistribution,
    /// Generation seed.
    pub seed: u64,
}

impl Default for SynthConfig {
    /// 10k clustered objects over a 1 000-term vocabulary — the default
    /// workload unit of the experiments.
    fn default() -> Self {
        SynthConfig {
            n: 10_000,
            vocab: 1_000,
            min_doc: 3,
            max_doc: 10,
            zipf_s: 0.9,
            spatial: SpatialDistribution::Clustered {
                clusters: 12,
                sigma: 0.03,
            },
            seed: 7,
        }
    }
}

impl SynthConfig {
    /// A config with a different object count (for scalability sweeps all
    /// other parameters stay fixed).
    pub fn with_n(mut self, n: usize) -> Self {
        self.n = n;
        self
    }

    /// A config with a different seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builds the corpus. The data space is pinned to the unit square so
    /// corpora of different sizes share one distance normalization.
    pub fn build(&self) -> Corpus {
        assert!(self.min_doc >= 1 && self.min_doc <= self.max_doc);
        assert!(self.vocab >= self.max_doc, "vocabulary smaller than documents");
        let mut rng = Xoshiro256::seed_from_u64(self.seed);
        let zipf = Zipf::new(self.vocab, self.zipf_s);

        let centres: Vec<(f64, f64)> = match self.spatial {
            SpatialDistribution::Uniform => Vec::new(),
            SpatialDistribution::Clustered { clusters, .. } => (0..clusters)
                .map(|_| (rng.next_f64(), rng.next_f64()))
                .collect(),
        };

        let mut b = CorpusBuilder::with_capacity(self.n).with_space(Space::unit());
        for i in 0..self.n {
            let (x, y) = match self.spatial {
                SpatialDistribution::Uniform => (rng.next_f64(), rng.next_f64()),
                SpatialDistribution::Clustered { sigma, .. } => {
                    let (cx, cy) = centres[rng.below(centres.len())];
                    (
                        rng.normal(cx, sigma).clamp(0.0, 1.0),
                        rng.normal(cy, sigma).clamp(0.0, 1.0),
                    )
                }
            };
            let n_kw = rng.range_usize(self.min_doc, self.max_doc + 1);
            // Zipf draws repeat; collect until n_kw *distinct* keywords so
            // document sizes honour [min_doc, max_doc] after dedup.
            let mut kws: Vec<u32> = Vec::with_capacity(n_kw);
            while kws.len() < n_kw {
                let kw = zipf.sample(&mut rng) as u32;
                if !kws.contains(&kw) {
                    kws.push(kw);
                }
            }
            let doc = KeywordSet::from_raw(kws);
            b.push(Point::new(x, y), doc, format!("obj-{i}"));
        }
        b.build()
    }
}

/// Generates `count` random queries against a corpus: location uniform in
/// the data space, `doc_len` Zipf-ish keywords, fixed `k`, balanced
/// weights.
pub fn gen_queries(corpus: &Corpus, count: usize, doc_len: usize, k: usize, seed: u64) -> Vec<Query> {
    let mut rng = Xoshiro256::seed_from_u64(seed);
    let bounds = corpus.space().bounds();
    // Draw query keywords from actual object docs so queries are selective
    // but non-trivial (pure random ids mostly miss under large vocabularies).
    (0..count)
        .map(|_| {
            let x = rng.range_f64(bounds.lo.x, bounds.hi.x);
            let y = rng.range_f64(bounds.lo.y, bounds.hi.y);
            let mut kws = Vec::with_capacity(doc_len);
            while kws.len() < doc_len {
                let o = corpus.get(ObjectId(rng.below(corpus.len()) as u32));
                if o.doc.is_empty() {
                    continue;
                }
                let raw = o.doc.raw();
                kws.push(raw[rng.below(raw.len())]);
            }
            Query::with_weights(
                Point::new(x, y),
                KeywordSet::from_raw(kws),
                k,
                Weights::balanced(),
            )
        })
        .collect()
}

/// Like [`gen_queries`], but each query keyword is the *globally rarest*
/// keyword of a random object's document — modelling users who type
/// discriminative terms ("dimsum") rather than ubiquitous ones ("wifi").
/// Index structures prune far more effectively on such workloads, which
/// is the regime the indexing papers evaluate.
pub fn gen_selective_queries(
    corpus: &Corpus,
    count: usize,
    doc_len: usize,
    k: usize,
    seed: u64,
) -> Vec<Query> {
    let mut rng = Xoshiro256::seed_from_u64(seed);
    // Document frequency per keyword.
    let mut df: std::collections::HashMap<u32, u32> = std::collections::HashMap::new();
    for o in corpus.iter() {
        for &kw in o.doc.raw() {
            *df.entry(kw).or_insert(0) += 1;
        }
    }
    let bounds = corpus.space().bounds();
    (0..count)
        .map(|_| {
            let x = rng.range_f64(bounds.lo.x, bounds.hi.x);
            let y = rng.range_f64(bounds.lo.y, bounds.hi.y);
            let mut kws = Vec::with_capacity(doc_len);
            while kws.len() < doc_len {
                let o = corpus.get(ObjectId(rng.below(corpus.len()) as u32));
                if o.doc.is_empty() {
                    continue;
                }
                let rarest = o
                    .doc
                    .raw()
                    .iter()
                    .min_by_key(|kw| df.get(kw).copied().unwrap_or(0))
                    .copied()
                    .expect("non-empty doc");
                kws.push(rarest);
            }
            Query::with_weights(
                Point::new(x, y),
                KeywordSet::from_raw(kws),
                k,
                Weights::balanced(),
            )
        })
        .collect()
}

/// Picks `count` genuinely-missing objects for a why-not scenario: the
/// objects ranked `offset + 1 .. offset + count` positions past `q.k`
/// under the full ranking. Panics when the corpus is too small.
pub fn pick_missing(
    corpus: &Corpus,
    params: &ScoreParams,
    q: &Query,
    count: usize,
    offset: usize,
) -> Vec<ObjectId> {
    let all = topk_scan(corpus, params, &q.with_k(corpus.len()));
    assert!(
        q.k + offset + count <= all.len(),
        "corpus too small: need rank {} of {}",
        q.k + offset + count,
        all.len()
    );
    all[q.k + offset..q.k + offset + count]
        .iter()
        .map(|r| r.id)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_respects_config() {
        let c = SynthConfig {
            n: 500,
            vocab: 100,
            min_doc: 2,
            max_doc: 6,
            zipf_s: 1.0,
            spatial: SpatialDistribution::Uniform,
            seed: 3,
        }
        .build();
        assert_eq!(c.len(), 500);
        for o in c.iter() {
            assert!(!o.doc.is_empty() && o.doc.len() <= 6);
            assert!(o.doc.raw().iter().all(|&k| k < 100));
            assert!(c.space().bounds().contains_point(&o.loc));
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = SynthConfig::default().with_n(200).build();
        let b = SynthConfig::default().with_n(200).build();
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x.loc, y.loc);
            assert_eq!(x.doc, y.doc);
        }
        let c = SynthConfig::default().with_n(200).with_seed(99).build();
        assert!(a.iter().zip(c.iter()).any(|(x, y)| x.loc != y.loc));
    }

    #[test]
    fn clustered_is_denser_than_uniform() {
        let clustered = SynthConfig::default().with_n(2000).build();
        // Average nearest-cluster density proxy: the variance of x should
        // be lower than for a uniform draw.
        let var = |c: &Corpus| {
            let mean = c.iter().map(|o| o.loc.x).sum::<f64>() / c.len() as f64;
            c.iter().map(|o| (o.loc.x - mean).powi(2)).sum::<f64>() / c.len() as f64
        };
        let uniform = SynthConfig {
            spatial: SpatialDistribution::Uniform,
            ..SynthConfig::default()
        }
        .with_n(2000)
        .build();
        assert!(var(&clustered) < var(&uniform) * 1.2);
    }

    #[test]
    fn queries_hit_the_corpus_vocabulary() {
        let c = SynthConfig::default().with_n(1000).build();
        let qs = gen_queries(&c, 20, 3, 10, 5);
        assert_eq!(qs.len(), 20);
        for q in &qs {
            assert!(!q.doc.is_empty() && q.doc.len() <= 3);
            assert_eq!(q.k, 10);
            // At least one object shares a keyword (drawn from docs).
            assert!(c.iter().any(|o| o.doc.intersection_size(&q.doc) > 0));
        }
    }

    #[test]
    fn selective_queries_are_more_selective() {
        let c = SynthConfig::default().with_n(3000).build();
        let common = gen_queries(&c, 15, 2, 10, 5);
        let rare = gen_selective_queries(&c, 15, 2, 10, 5);
        let matches = |qs: &[Query]| -> usize {
            qs.iter()
                .map(|q| c.iter().filter(|o| o.doc.intersection_size(&q.doc) > 0).count())
                .sum()
        };
        let m_common = matches(&common);
        let m_rare = matches(&rare);
        assert!(
            m_rare * 2 < m_common,
            "selective queries should match far fewer objects: {m_rare} vs {m_common}"
        );
        // Still non-trivial: every query matches at least one object.
        for q in &rare {
            assert!(c.iter().any(|o| o.doc.intersection_size(&q.doc) > 0));
        }
    }

    #[test]
    fn pick_missing_returns_out_of_result_objects() {
        let c = SynthConfig::default().with_n(500).build();
        let params = ScoreParams::new(c.space());
        let q = &gen_queries(&c, 1, 3, 5, 8)[0];
        let missing = pick_missing(&c, &params, q, 3, 2);
        assert_eq!(missing.len(), 3);
        let top: Vec<ObjectId> = topk_scan(&c, &params, q).iter().map(|r| r.id).collect();
        for m in &missing {
            assert!(!top.contains(m));
        }
    }
}
