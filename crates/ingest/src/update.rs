//! The write operations a corpus accepts, and their validation.

use yask_geo::Point;
use yask_index::{Corpus, ObjectId};
use yask_text::KeywordSet;

/// A new spatio-textual object, before it has an id.
#[derive(Clone, Debug, PartialEq)]
pub struct NewObject {
    /// `o.loc`.
    pub loc: Point,
    /// `o.doc`.
    pub doc: KeywordSet,
    /// Display name.
    pub name: String,
}

impl NewObject {
    /// Convenience constructor.
    pub fn new(loc: Point, doc: KeywordSet, name: impl Into<String>) -> Self {
        NewObject {
            loc,
            doc,
            name: name.into(),
        }
    }
}

/// One corpus write operation.
#[derive(Clone, Debug, PartialEq)]
pub enum Update {
    /// Add an object (a fresh id is assigned on apply).
    Insert(NewObject),
    /// Tombstone an existing live object.
    Delete(ObjectId),
}

/// Why a write batch was rejected. Validation runs *before* the batch
/// reaches the write-ahead log, so the log never records a batch that
/// cannot replay.
#[derive(Debug)]
pub enum IngestError {
    /// The batch contains no operations.
    EmptyBatch,
    /// A delete names a slot that does not exist.
    UnknownObject(ObjectId),
    /// A delete names a slot that is already tombstoned.
    DeadObject(ObjectId),
    /// The batch deletes the same live object twice — a malformed
    /// request, not a state conflict.
    DuplicateDelete(ObjectId),
    /// An insert carries a non-finite location.
    NonFiniteLocation,
    /// The write-ahead log on disk does not belong to this base corpus
    /// (its recorded base slot count differs).
    WalBaseMismatch {
        /// Slot count recorded in the log header.
        wal: u64,
        /// Slot count of the corpus the caller supplied.
        corpus: u64,
    },
    /// The log file is corrupt.
    WalCorrupt(String),
    /// An I/O failure in the log.
    Io(std::io::Error),
}

impl std::fmt::Display for IngestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IngestError::EmptyBatch => write!(f, "write batch is empty"),
            IngestError::UnknownObject(id) => write!(f, "object {id} does not exist"),
            IngestError::DeadObject(id) => write!(f, "object {id} is already deleted"),
            IngestError::DuplicateDelete(id) => {
                write!(f, "batch deletes object {id} more than once")
            }
            IngestError::NonFiniteLocation => write!(f, "insert location must be finite"),
            IngestError::WalBaseMismatch { wal, corpus } => write!(
                f,
                "write-ahead log belongs to a corpus with {wal} base slots, not {corpus}"
            ),
            IngestError::WalCorrupt(why) => write!(f, "write-ahead log corrupt: {why}"),
            IngestError::Io(e) => write!(f, "write-ahead log I/O: {e}"),
        }
    }
}

impl std::error::Error for IngestError {}

impl From<std::io::Error> for IngestError {
    fn from(e: std::io::Error) -> Self {
        IngestError::Io(e)
    }
}

/// Validates `batch` against a corpus version: every delete must target a
/// live slot (duplicates within the batch count as dead), every insert a
/// finite location. Inserts appended by the same batch are not yet
/// addressable — a batch cannot delete an object it inserts.
pub fn validate_batch(corpus: &Corpus, batch: &[Update]) -> Result<(), IngestError> {
    if batch.is_empty() {
        return Err(IngestError::EmptyBatch);
    }
    // Hash set, not a scan: a 1 MiB bulk request can carry ~10^5 deletes,
    // and validation runs under the global writer lock.
    let mut seen_deletes: yask_util::FxHashSet<u32> = yask_util::FxHashSet::default();
    for op in batch {
        match op {
            Update::Insert(o) => {
                if !o.loc.is_finite() {
                    return Err(IngestError::NonFiniteLocation);
                }
            }
            Update::Delete(id) => {
                if id.index() >= corpus.slot_count() {
                    return Err(IngestError::UnknownObject(*id));
                }
                if !corpus.contains(*id) {
                    return Err(IngestError::DeadObject(*id));
                }
                if !seen_deletes.insert(id.0) {
                    return Err(IngestError::DuplicateDelete(*id));
                }
            }
        }
    }
    Ok(())
}

/// Applies a *validated* batch to a corpus version; returns the next
/// version plus the ids assigned to the batch's inserts and the ids it
/// tombstoned.
pub fn apply_batch(corpus: &Corpus, batch: &[Update]) -> (Corpus, Vec<ObjectId>, Vec<ObjectId>) {
    let (next, inserted, deleted, _) = apply_batch_counted(corpus, batch);
    (next, inserted, deleted)
}

/// [`apply_batch`] also reporting the chunk copy-on-write work the
/// derivation performed ([`yask_index::CopyStats`]) — the ingest layer
/// accumulates it so `/stats` can prove write cost stays O(batch), not
/// O(n).
pub fn apply_batch_counted(
    corpus: &Corpus,
    batch: &[Update],
) -> (Corpus, Vec<ObjectId>, Vec<ObjectId>, yask_index::CopyStats) {
    let inserts = batch.iter().filter_map(|op| match op {
        Update::Insert(o) => Some((o.loc, o.doc.clone(), o.name.clone())),
        Update::Delete(_) => None,
    });
    let deletes: Vec<ObjectId> = batch
        .iter()
        .filter_map(|op| match op {
            Update::Delete(id) => Some(*id),
            Update::Insert(_) => None,
        })
        .collect();
    let (next, new_ids, copy) = corpus.with_updates_counted(inserts, &deletes);
    (next, new_ids, deletes, copy)
}

#[cfg(test)]
mod tests {
    use super::*;
    use yask_geo::Space;
    use yask_index::CorpusBuilder;

    fn corpus() -> Corpus {
        let mut b = CorpusBuilder::new().with_space(Space::unit());
        b.push(Point::new(0.1, 0.1), KeywordSet::from_raw([1u32]), "a");
        b.push(Point::new(0.2, 0.2), KeywordSet::from_raw([2u32]), "b");
        b.build()
    }

    fn insert(x: f64, y: f64) -> Update {
        Update::Insert(NewObject::new(
            Point::new(x, y),
            KeywordSet::from_raw([3u32]),
            "new",
        ))
    }

    #[test]
    fn validation_rejects_bad_batches() {
        let c = corpus();
        assert!(matches!(
            validate_batch(&c, &[]),
            Err(IngestError::EmptyBatch)
        ));
        assert!(matches!(
            validate_batch(&c, &[Update::Delete(ObjectId(9))]),
            Err(IngestError::UnknownObject(ObjectId(9)))
        ));
        assert!(matches!(
            validate_batch(&c, &[Update::Delete(ObjectId(0)), Update::Delete(ObjectId(0))]),
            Err(IngestError::DuplicateDelete(ObjectId(0)))
        ));
        assert!(matches!(
            validate_batch(&c, &[insert(f64::NAN, 0.0)]),
            Err(IngestError::NonFiniteLocation)
        ));
        let (dead, _) = c.with_updates(std::iter::empty(), &[ObjectId(1)]);
        assert!(matches!(
            validate_batch(&dead, &[Update::Delete(ObjectId(1))]),
            Err(IngestError::DeadObject(ObjectId(1)))
        ));
    }

    #[test]
    fn apply_assigns_ids_in_batch_order() {
        let c = corpus();
        let batch = vec![
            insert(0.3, 0.3),
            Update::Delete(ObjectId(0)),
            insert(0.4, 0.4),
        ];
        validate_batch(&c, &batch).unwrap();
        let (next, inserted, deleted) = apply_batch(&c, &batch);
        assert_eq!(inserted, vec![ObjectId(2), ObjectId(3)]);
        assert_eq!(deleted, vec![ObjectId(0)]);
        assert_eq!(next.len(), 3);
        assert_eq!(next.slot_count(), 4);
    }

    #[test]
    fn errors_render() {
        for (e, needle) in [
            (IngestError::EmptyBatch, "empty"),
            (IngestError::UnknownObject(ObjectId(3)), "o3"),
            (IngestError::DeadObject(ObjectId(4)), "deleted"),
            (IngestError::DuplicateDelete(ObjectId(5)), "more than once"),
            (IngestError::NonFiniteLocation, "finite"),
            (IngestError::WalBaseMismatch { wal: 1, corpus: 2 }, "base slots"),
            (IngestError::WalCorrupt("bad".into()), "corrupt"),
        ] {
            assert!(e.to_string().contains(needle), "{e}");
        }
    }
}
