//! The write-ahead log, persisted through the `yask_pager` page store.
//!
//! One commit = one *group* of batches. [`Wal::append_group`] serializes
//! every batch of the group into the sequential data pages after the
//! committed tail, syncs them once, then publishes the new committed
//! length in the header page and syncs again — the classic two-phase
//! append, so a crash between the phases leaves a torn tail that the
//! header simply does not cover and replay ignores. Updates therefore
//! survive restarts exactly up to the last completed commit
//! (`fsync`-on-commit durability). [`Wal::append`] is the group of one.
//!
//! **Group commit.** The two syncs dominate small-batch write latency
//! (they are the bulk of `write_mean_us` in `BENCH_ingest.json`), so
//! coalescing N batches under one sync pair amortizes the expensive part
//! N-fold while leaving the record format — and therefore replay —
//! completely unchanged: each batch keeps its own record and its own
//! epoch. [`GroupCommitConfig`] bounds how many batches/bytes one commit
//! may coalesce; the `groups` counter (batches ÷ groups = amortization
//! factor) is surfaced through [`WalStats`] and `/stats`.
//!
//! **Checkpointing.** The log applies on top of a *base*: the corpus
//! state at `base_epoch` with `base_slots` id slots — the seed corpus
//! for a fresh deployment (`base_epoch = 0`), or the latest
//! `yask_pager` checkpoint snapshot after the ingest layer folds the
//! log into one. [`Wal::reset`] truncates the log to empty over a new
//! base (one header publish + sync), which is how a checkpoint
//! atomically claims every record before it; recovery then replays only
//! the records committed after the checkpoint.
//!
//! File layout (4 KiB pages via [`BufferPool`]):
//!
//! | page | contents                                                     |
//! |------|--------------------------------------------------------------|
//! | 0    | header: magic, base slot count, committed bytes, batch count, group count, base epoch |
//! | 1…   | raw record bytes, sequential (byte `b` lives in page `1 + b/PAGE_SIZE`) |
//!
//! Record encoding (little-endian): per batch a `u32` op count, then per
//! op a tag byte — `0` = insert (`f64 x`, `f64 y`, `u32` name length +
//! UTF-8 bytes, `u32` keyword count + `u32` ids), `1` = delete (`u32`
//! slot id).

use std::io;
use std::path::Path;
use std::time::Instant;

use yask_geo::Point;
use yask_obs::{Histogram, HistogramSnapshot};
use yask_index::ObjectId;
use yask_pager::{BufferPool, PageId, PoolStats, PAGE_SIZE};
use yask_text::KeywordSet;

use crate::update::{IngestError, NewObject, Update};

const MAGIC: &[u8; 8] = b"YASKWAL1";
const TAG_INSERT: u8 = 0;
const TAG_DELETE: u8 = 1;
/// Upper bound on one record's variable payloads — a guard against
/// replaying a corrupt length as a multi-gigabyte allocation.
const MAX_FIELD: u32 = 1 << 24;

/// Counters of the durable log, surfaced by `/stats`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WalStats {
    /// Committed batches *in the log* — records since the base. The
    /// durable epoch is `base_epoch + batches`.
    pub batches: u64,
    /// Committed payload bytes (since the base).
    pub bytes: u64,
    /// Commit groups flushed — each paid exactly one two-phase fsync
    /// pair, so `batches / groups` is the fsync amortization factor.
    pub groups: u64,
    /// The epoch the log's records apply on top of: 0 for a fresh log,
    /// the checkpoint epoch after a [`Wal::reset`].
    pub base_epoch: u64,
    /// Buffer-pool cache counters of the log file's pool — the log's
    /// page I/O, priced the same way the shard pager's is.
    pub pool: PoolStats,
}

/// Bounds on how much one group commit may coalesce.
#[derive(Clone, Copy, Debug)]
pub struct GroupCommitConfig {
    /// Maximum batches per commit group (the window).
    pub max_batches: usize,
    /// Maximum encoded payload bytes per commit group (the size cap); a
    /// single oversized batch still commits alone.
    pub max_bytes: usize,
}

impl Default for GroupCommitConfig {
    fn default() -> Self {
        GroupCommitConfig {
            max_batches: 64,
            max_bytes: 256 * 1024,
        }
    }
}

/// Latency histogram snapshots of the log's commit path, for `/metrics`.
#[derive(Clone, Debug, Default)]
pub struct WalHistSnapshots {
    /// Whole durable commits ([`Wal::append_group`] / [`Wal::append`]):
    /// encode + data write + both fsyncs.
    pub append: HistogramSnapshot,
    /// Individual `fsync` calls on the commit path (two per group).
    pub fsync: HistogramSnapshot,
}

/// The append-only, replayable write-ahead log.
pub struct Wal {
    pool: BufferPool,
    base_slots: u64,
    base_epoch: u64,
    committed_bytes: u64,
    batches: u64,
    groups: u64,
    /// Times whole commits; recorded even when the commit errors (the
    /// latency was paid either way).
    append_hist: Histogram,
    /// Times each commit-path `fsync` individually, so sync cost and
    /// encode/write cost separate in the histograms.
    fsync_hist: Histogram,
}

impl Wal {
    /// Opens the log at `path`, creating it when absent. `base_slots` is
    /// the slot count of the corpus the log's batches apply on top of; an
    /// existing log recorded for a different base is rejected. Returns
    /// the log plus every committed batch, in commit order, for replay.
    pub fn open_or_create(
        path: &Path,
        base_slots: u64,
    ) -> Result<(Wal, Vec<Vec<Update>>), IngestError> {
        if path.exists() {
            let (wal, replayed) = Wal::open_existing(path)?;
            if wal.base_slots != base_slots {
                return Err(IngestError::WalBaseMismatch {
                    wal: wal.base_slots,
                    corpus: base_slots,
                });
            }
            Ok((wal, replayed))
        } else {
            Ok((Wal::create(path, base_slots, 0)?, Vec::new()))
        }
    }

    /// Creates a fresh, empty log whose records will apply on top of the
    /// corpus state at `base_epoch` with `base_slots` slots.
    pub fn create(path: &Path, base_slots: u64, base_epoch: u64) -> Result<Wal, IngestError> {
        let pool = BufferPool::create(path, 64)?;
        let header = pool.allocate()?;
        debug_assert_eq!(header, PageId(0));
        let wal = Wal {
            pool,
            base_slots,
            base_epoch,
            committed_bytes: 0,
            batches: 0,
            groups: 0,
            append_hist: Histogram::new(),
            fsync_hist: Histogram::new(),
        };
        wal.write_header(0, 0, 0)?;
        wal.pool.sync()?;
        Ok(wal)
    }

    /// Opens an existing log without a base expectation — the caller
    /// (checkpoint-aware recovery) inspects [`Wal::base_slots`] /
    /// [`Wal::base_epoch`] itself. Returns every committed batch, in
    /// commit order, for replay.
    pub fn open_existing(path: &Path) -> Result<(Wal, Vec<Vec<Update>>), IngestError> {
        let pool = BufferPool::open(path, 64)?;
        let header = pool.read(PageId(0))?;
        if &header[..8] != MAGIC {
            return Err(IngestError::WalCorrupt("bad magic".into()));
        }
        let word = |i: usize| u64::from_le_bytes(header[i..i + 8].try_into().expect("header word"));
        let base_slots = word(8);
        let committed_bytes = word(16);
        let batches = word(24);
        let groups = word(32);
        let base_epoch = word(40);
        // Plausibility-check the header words before they size any
        // allocation: a rotted header must be a WalCorrupt error, not a
        // capacity panic or a multi-gigabyte allocation during replay.
        let data_capacity = pool.page_count().saturating_sub(1) * PAGE_SIZE as u64;
        if committed_bytes > data_capacity {
            return Err(IngestError::WalCorrupt(format!(
                "header claims {committed_bytes} committed bytes but the file holds {data_capacity}"
            )));
        }
        // Every batch is at least its 4-byte op count.
        if batches > committed_bytes / 4 {
            return Err(IngestError::WalCorrupt(format!(
                "header claims {batches} batches in {committed_bytes} bytes"
            )));
        }
        // Every group commits at least one batch (pre-group-commit files
        // carry 0 here, which is fine).
        if groups > batches {
            return Err(IngestError::WalCorrupt(format!(
                "header claims {groups} groups for {batches} batches"
            )));
        }
        let wal = Wal {
            pool,
            base_slots,
            base_epoch,
            committed_bytes,
            batches,
            groups,
            append_hist: Histogram::new(),
            fsync_hist: Histogram::new(),
        };
        let replayed = wal.replay()?;
        Ok((wal, replayed))
    }

    /// Committed batch count since the base — the durable epoch is
    /// [`Wal::base_epoch`] plus this.
    pub fn batches(&self) -> u64 {
        self.batches
    }

    /// Slot count of the corpus state the log's records apply on top of.
    pub fn base_slots(&self) -> u64 {
        self.base_slots
    }

    /// Epoch of the corpus state the log's records apply on top of.
    pub fn base_epoch(&self) -> u64 {
        self.base_epoch
    }

    /// Committed payload bytes.
    pub fn bytes(&self) -> u64 {
        self.committed_bytes
    }

    /// Commit groups flushed (each = one two-phase fsync pair).
    pub fn groups(&self) -> u64 {
        self.groups
    }

    /// Counter snapshot.
    pub fn stats(&self) -> WalStats {
        WalStats {
            batches: self.batches,
            bytes: self.committed_bytes,
            groups: self.groups,
            base_epoch: self.base_epoch,
            pool: self.pool.stats(),
        }
    }

    /// Truncates the log to empty over a new base — the atomic tail of
    /// a checkpoint: once the snapshot for `base_epoch` is durably on
    /// disk, one header publish (+ sync) discards every record the
    /// snapshot already covers. A crash *before* this publish leaves the
    /// old header claiming the full record run, which recovery resolves
    /// by skipping the records the snapshot covers (the log bytes stay
    /// untouched until the next checkpoint truncates them).
    pub fn reset(&mut self, base_slots: u64, base_epoch: u64) -> io::Result<()> {
        let (old_slots, old_epoch) = (self.base_slots, self.base_epoch);
        self.base_slots = base_slots;
        self.base_epoch = base_epoch;
        if let Err(e) = self.write_header(0, 0, 0).and_then(|()| self.pool.sync()) {
            // Failed publish: keep describing the on-disk state.
            self.base_slots = old_slots;
            self.base_epoch = old_epoch;
            return Err(e);
        }
        self.committed_bytes = 0;
        self.batches = 0;
        self.groups = 0;
        Ok(())
    }

    /// Appends one batch and commits it durably — a group of one.
    pub fn append(&mut self, batch: &[Update]) -> io::Result<()> {
        self.append_group(&[batch])
    }

    /// Appends a *group* of batches under one durable commit: every
    /// batch's record is written past the committed tail, the data pages
    /// sync once, and one header publish (plus its sync) makes the whole
    /// group visible to replay — two fsyncs total instead of two per
    /// batch. Each batch keeps its own record, so replay still yields one
    /// epoch per batch in order.
    ///
    /// The in-memory counters advance only after the header commit fully
    /// succeeds: a failed commit leaves them on the old tail, so a retry
    /// rewrites the same bytes at the same offset (idempotent) instead of
    /// silently making the failed group durable behind the caller's back.
    /// A crash between the phases leaves the *entire group* invisible —
    /// group commit trades per-batch durability latency for atomicity of
    /// the group, never for torn batches.
    pub fn append_group(&mut self, batches: &[&[Update]]) -> io::Result<()> {
        if batches.is_empty() {
            return Ok(());
        }
        let t0 = Instant::now();
        let result = self.commit_group(batches);
        self.append_hist.record(t0.elapsed());
        result
    }

    fn commit_group(&mut self, batches: &[&[Update]]) -> io::Result<()> {
        let mut payload = Vec::new();
        for batch in batches {
            payload.extend_from_slice(&encode_batch(batch));
        }
        // Phase 1: the record bytes, beyond the committed tail. The
        // failpoints model each fault the two-phase commit is supposed
        // to survive: a failed payload write/sync leaves the group
        // invisible, a failed header write/sync leaves the *whole group*
        // invisible (counters don't advance), and a crash between the
        // phases is the torn-header case recovery resolves by replaying
        // only up to the old committed tail.
        yask_util::failpoint::fire("wal.write.payload")?;
        self.write_at(self.committed_bytes, &payload)?;
        yask_util::failpoint::fire("wal.sync.payload")?;
        self.sync_timed()?;
        // Phase 2: publish the new tail.
        let next_bytes = self.committed_bytes + payload.len() as u64;
        let next_batches = self.batches + batches.len() as u64;
        let next_groups = self.groups + 1;
        yask_util::failpoint::fire("wal.write.header")?;
        self.write_header(next_bytes, next_batches, next_groups)?;
        yask_util::failpoint::fire("wal.sync.header")?;
        self.sync_timed()?;
        self.committed_bytes = next_bytes;
        self.batches = next_batches;
        self.groups = next_groups;
        Ok(())
    }

    /// One commit-path `fsync`, timed into the fsync histogram.
    fn sync_timed(&self) -> io::Result<()> {
        let t0 = Instant::now();
        let result = self.pool.sync();
        self.fsync_hist.record(t0.elapsed());
        result
    }

    /// Snapshots of the commit-path latency histograms.
    pub fn hist_snapshots(&self) -> WalHistSnapshots {
        WalHistSnapshots {
            append: self.append_hist.snapshot(),
            fsync: self.fsync_hist.snapshot(),
        }
    }

    fn write_header(&self, committed_bytes: u64, batches: u64, groups: u64) -> io::Result<()> {
        let mut page = vec![0u8; PAGE_SIZE];
        page[..8].copy_from_slice(MAGIC);
        page[8..16].copy_from_slice(&self.base_slots.to_le_bytes());
        page[16..24].copy_from_slice(&committed_bytes.to_le_bytes());
        page[24..32].copy_from_slice(&batches.to_le_bytes());
        page[32..40].copy_from_slice(&groups.to_le_bytes());
        page[40..48].copy_from_slice(&self.base_epoch.to_le_bytes());
        self.pool.write(PageId(0), &page)
    }

    /// Writes `data` at byte offset `off` of the sequential data area,
    /// allocating pages as needed and read-modify-writing the partial
    /// head page.
    fn write_at(&self, mut off: u64, mut data: &[u8]) -> io::Result<()> {
        while !data.is_empty() {
            let page_idx = 1 + off / PAGE_SIZE as u64;
            while self.pool.page_count() <= page_idx {
                self.pool.allocate()?;
            }
            let within = (off % PAGE_SIZE as u64) as usize;
            let take = data.len().min(PAGE_SIZE - within);
            let mut page = if within == 0 && take == PAGE_SIZE {
                vec![0u8; PAGE_SIZE]
            } else {
                self.pool.read(PageId(page_idx))?.to_vec()
            };
            page[within..within + take].copy_from_slice(&data[..take]);
            self.pool.write(PageId(page_idx), &page)?;
            off += take as u64;
            data = &data[take..];
        }
        Ok(())
    }

    /// Decodes every committed batch from the data pages.
    fn replay(&self) -> Result<Vec<Vec<Update>>, IngestError> {
        let mut bytes = Vec::with_capacity(self.committed_bytes as usize);
        let mut remaining = self.committed_bytes;
        let mut page_idx = 1u64;
        while remaining > 0 {
            let page = self
                .pool
                .read(PageId(page_idx))
                .map_err(|e| IngestError::WalCorrupt(format!("missing data page: {e}")))?;
            let take = (remaining as usize).min(PAGE_SIZE);
            bytes.extend_from_slice(&page[..take]);
            remaining -= take as u64;
            page_idx += 1;
        }
        let mut cursor = Cursor { bytes: &bytes, pos: 0 };
        let mut out = Vec::with_capacity(self.batches as usize);
        for _ in 0..self.batches {
            out.push(decode_batch(&mut cursor)?);
        }
        if cursor.pos as u64 != self.committed_bytes {
            return Err(IngestError::WalCorrupt(format!(
                "{} committed bytes but batches end at {}",
                self.committed_bytes, cursor.pos
            )));
        }
        Ok(out)
    }
}

/// Encoded record size of one batch (for group-commit chunking).
pub(crate) fn encoded_len(batch: &[Update]) -> usize {
    batch
        .iter()
        .map(|op| match op {
            Update::Insert(o) => 1 + 16 + 4 + o.name.len() + 4 + 4 * o.doc.len(),
            Update::Delete(_) => 1 + 4,
        })
        .sum::<usize>()
        + 4
}

fn encode_batch(batch: &[Update]) -> Vec<u8> {
    let mut out = Vec::with_capacity(16 * batch.len() + 4);
    out.extend_from_slice(&(batch.len() as u32).to_le_bytes());
    for op in batch {
        match op {
            Update::Insert(o) => {
                out.push(TAG_INSERT);
                out.extend_from_slice(&o.loc.x.to_le_bytes());
                out.extend_from_slice(&o.loc.y.to_le_bytes());
                out.extend_from_slice(&(o.name.len() as u32).to_le_bytes());
                out.extend_from_slice(o.name.as_bytes());
                out.extend_from_slice(&(o.doc.len() as u32).to_le_bytes());
                for kw in o.doc.raw() {
                    out.extend_from_slice(&kw.to_le_bytes());
                }
            }
            Update::Delete(id) => {
                out.push(TAG_DELETE);
                out.extend_from_slice(&id.0.to_le_bytes());
            }
        }
    }
    out
}

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Cursor<'_> {
    fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&[u8], IngestError> {
        if self.pos + n > self.bytes.len() {
            return Err(IngestError::WalCorrupt("record truncated".into()));
        }
        let slice = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, IngestError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, IngestError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    fn f64(&mut self) -> Result<f64, IngestError> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }
}

fn decode_batch(c: &mut Cursor<'_>) -> Result<Vec<Update>, IngestError> {
    let n = c.u32()?;
    // Every op is at least its 1-byte tag + 4-byte id: a rotted count
    // must fail here, not size a huge allocation.
    if n > MAX_FIELD || n as usize > c.remaining() / 5 {
        return Err(IngestError::WalCorrupt(format!("implausible batch size {n}")));
    }
    let mut batch = Vec::with_capacity(n as usize);
    for _ in 0..n {
        match c.u8()? {
            TAG_INSERT => {
                let x = c.f64()?;
                let y = c.f64()?;
                let name_len = c.u32()?;
                if name_len > MAX_FIELD {
                    return Err(IngestError::WalCorrupt(format!(
                        "implausible name length {name_len}"
                    )));
                }
                let name = String::from_utf8(c.take(name_len as usize)?.to_vec())
                    .map_err(|e| IngestError::WalCorrupt(e.to_string()))?;
                let kws = c.u32()?;
                if kws > MAX_FIELD || kws as usize > c.remaining() / 4 {
                    return Err(IngestError::WalCorrupt(format!(
                        "implausible keyword count {kws}"
                    )));
                }
                let mut ids = Vec::with_capacity(kws as usize);
                for _ in 0..kws {
                    ids.push(c.u32()?);
                }
                batch.push(Update::Insert(NewObject {
                    loc: Point::new(x, y),
                    doc: KeywordSet::from_raw(ids),
                    name,
                }));
            }
            TAG_DELETE => batch.push(Update::Delete(ObjectId(c.u32()?))),
            tag => return Err(IngestError::WalCorrupt(format!("unknown record tag {tag}"))),
        }
    }
    Ok(batch)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("yask-wal-{}-{}", std::process::id(), name));
        p
    }

    fn insert(x: f64, name: &str, kws: &[u32]) -> Update {
        Update::Insert(NewObject::new(
            Point::new(x, 0.5),
            KeywordSet::from_raw(kws.iter().copied()),
            name,
        ))
    }

    #[test]
    fn append_and_replay_round_trip() {
        let path = tmp("roundtrip.wal");
        std::fs::remove_file(&path).ok();
        let batches = vec![
            vec![insert(0.1, "hôtel-α", &[1, 2, 3]), Update::Delete(ObjectId(7))],
            vec![Update::Delete(ObjectId(9))],
            vec![insert(0.2, "", &[])],
        ];
        {
            let (mut wal, replayed) = Wal::open_or_create(&path, 50).unwrap();
            assert!(replayed.is_empty());
            for b in &batches {
                wal.append(b).unwrap();
            }
            assert_eq!(wal.batches(), 3);
            assert!(wal.bytes() > 0);
        }
        let (wal, replayed) = Wal::open_or_create(&path, 50).unwrap();
        assert_eq!(wal.batches(), 3);
        assert_eq!(replayed, batches);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn many_small_commits_span_pages() {
        let path = tmp("span.wal");
        std::fs::remove_file(&path).ok();
        let n = 400usize; // enough payload to cross several 4 KiB pages
        {
            let (mut wal, _) = Wal::open_or_create(&path, 0).unwrap();
            for i in 0..n {
                wal.append(&[insert(i as f64 / n as f64, &format!("obj-{i}"), &[i as u32])])
                    .unwrap();
            }
        }
        let (wal, replayed) = Wal::open_or_create(&path, 0).unwrap();
        assert_eq!(wal.batches(), n as u64);
        assert_eq!(replayed.len(), n);
        for (i, b) in replayed.iter().enumerate() {
            match &b[0] {
                Update::Insert(o) => assert_eq!(o.name, format!("obj-{i}")),
                other => panic!("unexpected record {other:?}"),
            }
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn group_commit_replays_batch_per_batch() {
        let path = tmp("group.wal");
        std::fs::remove_file(&path).ok();
        let batches: Vec<Vec<Update>> = vec![
            vec![insert(0.1, "a", &[1]), Update::Delete(ObjectId(2))],
            vec![insert(0.2, "b", &[2, 3])],
            vec![Update::Delete(ObjectId(4))],
        ];
        {
            let (mut wal, _) = Wal::open_or_create(&path, 20).unwrap();
            let refs: Vec<&[Update]> = batches.iter().map(Vec::as_slice).collect();
            wal.append_group(&refs).unwrap();
            // One fsync pair, three durable batches.
            assert_eq!(wal.batches(), 3);
            assert_eq!(wal.groups(), 1);
            // Appending a single batch afterwards is a group of one.
            wal.append(&[insert(0.3, "c", &[5])]).unwrap();
            assert_eq!(wal.batches(), 4);
            assert_eq!(wal.groups(), 2);
            assert_eq!(wal.stats().groups, 2);
            // Empty groups are a no-op, not a counted flush.
            wal.append_group(&[]).unwrap();
            assert_eq!(wal.groups(), 2);
        }
        let (wal, replayed) = Wal::open_or_create(&path, 20).unwrap();
        assert_eq!(wal.groups(), 2);
        assert_eq!(replayed.len(), 4, "one epoch per batch survives replay");
        assert_eq!(replayed[..3], batches[..]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn commit_latency_histograms_count_appends_and_fsyncs() {
        let path = tmp("hist.wal");
        std::fs::remove_file(&path).ok();
        let (mut wal, _) = Wal::open_or_create(&path, 10).unwrap();
        assert_eq!(wal.hist_snapshots().append.count, 0);
        for i in 0..3 {
            wal.append(&[insert(0.1 * i as f64, &format!("h{i}"), &[i as u32])]).unwrap();
        }
        // Empty groups are a no-op: no commit, nothing recorded.
        wal.append_group(&[]).unwrap();
        let h = wal.hist_snapshots();
        assert_eq!(h.append.count, 3, "one sample per durable commit");
        assert_eq!(h.fsync.count, 6, "two fsyncs per commit");
        assert!(h.append.sum_ns >= h.fsync.sum_ns, "commits contain their fsyncs");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn encoded_len_matches_encoding() {
        let batches = vec![
            vec![insert(0.1, "hôtel-α", &[1, 2, 3]), Update::Delete(ObjectId(7))],
            vec![Update::Delete(ObjectId(9))],
            vec![insert(0.2, "", &[])],
            vec![],
        ];
        for b in &batches {
            assert_eq!(encoded_len(b), encode_batch(b).len(), "{b:?}");
        }
    }

    #[test]
    fn reset_truncates_over_a_new_base() {
        let path = tmp("reset.wal");
        std::fs::remove_file(&path).ok();
        {
            let (mut wal, _) = Wal::open_or_create(&path, 10).unwrap();
            for i in 0..4 {
                wal.append(&[insert(0.1 * i as f64, &format!("r{i}"), &[i as u32])]).unwrap();
            }
            assert_eq!((wal.base_epoch(), wal.batches()), (0, 4));
            // Checkpoint at epoch 4 with 12 slots: the log empties.
            wal.reset(12, 4).unwrap();
            assert_eq!((wal.base_slots(), wal.base_epoch()), (12, 4));
            assert_eq!((wal.batches(), wal.bytes(), wal.groups()), (0, 0, 0));
            assert_eq!(wal.stats().base_epoch, 4);
            // Post-reset appends land on the new base.
            wal.append(&[Update::Delete(ObjectId(2))]).unwrap();
        }
        let (wal, replayed) = Wal::open_existing(&path).unwrap();
        assert_eq!((wal.base_slots(), wal.base_epoch(), wal.batches()), (12, 4, 1));
        assert_eq!(replayed, vec![vec![Update::Delete(ObjectId(2))]]);
        // The pre-checkpoint base no longer matches: open_or_create with
        // the old base is a mismatch.
        assert!(matches!(
            Wal::open_or_create(&path, 10),
            Err(IngestError::WalBaseMismatch { wal: 12, corpus: 10 })
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn base_mismatch_is_rejected() {
        let path = tmp("base.wal");
        std::fs::remove_file(&path).ok();
        let (_, _) = Wal::open_or_create(&path, 10).unwrap();
        let err = match Wal::open_or_create(&path, 11) {
            Err(e) => e,
            Ok(_) => panic!("base mismatch accepted"),
        };
        assert!(matches!(err, IngestError::WalBaseMismatch { wal: 10, corpus: 11 }));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_tail_beyond_the_header_is_invisible() {
        // Simulate a crash after phase 1 (data written) but before phase 2
        // (header publish): hand-write garbage into the data area without
        // updating the header. Replay must see only the committed prefix.
        let path = tmp("torn.wal");
        std::fs::remove_file(&path).ok();
        {
            let (mut wal, _) = Wal::open_or_create(&path, 5).unwrap();
            wal.append(&[Update::Delete(ObjectId(1))]).unwrap();
            // Phase-1-only write: bytes land after the committed tail.
            wal.write_at(wal.bytes(), &[0xFF; 64]).unwrap();
            wal.pool.sync().unwrap();
        }
        let (wal, replayed) = Wal::open_or_create(&path, 5).unwrap();
        assert_eq!(wal.batches(), 1);
        assert_eq!(replayed, vec![vec![Update::Delete(ObjectId(1))]]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn implausible_header_words_are_corrupt_not_a_panic() {
        let path = tmp("header.wal");
        std::fs::remove_file(&path).ok();
        {
            let (mut wal, _) = Wal::open_or_create(&path, 5).unwrap();
            wal.append(&[Update::Delete(ObjectId(1))]).unwrap();
        }
        let pristine = std::fs::read(&path).unwrap();
        // Rot the committed-bytes word, then the batch-count word: both
        // must surface as WalCorrupt, never size an allocation.
        for (offset, label) in [(16usize, "bytes"), (24usize, "batches")] {
            let mut bytes = pristine.clone();
            bytes[offset..offset + 8].copy_from_slice(&u64::MAX.to_le_bytes());
            std::fs::write(&path, &bytes).unwrap();
            match Wal::open_or_create(&path, 5) {
                Err(IngestError::WalCorrupt(why)) => {
                    assert!(why.contains("header claims"), "{label}: {why}")
                }
                Err(other) => panic!("{label}: wrong error {other}"),
                Ok(_) => panic!("{label}: rotted header accepted"),
            }
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupt_magic_is_rejected() {
        let path = tmp("magic.wal");
        std::fs::remove_file(&path).ok();
        let (_, _) = Wal::open_or_create(&path, 0).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[0] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        match Wal::open_or_create(&path, 0) {
            Err(IngestError::WalCorrupt(_)) => {}
            Err(other) => panic!("wrong error: {other}"),
            Ok(_) => panic!("corrupt magic accepted"),
        }
        std::fs::remove_file(&path).ok();
    }
}
