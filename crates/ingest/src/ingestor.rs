//! The write path coordinator: validation → WAL commit → epoch publish.
//!
//! One [`Ingestor`] owns the authoritative (writer-side) corpus version
//! and the optional write-ahead log; the read path lives in the
//! [`Executor`]'s epoch cell. [`Ingestor::apply`] runs the full write
//! protocol for one batch:
//!
//! 1. **validate** against the current version (bad batches never reach
//!    the log, so the log always replays),
//! 2. **log + fsync** the batch ([`crate::wal`]'s two-phase commit),
//! 3. **derive** the next corpus version (tombstones + appended slots),
//! 4. **publish** via [`Executor::apply_batch`] — incremental tree
//!    maintenance, shard routing, epoch swap, cache invalidation.
//!
//! A crash after step 2 but before step 4 is safe: replay at startup
//! reapplies the batch deterministically, so the durable epoch and the
//! in-memory epoch reconverge.
//!
//! **Checkpointing.** Without compaction the log grows without bound and
//! restart-replay time scales with the full update history. A durable
//! ingestor therefore folds the current epoch into a `yask_pager`
//! checkpoint snapshot ([`yask_pager::save_checkpoint`], atomic
//! write-then-rename) whenever the log exceeds the [`CheckpointConfig`]
//! thresholds, then truncates the log over the new base
//! ([`crate::wal::Wal::reset`]). Recovery loads **snapshot, then tail**:
//! the checkpoint corpus at its epoch plus only the records committed
//! after it — restart time is bounded by the checkpoint interval, not
//! history length. The crash window between the snapshot rename and the
//! log truncation is closed at recovery: the log's `base_epoch` lags the
//! snapshot's epoch, so the covered prefix is simply skipped — the log
//! bytes themselves are left untouched (a rewrite during recovery could
//! itself be interrupted and lose acknowledged batches) until the next
//! checkpoint truncates them atomically. Checkpoint *failures* never
//! fail the write that triggered them (the batch is already durable in
//! the log); they are recorded in [`CheckpointStats::last_error`] and the
//! next threshold crossing retries.

use std::path::{Path, PathBuf};
use std::time::Instant;

use parking_lot::Mutex;
use yask_exec::{Executor, WINDOW_HORIZONS_SECS};
use yask_index::{CopyStats, Corpus, ObjectId};
use yask_obs::{Histogram, HistogramSnapshot, SlidingWindow, WindowSnapshot};
use yask_pager::{load_checkpoint_with_stats, save_checkpoint, Checkpoint, PoolStats};

use crate::update::{apply_batch, apply_batch_counted, validate_batch, IngestError, Update};
use crate::wal::{encoded_len, GroupCommitConfig, Wal, WalStats};

/// The checkpoint file a WAL at `wal_path` compacts into
/// (`<wal_path>.ckpt`).
pub fn checkpoint_path(wal_path: &Path) -> PathBuf {
    let mut os = wal_path.as_os_str().to_owned();
    os.push(".ckpt");
    PathBuf::from(os)
}

/// When to fold the write-ahead log into a checkpoint snapshot. The
/// check runs after every durable commit; crossing *either* threshold
/// triggers a checkpoint.
#[derive(Clone, Copy, Debug)]
pub struct CheckpointConfig {
    /// Checkpoint once the log holds at least this many payload bytes.
    pub max_wal_bytes: u64,
    /// Checkpoint once the log holds at least this many batches — this
    /// bounds restart replay to `max_wal_batches` records.
    pub max_wal_batches: u64,
}

impl Default for CheckpointConfig {
    fn default() -> Self {
        CheckpointConfig {
            max_wal_bytes: 4 << 20,
            max_wal_batches: 4096,
        }
    }
}

impl CheckpointConfig {
    /// Never checkpoint automatically ([`Ingestor::checkpoint_now`] still
    /// works).
    pub fn disabled() -> Self {
        CheckpointConfig {
            max_wal_bytes: u64::MAX,
            max_wal_batches: u64::MAX,
        }
    }
}

/// Checkpoint activity counters, surfaced by `/stats`.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CheckpointStats {
    /// Checkpoints taken since startup.
    pub checkpoints: u64,
    /// Epoch of the most recent checkpoint (0 before the first).
    pub last_epoch: u64,
    /// The most recent checkpoint failure, if the latest attempt failed
    /// (cleared by the next success). The triggering write batch is
    /// unaffected — it is already durable in the log.
    pub last_error: Option<String>,
    /// Cumulative buffer-pool counters of every checkpoint file touched
    /// — snapshot saves plus the recovery load, summed, so `/metrics`
    /// can price checkpoint I/O alongside the WAL and shard pools.
    pub pool: PoolStats,
}

/// Failure of a group application, carrying the outcomes of the chunks
/// that were already durably committed *and* published before the error:
/// the corpus, log and executor are consistent on that prefix, and a
/// caller can resubmit exactly the batches beyond `applied.len()` —
/// blindly retrying the whole group would double-apply the prefix's
/// inserts.
#[derive(Debug)]
pub struct GroupError {
    /// Outcomes of the batches applied before the failure (batch order).
    pub applied: Vec<ApplyOutcome>,
    /// The underlying failure.
    pub error: IngestError,
}

impl std::fmt::Display for GroupError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "group failed after {} applied batches: {}",
            self.applied.len(),
            self.error
        )
    }
}

impl std::error::Error for GroupError {}

/// What one committed batch did.
#[derive(Clone, Debug)]
pub struct ApplyOutcome {
    /// The epoch the batch published (== durable batch count).
    pub epoch: u64,
    /// Ids assigned to the batch's inserts, in batch order.
    pub inserted: Vec<ObjectId>,
    /// Ids the batch tombstoned.
    pub deleted: Vec<ObjectId>,
    /// Whether the executor re-split the STR partition afterwards.
    pub rebalanced: bool,
}

type VocabSource = Box<dyn Fn() -> Vec<String> + Send>;

/// Latency histogram snapshots of the full write path, for `/metrics`:
/// the log's commit timings plus the ingestor's own phases.
#[derive(Clone, Debug, Default)]
pub struct IngestHistSnapshots {
    /// Whole durable WAL commits (encode + data write + both fsyncs).
    pub wal_append: HistogramSnapshot,
    /// Individual commit-path `fsync` calls (two per commit group).
    pub wal_fsync: HistogramSnapshot,
    /// Checkpoint folds: snapshot write + log truncation.
    pub checkpoint: HistogramSnapshot,
    /// Executor publishes ([`Executor::apply_batch`]): incremental tree
    /// maintenance + epoch swap, one sample per batch.
    pub write_apply: HistogramSnapshot,
}

struct WriterState {
    corpus: Corpus,
    epoch: u64,
    wal: Option<Wal>,
    /// `<wal>.ckpt`; `None` disables checkpointing (volatile ingestor).
    ckpt_path: Option<PathBuf>,
    ckpt_config: CheckpointConfig,
    ckpt_stats: CheckpointStats,
    /// Supplies the vocabulary words (id order) embedded in snapshots;
    /// set by the service layer, which owns the vocabulary.
    vocab_source: Option<VocabSource>,
    /// Vocabulary recovered from the checkpoint at startup — the
    /// fallback payload for later snapshots when no source is set.
    recovered_vocab: Option<Vec<String>>,
    /// Cumulative chunk copy-on-write work of every applied batch.
    copy: CopyStats,
    /// Times checkpoint folds (snapshot write + log truncation).
    checkpoint_hist: Histogram,
    /// Times executor publishes, one sample per batch.
    apply_hist: Histogram,
    /// Sliding-window twin of `apply_hist`: recent publish rate and
    /// latency for the health surface, where since-boot histograms
    /// cannot distinguish "slow now" from "slow once".
    apply_window: SlidingWindow,
}

impl WriterState {
    /// Runs one checkpoint: durable snapshot first, then the log
    /// truncation. Requires a log and a checkpoint path. Timed into the
    /// checkpoint histogram even on failure — the stall was real.
    fn checkpoint(&mut self) -> Result<u64, IngestError> {
        let t0 = Instant::now();
        let result = self.checkpoint_inner();
        self.checkpoint_hist.record(t0.elapsed());
        result
    }

    fn checkpoint_inner(&mut self) -> Result<u64, IngestError> {
        let path = self
            .ckpt_path
            .clone()
            .ok_or_else(|| IngestError::WalCorrupt("no checkpoint path configured".into()))?;
        let vocab = match (&self.vocab_source, &self.recovered_vocab) {
            (Some(source), _) => source(),
            (None, Some(recovered)) => recovered.clone(),
            (None, None) => Vec::new(),
        };
        let epoch = self.epoch;
        let pool = save_checkpoint(
            &path,
            &Checkpoint {
                corpus: self.corpus.clone(),
                epoch,
                vocab,
            },
        )?;
        self.ckpt_stats.pool += pool;
        let wal = self
            .wal
            .as_mut()
            .ok_or_else(|| IngestError::WalCorrupt("checkpoint without a log".into()))?;
        wal.reset(self.corpus.slot_count() as u64, epoch)?;
        self.ckpt_stats.checkpoints += 1;
        self.ckpt_stats.last_epoch = epoch;
        self.ckpt_stats.last_error = None;
        Ok(epoch)
    }

    /// Checkpoints when the log has outgrown the thresholds; failures
    /// are recorded, never raised (the triggering batch is already
    /// durable and published).
    fn maybe_checkpoint(&mut self) {
        if self.ckpt_path.is_none() {
            return;
        }
        let Some(wal) = &self.wal else { return };
        if wal.bytes() < self.ckpt_config.max_wal_bytes
            && wal.batches() < self.ckpt_config.max_wal_batches
        {
            return;
        }
        if let Err(e) = self.checkpoint() {
            self.ckpt_stats.last_error = Some(e.to_string());
        }
    }
}

/// The serialized write path of a live YASK deployment.
pub struct Ingestor {
    inner: Mutex<WriterState>,
}

impl Ingestor {
    /// A volatile ingestor (no log): updates apply to the running engine
    /// but do not survive a restart.
    pub fn new(corpus: Corpus) -> Self {
        Ingestor {
            inner: Mutex::new(WriterState {
                corpus,
                epoch: 0,
                wal: None,
                ckpt_path: None,
                ckpt_config: CheckpointConfig::disabled(),
                ckpt_stats: CheckpointStats::default(),
                vocab_source: None,
                recovered_vocab: None,
                copy: CopyStats::default(),
                checkpoint_hist: Histogram::new(),
                apply_hist: Histogram::new(),
                apply_window: SlidingWindow::standard(),
            }),
        }
    }

    /// A durable ingestor with the default [`CheckpointConfig`]: opens
    /// (or creates) the write-ahead log at `path`, loads the checkpoint
    /// snapshot at [`checkpoint_path`] when one exists, and replays only
    /// the log records committed after it — so restart time is bounded by
    /// the checkpoint interval, not by history length. Build the
    /// [`Executor`] over [`Ingestor::corpus`] at [`Ingestor::epoch`]
    /// afterwards.
    pub fn with_wal(seed: Corpus, path: &Path) -> Result<Self, IngestError> {
        Ingestor::with_wal_config(seed, path, CheckpointConfig::default())
    }

    /// [`Ingestor::with_wal`] with explicit checkpoint thresholds.
    pub fn with_wal_config(
        seed: Corpus,
        path: &Path,
        config: CheckpointConfig,
    ) -> Result<Self, IngestError> {
        let ckpt_path = checkpoint_path(path);
        let snapshot = load_checkpoint_with_stats(&ckpt_path).map_err(|e| match e.kind() {
            std::io::ErrorKind::InvalidData => IngestError::WalCorrupt(e.to_string()),
            _ => IngestError::Io(e),
        })?;
        let (snapshot, load_pool) = match snapshot {
            Some((ck, pool)) => (Some(ck), pool),
            None => (None, PoolStats::default()),
        };

        // Establish the base (corpus state the log's tail applies on top
        // of) and the tail records themselves.
        let (wal, tail, base_corpus, base_epoch, recovered_vocab) = match snapshot {
            None if !path.exists() => {
                let wal = Wal::create(path, seed.slot_count() as u64, 0)?;
                (wal, Vec::new(), seed, 0u64, None)
            }
            None => {
                let (wal, batches) = Wal::open_existing(path)?;
                if wal.base_epoch() != 0 {
                    // The log was truncated against a checkpoint that has
                    // since disappeared: its records are not enough.
                    return Err(IngestError::WalCorrupt(format!(
                        "log expects a checkpoint at epoch {} but none exists",
                        wal.base_epoch()
                    )));
                }
                if wal.base_slots() != seed.slot_count() as u64 {
                    return Err(IngestError::WalBaseMismatch {
                        wal: wal.base_slots(),
                        corpus: seed.slot_count() as u64,
                    });
                }
                (wal, batches, seed, 0u64, None)
            }
            Some(ck) => {
                let slots = ck.corpus.slot_count() as u64;
                if !path.exists() {
                    let wal = Wal::create(path, slots, ck.epoch)?;
                    (wal, Vec::new(), ck.corpus, ck.epoch, Some(ck.vocab))
                } else {
                    let (wal, batches) = Wal::open_existing(path)?;
                    if wal.base_epoch() > ck.epoch {
                        return Err(IngestError::WalCorrupt(format!(
                            "log base epoch {} is ahead of checkpoint epoch {}",
                            wal.base_epoch(),
                            ck.epoch
                        )));
                    }
                    // Crash window: the snapshot landed but the log was
                    // not truncated. Skip the records the snapshot
                    // already covers — and deliberately do *not* rewrite
                    // the log here: a reset-then-reappend could itself be
                    // interrupted between its two publishes, losing
                    // already-acknowledged tail batches. The stale log
                    // stays valid as-is (this skip runs on every open)
                    // until the next checkpoint truncates it atomically
                    // behind a snapshot that covers everything.
                    let skip = (ck.epoch - wal.base_epoch()) as usize;
                    if batches.len() < skip {
                        return Err(IngestError::WalCorrupt(format!(
                            "checkpoint at epoch {} covers {} records the log does not hold",
                            ck.epoch, skip
                        )));
                    }
                    let tail = batches[skip..].to_vec();
                    if skip == 0 && wal.base_slots() != slots {
                        return Err(IngestError::WalBaseMismatch {
                            wal: wal.base_slots(),
                            corpus: slots,
                        });
                    }
                    (wal, tail, ck.corpus, ck.epoch, Some(ck.vocab))
                }
            }
        };

        let mut corpus = base_corpus;
        let mut epoch = base_epoch;
        for batch in &tail {
            // A committed batch was validated before it was logged; a
            // batch that no longer validates means the log or base corpus
            // was swapped underneath us.
            validate_batch(&corpus, batch).map_err(|e| {
                IngestError::WalCorrupt(format!("batch {} fails replay: {e}", epoch + 1))
            })?;
            let (next, _, _) = apply_batch(&corpus, batch);
            corpus = next;
            epoch += 1;
        }
        debug_assert_eq!(epoch, wal.base_epoch() + wal.batches());
        Ok(Ingestor {
            inner: Mutex::new(WriterState {
                corpus,
                epoch,
                wal: Some(wal),
                ckpt_path: Some(ckpt_path),
                ckpt_config: config,
                ckpt_stats: CheckpointStats {
                    pool: load_pool,
                    ..CheckpointStats::default()
                },
                vocab_source: None,
                recovered_vocab,
                copy: CopyStats::default(),
                checkpoint_hist: Histogram::new(),
                apply_hist: Histogram::new(),
                apply_window: SlidingWindow::standard(),
            }),
        })
    }

    /// The current (writer-side) corpus version.
    pub fn corpus(&self) -> Corpus {
        self.inner.lock().corpus.clone()
    }

    /// The current epoch (committed batch count).
    pub fn epoch(&self) -> u64 {
        self.inner.lock().epoch
    }

    /// Write-ahead-log counters; `None` when running without a log.
    pub fn wal_stats(&self) -> Option<WalStats> {
        self.inner.lock().wal.as_ref().map(|w| w.stats())
    }

    /// Checkpoint activity counters.
    pub fn checkpoint_stats(&self) -> CheckpointStats {
        self.inner.lock().ckpt_stats.clone()
    }

    /// Latency histogram snapshots of the write path. A volatile
    /// ingestor (no log) reports empty WAL histograms.
    pub fn latency_snapshots(&self) -> IngestHistSnapshots {
        let inner = self.inner.lock();
        let wal = inner.wal.as_ref().map(|w| w.hist_snapshots()).unwrap_or_default();
        IngestHistSnapshots {
            wal_append: wal.append,
            wal_fsync: wal.fsync,
            checkpoint: inner.checkpoint_hist.snapshot(),
            write_apply: inner.apply_hist.snapshot(),
        }
    }

    /// Sliding-window view of executor publishes at the standard
    /// 1 s / 10 s / 1 m horizons ([`WINDOW_HORIZONS_SECS`] order) — the
    /// recent-rate counterpart of the since-boot
    /// [`IngestHistSnapshots::write_apply`] histogram, feeding
    /// `/debug/health`'s write-side verdict.
    pub fn write_apply_windows(&self) -> [WindowSnapshot; 3] {
        let inner = self.inner.lock();
        WINDOW_HORIZONS_SECS.map(|h| inner.apply_window.snapshot(h))
    }

    /// Cumulative chunk copy-on-write work of every batch applied since
    /// startup — divided by the batch count this proves per-batch write
    /// cost is O(batch + touched chunks), independent of corpus size.
    pub fn copy_stats(&self) -> CopyStats {
        self.inner.lock().copy
    }

    /// The vocabulary recovered from the checkpoint snapshot at startup
    /// (id order), if one was loaded.
    pub fn recovered_vocab(&self) -> Option<Vec<String>> {
        self.inner.lock().recovered_vocab.clone()
    }

    /// Installs the snapshot vocabulary source: called at checkpoint time
    /// to embed the current string → id intern order. The service layer
    /// owns the vocabulary, so it supplies the closure.
    pub fn set_vocab_source(&self, source: impl Fn() -> Vec<String> + Send + 'static) {
        self.inner.lock().vocab_source = Some(Box::new(source));
    }

    /// Forces a checkpoint immediately (admin / test hook): snapshots the
    /// current epoch and truncates the log. Errors when the ingestor is
    /// volatile.
    pub fn checkpoint_now(&self) -> Result<u64, IngestError> {
        self.inner.lock().checkpoint()
    }

    /// Applies one batch through the full write protocol (see the module
    /// docs) and publishes the resulting epoch on `exec`. Batches from
    /// concurrent callers serialize on the writer lock; readers are never
    /// blocked.
    pub fn apply(&self, exec: &Executor, batch: &[Update]) -> Result<ApplyOutcome, IngestError> {
        let mut inner = self.inner.lock();
        validate_batch(&inner.corpus, batch)?;
        if let Some(wal) = &mut inner.wal {
            wal.append(batch)?;
        }
        let (corpus, inserted, deleted, copy) = apply_batch_counted(&inner.corpus, batch);
        inner.copy.absorb(&copy);
        inner.corpus = corpus.clone();
        inner.epoch += 1;
        let t0 = Instant::now();
        let outcome = exec.apply_batch(corpus, &inserted, &deleted);
        let dt = t0.elapsed();
        inner.apply_hist.record(dt);
        inner.apply_window.record(dt);
        debug_assert_eq!(
            outcome.epoch, inner.epoch,
            "executor epoch diverged from the durable epoch"
        );
        let result = ApplyOutcome {
            epoch: inner.epoch,
            inserted,
            deleted,
            rebalanced: outcome.rebalanced,
        };
        inner.maybe_checkpoint();
        Ok(result)
    }

    /// Applies several batches with *group commit*: the batches are
    /// validated (each against the corpus as its predecessors leave it),
    /// chunked by the config's window/size limits, and every chunk is
    /// committed under **one** two-phase fsync pair
    /// ([`Wal::append_group`]) before its batches publish their epochs —
    /// amortizing the two syncs that dominate small-batch write latency
    /// while keeping one epoch per batch, exactly as if the batches had
    /// been applied one by one.
    ///
    /// **Admission** is all-or-nothing: if *any* batch fails validation
    /// the whole group is rejected before anything reaches the log, so
    /// the log never carries a batch that cannot replay. **Durability
    /// and publication** then proceed chunk by chunk (each chunk's
    /// commit is atomic): if an I/O error interrupts a later chunk, the
    /// chunks before it are already durable *and* published — the log,
    /// the in-memory corpus and the executor stay mutually consistent on
    /// that prefix, and the returned [`GroupError`] carries that prefix's
    /// outcomes, so a retry resubmits exactly the batches beyond
    /// `applied.len()` (resubmitting the whole group would double-apply
    /// the prefix's inserts).
    pub fn apply_group(
        &self,
        exec: &Executor,
        batches: &[Vec<Update>],
        config: GroupCommitConfig,
    ) -> Result<Vec<ApplyOutcome>, GroupError> {
        let mut inner = self.inner.lock();
        // Validate the whole group up front against the evolving corpus.
        let mut staged = Vec::with_capacity(batches.len());
        let mut probe = inner.corpus.clone();
        for batch in batches {
            if let Err(error) = validate_batch(&probe, batch) {
                return Err(GroupError {
                    applied: Vec::new(),
                    error,
                });
            }
            let (next, inserted, deleted, copy) = apply_batch_counted(&probe, batch);
            probe = next.clone();
            staged.push((next, inserted, deleted, copy));
        }

        // Chunk into commit groups within the window/size caps (a single
        // oversized batch still commits alone).
        let max_batches = config.max_batches.max(1);
        let mut outcomes = Vec::with_capacity(batches.len());
        let mut start = 0usize;
        while start < batches.len() {
            let mut end = start;
            let mut bytes = 0usize;
            while end < batches.len() && end - start < max_batches {
                let len = encoded_len(&batches[end]);
                if end > start && bytes + len > config.max_bytes {
                    break;
                }
                bytes += len;
                end += 1;
            }
            if let Some(wal) = &mut inner.wal {
                let chunk: Vec<&[Update]> =
                    batches[start..end].iter().map(Vec::as_slice).collect();
                if let Err(e) = wal.append_group(&chunk) {
                    // Earlier chunks are durable and published; hand the
                    // caller their outcomes so only the suffix retries.
                    return Err(GroupError {
                        applied: outcomes,
                        error: e.into(),
                    });
                }
            }
            for (corpus, inserted, deleted, copy) in staged[start..end].iter().cloned() {
                // Copy work is billed only once the batch is durable and
                // published — a failed suffix must not inflate /stats.
                inner.copy.absorb(&copy);
                inner.corpus = corpus.clone();
                inner.epoch += 1;
                let t0 = Instant::now();
                let outcome = exec.apply_batch(corpus, &inserted, &deleted);
                let dt = t0.elapsed();
                inner.apply_hist.record(dt);
                inner.apply_window.record(dt);
                debug_assert_eq!(
                    outcome.epoch, inner.epoch,
                    "executor epoch diverged from the durable epoch"
                );
                outcomes.push(ApplyOutcome {
                    epoch: inner.epoch,
                    inserted,
                    deleted,
                    rebalanced: outcome.rebalanced,
                });
            }
            start = end;
        }
        inner.maybe_checkpoint();
        Ok(outcomes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::update::NewObject;
    use yask_exec::ExecConfig;
    use yask_geo::{Point, Space};
    use yask_index::CorpusBuilder;
    use yask_text::KeywordSet;
    use yask_util::Xoshiro256;

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("yask-ingestor-{}-{}", std::process::id(), name));
        p
    }

    fn random_corpus(n: usize, seed: u64) -> Corpus {
        let mut rng = Xoshiro256::seed_from_u64(seed);
        let mut b = CorpusBuilder::with_capacity(n).with_space(Space::unit());
        for i in 0..n {
            let doc = KeywordSet::from_raw((0..1 + rng.below(4)).map(|_| rng.below(12) as u32));
            b.push(Point::new(rng.next_f64(), rng.next_f64()), doc, format!("o{i}"));
        }
        b.build()
    }

    fn insert(x: f64, y: f64, name: &str) -> Update {
        Update::Insert(NewObject::new(
            Point::new(x, y),
            KeywordSet::from_raw([1u32, 2]),
            name,
        ))
    }

    #[test]
    fn volatile_apply_updates_executor_and_rejects_bad_batches() {
        let corpus = random_corpus(100, 1);
        let exec = Executor::new(corpus.clone(), ExecConfig::default());
        let ingest = Ingestor::new(corpus);
        let out = ingest
            .apply(&exec, &[insert(0.4, 0.4, "new"), Update::Delete(ObjectId(3))])
            .unwrap();
        assert_eq!(out.epoch, 1);
        assert_eq!(out.inserted, vec![ObjectId(100)]);
        assert_eq!(out.deleted, vec![ObjectId(3)]);
        assert_eq!(exec.epoch(), 1);
        assert_eq!(exec.corpus().len(), 100);
        assert!(!exec.corpus().contains(ObjectId(3)));
        // The dead id is now rejected, and the failed batch burns no epoch.
        assert!(matches!(
            ingest.apply(&exec, &[Update::Delete(ObjectId(3))]),
            Err(IngestError::DeadObject(ObjectId(3)))
        ));
        assert_eq!(ingest.epoch(), 1);
        assert_eq!(exec.epoch(), 1);
        assert!(ingest.wal_stats().is_none());
    }

    #[test]
    fn wal_replay_reconverges_corpus_and_epoch() {
        let path = tmp("replay.wal");
        std::fs::remove_file(&path).ok();
        let seed = random_corpus(60, 2);
        let final_corpus;
        {
            let ingest = Ingestor::with_wal(seed.clone(), &path).unwrap();
            let exec = Executor::new_at_epoch(ingest.corpus(), ExecConfig::default(), ingest.epoch());
            ingest.apply(&exec, &[insert(0.1, 0.9, "a")]).unwrap();
            ingest
                .apply(&exec, &[Update::Delete(ObjectId(5)), insert(0.6, 0.2, "b")])
                .unwrap();
            ingest.apply(&exec, &[Update::Delete(ObjectId(60))]).unwrap();
            assert_eq!(ingest.epoch(), 3);
            final_corpus = ingest.corpus();
        }
        // "Restart": replay the log over the seed.
        let revived = Ingestor::with_wal(seed, &path).unwrap();
        assert_eq!(revived.epoch(), 3);
        assert_eq!(revived.wal_stats().unwrap().batches, 3);
        let got = revived.corpus();
        assert_eq!(got.slot_count(), final_corpus.slot_count());
        assert_eq!(got.len(), final_corpus.len());
        for o in final_corpus.iter_slots() {
            assert_eq!(got.contains(o.id), final_corpus.contains(o.id), "{:?}", o.id);
            assert_eq!(got.get(o.id).loc, o.loc);
            assert_eq!(got.get(o.id).doc, o.doc);
            assert_eq!(got.get(o.id).name, o.name);
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn group_commit_amortizes_fsyncs_and_replays() {
        let path = tmp("group-replay.wal");
        std::fs::remove_file(&path).ok();
        let seed = random_corpus(80, 5);
        let batches: Vec<Vec<Update>> = vec![
            vec![insert(0.1, 0.2, "g0"), Update::Delete(ObjectId(3))],
            vec![insert(0.5, 0.5, "g1")],
            vec![insert(0.9, 0.1, "g2"), Update::Delete(ObjectId(7))],
            vec![Update::Delete(ObjectId(11))],
            vec![insert(0.3, 0.8, "g4")],
        ];
        let final_corpus;
        {
            let ingest = Ingestor::with_wal(seed.clone(), &path).unwrap();
            let exec = Executor::new_at_epoch(ingest.corpus(), ExecConfig::default(), 0);
            let cfg = GroupCommitConfig {
                max_batches: 2, // force ⌈5/2⌉ = 3 commit groups
                ..GroupCommitConfig::default()
            };
            let outcomes = ingest.apply_group(&exec, &batches, cfg).unwrap();
            // One epoch per batch, in order, exactly as serial applies.
            assert_eq!(
                outcomes.iter().map(|o| o.epoch).collect::<Vec<_>>(),
                vec![1, 2, 3, 4, 5]
            );
            assert_eq!(exec.epoch(), 5);
            let stats = ingest.wal_stats().unwrap();
            assert_eq!(stats.batches, 5);
            assert_eq!(stats.groups, 3, "5 batches in 3 fsync pairs");
            final_corpus = ingest.corpus();
        }
        // Restart: replay reconverges to the same corpus and epoch.
        let revived = Ingestor::with_wal(seed, &path).unwrap();
        assert_eq!(revived.epoch(), 5);
        assert_eq!(revived.wal_stats().unwrap().groups, 3);
        let got = revived.corpus();
        assert_eq!(got.slot_count(), final_corpus.slot_count());
        assert_eq!(got.live_ids(), final_corpus.live_ids());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn group_with_an_invalid_batch_is_rejected_whole() {
        let path = tmp("group-reject.wal");
        std::fs::remove_file(&path).ok();
        let seed = random_corpus(20, 6);
        let ingest = Ingestor::with_wal(seed, &path).unwrap();
        let exec = Executor::new(ingest.corpus(), ExecConfig::single_tree(Default::default()));
        let batches = vec![
            vec![insert(0.1, 0.1, "ok")],
            vec![Update::Delete(ObjectId(999))], // invalid: foreign id
        ];
        let err = ingest
            .apply_group(&exec, &batches, GroupCommitConfig::default())
            .unwrap_err();
        assert!(err.applied.is_empty(), "validation failure applies nothing");
        assert!(err.to_string().contains("after 0 applied batches"), "{err}");
        // Nothing was logged or published — not even the valid prefix.
        assert_eq!(ingest.epoch(), 0);
        assert_eq!(exec.epoch(), 0);
        assert_eq!(ingest.wal_stats().unwrap().batches, 0);
        assert_eq!(ingest.wal_stats().unwrap().groups, 0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn group_size_cap_splits_oversized_groups() {
        let seed = random_corpus(30, 7);
        let ingest = Ingestor::new(seed); // volatile: chunking still applies
        let exec = Executor::new(ingest.corpus(), ExecConfig::single_tree(Default::default()));
        let batches: Vec<Vec<Update>> =
            (0..4).map(|i| vec![insert(0.2, 0.2, &format!("s{i}"))]).collect();
        let cfg = GroupCommitConfig {
            max_batches: 64,
            max_bytes: 1, // every batch overflows the cap → one per group
        };
        let outcomes = ingest.apply_group(&exec, &batches, cfg).unwrap();
        assert_eq!(outcomes.len(), 4);
        assert_eq!(ingest.epoch(), 4);
        assert!(ingest.wal_stats().is_none(), "volatile ingestor has no log");
    }

    /// Deletes the WAL plus its checkpoint sidecar.
    fn clean(path: &std::path::Path) {
        std::fs::remove_file(path).ok();
        std::fs::remove_file(checkpoint_path(path)).ok();
    }

    fn assert_same_corpus(got: &Corpus, want: &Corpus) {
        assert_eq!(got.slot_count(), want.slot_count());
        assert_eq!(got.len(), want.len());
        assert_eq!(got.space(), want.space());
        for (a, b) in want.iter_slots().zip(got.iter_slots()) {
            assert_eq!(a.loc, b.loc);
            assert_eq!(a.doc, b.doc);
            assert_eq!(a.name, b.name);
            assert_eq!(want.contains(a.id), got.contains(b.id), "{:?}", a.id);
        }
    }

    #[test]
    fn checkpoint_threshold_folds_log_and_bounds_replay() {
        let path = tmp("ckpt-threshold.wal");
        clean(&path);
        let seed = random_corpus(40, 9);
        let config = CheckpointConfig {
            max_wal_batches: 3,
            max_wal_bytes: u64::MAX,
        };
        let final_corpus;
        {
            let ingest = Ingestor::with_wal_config(seed.clone(), &path, config).unwrap();
            let exec = Executor::new(ingest.corpus(), ExecConfig::single_tree(Default::default()));
            for i in 0..8 {
                ingest
                    .apply(&exec, &[insert(0.1 + 0.1 * (i % 5) as f64, 0.2, &format!("c{i}"))])
                    .unwrap();
            }
            // 8 batches at a 3-batch threshold: checkpoints at 3 and 6.
            let cs = ingest.checkpoint_stats();
            assert_eq!(cs.checkpoints, 2, "{cs:?}");
            assert_eq!(cs.last_epoch, 6);
            assert!(cs.last_error.is_none());
            let ws = ingest.wal_stats().unwrap();
            assert_eq!(ws.base_epoch, 6);
            assert_eq!(ws.batches, 2, "only post-checkpoint records remain");
            final_corpus = ingest.corpus();
        }
        // Restart: snapshot-then-tail — only 2 records replay, yet the
        // epoch and corpus are exactly the pre-restart ones.
        let revived = Ingestor::with_wal_config(seed, &path, config).unwrap();
        assert_eq!(revived.epoch(), 8);
        let ws = revived.wal_stats().unwrap();
        assert_eq!(ws.base_epoch, 6);
        assert_eq!(ws.batches, 2);
        assert_same_corpus(&revived.corpus(), &final_corpus);
        clean(&path);
    }

    #[test]
    fn checkpoint_now_truncates_and_vocab_round_trips() {
        let path = tmp("ckpt-now.wal");
        clean(&path);
        let seed = random_corpus(30, 10);
        let final_corpus;
        {
            let ingest = Ingestor::with_wal(seed.clone(), &path).unwrap();
            ingest.set_vocab_source(|| vec!["clean".to_owned(), "spa".to_owned()]);
            let exec = Executor::new(ingest.corpus(), ExecConfig::single_tree(Default::default()));
            ingest.apply(&exec, &[insert(0.3, 0.3, "a")]).unwrap();
            ingest
                .apply(&exec, &[Update::Delete(ObjectId(2)), insert(0.4, 0.4, "b")])
                .unwrap();
            assert_eq!(ingest.checkpoint_now().unwrap(), 2);
            let ws = ingest.wal_stats().unwrap();
            assert_eq!((ws.base_epoch, ws.batches, ws.bytes), (2, 0, 0));
            // Post-checkpoint writes land in the truncated log.
            ingest.apply(&exec, &[insert(0.5, 0.5, "c")]).unwrap();
            assert_eq!(ingest.wal_stats().unwrap().batches, 1);
            final_corpus = ingest.corpus();
        }
        let revived = Ingestor::with_wal(seed, &path).unwrap();
        assert_eq!(revived.epoch(), 3);
        assert_same_corpus(&revived.corpus(), &final_corpus);
        assert_eq!(
            revived.recovered_vocab().unwrap(),
            vec!["clean".to_owned(), "spa".to_owned()]
        );
        clean(&path);
    }

    #[test]
    fn volatile_ingestor_cannot_checkpoint() {
        let ingest = Ingestor::new(random_corpus(10, 11));
        assert!(ingest.checkpoint_now().is_err());
        assert_eq!(ingest.checkpoint_stats(), CheckpointStats::default());
    }

    #[test]
    fn crash_between_snapshot_and_truncate_recovers_and_completes() {
        // Simulated kill after the snapshot rename but before the log
        // truncation: the log still carries every record, its base epoch
        // lagging the snapshot's. Recovery must skip the covered prefix
        // — leaving the log bytes untouched, so a kill *during* recovery
        // can never lose acknowledged batches — and the next checkpoint
        // completes the truncation atomically.
        let path = tmp("ckpt-crash.wal");
        clean(&path);
        let seed = random_corpus(25, 12);
        let final_corpus;
        let final_epoch;
        {
            let ingest = Ingestor::with_wal(seed.clone(), &path).unwrap();
            let exec = Executor::new(ingest.corpus(), ExecConfig::single_tree(Default::default()));
            ingest.apply(&exec, &[insert(0.2, 0.7, "x")]).unwrap();
            ingest.apply(&exec, &[Update::Delete(ObjectId(4))]).unwrap();
            ingest.apply(&exec, &[insert(0.9, 0.1, "y")]).unwrap();
            final_corpus = ingest.corpus();
            final_epoch = ingest.epoch();
            // "Crash": write the snapshot by hand, do NOT touch the log.
            save_checkpoint(
                &checkpoint_path(&path),
                &Checkpoint {
                    corpus: ingest.corpus(),
                    epoch: ingest.epoch(),
                    vocab: Vec::new(),
                },
            )
            .unwrap();
        }
        let revived = Ingestor::with_wal(seed.clone(), &path).unwrap();
        assert_eq!(revived.epoch(), final_epoch);
        assert_same_corpus(&revived.corpus(), &final_corpus);
        // Recovery left the log bytes alone: the covered prefix is
        // skipped in memory, never rewritten on disk.
        let ws = revived.wal_stats().unwrap();
        assert_eq!(ws.base_epoch, 0);
        assert_eq!(ws.batches, 3);
        // A second restart over the untouched window is still exact.
        drop(revived);
        let again = Ingestor::with_wal(seed.clone(), &path).unwrap();
        assert_eq!(again.epoch(), final_epoch);
        assert_same_corpus(&again.corpus(), &final_corpus);
        // The *next* checkpoint completes the truncation atomically
        // (snapshot-first, then reset).
        again.checkpoint_now().unwrap();
        let ws = again.wal_stats().unwrap();
        assert_eq!((ws.base_epoch, ws.batches), (final_epoch, 0));
        drop(again);
        let last = Ingestor::with_wal(seed, &path).unwrap();
        assert_eq!(last.epoch(), final_epoch);
        assert_same_corpus(&last.corpus(), &final_corpus);
        clean(&path);
    }

    #[test]
    fn missing_checkpoint_for_truncated_log_is_corrupt() {
        let path = tmp("ckpt-missing.wal");
        clean(&path);
        let seed = random_corpus(20, 13);
        {
            let ingest = Ingestor::with_wal(seed.clone(), &path).unwrap();
            let exec = Executor::new(ingest.corpus(), ExecConfig::single_tree(Default::default()));
            ingest.apply(&exec, &[insert(0.5, 0.5, "z")]).unwrap();
            ingest.checkpoint_now().unwrap();
        }
        // Delete the snapshot the truncated log depends on.
        std::fs::remove_file(checkpoint_path(&path)).unwrap();
        match Ingestor::with_wal(seed, &path) {
            Err(IngestError::WalCorrupt(why)) => {
                assert!(why.contains("checkpoint"), "{why}")
            }
            Err(other) => panic!("expected WalCorrupt, got {other}"),
            Ok(_) => panic!("truncated log without its checkpoint accepted"),
        }
        clean(&path);
    }

    #[test]
    fn copy_stats_accumulate_per_batch_work() {
        let seed = random_corpus(600, 14);
        let chunks_before = seed.chunk_count();
        let ingest = Ingestor::new(seed);
        let exec = Executor::new(ingest.corpus(), ExecConfig::single_tree(Default::default()));
        assert_eq!(ingest.copy_stats(), CopyStats::default());
        ingest
            .apply(&exec, &[insert(0.5, 0.5, "a"), Update::Delete(ObjectId(3))])
            .unwrap();
        let s = ingest.copy_stats();
        // One delete in chunk 0, one insert in the tail chunk: two chunks
        // copied, far less than the whole corpus.
        assert_eq!(s.chunks_copied, 2);
        assert!(s.bytes_copied > 0);
        assert!(chunks_before >= 2, "corpus too small for the bound to mean anything");
        ingest.apply(&exec, &[insert(0.6, 0.6, "b")]).unwrap();
        assert!(ingest.copy_stats().chunks_copied > s.chunks_copied);
    }

    #[test]
    fn write_path_histograms_sample_every_phase() {
        let path = tmp("hist-phases.wal");
        clean(&path);
        let seed = random_corpus(30, 15);
        let ingest = Ingestor::with_wal(seed, &path).unwrap();
        let exec = Executor::new(ingest.corpus(), ExecConfig::single_tree(Default::default()));
        assert_eq!(ingest.latency_snapshots().wal_append.count, 0);
        ingest.apply(&exec, &[insert(0.2, 0.2, "h0")]).unwrap();
        ingest.apply(&exec, &[insert(0.3, 0.3, "h1")]).unwrap();
        ingest.checkpoint_now().unwrap();
        let h = ingest.latency_snapshots();
        assert_eq!(h.wal_append.count, 2, "one sample per durable commit");
        assert_eq!(h.wal_fsync.count, 4, "two fsyncs per commit");
        assert_eq!(h.write_apply.count, 2, "one sample per published batch");
        assert_eq!(h.checkpoint.count, 1);
        assert!(h.checkpoint.sum_ns > 0);
        // The windowed twin saw the same two publishes (they just
        // happened, so they sit inside every horizon) and its horizons
        // nest.
        let [w1, w10, w60] = ingest.write_apply_windows();
        assert_eq!(w60.count, 2, "windowed view counts both publishes");
        assert!(w1.count <= w10.count && w10.count <= w60.count);
        assert_eq!(w60.sum_ns > 0, h.write_apply.sum_ns > 0);
        // Volatile ingestors still time publishes, just not the log.
        let volatile = Ingestor::new(random_corpus(10, 16));
        let exec2 = Executor::new(volatile.corpus(), ExecConfig::single_tree(Default::default()));
        volatile.apply(&exec2, &[insert(0.4, 0.4, "v0")]).unwrap();
        let hv = volatile.latency_snapshots();
        assert_eq!(hv.wal_append.count, 0);
        assert_eq!(hv.write_apply.count, 1);
        clean(&path);
    }

    #[test]
    fn rejected_batches_never_reach_the_wal() {
        let path = tmp("reject.wal");
        std::fs::remove_file(&path).ok();
        let seed = random_corpus(10, 3);
        let ingest = Ingestor::with_wal(seed.clone(), &path).unwrap();
        let exec = Executor::new(ingest.corpus(), ExecConfig::single_tree(Default::default()));
        assert!(ingest.apply(&exec, &[Update::Delete(ObjectId(99))]).is_err());
        assert!(ingest.apply(&exec, &[]).is_err());
        assert_eq!(ingest.wal_stats().unwrap().batches, 0);
        drop(ingest);
        let revived = Ingestor::with_wal(seed, &path).unwrap();
        assert_eq!(revived.epoch(), 0);
        std::fs::remove_file(&path).ok();
    }
}
