//! The write path coordinator: validation → WAL commit → epoch publish.
//!
//! One [`Ingestor`] owns the authoritative (writer-side) corpus version
//! and the optional write-ahead log; the read path lives in the
//! [`Executor`]'s epoch cell. [`Ingestor::apply`] runs the full write
//! protocol for one batch:
//!
//! 1. **validate** against the current version (bad batches never reach
//!    the log, so the log always replays),
//! 2. **log + fsync** the batch ([`crate::wal`]'s two-phase commit),
//! 3. **derive** the next corpus version (tombstones + appended slots),
//! 4. **publish** via [`Executor::apply_batch`] — incremental tree
//!    maintenance, shard routing, epoch swap, cache invalidation.
//!
//! A crash after step 2 but before step 4 is safe: replay at startup
//! reapplies the batch deterministically, so the durable epoch and the
//! in-memory epoch reconverge.

use std::path::Path;

use parking_lot::Mutex;
use yask_exec::Executor;
use yask_index::{Corpus, ObjectId};

use crate::update::{apply_batch, validate_batch, IngestError, Update};
use crate::wal::{encoded_len, GroupCommitConfig, Wal, WalStats};

/// Failure of a group application, carrying the outcomes of the chunks
/// that were already durably committed *and* published before the error:
/// the corpus, log and executor are consistent on that prefix, and a
/// caller can resubmit exactly the batches beyond `applied.len()` —
/// blindly retrying the whole group would double-apply the prefix's
/// inserts.
#[derive(Debug)]
pub struct GroupError {
    /// Outcomes of the batches applied before the failure (batch order).
    pub applied: Vec<ApplyOutcome>,
    /// The underlying failure.
    pub error: IngestError,
}

impl std::fmt::Display for GroupError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "group failed after {} applied batches: {}",
            self.applied.len(),
            self.error
        )
    }
}

impl std::error::Error for GroupError {}

/// What one committed batch did.
#[derive(Clone, Debug)]
pub struct ApplyOutcome {
    /// The epoch the batch published (== durable batch count).
    pub epoch: u64,
    /// Ids assigned to the batch's inserts, in batch order.
    pub inserted: Vec<ObjectId>,
    /// Ids the batch tombstoned.
    pub deleted: Vec<ObjectId>,
    /// Whether the executor re-split the STR partition afterwards.
    pub rebalanced: bool,
}

struct WriterState {
    corpus: Corpus,
    epoch: u64,
    wal: Option<Wal>,
}

/// The serialized write path of a live YASK deployment.
pub struct Ingestor {
    inner: Mutex<WriterState>,
}

impl Ingestor {
    /// A volatile ingestor (no log): updates apply to the running engine
    /// but do not survive a restart.
    pub fn new(corpus: Corpus) -> Self {
        Ingestor {
            inner: Mutex::new(WriterState {
                corpus,
                epoch: 0,
                wal: None,
            }),
        }
    }

    /// A durable ingestor: opens (or creates) the write-ahead log at
    /// `path` and replays every committed batch on top of `seed`,
    /// reconstructing the corpus version as of the last commit. Build the
    /// [`Executor`] over [`Ingestor::corpus`] at [`Ingestor::epoch`]
    /// afterwards.
    pub fn with_wal(seed: Corpus, path: &Path) -> Result<Self, IngestError> {
        let (wal, batches) = Wal::open_or_create(path, seed.slot_count() as u64)?;
        let mut corpus = seed;
        let mut epoch = 0u64;
        for batch in &batches {
            // A committed batch was validated before it was logged; a
            // batch that no longer validates means the log or base corpus
            // was swapped underneath us.
            validate_batch(&corpus, batch).map_err(|e| {
                IngestError::WalCorrupt(format!("batch {} fails replay: {e}", epoch + 1))
            })?;
            let (next, _, _) = apply_batch(&corpus, batch);
            corpus = next;
            epoch += 1;
        }
        debug_assert_eq!(epoch, wal.batches());
        Ok(Ingestor {
            inner: Mutex::new(WriterState {
                corpus,
                epoch,
                wal: Some(wal),
            }),
        })
    }

    /// The current (writer-side) corpus version.
    pub fn corpus(&self) -> Corpus {
        self.inner.lock().corpus.clone()
    }

    /// The current epoch (committed batch count).
    pub fn epoch(&self) -> u64 {
        self.inner.lock().epoch
    }

    /// Write-ahead-log counters; `None` when running without a log.
    pub fn wal_stats(&self) -> Option<WalStats> {
        self.inner.lock().wal.as_ref().map(|w| w.stats())
    }

    /// Applies one batch through the full write protocol (see the module
    /// docs) and publishes the resulting epoch on `exec`. Batches from
    /// concurrent callers serialize on the writer lock; readers are never
    /// blocked.
    pub fn apply(&self, exec: &Executor, batch: &[Update]) -> Result<ApplyOutcome, IngestError> {
        let mut inner = self.inner.lock();
        validate_batch(&inner.corpus, batch)?;
        if let Some(wal) = &mut inner.wal {
            wal.append(batch)?;
        }
        let (corpus, inserted, deleted) = apply_batch(&inner.corpus, batch);
        inner.corpus = corpus.clone();
        inner.epoch += 1;
        let outcome = exec.apply_batch(corpus, &inserted, &deleted);
        debug_assert_eq!(
            outcome.epoch, inner.epoch,
            "executor epoch diverged from the durable epoch"
        );
        Ok(ApplyOutcome {
            epoch: inner.epoch,
            inserted,
            deleted,
            rebalanced: outcome.rebalanced,
        })
    }

    /// Applies several batches with *group commit*: the batches are
    /// validated (each against the corpus as its predecessors leave it),
    /// chunked by the config's window/size limits, and every chunk is
    /// committed under **one** two-phase fsync pair
    /// ([`Wal::append_group`]) before its batches publish their epochs —
    /// amortizing the two syncs that dominate small-batch write latency
    /// while keeping one epoch per batch, exactly as if the batches had
    /// been applied one by one.
    ///
    /// **Admission** is all-or-nothing: if *any* batch fails validation
    /// the whole group is rejected before anything reaches the log, so
    /// the log never carries a batch that cannot replay. **Durability
    /// and publication** then proceed chunk by chunk (each chunk's
    /// commit is atomic): if an I/O error interrupts a later chunk, the
    /// chunks before it are already durable *and* published — the log,
    /// the in-memory corpus and the executor stay mutually consistent on
    /// that prefix, and the returned [`GroupError`] carries that prefix's
    /// outcomes, so a retry resubmits exactly the batches beyond
    /// `applied.len()` (resubmitting the whole group would double-apply
    /// the prefix's inserts).
    pub fn apply_group(
        &self,
        exec: &Executor,
        batches: &[Vec<Update>],
        config: GroupCommitConfig,
    ) -> Result<Vec<ApplyOutcome>, GroupError> {
        let mut inner = self.inner.lock();
        // Validate the whole group up front against the evolving corpus.
        let mut staged = Vec::with_capacity(batches.len());
        let mut probe = inner.corpus.clone();
        for batch in batches {
            if let Err(error) = validate_batch(&probe, batch) {
                return Err(GroupError {
                    applied: Vec::new(),
                    error,
                });
            }
            let (next, inserted, deleted) = apply_batch(&probe, batch);
            probe = next.clone();
            staged.push((next, inserted, deleted));
        }

        // Chunk into commit groups within the window/size caps (a single
        // oversized batch still commits alone).
        let max_batches = config.max_batches.max(1);
        let mut outcomes = Vec::with_capacity(batches.len());
        let mut start = 0usize;
        while start < batches.len() {
            let mut end = start;
            let mut bytes = 0usize;
            while end < batches.len() && end - start < max_batches {
                let len = encoded_len(&batches[end]);
                if end > start && bytes + len > config.max_bytes {
                    break;
                }
                bytes += len;
                end += 1;
            }
            if let Some(wal) = &mut inner.wal {
                let chunk: Vec<&[Update]> =
                    batches[start..end].iter().map(Vec::as_slice).collect();
                if let Err(e) = wal.append_group(&chunk) {
                    // Earlier chunks are durable and published; hand the
                    // caller their outcomes so only the suffix retries.
                    return Err(GroupError {
                        applied: outcomes,
                        error: e.into(),
                    });
                }
            }
            for (corpus, inserted, deleted) in staged[start..end].iter().cloned() {
                inner.corpus = corpus.clone();
                inner.epoch += 1;
                let outcome = exec.apply_batch(corpus, &inserted, &deleted);
                debug_assert_eq!(
                    outcome.epoch, inner.epoch,
                    "executor epoch diverged from the durable epoch"
                );
                outcomes.push(ApplyOutcome {
                    epoch: inner.epoch,
                    inserted,
                    deleted,
                    rebalanced: outcome.rebalanced,
                });
            }
            start = end;
        }
        Ok(outcomes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::update::NewObject;
    use yask_exec::ExecConfig;
    use yask_geo::{Point, Space};
    use yask_index::CorpusBuilder;
    use yask_text::KeywordSet;
    use yask_util::Xoshiro256;

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("yask-ingestor-{}-{}", std::process::id(), name));
        p
    }

    fn random_corpus(n: usize, seed: u64) -> Corpus {
        let mut rng = Xoshiro256::seed_from_u64(seed);
        let mut b = CorpusBuilder::with_capacity(n).with_space(Space::unit());
        for i in 0..n {
            let doc = KeywordSet::from_raw((0..1 + rng.below(4)).map(|_| rng.below(12) as u32));
            b.push(Point::new(rng.next_f64(), rng.next_f64()), doc, format!("o{i}"));
        }
        b.build()
    }

    fn insert(x: f64, y: f64, name: &str) -> Update {
        Update::Insert(NewObject::new(
            Point::new(x, y),
            KeywordSet::from_raw([1u32, 2]),
            name,
        ))
    }

    #[test]
    fn volatile_apply_updates_executor_and_rejects_bad_batches() {
        let corpus = random_corpus(100, 1);
        let exec = Executor::new(corpus.clone(), ExecConfig::default());
        let ingest = Ingestor::new(corpus);
        let out = ingest
            .apply(&exec, &[insert(0.4, 0.4, "new"), Update::Delete(ObjectId(3))])
            .unwrap();
        assert_eq!(out.epoch, 1);
        assert_eq!(out.inserted, vec![ObjectId(100)]);
        assert_eq!(out.deleted, vec![ObjectId(3)]);
        assert_eq!(exec.epoch(), 1);
        assert_eq!(exec.corpus().len(), 100);
        assert!(!exec.corpus().contains(ObjectId(3)));
        // The dead id is now rejected, and the failed batch burns no epoch.
        assert!(matches!(
            ingest.apply(&exec, &[Update::Delete(ObjectId(3))]),
            Err(IngestError::DeadObject(ObjectId(3)))
        ));
        assert_eq!(ingest.epoch(), 1);
        assert_eq!(exec.epoch(), 1);
        assert!(ingest.wal_stats().is_none());
    }

    #[test]
    fn wal_replay_reconverges_corpus_and_epoch() {
        let path = tmp("replay.wal");
        std::fs::remove_file(&path).ok();
        let seed = random_corpus(60, 2);
        let final_corpus;
        {
            let ingest = Ingestor::with_wal(seed.clone(), &path).unwrap();
            let exec = Executor::new_at_epoch(ingest.corpus(), ExecConfig::default(), ingest.epoch());
            ingest.apply(&exec, &[insert(0.1, 0.9, "a")]).unwrap();
            ingest
                .apply(&exec, &[Update::Delete(ObjectId(5)), insert(0.6, 0.2, "b")])
                .unwrap();
            ingest.apply(&exec, &[Update::Delete(ObjectId(60))]).unwrap();
            assert_eq!(ingest.epoch(), 3);
            final_corpus = ingest.corpus();
        }
        // "Restart": replay the log over the seed.
        let revived = Ingestor::with_wal(seed, &path).unwrap();
        assert_eq!(revived.epoch(), 3);
        assert_eq!(revived.wal_stats().unwrap().batches, 3);
        let got = revived.corpus();
        assert_eq!(got.slot_count(), final_corpus.slot_count());
        assert_eq!(got.len(), final_corpus.len());
        for o in final_corpus.objects() {
            assert_eq!(got.contains(o.id), final_corpus.contains(o.id), "{:?}", o.id);
            assert_eq!(got.get(o.id).loc, o.loc);
            assert_eq!(got.get(o.id).doc, o.doc);
            assert_eq!(got.get(o.id).name, o.name);
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn group_commit_amortizes_fsyncs_and_replays() {
        let path = tmp("group-replay.wal");
        std::fs::remove_file(&path).ok();
        let seed = random_corpus(80, 5);
        let batches: Vec<Vec<Update>> = vec![
            vec![insert(0.1, 0.2, "g0"), Update::Delete(ObjectId(3))],
            vec![insert(0.5, 0.5, "g1")],
            vec![insert(0.9, 0.1, "g2"), Update::Delete(ObjectId(7))],
            vec![Update::Delete(ObjectId(11))],
            vec![insert(0.3, 0.8, "g4")],
        ];
        let final_corpus;
        {
            let ingest = Ingestor::with_wal(seed.clone(), &path).unwrap();
            let exec = Executor::new_at_epoch(ingest.corpus(), ExecConfig::default(), 0);
            let cfg = GroupCommitConfig {
                max_batches: 2, // force ⌈5/2⌉ = 3 commit groups
                ..GroupCommitConfig::default()
            };
            let outcomes = ingest.apply_group(&exec, &batches, cfg).unwrap();
            // One epoch per batch, in order, exactly as serial applies.
            assert_eq!(
                outcomes.iter().map(|o| o.epoch).collect::<Vec<_>>(),
                vec![1, 2, 3, 4, 5]
            );
            assert_eq!(exec.epoch(), 5);
            let stats = ingest.wal_stats().unwrap();
            assert_eq!(stats.batches, 5);
            assert_eq!(stats.groups, 3, "5 batches in 3 fsync pairs");
            final_corpus = ingest.corpus();
        }
        // Restart: replay reconverges to the same corpus and epoch.
        let revived = Ingestor::with_wal(seed, &path).unwrap();
        assert_eq!(revived.epoch(), 5);
        assert_eq!(revived.wal_stats().unwrap().groups, 3);
        let got = revived.corpus();
        assert_eq!(got.slot_count(), final_corpus.slot_count());
        assert_eq!(got.live_ids(), final_corpus.live_ids());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn group_with_an_invalid_batch_is_rejected_whole() {
        let path = tmp("group-reject.wal");
        std::fs::remove_file(&path).ok();
        let seed = random_corpus(20, 6);
        let ingest = Ingestor::with_wal(seed, &path).unwrap();
        let exec = Executor::new(ingest.corpus(), ExecConfig::single_tree(Default::default()));
        let batches = vec![
            vec![insert(0.1, 0.1, "ok")],
            vec![Update::Delete(ObjectId(999))], // invalid: foreign id
        ];
        let err = ingest
            .apply_group(&exec, &batches, GroupCommitConfig::default())
            .unwrap_err();
        assert!(err.applied.is_empty(), "validation failure applies nothing");
        assert!(err.to_string().contains("after 0 applied batches"), "{err}");
        // Nothing was logged or published — not even the valid prefix.
        assert_eq!(ingest.epoch(), 0);
        assert_eq!(exec.epoch(), 0);
        assert_eq!(ingest.wal_stats().unwrap().batches, 0);
        assert_eq!(ingest.wal_stats().unwrap().groups, 0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn group_size_cap_splits_oversized_groups() {
        let seed = random_corpus(30, 7);
        let ingest = Ingestor::new(seed); // volatile: chunking still applies
        let exec = Executor::new(ingest.corpus(), ExecConfig::single_tree(Default::default()));
        let batches: Vec<Vec<Update>> =
            (0..4).map(|i| vec![insert(0.2, 0.2, &format!("s{i}"))]).collect();
        let cfg = GroupCommitConfig {
            max_batches: 64,
            max_bytes: 1, // every batch overflows the cap → one per group
        };
        let outcomes = ingest.apply_group(&exec, &batches, cfg).unwrap();
        assert_eq!(outcomes.len(), 4);
        assert_eq!(ingest.epoch(), 4);
        assert!(ingest.wal_stats().is_none(), "volatile ingestor has no log");
    }

    #[test]
    fn rejected_batches_never_reach_the_wal() {
        let path = tmp("reject.wal");
        std::fs::remove_file(&path).ok();
        let seed = random_corpus(10, 3);
        let ingest = Ingestor::with_wal(seed.clone(), &path).unwrap();
        let exec = Executor::new(ingest.corpus(), ExecConfig::single_tree(Default::default()));
        assert!(ingest.apply(&exec, &[Update::Delete(ObjectId(99))]).is_err());
        assert!(ingest.apply(&exec, &[]).is_err());
        assert_eq!(ingest.wal_stats().unwrap().batches, 0);
        drop(ingest);
        let revived = Ingestor::with_wal(seed, &path).unwrap();
        assert_eq!(revived.epoch(), 0);
        std::fs::remove_file(&path).ok();
    }
}
