//! The write path coordinator: validation → WAL commit → epoch publish.
//!
//! One [`Ingestor`] owns the authoritative (writer-side) corpus version
//! and the optional write-ahead log; the read path lives in the
//! [`Executor`]'s epoch cell. [`Ingestor::apply`] runs the full write
//! protocol for one batch:
//!
//! 1. **validate** against the current version (bad batches never reach
//!    the log, so the log always replays),
//! 2. **log + fsync** the batch ([`crate::wal`]'s two-phase commit),
//! 3. **derive** the next corpus version (tombstones + appended slots),
//! 4. **publish** via [`Executor::apply_batch`] — incremental tree
//!    maintenance, shard routing, epoch swap, cache invalidation.
//!
//! A crash after step 2 but before step 4 is safe: replay at startup
//! reapplies the batch deterministically, so the durable epoch and the
//! in-memory epoch reconverge.

use std::path::Path;

use parking_lot::Mutex;
use yask_exec::Executor;
use yask_index::{Corpus, ObjectId};

use crate::update::{apply_batch, validate_batch, IngestError, Update};
use crate::wal::{Wal, WalStats};

/// What one committed batch did.
#[derive(Clone, Debug)]
pub struct ApplyOutcome {
    /// The epoch the batch published (== durable batch count).
    pub epoch: u64,
    /// Ids assigned to the batch's inserts, in batch order.
    pub inserted: Vec<ObjectId>,
    /// Ids the batch tombstoned.
    pub deleted: Vec<ObjectId>,
    /// Whether the executor re-split the STR partition afterwards.
    pub rebalanced: bool,
}

struct WriterState {
    corpus: Corpus,
    epoch: u64,
    wal: Option<Wal>,
}

/// The serialized write path of a live YASK deployment.
pub struct Ingestor {
    inner: Mutex<WriterState>,
}

impl Ingestor {
    /// A volatile ingestor (no log): updates apply to the running engine
    /// but do not survive a restart.
    pub fn new(corpus: Corpus) -> Self {
        Ingestor {
            inner: Mutex::new(WriterState {
                corpus,
                epoch: 0,
                wal: None,
            }),
        }
    }

    /// A durable ingestor: opens (or creates) the write-ahead log at
    /// `path` and replays every committed batch on top of `seed`,
    /// reconstructing the corpus version as of the last commit. Build the
    /// [`Executor`] over [`Ingestor::corpus`] at [`Ingestor::epoch`]
    /// afterwards.
    pub fn with_wal(seed: Corpus, path: &Path) -> Result<Self, IngestError> {
        let (wal, batches) = Wal::open_or_create(path, seed.slot_count() as u64)?;
        let mut corpus = seed;
        let mut epoch = 0u64;
        for batch in &batches {
            // A committed batch was validated before it was logged; a
            // batch that no longer validates means the log or base corpus
            // was swapped underneath us.
            validate_batch(&corpus, batch).map_err(|e| {
                IngestError::WalCorrupt(format!("batch {} fails replay: {e}", epoch + 1))
            })?;
            let (next, _, _) = apply_batch(&corpus, batch);
            corpus = next;
            epoch += 1;
        }
        debug_assert_eq!(epoch, wal.batches());
        Ok(Ingestor {
            inner: Mutex::new(WriterState {
                corpus,
                epoch,
                wal: Some(wal),
            }),
        })
    }

    /// The current (writer-side) corpus version.
    pub fn corpus(&self) -> Corpus {
        self.inner.lock().corpus.clone()
    }

    /// The current epoch (committed batch count).
    pub fn epoch(&self) -> u64 {
        self.inner.lock().epoch
    }

    /// Write-ahead-log counters; `None` when running without a log.
    pub fn wal_stats(&self) -> Option<WalStats> {
        self.inner.lock().wal.as_ref().map(|w| w.stats())
    }

    /// Applies one batch through the full write protocol (see the module
    /// docs) and publishes the resulting epoch on `exec`. Batches from
    /// concurrent callers serialize on the writer lock; readers are never
    /// blocked.
    pub fn apply(&self, exec: &Executor, batch: &[Update]) -> Result<ApplyOutcome, IngestError> {
        let mut inner = self.inner.lock();
        validate_batch(&inner.corpus, batch)?;
        if let Some(wal) = &mut inner.wal {
            wal.append(batch)?;
        }
        let (corpus, inserted, deleted) = apply_batch(&inner.corpus, batch);
        inner.corpus = corpus.clone();
        inner.epoch += 1;
        let outcome = exec.apply_batch(corpus, &inserted, &deleted);
        debug_assert_eq!(
            outcome.epoch, inner.epoch,
            "executor epoch diverged from the durable epoch"
        );
        Ok(ApplyOutcome {
            epoch: inner.epoch,
            inserted,
            deleted,
            rebalanced: outcome.rebalanced,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::update::NewObject;
    use yask_exec::ExecConfig;
    use yask_geo::{Point, Space};
    use yask_index::CorpusBuilder;
    use yask_text::KeywordSet;
    use yask_util::Xoshiro256;

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("yask-ingestor-{}-{}", std::process::id(), name));
        p
    }

    fn random_corpus(n: usize, seed: u64) -> Corpus {
        let mut rng = Xoshiro256::seed_from_u64(seed);
        let mut b = CorpusBuilder::with_capacity(n).with_space(Space::unit());
        for i in 0..n {
            let doc = KeywordSet::from_raw((0..1 + rng.below(4)).map(|_| rng.below(12) as u32));
            b.push(Point::new(rng.next_f64(), rng.next_f64()), doc, format!("o{i}"));
        }
        b.build()
    }

    fn insert(x: f64, y: f64, name: &str) -> Update {
        Update::Insert(NewObject::new(
            Point::new(x, y),
            KeywordSet::from_raw([1u32, 2]),
            name,
        ))
    }

    #[test]
    fn volatile_apply_updates_executor_and_rejects_bad_batches() {
        let corpus = random_corpus(100, 1);
        let exec = Executor::new(corpus.clone(), ExecConfig::default());
        let ingest = Ingestor::new(corpus);
        let out = ingest
            .apply(&exec, &[insert(0.4, 0.4, "new"), Update::Delete(ObjectId(3))])
            .unwrap();
        assert_eq!(out.epoch, 1);
        assert_eq!(out.inserted, vec![ObjectId(100)]);
        assert_eq!(out.deleted, vec![ObjectId(3)]);
        assert_eq!(exec.epoch(), 1);
        assert_eq!(exec.corpus().len(), 100);
        assert!(!exec.corpus().contains(ObjectId(3)));
        // The dead id is now rejected, and the failed batch burns no epoch.
        assert!(matches!(
            ingest.apply(&exec, &[Update::Delete(ObjectId(3))]),
            Err(IngestError::DeadObject(ObjectId(3)))
        ));
        assert_eq!(ingest.epoch(), 1);
        assert_eq!(exec.epoch(), 1);
        assert!(ingest.wal_stats().is_none());
    }

    #[test]
    fn wal_replay_reconverges_corpus_and_epoch() {
        let path = tmp("replay.wal");
        std::fs::remove_file(&path).ok();
        let seed = random_corpus(60, 2);
        let final_corpus;
        {
            let ingest = Ingestor::with_wal(seed.clone(), &path).unwrap();
            let exec = Executor::new_at_epoch(ingest.corpus(), ExecConfig::default(), ingest.epoch());
            ingest.apply(&exec, &[insert(0.1, 0.9, "a")]).unwrap();
            ingest
                .apply(&exec, &[Update::Delete(ObjectId(5)), insert(0.6, 0.2, "b")])
                .unwrap();
            ingest.apply(&exec, &[Update::Delete(ObjectId(60))]).unwrap();
            assert_eq!(ingest.epoch(), 3);
            final_corpus = ingest.corpus();
        }
        // "Restart": replay the log over the seed.
        let revived = Ingestor::with_wal(seed, &path).unwrap();
        assert_eq!(revived.epoch(), 3);
        assert_eq!(revived.wal_stats().unwrap().batches, 3);
        let got = revived.corpus();
        assert_eq!(got.slot_count(), final_corpus.slot_count());
        assert_eq!(got.len(), final_corpus.len());
        for o in final_corpus.objects() {
            assert_eq!(got.contains(o.id), final_corpus.contains(o.id), "{:?}", o.id);
            assert_eq!(got.get(o.id).loc, o.loc);
            assert_eq!(got.get(o.id).doc, o.doc);
            assert_eq!(got.get(o.id).name, o.name);
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rejected_batches_never_reach_the_wal() {
        let path = tmp("reject.wal");
        std::fs::remove_file(&path).ok();
        let seed = random_corpus(10, 3);
        let ingest = Ingestor::with_wal(seed.clone(), &path).unwrap();
        let exec = Executor::new(ingest.corpus(), ExecConfig::single_tree(Default::default()));
        assert!(ingest.apply(&exec, &[Update::Delete(ObjectId(99))]).is_err());
        assert!(ingest.apply(&exec, &[]).is_err());
        assert_eq!(ingest.wal_stats().unwrap().batches, 0);
        drop(ingest);
        let revived = Ingestor::with_wal(seed, &path).unwrap();
        assert_eq!(revived.epoch(), 0);
        std::fs::remove_file(&path).ok();
    }
}
