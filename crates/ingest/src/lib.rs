//! `yask_ingest` — live corpus updates for YASK.
//!
//! The seed system was read-only: `str_bulk_load` ran once and every
//! layer above assumed a frozen corpus. Real spatial keyword services
//! never are — POIs are added, edited and retired continuously (the
//! premise behind update-friendly index designs like QDR-Tree; see
//! PAPERS.md). This crate is the write path that makes the whole stack
//! writable without stalling reads:
//!
//! * [`update`] — the [`Update`] operations ([`NewObject`] inserts,
//!   tombstoning deletes), batch validation, and [`IngestError`];
//! * [`wal`] — a write-ahead log persisted through the `yask_pager` page
//!   store: append, `fsync`-on-commit (two-phase: data pages, then the
//!   header), replay on startup — updates survive restarts;
//! * [`ingestor`] — the [`Ingestor`] coordinator running the write
//!   protocol (validate → log → derive the next corpus version → publish
//!   on the [`yask_exec::Executor`]), folding the log into
//!   `yask_pager` checkpoint snapshots past the [`CheckpointConfig`]
//!   thresholds so restart replay is bounded by the checkpoint interval.
//!
//! The pieces it builds on live one layer down: versioned corpora with
//! stable ids and tombstones in `yask_index` ([`yask_index::Corpus`]),
//! and epoch snapshots + shard-aware write routing + epoch-tagged cache
//! invalidation + skew-triggered rebalancing in `yask_exec`. Readers pin
//! an epoch for the duration of a query, so in-flight top-k and why-not
//! computations never observe a torn corpus; writers serialize on the
//! ingestor and publish whole epochs.
//!
//! The oracle property (`tests/oracle.rs`): any interleaving of inserts,
//! deletes, and top-k / why-not queries on the sharded executor is
//! indistinguishable from rebuilding a single tree over the surviving
//! corpus at every query point, and a WAL replay after a restart
//! reproduces the same corpus epoch.

pub mod ingestor;
pub mod update;
pub mod wal;

pub use ingestor::{
    checkpoint_path, ApplyOutcome, CheckpointConfig, CheckpointStats, GroupError,
    IngestHistSnapshots, Ingestor,
};
pub use update::{validate_batch, IngestError, NewObject, Update};
pub use wal::{GroupCommitConfig, Wal, WalHistSnapshots, WalStats};
