//! The ingest oracle (ISSUE 3 acceptance): an arbitrary interleaving of
//! inserts, deletes, and top-k / why-not queries on the sharded executor
//! must be indistinguishable from **rebuilding a single tree from the
//! surviving corpus at every query point** — for K ∈ {1, 2, 4} shards —
//! and a WAL replay after a simulated restart must reproduce the same
//! corpus epoch.
//!
//! The oracle rebuilds a *fresh dense corpus* of the survivors (ids
//! reassigned 0..n in survivor order) over the same data space, runs the
//! seed-style single-tree engine on it, and maps ids through the
//! dense ↔ slot correspondence. Score ties break by id in both worlds,
//! and the survivor order is id order, so the mapping is order-preserving
//! — any divergence is a real bug, not a tie artifact.

use yask_core::Yask;
use yask_exec::{ExecConfig, Executor};
use yask_geo::{Point, Space};
use yask_index::{Corpus, CorpusBuilder, ObjectId};
use yask_query::{topk_scan, Query};
use yask_text::KeywordSet;
use yask_util::Xoshiro256;

use yask_ingest::{Ingestor, NewObject, Update};

const VOCAB: usize = 14;

fn random_corpus(n: usize, seed: u64) -> Corpus {
    let mut rng = Xoshiro256::seed_from_u64(seed);
    let mut b = CorpusBuilder::with_capacity(n).with_space(Space::unit());
    for i in 0..n {
        let doc = KeywordSet::from_raw((0..1 + rng.below(4)).map(|_| rng.below(VOCAB) as u32));
        b.push(Point::new(rng.next_f64(), rng.next_f64()), doc, format!("seed{i}"));
    }
    b.build()
}

/// The oracle world: survivors of `corpus` re-packed densely (ids
/// reassigned in slot order) into a fresh corpus + single-tree engine,
/// with the slot → dense id map.
struct FreshOracle {
    yask: Yask,
    corpus: Corpus,
    dense_of_slot: std::collections::HashMap<ObjectId, ObjectId>,
}

impl FreshOracle {
    fn build(live: &Corpus) -> FreshOracle {
        let mut b = CorpusBuilder::with_capacity(live.len()).with_space(live.space());
        let mut dense_of_slot = std::collections::HashMap::new();
        for o in live.iter() {
            let dense = b.push(o.loc, o.doc.clone(), o.name.clone());
            dense_of_slot.insert(o.id, dense);
        }
        let corpus = b.build();
        FreshOracle {
            yask: Yask::with_defaults(corpus.clone()),
            corpus,
            dense_of_slot,
        }
    }
}

fn query(rng: &mut Xoshiro256) -> Query {
    Query::new(
        Point::new(rng.next_f64(), rng.next_f64()),
        KeywordSet::from_raw((0..1 + rng.below(3)).map(|_| rng.below(VOCAB) as u32)),
        1 + rng.below(8),
    )
}

/// Runs the interleaved workload against one executor configuration,
/// checking every query point against the fresh-rebuild oracle. Returns
/// the ingestor for the restart check.
fn run_interleaving(
    shards: usize,
    seed: u64,
    ops: usize,
    wal_path: Option<&std::path::Path>,
) -> (Ingestor, Executor) {
    let seed_corpus = random_corpus(70, seed);
    let ingest = match wal_path {
        Some(p) => Ingestor::with_wal(seed_corpus, p).expect("open wal"),
        None => Ingestor::new(seed_corpus),
    };
    let exec = Executor::new_at_epoch(
        ingest.corpus(),
        ExecConfig {
            shards,
            workers: shards.min(4),
            rebalance_skew: 1.8,
            rebalance_min: 60,
            ..ExecConfig::default()
        },
        ingest.epoch(),
    );

    let mut rng = Xoshiro256::seed_from_u64(seed ^ 0xABCD);
    let mut queries = 0usize;
    for step in 0..ops {
        let corpus = ingest.corpus();
        let roll = rng.below(100);
        if roll < 35 {
            // Insert.
            let op = Update::Insert(NewObject::new(
                Point::new(rng.next_f64(), rng.next_f64()),
                KeywordSet::from_raw((0..1 + rng.below(4)).map(|_| rng.below(VOCAB) as u32)),
                format!("ins{seed}-{step}"),
            ));
            ingest.apply(&exec, &[op]).expect("insert batch");
        } else if roll < 55 && corpus.len() > 25 {
            // Delete a random live object.
            let live = corpus.live_ids();
            let victim = live[rng.below(live.len())];
            ingest
                .apply(&exec, &[Update::Delete(victim)])
                .expect("delete batch");
        } else {
            // Query point: executor vs fresh single-tree rebuild.
            queries += 1;
            let oracle = FreshOracle::build(&corpus);
            let q = query(&mut rng);

            let got = exec.top_k(&q);
            let want = oracle.yask.top_k(&q);
            assert_eq!(got.len(), want.len(), "step {step} K={shards}: result size");
            for (g, w) in got.iter().zip(&want) {
                assert_eq!(
                    oracle.dense_of_slot[&g.id], w.id,
                    "step {step} K={shards}: ids diverge"
                );
                assert!(
                    (g.score - w.score).abs() < 1e-12,
                    "step {step} K={shards}: score drift"
                );
            }

            // Every third query point: the full why-not answer.
            if queries % 3 == 0 {
                let all = topk_scan(&oracle.corpus, &oracle.yask.score_params(), &q.with_k(oracle.corpus.len()));
                if all.len() > q.k + 1 {
                    let missing_dense = all[q.k + 1].id;
                    let missing_slot = *oracle
                        .dense_of_slot
                        .iter()
                        .find(|(_, &d)| d == missing_dense)
                        .expect("dense id maps back")
                        .0;
                    let got = exec.answer_with_lambda(&q, &[missing_slot], 0.5);
                    let want = oracle.yask.answer_with_lambda(&q, &[missing_dense], 0.5);
                    match (got, want) {
                        (Ok(g), Ok(w)) => {
                            assert!(
                                (g.preference.penalty - w.preference.penalty).abs() < 1e-12,
                                "step {step} K={shards}: preference penalty"
                            );
                            assert!(
                                (g.keyword.penalty - w.keyword.penalty).abs() < 1e-12,
                                "step {step} K={shards}: keyword penalty"
                            );
                            assert_eq!(
                                g.preference.query.k, w.preference.query.k,
                                "step {step} K={shards}: refined k"
                            );
                            assert_eq!(
                                g.keyword.query.doc, w.keyword.query.doc,
                                "step {step} K={shards}: refined keywords"
                            );
                            assert_eq!(g.explanations.len(), 1);
                            assert_eq!(
                                g.explanations[0].rank, w.explanations[0].rank,
                                "step {step} K={shards}: explained rank"
                            );
                            assert_eq!(g.recommended, w.recommended);
                        }
                        (g, w) => assert_eq!(
                            g.is_err(),
                            w.is_err(),
                            "step {step} K={shards}: executor and oracle disagree on error"
                        ),
                    }
                }
            }
        }
    }
    assert!(queries >= ops / 4, "workload degenerated: {queries} queries");
    (ingest, exec)
}

#[test]
fn interleaved_updates_match_fresh_rebuild_for_every_shard_count() {
    for (shards, seed) in [(1usize, 11u64), (2, 22), (4, 33)] {
        let (_ingest, exec) = run_interleaving(shards, seed, 70, None);
        assert!(exec.epoch() > 0, "K={shards}: no batch ever applied");
    }
}

#[test]
fn wal_replay_after_restart_reproduces_the_corpus_epoch() {
    let mut path = std::env::temp_dir();
    path.push(format!("yask-oracle-{}.wal", std::process::id()));
    std::fs::remove_file(&path).ok();

    let (ingest, exec) = run_interleaving(4, 44, 60, Some(&path));
    let epoch = ingest.epoch();
    let corpus = ingest.corpus();
    assert!(epoch > 0);
    assert_eq!(exec.epoch(), epoch);
    drop(exec);
    drop(ingest);

    // Simulated restart: same seed corpus, same log.
    let revived = Ingestor::with_wal(random_corpus(70, 44), &path).expect("replay");
    assert_eq!(revived.epoch(), epoch, "replay must land on the same epoch");
    let got = revived.corpus();
    assert_eq!(got.slot_count(), corpus.slot_count());
    assert_eq!(got.len(), corpus.len());
    for o in corpus.objects() {
        assert_eq!(got.contains(o.id), corpus.contains(o.id), "{:?}", o.id);
        assert_eq!(got.get(o.id).loc, o.loc);
        assert_eq!(got.get(o.id).doc, o.doc);
        assert_eq!(got.get(o.id).name, o.name);
    }
    assert_eq!(got.space(), corpus.space());

    // And the engine rebuilt over the replayed state answers exactly like
    // a fresh rebuild of the survivors.
    let exec = Executor::new_at_epoch(got.clone(), ExecConfig::default(), revived.epoch());
    let oracle = FreshOracle::build(&got);
    let mut rng = Xoshiro256::seed_from_u64(7);
    for _ in 0..10 {
        let q = query(&mut rng);
        let a: Vec<ObjectId> = exec.top_k(&q).iter().map(|r| oracle.dense_of_slot[&r.id]).collect();
        let b: Vec<ObjectId> = oracle.yask.top_k(&q).iter().map(|r| r.id).collect();
        assert_eq!(a, b);
    }
    std::fs::remove_file(&path).ok();
}
