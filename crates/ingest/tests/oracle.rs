//! The ingest oracle (ISSUE 3 acceptance): an arbitrary interleaving of
//! inserts, deletes, and top-k / why-not queries on the sharded executor
//! must be indistinguishable from **rebuilding a single tree from the
//! surviving corpus at every query point** — for K ∈ {1, 2, 4} shards —
//! and a WAL replay after a simulated restart must reproduce the same
//! corpus epoch.
//!
//! The oracle rebuilds a *fresh dense corpus* of the survivors (ids
//! reassigned 0..n in survivor order) over the same data space, runs the
//! seed-style single-tree engine on it, and maps ids through the
//! dense ↔ slot correspondence. Score ties break by id in both worlds,
//! and the survivor order is id order, so the mapping is order-preserving
//! — any divergence is a real bug, not a tie artifact.

use yask_core::Yask;
use yask_exec::{ExecConfig, Executor};
use yask_geo::{Point, Space};
use yask_index::{Corpus, CorpusBuilder, ObjectId};
use yask_query::{topk_scan, Query};
use yask_text::KeywordSet;
use yask_util::Xoshiro256;

use yask_ingest::{checkpoint_path, CheckpointConfig, Ingestor, NewObject, Update};

const VOCAB: usize = 14;

fn random_corpus(n: usize, seed: u64) -> Corpus {
    let mut rng = Xoshiro256::seed_from_u64(seed);
    let mut b = CorpusBuilder::with_capacity(n).with_space(Space::unit());
    for i in 0..n {
        let doc = KeywordSet::from_raw((0..1 + rng.below(4)).map(|_| rng.below(VOCAB) as u32));
        b.push(Point::new(rng.next_f64(), rng.next_f64()), doc, format!("seed{i}"));
    }
    b.build()
}

/// The oracle world: survivors of `corpus` re-packed densely (ids
/// reassigned in slot order) into a fresh corpus + single-tree engine,
/// with the slot → dense id map.
struct FreshOracle {
    yask: Yask,
    corpus: Corpus,
    dense_of_slot: std::collections::HashMap<ObjectId, ObjectId>,
}

impl FreshOracle {
    fn build(live: &Corpus) -> FreshOracle {
        let mut b = CorpusBuilder::with_capacity(live.len()).with_space(live.space());
        let mut dense_of_slot = std::collections::HashMap::new();
        for o in live.iter() {
            let dense = b.push(o.loc, o.doc.clone(), o.name.clone());
            dense_of_slot.insert(o.id, dense);
        }
        let corpus = b.build();
        FreshOracle {
            yask: Yask::with_defaults(corpus.clone()),
            corpus,
            dense_of_slot,
        }
    }
}

fn query(rng: &mut Xoshiro256) -> Query {
    Query::new(
        Point::new(rng.next_f64(), rng.next_f64()),
        KeywordSet::from_raw((0..1 + rng.below(3)).map(|_| rng.below(VOCAB) as u32)),
        1 + rng.below(8),
    )
}

/// Runs the interleaved workload against one executor configuration,
/// checking every query point against the fresh-rebuild oracle. Returns
/// the ingestor for the restart check.
fn run_interleaving(
    shards: usize,
    seed: u64,
    ops: usize,
    wal_path: Option<&std::path::Path>,
) -> (Ingestor, Executor) {
    let seed_corpus = random_corpus(70, seed);
    let ingest = match wal_path {
        Some(p) => Ingestor::with_wal(seed_corpus, p).expect("open wal"),
        None => Ingestor::new(seed_corpus),
    };
    let exec = Executor::new_at_epoch(
        ingest.corpus(),
        ExecConfig {
            shards,
            workers: shards.min(4),
            rebalance_skew: 1.8,
            rebalance_min: 60,
            ..ExecConfig::default()
        },
        ingest.epoch(),
    );

    let mut rng = Xoshiro256::seed_from_u64(seed ^ 0xABCD);
    let mut queries = 0usize;
    for step in 0..ops {
        let corpus = ingest.corpus();
        let roll = rng.below(100);
        if roll < 35 {
            // Insert.
            let op = Update::Insert(NewObject::new(
                Point::new(rng.next_f64(), rng.next_f64()),
                KeywordSet::from_raw((0..1 + rng.below(4)).map(|_| rng.below(VOCAB) as u32)),
                format!("ins{seed}-{step}"),
            ));
            ingest.apply(&exec, &[op]).expect("insert batch");
        } else if roll < 55 && corpus.len() > 25 {
            // Delete a random live object.
            let live = corpus.live_ids();
            let victim = live[rng.below(live.len())];
            ingest
                .apply(&exec, &[Update::Delete(victim)])
                .expect("delete batch");
        } else {
            // Query point: executor vs fresh single-tree rebuild.
            queries += 1;
            let oracle = FreshOracle::build(&corpus);
            let q = query(&mut rng);

            let got = exec.top_k(&q);
            let want = oracle.yask.top_k(&q);
            assert_eq!(got.len(), want.len(), "step {step} K={shards}: result size");
            for (g, w) in got.iter().zip(&want) {
                assert_eq!(
                    oracle.dense_of_slot[&g.id], w.id,
                    "step {step} K={shards}: ids diverge"
                );
                assert!(
                    (g.score - w.score).abs() < 1e-12,
                    "step {step} K={shards}: score drift"
                );
            }

            // Every third query point: the full why-not answer.
            if queries % 3 == 0 {
                let all = topk_scan(&oracle.corpus, &oracle.yask.score_params(), &q.with_k(oracle.corpus.len()));
                if all.len() > q.k + 1 {
                    let missing_dense = all[q.k + 1].id;
                    let missing_slot = *oracle
                        .dense_of_slot
                        .iter()
                        .find(|(_, &d)| d == missing_dense)
                        .expect("dense id maps back")
                        .0;
                    let got = exec.answer_with_lambda(&q, &[missing_slot], 0.5);
                    let want = oracle.yask.answer_with_lambda(&q, &[missing_dense], 0.5);
                    match (got, want) {
                        (Ok(g), Ok(w)) => {
                            assert!(
                                (g.preference.penalty - w.preference.penalty).abs() < 1e-12,
                                "step {step} K={shards}: preference penalty"
                            );
                            assert!(
                                (g.keyword.penalty - w.keyword.penalty).abs() < 1e-12,
                                "step {step} K={shards}: keyword penalty"
                            );
                            assert_eq!(
                                g.preference.query.k, w.preference.query.k,
                                "step {step} K={shards}: refined k"
                            );
                            assert_eq!(
                                g.keyword.query.doc, w.keyword.query.doc,
                                "step {step} K={shards}: refined keywords"
                            );
                            assert_eq!(g.explanations.len(), 1);
                            assert_eq!(
                                g.explanations[0].rank, w.explanations[0].rank,
                                "step {step} K={shards}: explained rank"
                            );
                            assert_eq!(g.recommended, w.recommended);
                        }
                        (g, w) => assert_eq!(
                            g.is_err(),
                            w.is_err(),
                            "step {step} K={shards}: executor and oracle disagree on error"
                        ),
                    }
                }
            }
        }
    }
    assert!(queries >= ops / 4, "workload degenerated: {queries} queries");
    (ingest, exec)
}

#[test]
fn interleaved_updates_match_fresh_rebuild_for_every_shard_count() {
    for (shards, seed) in [(1usize, 11u64), (2, 22), (4, 33)] {
        let (_ingest, exec) = run_interleaving(shards, seed, 70, None);
        assert!(exec.epoch() > 0, "K={shards}: no batch ever applied");
    }
}

/// Asserts that an executor over `corpus` answers exactly like a fresh
/// single-tree rebuild of the survivors (the acceptance oracle of every
/// recovery path).
fn assert_oracle_accepts(corpus: &Corpus, epoch: u64, seed: u64) {
    let exec = Executor::new_at_epoch(corpus.clone(), ExecConfig::default(), epoch);
    let oracle = FreshOracle::build(corpus);
    let mut rng = Xoshiro256::seed_from_u64(seed);
    for _ in 0..8 {
        let q = query(&mut rng);
        let a: Vec<ObjectId> = exec.top_k(&q).iter().map(|r| oracle.dense_of_slot[&r.id]).collect();
        let b: Vec<ObjectId> = oracle.yask.top_k(&q).iter().map(|r| r.id).collect();
        assert_eq!(a, b, "recovered state diverges from the fresh rebuild");
    }
}

/// Crash-point coverage for checkpointing (ISSUE 5 satellite): a
/// simulated kill between the snapshot write, the snapshot rename, and
/// the WAL truncation — plus stray sidecar temp files — must always
/// recover to a state the fresh-rebuild oracle accepts.
#[test]
fn checkpoint_crash_points_always_recover_to_the_oracle() {
    let mut path = std::env::temp_dir();
    path.push(format!("yask-oracle-ckpt-{}.wal", std::process::id()));
    let ckpt = checkpoint_path(&path);
    for p in [&path, &ckpt] {
        std::fs::remove_file(p).ok();
    }
    let config = CheckpointConfig {
        max_wal_batches: 5,
        max_wal_bytes: u64::MAX,
    };
    let seed_corpus = random_corpus(70, 55);

    // Phase 0: a checkpointed workload (17 batches, threshold 5 — the
    // log folds into the snapshot at epochs 5, 10, 15).
    let (corpus_a, epoch_a) = {
        let ingest =
            Ingestor::with_wal_config(seed_corpus.clone(), &path, config).expect("open");
        let exec = Executor::new_at_epoch(ingest.corpus(), ExecConfig::default(), ingest.epoch());
        let mut rng = Xoshiro256::seed_from_u64(505);
        for step in 0..17 {
            let corpus = ingest.corpus();
            if rng.below(100) < 60 || corpus.len() <= 25 {
                let op = Update::Insert(NewObject::new(
                    Point::new(rng.next_f64(), rng.next_f64()),
                    KeywordSet::from_raw((0..1 + rng.below(4)).map(|_| rng.below(VOCAB) as u32)),
                    format!("ck{step}"),
                ));
                ingest.apply(&exec, &[op]).expect("insert");
            } else {
                let live = corpus.live_ids();
                let victim = live[rng.below(live.len())];
                ingest.apply(&exec, &[Update::Delete(victim)]).expect("delete");
            }
        }
        assert_eq!(ingest.epoch(), 17);
        let ws = ingest.wal_stats().unwrap();
        assert_eq!((ws.base_epoch, ws.batches), (15, 2), "log did not fold");
        (ingest.corpus(), ingest.epoch())
    };

    // Crash point 1: killed mid-snapshot-write — a torn `.ckpt.tmp` (and
    // a stale vocab sidecar tmp) lie around, the real snapshot is the
    // previous one. Recovery must ignore the temp files.
    let ckpt_tmp = {
        let mut os = ckpt.as_os_str().to_owned();
        os.push(".tmp");
        std::path::PathBuf::from(os)
    };
    let vocab_tmp = {
        let mut os = path.as_os_str().to_owned();
        os.push(".vocab.tmp");
        std::path::PathBuf::from(os)
    };
    std::fs::write(&ckpt_tmp, b"torn snapshot, killed mid-write").unwrap();
    std::fs::write(&vocab_tmp, b"torn vocab sidecar").unwrap();
    let revived = Ingestor::with_wal_config(seed_corpus.clone(), &path, config).expect("crash 1");
    assert_eq!(revived.epoch(), epoch_a);
    assert_eq!(revived.corpus().live_ids(), corpus_a.live_ids());
    assert_oracle_accepts(&revived.corpus(), revived.epoch(), 61);
    drop(revived);

    // Crash point 2: the snapshot was written *and renamed* but the kill
    // landed before the WAL truncation — the log still claims records the
    // snapshot already covers. Recovery must skip the covered prefix
    // while leaving the log bytes untouched (rewriting them here could
    // itself be interrupted and lose acknowledged batches).
    yask_pager::save_checkpoint(
        &ckpt,
        &yask_pager::Checkpoint {
            corpus: corpus_a.clone(),
            epoch: epoch_a,
            vocab: Vec::new(),
        },
    )
    .unwrap();
    let revived = Ingestor::with_wal_config(seed_corpus.clone(), &path, config).expect("crash 2");
    assert_eq!(revived.epoch(), epoch_a);
    assert_eq!(revived.corpus().live_ids(), corpus_a.live_ids());
    let ws = revived.wal_stats().unwrap();
    assert_eq!(
        (ws.base_epoch, ws.batches),
        (15, 2),
        "recovery must not rewrite the log inside the crash window"
    );
    assert_oracle_accepts(&revived.corpus(), revived.epoch(), 62);

    // And the recovered write path keeps working: more batches, another
    // restart, still oracle-exact.
    let exec = Executor::new_at_epoch(revived.corpus(), ExecConfig::default(), revived.epoch());
    revived
        .apply(
            &exec,
            &[Update::Insert(NewObject::new(
                Point::new(0.42, 0.42),
                KeywordSet::from_raw([1u32, 2]),
                "post-crash",
            ))],
        )
        .expect("post-recovery write");
    let (corpus_b, epoch_b) = (revived.corpus(), revived.epoch());
    drop(revived);
    let final_state = Ingestor::with_wal_config(seed_corpus, &path, config).expect("crash 3");
    assert_eq!(final_state.epoch(), epoch_b);
    assert_eq!(final_state.corpus().live_ids(), corpus_b.live_ids());
    assert_oracle_accepts(&final_state.corpus(), final_state.epoch(), 63);

    for p in [&path, &ckpt, &ckpt_tmp, &vocab_tmp] {
        std::fs::remove_file(p).ok();
    }
}

#[test]
fn wal_replay_after_restart_reproduces_the_corpus_epoch() {
    let mut path = std::env::temp_dir();
    path.push(format!("yask-oracle-{}.wal", std::process::id()));
    std::fs::remove_file(&path).ok();

    let (ingest, exec) = run_interleaving(4, 44, 60, Some(&path));
    let epoch = ingest.epoch();
    let corpus = ingest.corpus();
    assert!(epoch > 0);
    assert_eq!(exec.epoch(), epoch);
    drop(exec);
    drop(ingest);

    // Simulated restart: same seed corpus, same log.
    let revived = Ingestor::with_wal(random_corpus(70, 44), &path).expect("replay");
    assert_eq!(revived.epoch(), epoch, "replay must land on the same epoch");
    let got = revived.corpus();
    assert_eq!(got.slot_count(), corpus.slot_count());
    assert_eq!(got.len(), corpus.len());
    for o in corpus.iter_slots() {
        assert_eq!(got.contains(o.id), corpus.contains(o.id), "{:?}", o.id);
        assert_eq!(got.get(o.id).loc, o.loc);
        assert_eq!(got.get(o.id).doc, o.doc);
        assert_eq!(got.get(o.id).name, o.name);
    }
    assert_eq!(got.space(), corpus.space());

    // And the engine rebuilt over the replayed state answers exactly like
    // a fresh rebuild of the survivors.
    let exec = Executor::new_at_epoch(got.clone(), ExecConfig::default(), revived.epoch());
    let oracle = FreshOracle::build(&got);
    let mut rng = Xoshiro256::seed_from_u64(7);
    for _ in 0..10 {
        let q = query(&mut rng);
        let a: Vec<ObjectId> = exec.top_k(&q).iter().map(|r| oracle.dense_of_slot[&r.id]).collect();
        let b: Vec<ObjectId> = oracle.yask.top_k(&q).iter().map(|r| r.id).collect();
        assert_eq!(a, b);
    }
    std::fs::remove_file(&path).ok();
}
