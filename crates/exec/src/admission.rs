//! Admission control and load shedding over the workload observatory.
//!
//! PR 8 gave the engine eyes — windowed queue depth, per-route latency
//! quantiles, per-cell heat with a skew ratio, and an overload verdict.
//! This module is the hand on the valve: every request is classified
//! into a [`Route`] and judged against the live [`Pressure`] sample
//! *before any work is queued*, producing an [`AdmitDecision`]:
//!
//! * **Admit** — run as usual.
//! * **Degrade** — run, but at a reduced deadline budget, and allow the
//!   server to satisfy the request from a cached (possibly stale-epoch)
//!   answer marked `degraded: true`. Top-k queries degrade before they
//!   shed — a slightly stale answer beats a 429 for a read — and
//!   queries into *hot cells* (cell heat far above the mean) degrade
//!   first, QDR-Tree-style: the flash crowd pays the budget cut, not
//!   the long tail.
//! * **Shed** — refuse with `429`/`503` + `Retry-After` before the
//!   request touches the pool. Expensive why-not refinements shed
//!   first (they fan out resident workers), writes next, plain top-k
//!   last, and at the *critical* level the server sheds at the
//!   connection-accept boundary with a canned response.
//!
//! The controller is policy + counters only — it owns no queues and
//! takes no locks; one decision is a handful of atomic loads. The
//! shed/degraded/deadline counters it accumulates surface on `/stats`
//! and `/metrics` (`yask_shed_total{route,reason}` and friends).

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use crate::deadline::Deadline;

/// Request classes with distinct shedding priorities.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Route {
    /// Plain top-k queries — shed last (degrade first).
    TopK,
    /// Why-not refinements (all five modules) — the most expensive
    /// work per request, shed first.
    WhyNot,
    /// Object writes — shed only at the critical level.
    Write,
}

impl Route {
    /// Stable label for counters and metrics series.
    pub fn label(&self) -> &'static str {
        match self {
            Route::TopK => "topk",
            Route::WhyNot => "whynot",
            Route::Write => "write",
        }
    }

    fn index(&self) -> usize {
        match self {
            Route::TopK => 0,
            Route::WhyNot => 1,
            Route::Write => 2,
        }
    }
}

/// Why a request was shed, for the `reason` label of
/// `yask_shed_total` and the `Retry-After` response body.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ShedReason {
    /// Windowed pool queue depth over the limit.
    QueueDepth,
    /// Windowed top-k p99 over the limit.
    TopkP99,
    /// Shed at the connection-accept boundary (critical level).
    Accept,
}

impl ShedReason {
    /// Stable label for counters and metrics series.
    pub fn label(&self) -> &'static str {
        match self {
            ShedReason::QueueDepth => "queue_depth",
            ShedReason::TopkP99 => "topk_p99",
            ShedReason::Accept => "accept",
        }
    }

    fn index(&self) -> usize {
        match self {
            ShedReason::QueueDepth => 0,
            ShedReason::TopkP99 => 1,
            ShedReason::Accept => 2,
        }
    }
}

const ROUTES: [Route; 3] = [Route::TopK, Route::WhyNot, Route::Write];
const REASONS: [ShedReason; 3] = [
    ShedReason::QueueDepth,
    ShedReason::TopkP99,
    ShedReason::Accept,
];

/// A cheap point sample of the overload signals, taken per decision
/// (a few atomic loads — no histogram merges, no snapshot allocation).
#[derive(Clone, Copy, Debug, Default)]
pub struct Pressure {
    /// Highest pool queue depth any submit observed in the last minute.
    pub queue_depth_1m: usize,
    /// Top-k latency p99 over the last 10 s, in milliseconds.
    pub topk_p99_ms: f64,
    /// This query's STR-cell heat over the mean cell heat (1.0 =
    /// average; routes without a location report 1.0).
    pub hot_cell_ratio: f64,
}

/// How loaded the engine is, derived from a [`Pressure`] sample.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum OverloadLevel {
    /// All signals under their limits.
    Normal,
    /// At least one signal over its limit: shed why-not, degrade top-k.
    Overloaded,
    /// Both signals over, or the queue at twice its limit: shed at the
    /// accept boundary, refuse writes.
    Critical,
}

/// Thresholds and budgets for admission decisions. The depth/latency
/// limits intentionally mirror the `/debug/health` overload verdict
/// (`ServiceConfig::overload`) so the operator sees the same numbers
/// flip the health surface and the valve.
#[derive(Clone, Copy, Debug)]
pub struct AdmissionConfig {
    /// Queue-depth limit (windowed max over the last minute).
    pub max_queue_depth: usize,
    /// Top-k p99 limit over the last 10 s.
    pub max_topk_p99: Duration,
    /// A query's cell is *hot* when its heat exceeds the mean cell heat
    /// by this factor; hot-cell queries run at the degraded budget even
    /// before the engine is overloaded.
    pub hot_cell_ratio: f64,
    /// Deadline budget for degraded admissions.
    pub degraded_budget: Duration,
    /// `Retry-After` seconds handed to shed clients.
    pub retry_after_secs: u64,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        AdmissionConfig {
            max_queue_depth: 128,
            max_topk_p99: Duration::from_millis(500),
            hot_cell_ratio: 8.0,
            degraded_budget: Duration::from_millis(100),
            retry_after_secs: 1,
        }
    }
}

/// The verdict for one request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AdmitDecision {
    /// Run as usual.
    Admit,
    /// Run under `deadline`; stale-epoch cached answers are acceptable
    /// and the response must carry `degraded: true` if one is served
    /// or the budget truncates the search.
    Degrade { deadline: Deadline },
    /// Refuse with `429` (route shed) or `503` (accept shed) and
    /// `Retry-After: retry_after_secs`.
    Shed {
        reason: ShedReason,
        retry_after_secs: u64,
    },
}

/// Policy + counters. Shared by the HTTP edge (accept-boundary
/// shedding, idle-timeout shrink) and the per-request admission check.
pub struct AdmissionController {
    config: AdmissionConfig,
    /// Shed counts, `[route][reason]`.
    shed: [[AtomicU64; 3]; 3],
    /// Requests admitted at the degraded budget.
    degraded_admits: AtomicU64,
    /// Responses served degraded (stale cache hit or truncated search).
    degraded_answers: AtomicU64,
    /// Requests that ran out of deadline budget (504s).
    deadline_exceeded: AtomicU64,
}

/// One `(route, reason, count)` cell of the shed counter grid.
#[derive(Clone, Copy, Debug)]
pub struct ShedCount {
    pub route: &'static str,
    pub reason: &'static str,
    pub count: u64,
}

/// Counter snapshot for `/stats` and `/metrics`.
#[derive(Clone, Debug, Default)]
pub struct AdmissionSnapshot {
    /// Every non-zero-capable `(route, reason)` cell, in fixed order.
    pub shed: Vec<ShedCount>,
    /// Total sheds across the grid.
    pub shed_total: u64,
    pub degraded_admits: u64,
    pub degraded_answers: u64,
    pub deadline_exceeded: u64,
}

impl AdmissionController {
    pub fn new(config: AdmissionConfig) -> Self {
        AdmissionController {
            config,
            shed: Default::default(),
            degraded_admits: AtomicU64::new(0),
            degraded_answers: AtomicU64::new(0),
            deadline_exceeded: AtomicU64::new(0),
        }
    }

    pub fn config(&self) -> &AdmissionConfig {
        &self.config
    }

    /// Classifies a pressure sample against the thresholds.
    pub fn level(&self, p: &Pressure) -> OverloadLevel {
        let depth_over = p.queue_depth_1m > self.config.max_queue_depth;
        let p99_over = p.topk_p99_ms > self.config.max_topk_p99.as_secs_f64() * 1e3;
        let depth_critical = p.queue_depth_1m > self.config.max_queue_depth.saturating_mul(2);
        if (depth_over && p99_over) || depth_critical {
            OverloadLevel::Critical
        } else if depth_over || p99_over {
            OverloadLevel::Overloaded
        } else {
            OverloadLevel::Normal
        }
    }

    /// The per-request admission check. Counts sheds; the caller maps
    /// `Shed` to 429/503 + `Retry-After` without queueing any work.
    pub fn decide(&self, route: Route, p: &Pressure) -> AdmitDecision {
        let level = self.level(p);
        let dominant = if p.queue_depth_1m > self.config.max_queue_depth {
            ShedReason::QueueDepth
        } else {
            ShedReason::TopkP99
        };
        match (route, level) {
            // Why-not refinements are the first load to drop.
            (Route::WhyNot, OverloadLevel::Overloaded | OverloadLevel::Critical) => {
                self.count_shed(route, dominant)
            }
            // Writes survive overload (they are cheap and durable) but
            // not the critical level.
            (Route::Write, OverloadLevel::Critical) => self.count_shed(route, dominant),
            (Route::Write, _) => AdmitDecision::Admit,
            // Top-k: degrade under overload, shed only when critical.
            (Route::TopK, OverloadLevel::Critical) => self.count_shed(route, dominant),
            (Route::TopK, OverloadLevel::Overloaded) => self.degrade(),
            // Hot-cell queries run on a budget even before overload:
            // the flash crowd is what *creates* the overload, so its
            // cells take the budget cut first.
            (Route::TopK, OverloadLevel::Normal)
                if p.hot_cell_ratio > self.config.hot_cell_ratio =>
            {
                self.degrade()
            }
            (_, OverloadLevel::Normal) => AdmitDecision::Admit,
        }
    }

    /// Should the HTTP edge refuse this connection before reading from
    /// it? True only at the critical level; counted per refused
    /// request under the `accept` reason.
    pub fn shed_at_accept(&self, p: &Pressure) -> bool {
        self.level(p) == OverloadLevel::Critical
    }

    /// Counts one accept-boundary shed (the edge could not know the
    /// route — it never read the request — so it lands on `TopK`,
    /// the least-shed route, keeping the grid honest about severity).
    pub fn count_accept_shed(&self) {
        self.shed[Route::TopK.index()][ShedReason::Accept.index()]
            .fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one degraded answer actually served (stale cache hit or
    /// deadline-truncated search flagged `degraded: true`).
    pub fn count_degraded_answer(&self) {
        self.degraded_answers.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one request whose deadline expired (a 504).
    pub fn count_deadline_exceeded(&self) {
        self.deadline_exceeded.fetch_add(1, Ordering::Relaxed);
    }

    fn degrade(&self) -> AdmitDecision {
        self.degraded_admits.fetch_add(1, Ordering::Relaxed);
        AdmitDecision::Degrade {
            deadline: Deadline::after(self.config.degraded_budget),
        }
    }

    fn count_shed(&self, route: Route, reason: ShedReason) -> AdmitDecision {
        self.shed[route.index()][reason.index()].fetch_add(1, Ordering::Relaxed);
        AdmitDecision::Shed {
            reason,
            retry_after_secs: self.config.retry_after_secs,
        }
    }

    /// Counter snapshot for `/stats` and `/metrics`.
    pub fn snapshot(&self) -> AdmissionSnapshot {
        let mut shed = Vec::with_capacity(9);
        let mut total = 0;
        for route in ROUTES {
            for reason in REASONS {
                let count = self.shed[route.index()][reason.index()].load(Ordering::Relaxed);
                total += count;
                shed.push(ShedCount {
                    route: route.label(),
                    reason: reason.label(),
                    count,
                });
            }
        }
        AdmissionSnapshot {
            shed,
            shed_total: total,
            degraded_admits: self.degraded_admits.load(Ordering::Relaxed),
            degraded_answers: self.degraded_answers.load(Ordering::Relaxed),
            deadline_exceeded: self.deadline_exceeded.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn calm() -> Pressure {
        Pressure {
            queue_depth_1m: 0,
            topk_p99_ms: 1.0,
            hot_cell_ratio: 1.0,
        }
    }

    #[test]
    fn calm_traffic_is_admitted_everywhere() {
        let ac = AdmissionController::new(AdmissionConfig::default());
        for route in ROUTES {
            assert_eq!(ac.decide(route, &calm()), AdmitDecision::Admit);
        }
        assert!(!ac.shed_at_accept(&calm()));
        assert_eq!(ac.snapshot().shed_total, 0);
    }

    #[test]
    fn overload_sheds_whynot_first_and_degrades_topk() {
        let ac = AdmissionController::new(AdmissionConfig::default());
        let p = Pressure {
            queue_depth_1m: 200, // over 128, under 256
            ..calm()
        };
        assert_eq!(ac.level(&p), OverloadLevel::Overloaded);
        assert!(matches!(
            ac.decide(Route::WhyNot, &p),
            AdmitDecision::Shed {
                reason: ShedReason::QueueDepth,
                ..
            }
        ));
        assert!(matches!(
            ac.decide(Route::TopK, &p),
            AdmitDecision::Degrade { .. }
        ));
        assert_eq!(ac.decide(Route::Write, &p), AdmitDecision::Admit);
        let snap = ac.snapshot();
        assert_eq!(snap.shed_total, 1);
        assert_eq!(snap.degraded_admits, 1);
    }

    #[test]
    fn latency_overload_carries_its_own_reason() {
        let ac = AdmissionController::new(AdmissionConfig::default());
        let p = Pressure {
            topk_p99_ms: 750.0, // over the 500 ms limit
            ..calm()
        };
        assert!(matches!(
            ac.decide(Route::WhyNot, &p),
            AdmitDecision::Shed {
                reason: ShedReason::TopkP99,
                ..
            }
        ));
    }

    #[test]
    fn critical_level_sheds_everything_and_the_accept_boundary() {
        let ac = AdmissionController::new(AdmissionConfig::default());
        let both = Pressure {
            queue_depth_1m: 200,
            topk_p99_ms: 750.0,
            hot_cell_ratio: 1.0,
        };
        assert_eq!(ac.level(&both), OverloadLevel::Critical);
        let deep = Pressure {
            queue_depth_1m: 300, // > 2 × 128 alone
            ..calm()
        };
        assert_eq!(ac.level(&deep), OverloadLevel::Critical);
        for route in ROUTES {
            assert!(matches!(
                ac.decide(route, &both),
                AdmitDecision::Shed { .. }
            ));
        }
        assert!(ac.shed_at_accept(&both));
        ac.count_accept_shed();
        let snap = ac.snapshot();
        assert_eq!(snap.shed_total, 4);
        assert!(snap
            .shed
            .iter()
            .any(|c| c.reason == "accept" && c.count == 1));
    }

    #[test]
    fn hot_cells_degrade_before_the_engine_is_overloaded() {
        let ac = AdmissionController::new(AdmissionConfig::default());
        let hot = Pressure {
            hot_cell_ratio: 20.0,
            ..calm()
        };
        assert_eq!(ac.level(&hot), OverloadLevel::Normal);
        assert!(matches!(
            ac.decide(Route::TopK, &hot),
            AdmitDecision::Degrade { .. }
        ));
        // Hot cells never shed whole routes on their own.
        assert_eq!(ac.decide(Route::WhyNot, &hot), AdmitDecision::Admit);
        assert_eq!(ac.snapshot().degraded_admits, 1);
    }

    #[test]
    fn degraded_deadline_reflects_the_configured_budget() {
        let config = AdmissionConfig {
            degraded_budget: Duration::from_secs(5),
            ..AdmissionConfig::default()
        };
        let ac = AdmissionController::new(config);
        let hot = Pressure {
            hot_cell_ratio: 100.0,
            ..calm()
        };
        match ac.decide(Route::TopK, &hot) {
            AdmitDecision::Degrade { deadline } => {
                assert!(deadline.remaining() > Duration::from_secs(4));
                assert!(deadline.remaining() <= Duration::from_secs(5));
            }
            other => panic!("expected Degrade, got {other:?}"),
        }
    }

    #[test]
    fn counters_accumulate_by_route_and_reason() {
        let ac = AdmissionController::new(AdmissionConfig::default());
        let p = Pressure {
            queue_depth_1m: 200,
            ..calm()
        };
        for _ in 0..3 {
            let _ = ac.decide(Route::WhyNot, &p);
        }
        ac.count_degraded_answer();
        ac.count_deadline_exceeded();
        ac.count_deadline_exceeded();
        let snap = ac.snapshot();
        assert_eq!(snap.shed_total, 3);
        assert!(snap
            .shed
            .iter()
            .any(|c| c.route == "whynot" && c.reason == "queue_depth" && c.count == 3));
        assert_eq!(snap.degraded_answers, 1);
        assert_eq!(snap.deadline_exceeded, 2);
    }
}
