//! Per-shard why-not fan-out: the three why-not modules computed from the
//! shard trees alone — no global KcR-tree anywhere.
//!
//! The seed engine answered why-not questions on a single tree over the
//! whole corpus; the sharded executor used to keep that tree *next to*
//! the shard trees, doubling index memory and write amplification. This
//! module re-derives every module's answer from the shard trees, exactly:
//!
//! * **explain** — the top-k comes from the usual scatter-gather; each
//!   desired object's exact rank is `1 +` the sum of per-shard outrank
//!   counts (the shards disjointly cover the live corpus, so the counts
//!   add). Classification and rendering are delegated back to
//!   [`yask_core::explain_given`], so the output is byte-identical to the
//!   scan path.
//! * **preference adjustment** — the weight-plane transform is a pure
//!   per-object map, so segment construction runs per shard on the worker
//!   pool and the partial [`SegmentSet`]s merge (id-ascending) into
//!   exactly the set a single scan would build; the candidate sweep then
//!   runs unchanged in `yask_core`.
//! * **keyword adaptation** — the candidate enumeration, Δdoc
//!   termination and best-tracking run unchanged in
//!   [`yask_core::refine_keywords_eval`]; only the rank evaluation is
//!   swapped: cheap bounds are summed across shards, and exact counts
//!   are fanned per shard under a shared [`SharedOutrank`] accumulator —
//!   once early shards' counts alone prove a candidate hopeless, late
//!   shards abort their descents mid-count ("late shards prune"). The
//!   fan-out is *batched per refinement*: one pool submit spawns a
//!   long-lived evaluation worker per shard, and every surviving
//!   candidate is then a channel send/recv round — not a fresh pool
//!   round-trip per candidate, which dominated submit overhead at high
//!   shard counts. Candidates still evaluate strictly one at a time, so
//!   best-penalty evolution, pruning decisions and the final winner are
//!   bit-identical to the per-candidate scatter.
//!
//! Exactness rests on two facts, pinned by the property suite in
//! `tests/whynot_sharded.rs`: per-shard outrank counts sum to the global
//! count (disjoint cover, shared total order), and the pruning here only
//! ever discards candidates whose true penalty is at least the best — so
//! the skeleton picks the same winner it would on one global tree.

use std::sync::Arc;

use crossbeam::channel::unbounded;
use yask_core::{
    explain_given, refine_combined_on, refine_keywords_eval, refine_preference_with_segments,
    validate_desired, BoundStats, CombinedRefinement, Explanation, KeywordOptions,
    KeywordRefinement, OutrankRequest, PreferenceRefinement, RankEvaluator, RefinementEngine,
    SegmentSet, WhyNotAnswer, WhyNotError,
};
use yask_index::{Corpus, ObjectId};
use yask_query::{rank_of_scan, topk_scan, Query, RankedObject, ScoreParams};

use crate::bound::SharedOutrank;
use crate::deadline::Deadline;
use crate::pool::WorkerPool;
use crate::search::scatter_topk_bounded;
use crate::shard::ShardedIndex;

/// One candidate × missing-object exact-rank request handed to a shard's
/// resident evaluation worker. The query is fixed per refinement and
/// captured by the worker; only the candidate-specific parts travel.
struct EvalJob {
    doc: yask_text::KeywordSet,
    missing: ObjectId,
    score: f64,
    shared: Arc<SharedOutrank>,
    reply: crossbeam::channel::Sender<(Option<usize>, BoundStats)>,
}

/// One why-not computation's view of the sharded index: the shard trees,
/// the worker pool to scatter on, and the engine configuration.
pub(crate) struct ShardFanout<'a> {
    sharded: &'a ShardedIndex,
    pool: &'a WorkerPool,
    params: ScoreParams,
    opts: KeywordOptions,
    /// Why-not answers are all-or-nothing (a partial refinement is not a
    /// refinement), so the deadline *cancels* instead of truncating:
    /// each phase boundary and candidate evaluation checks it, and on
    /// expiry the whole computation unwinds to
    /// [`WhyNotError::DeadlineExceeded`] after draining its workers.
    deadline: Option<Deadline>,
}

impl<'a> ShardFanout<'a> {
    pub(crate) fn new(
        sharded: &'a ShardedIndex,
        pool: &'a WorkerPool,
        params: ScoreParams,
        opts: KeywordOptions,
    ) -> Self {
        ShardFanout {
            sharded,
            pool,
            params,
            opts,
            deadline: None,
        }
    }

    pub(crate) fn with_deadline(mut self, deadline: Option<Deadline>) -> Self {
        self.deadline = deadline;
        self
    }

    fn corpus(&self) -> &Corpus {
        self.sharded.corpus()
    }

    fn check_deadline(&self) -> Result<(), WhyNotError> {
        match self.deadline {
            Some(d) if d.expired() => Err(WhyNotError::DeadlineExceeded),
            _ => Ok(()),
        }
    }

    /// Scatter-gather top-k without touching the executor's query
    /// counters — the why-not modules' internal result-set computation,
    /// not a user query. Under a deadline the late shards observe expiry
    /// through the shared-bound gating path; an incomplete result-set is
    /// useless to a why-not module, so it cancels.
    fn top_k(&self, query: &Query) -> Result<Vec<RankedObject>, WhyNotError> {
        match scatter_topk_bounded(
            self.sharded.shards(),
            self.pool,
            self.params,
            query,
            self.deadline,
            |_, _, _| {},
            |_| {},
        ) {
            Some((result, complete)) => {
                if complete {
                    Ok(result)
                } else {
                    Err(WhyNotError::DeadlineExceeded)
                }
            }
            // A shard job died (panic): stay exact via the scan oracle —
            // unless the budget is already spent.
            None => {
                self.check_deadline()?;
                Ok(topk_scan(self.corpus(), &self.params, query))
            }
        }
    }

    /// Exact ranks of `targets` under `query`: one job per shard counts
    /// the outranking objects in its tree, the gather sums the counts.
    fn ranks(&self, query: &Query, targets: &[ObjectId]) -> Vec<usize> {
        let corpus = self.corpus();
        let scores: Vec<f64> = targets
            .iter()
            .map(|&m| self.params.score(corpus.get(m), query))
            .collect();
        let expected = self.sharded.shard_count();
        let (tx, rx) = unbounded();
        for tree in self.sharded.shards() {
            let tree = Arc::clone(tree);
            let q = query.clone();
            let params = self.params;
            let targets = targets.to_vec();
            let scores = scores.clone();
            let tx = tx.clone();
            self.pool.submit(move || {
                let ev = RankEvaluator {
                    tree: &tree,
                    params: &params,
                };
                let mut stats = BoundStats::default();
                let counts: Vec<usize> = targets
                    .iter()
                    .zip(&scores)
                    .map(|(&m, &s_m)| ev.outrank_exact(&q, &q.doc, m, s_m, &mut stats))
                    .collect();
                let _ = tx.send(counts);
            });
        }
        drop(tx);
        let mut totals = vec![0usize; targets.len()];
        let mut gathered = 0usize;
        while let Ok(counts) = rx.recv() {
            for (t, c) in totals.iter_mut().zip(counts) {
                *t += c;
            }
            gathered += 1;
        }
        if gathered != expected {
            // A shard count went missing: recompute by scanning.
            return targets
                .iter()
                .map(|&m| rank_of_scan(corpus, &self.params, query, m))
                .collect();
        }
        totals.iter().map(|c| c + 1).collect()
    }

    /// Sharded explanation generation (paper §3.3).
    pub(crate) fn explain(
        &self,
        query: &Query,
        desired: &[ObjectId],
    ) -> Result<Vec<Explanation>, WhyNotError> {
        let corpus = self.corpus();
        validate_desired(corpus, desired)?;
        let top = self.top_k(query)?;
        self.check_deadline()?;
        let ranks = self.ranks(query, desired);
        Ok(explain_given(
            corpus,
            &self.params,
            query,
            desired,
            &top,
            &ranks,
        ))
    }

    /// Sharded preference adjustment (Definition 2): per-shard segment
    /// construction, merged before the global sweep.
    pub(crate) fn refine_preference(
        &self,
        query: &Query,
        missing: &[ObjectId],
        lambda: f64,
    ) -> Result<PreferenceRefinement, WhyNotError> {
        self.check_deadline()?;
        let corpus = self.corpus();
        let expected = self.sharded.shard_count();
        let (tx, rx) = unbounded();
        for tree in self.sharded.shards() {
            let tree = Arc::clone(tree);
            let corpus = corpus.clone();
            let q = query.clone();
            let params = self.params;
            let tx = tx.clone();
            self.pool.submit(move || {
                let set = SegmentSet::build(&corpus, &params, &q, tree.object_ids());
                let _ = tx.send(set);
            });
        }
        drop(tx);
        let mut sets = Vec::with_capacity(expected);
        while let Ok(set) = rx.recv() {
            sets.push(set);
        }
        let segments = if sets.len() == expected {
            SegmentSet::merge(sets)
        } else {
            // A shard's segments went missing: one exact scan instead.
            SegmentSet::build_live(corpus, &self.params, query)
        };
        self.check_deadline()?;
        refine_preference_with_segments(corpus, &self.params, query, missing, lambda, &segments)
    }

    /// Sharded keyword adaptation (Definition 3): the shared candidate
    /// skeleton with per-shard rank evaluation under a cross-shard abort
    /// bound. The per-shard evaluation workers are spawned **once** for
    /// the whole refinement (one pool submit per shard); each candidate
    /// evaluation is then one channel round-trip per shard rather than a
    /// fresh pool job — the submit overhead no longer scales with the
    /// candidate count.
    pub(crate) fn refine_keywords(
        &self,
        query: &Query,
        missing: &[ObjectId],
        lambda: f64,
    ) -> Result<KeywordRefinement, WhyNotError> {
        self.check_deadline()?;
        let corpus = self.corpus();
        let live = corpus.len();

        // Long-lived evaluation workers, fed over channels; they exit
        // when the request senders drop at the end of this function
        // (including on error paths). Each worker *owns a set of shard
        // trees* (round-robin partition over at most the pool's thread
        // count): a resident worker parks one pool thread for the whole
        // refinement, so claiming more threads than the pool has would
        // strand the extra workers in the queue and deadlock the gather.
        // With workers ≥ shards (the default) this is one shard each.
        // The resident guard serializes refinements: two interleaved
        // worker groups could each hold threads the other needs.
        let _resident = self.pool.resident_guard();
        let shard_count = self.sharded.shard_count();
        let worker_slots = self.pool.workers().min(shard_count).max(1);
        let mut shard_txs = Vec::with_capacity(worker_slots);
        for w in 0..worker_slots {
            let (jtx, jrx) = unbounded::<EvalJob>();
            let trees: Vec<_> = self
                .sharded
                .shards()
                .iter()
                .skip(w)
                .step_by(worker_slots)
                .map(Arc::clone)
                .collect();
            let params = self.params;
            let q = query.clone();
            self.pool.submit(move || {
                while let Ok(job) = jrx.recv() {
                    let mut bs = BoundStats::default();
                    let mut total = Some(0usize);
                    for tree in &trees {
                        let ev = RankEvaluator {
                            tree,
                            params: &params,
                        };
                        match ev.outrank_exact_gated(
                            &q, &job.doc, job.missing, job.score, &*job.shared, &mut bs,
                        ) {
                            Some(c) => total = total.map(|t| t + c),
                            None => {
                                // The shared total crossed the hopeless
                                // limit mid-descent: the candidate is
                                // dead, no point counting later shards.
                                total = None;
                                break;
                            }
                        }
                    }
                    let _ = job.reply.send((total, bs));
                }
            });
            shard_txs.push(jtx);
        }

        // The candidate-evaluation callback cannot return an error, so
        // expiry mid-refinement raises this flag and *prunes* every
        // remaining candidate — the skeleton then drains in a few cheap
        // iterations, the resident workers exit when `shard_txs` drops,
        // and the (now meaningless) result is discarded for the error.
        let deadline_hit = std::cell::Cell::new(false);
        let result = refine_keywords_eval(
            corpus,
            &self.params,
            query,
            missing,
            lambda,
            self.opts,
            |req, stats| {
                if deadline_hit.get() || self.deadline.is_some_and(|d| d.expired()) {
                    deadline_hit.set(true);
                    return None;
                }
                // Phase 1: cheap depth-limited bounds, summed across the
                // shard trees on the calling thread (each touches at most
                // a few node levels).
                let mut lb = 0usize;
                for tree in self.sharded.shards() {
                    let ev = RankEvaluator {
                        tree,
                        params: &self.params,
                    };
                    let mut bs = BoundStats::default();
                    let (l, _u) = ev.outrank_bounds(
                        req.query,
                        req.doc,
                        req.missing,
                        req.score,
                        self.opts.bound_depth,
                        &mut bs,
                    );
                    stats.absorb(&bs);
                    lb += l;
                }
                if req.penalty_if(lb) >= req.best_penalty {
                    return None; // prunable: cannot beat the best
                }

                // Phase 2: exact counts — one request to each shard's
                // resident worker, all feeding the shared accumulator so
                // late shards abort as soon as the global total proves
                // the candidate hopeless.
                let shared = Arc::new(SharedOutrank::new(hopeless_limit(req, live)));
                let (reply_tx, reply_rx) = unbounded();
                let mut expected = 0usize;
                for jtx in &shard_txs {
                    let sent = jtx.send(EvalJob {
                        doc: req.doc.clone(),
                        missing: req.missing,
                        score: req.score,
                        shared: Arc::clone(&shared),
                        reply: reply_tx.clone(),
                    });
                    // A dead worker (job panic) just lowers the expected
                    // reply count; the short gather below falls back.
                    if sent.is_ok() {
                        expected += 1;
                    }
                }
                drop(reply_tx);
                let mut total = 0usize;
                let mut aborted = false;
                let mut gathered = 0usize;
                while let Ok((count, bs)) = reply_rx.recv() {
                    stats.absorb(&bs);
                    gathered += 1;
                    match count {
                        Some(c) => total += c,
                        None => aborted = true,
                    }
                }
                if aborted {
                    // The global count crossed the hopeless limit: prune.
                    return None;
                }
                if gathered != expected || expected != worker_slots {
                    // A shard worker died: recount exactly by scanning.
                    let mut count = 0usize;
                    for o in corpus.iter() {
                        if o.id == req.missing {
                            continue;
                        }
                        let s = self.params.score_with_doc(o, req.query, req.doc);
                        if ScoreParams::ranks_before(s, o.id, req.score, req.missing) {
                            count += 1;
                        }
                    }
                    return Some(count);
                }
                Some(total)
            },
        );
        if deadline_hit.get() {
            return Err(WhyNotError::DeadlineExceeded);
        }
        result
    }

    /// Sharded combined refinement: the chaining logic runs in
    /// `yask_core` over this fan-out as its [`RefinementEngine`].
    pub(crate) fn refine_combined(
        &self,
        query: &Query,
        missing: &[ObjectId],
        lambda: f64,
    ) -> Result<CombinedRefinement, WhyNotError> {
        refine_combined_on(self, query, missing, lambda)
    }

    /// The full why-not answer (explanations + both refinements + the
    /// recommendation), mirroring `Yask::answer_with_lambda`.
    pub(crate) fn answer(
        &self,
        query: &Query,
        missing: &[ObjectId],
        lambda: f64,
    ) -> Result<WhyNotAnswer, WhyNotError> {
        let explanations = self.explain(query, missing)?;
        let preference = self.refine_preference(query, missing, lambda)?;
        let keyword = self.refine_keywords(query, missing, lambda)?;
        Ok(WhyNotAnswer::assemble(explanations, preference, keyword))
    }
}

impl RefinementEngine for ShardFanout<'_> {
    fn corpus(&self) -> &Corpus {
        self.sharded.corpus()
    }

    fn score_params(&self) -> ScoreParams {
        self.params
    }

    fn preference(
        &self,
        query: &Query,
        missing: &[ObjectId],
        lambda: f64,
    ) -> Result<PreferenceRefinement, WhyNotError> {
        self.refine_preference(query, missing, lambda)
    }

    fn keywords(
        &self,
        query: &Query,
        missing: &[ObjectId],
        lambda: f64,
    ) -> Result<KeywordRefinement, WhyNotError> {
        self.refine_keywords(query, missing, lambda)
    }
}

/// The smallest outrank count at which the candidate's penalty already
/// meets the best complete penalty — the abort limit of one
/// [`SharedOutrank`]. Counts only grow and `penalty_if` is monotone in
/// the count, so any descent whose accumulated total reaches this limit
/// can stop: the candidate cannot win. [`usize::MAX`] when even the
/// maximum possible count (`live − 1`) keeps the candidate viable.
fn hopeless_limit(req: &OutrankRequest<'_>, live: usize) -> usize {
    if !req.best_penalty.is_finite() || req.penalty_if(live) < req.best_penalty {
        return usize::MAX;
    }
    let (mut lo, mut hi) = (0usize, live);
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if req.penalty_if(mid) >= req.best_penalty {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    lo
}

#[cfg(test)]
mod tests {
    use super::*;
    use yask_core::PenaltyContext;
    use yask_text::KeywordSet;

    #[test]
    fn hopeless_limit_matches_linear_search() {
        let ctx = PenaltyContext::new(3, 13, 0.5);
        let doc = KeywordSet::from_raw([1u32]);
        let q = Query::new(yask_geo::Point::new(0.0, 0.0), doc.clone(), 3);
        for best in [0.2, 0.5, 0.75, 1.0, f64::INFINITY] {
            for doc_term in [0.0, 0.1, 0.4] {
                let req = OutrankRequest {
                    ctx: &ctx,
                    query: &q,
                    doc: &doc,
                    missing: ObjectId(0),
                    score: 0.5,
                    lambda: 0.5,
                    best_penalty: best,
                    doc_term,
                };
                let got = hopeless_limit(&req, 40);
                let want = (0..=40)
                    .find(|&c| req.penalty_if(c) >= best)
                    .unwrap_or(usize::MAX);
                assert_eq!(got, want, "best={best} doc_term={doc_term}");
            }
        }
    }
}
