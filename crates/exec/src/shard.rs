//! Spatial sharding: partition the corpus into K shards, one KcR-tree each.
//!
//! The partitioner is STR-style (Sort-Tile-Recursive, the same discipline
//! the bulk loader uses *inside* one tree): objects are sorted by
//! longitude and cut into vertical slices, and each slice is sorted by
//! latitude and cut into cells — giving K spatially compact, equally
//! sized shards. Compactness matters because the scatter-gather executor
//! prunes a shard by its nodes' score upper bounds: the tighter a shard's
//! rectangles, the earlier a late shard drops out of a top-k search.
//!
//! Every shard tree is built with [`yask_index::RTree::bulk_load_subset`]
//! over the *shared* corpus, so shards keep global [`ObjectId`]s and score
//! in the global [`yask_geo::Space`] — per-shard results are directly
//! comparable and the merged top-k is exactly the single-tree answer.

use std::sync::Arc;

use yask_index::{Corpus, KcRTree, ObjectId, RTreeParams};

/// A corpus partitioned into K spatial shards, one KcR-tree per shard.
pub struct ShardedIndex {
    shards: Vec<Arc<KcRTree>>,
    /// Object index → shard index.
    assignment: Vec<u32>,
    corpus: Corpus,
}

impl ShardedIndex {
    /// Partitions `corpus` into `shards` STR cells and bulk-loads one
    /// KcR-tree per cell, building the trees on parallel threads.
    /// `shards` is clamped to at least 1; shards may be empty when the
    /// corpus has fewer objects than shards.
    pub fn build(corpus: Corpus, shards: usize, params: RTreeParams) -> Self {
        let shards = shards.max(1);
        let parts = partition_str(&corpus, shards);

        let mut assignment = vec![0u32; corpus.len()];
        for (s, ids) in parts.iter().enumerate() {
            for id in ids {
                assignment[id.index()] = s as u32;
            }
        }

        // One build thread per shard: STR bulk loads are independent and
        // CPU-bound, so the build parallelizes embarrassingly.
        let trees = std::thread::scope(|scope| {
            let handles: Vec<_> = parts
                .iter()
                .map(|ids| {
                    let corpus = corpus.clone();
                    scope.spawn(move || KcRTree::bulk_load_subset(corpus, ids, params))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| Arc::new(h.join().expect("shard build thread panicked")))
                .collect::<Vec<_>>()
        });

        ShardedIndex {
            shards: trees,
            assignment,
            corpus,
        }
    }

    /// The shard trees, in shard order.
    pub fn shards(&self) -> &[Arc<KcRTree>] {
        &self.shards
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard holding `id`.
    pub fn shard_of(&self, id: ObjectId) -> usize {
        self.assignment[id.index()] as usize
    }

    /// The shared corpus.
    pub fn corpus(&self) -> &Corpus {
        &self.corpus
    }

    /// Total indexed objects across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|t| t.len()).sum()
    }

    /// True when no objects are indexed.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Splits the corpus into `k` STR cells: `s = ⌊√k⌋` longitude slices, each
/// cut latitude-wise into its share of cells. Returns exactly `k` id
/// lists (some possibly empty) that disjointly cover the corpus.
fn partition_str(corpus: &Corpus, k: usize) -> Vec<Vec<ObjectId>> {
    let mut ids: Vec<ObjectId> = corpus.iter().map(|o| o.id).collect();
    if k == 1 {
        return vec![ids];
    }

    // Sort by longitude (ties: latitude, then id — keeps the cut
    // deterministic for duplicate coordinates).
    let key = |id: &ObjectId| {
        let o = corpus.get(*id);
        (o.loc.x, o.loc.y, id.0)
    };
    ids.sort_unstable_by(|a, b| key(a).partial_cmp(&key(b)).expect("finite coordinates"));

    // s slices carrying ⌈k/s⌉ or ⌊k/s⌋ cells each, summing to exactly k.
    let s = (k as f64).sqrt().floor().max(1.0) as usize;
    let base = k / s;
    let extra = k % s; // the first `extra` slices carry one extra cell

    let n = ids.len();
    let mut out: Vec<Vec<ObjectId>> = Vec::with_capacity(k);
    let mut consumed_cells = 0usize;
    let mut offset = 0usize;
    for slice_idx in 0..s {
        let cells = base + usize::from(slice_idx < extra);
        // The slice's object count is proportional to its cell share.
        let end_cells = consumed_cells + cells;
        let slice_end = n * end_cells / k;
        let slice = &mut ids[offset..slice_end];

        // Within the slice: sort by latitude, cut into `cells` runs.
        let key = |id: &ObjectId| {
            let o = corpus.get(*id);
            (o.loc.y, o.loc.x, id.0)
        };
        slice.sort_unstable_by(|a, b| key(a).partial_cmp(&key(b)).expect("finite coordinates"));
        let m = slice.len();
        for c in 0..cells {
            let lo = m * c / cells;
            let hi = m * (c + 1) / cells;
            out.push(slice[lo..hi].to_vec());
        }

        consumed_cells = end_cells;
        offset = slice_end;
    }
    debug_assert_eq!(out.len(), k);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use yask_geo::{Point, Space};
    use yask_index::CorpusBuilder;
    use yask_text::KeywordSet;
    use yask_util::Xoshiro256;

    fn random_corpus(n: usize, seed: u64) -> Corpus {
        let mut rng = Xoshiro256::seed_from_u64(seed);
        let mut b = CorpusBuilder::with_capacity(n).with_space(Space::unit());
        for i in 0..n {
            let doc = KeywordSet::from_raw((0..1 + rng.below(4)).map(|_| rng.below(15) as u32));
            b.push(Point::new(rng.next_f64(), rng.next_f64()), doc, format!("o{i}"));
        }
        b.build()
    }

    #[test]
    fn partition_disjointly_covers_corpus() {
        let corpus = random_corpus(500, 7);
        for k in [1, 2, 3, 4, 5, 8, 16] {
            let sharded = ShardedIndex::build(corpus.clone(), k, RTreeParams::default());
            assert_eq!(sharded.shard_count(), k);
            assert_eq!(sharded.len(), corpus.len(), "k = {k}");
            let mut seen: Vec<ObjectId> = sharded
                .shards()
                .iter()
                .flat_map(|t| t.object_ids())
                .collect();
            seen.sort_unstable();
            let want: Vec<ObjectId> = corpus.iter().map(|o| o.id).collect();
            assert_eq!(seen, want, "k = {k}: shards must disjointly cover");
        }
    }

    #[test]
    fn assignment_matches_tree_membership() {
        let corpus = random_corpus(300, 8);
        let sharded = ShardedIndex::build(corpus.clone(), 4, RTreeParams::default());
        for (s, tree) in sharded.shards().iter().enumerate() {
            for id in tree.object_ids() {
                assert_eq!(sharded.shard_of(id), s);
            }
        }
    }

    #[test]
    fn shards_are_balanced() {
        let corpus = random_corpus(800, 9);
        let sharded = ShardedIndex::build(corpus.clone(), 8, RTreeParams::default());
        let sizes: Vec<usize> = sharded.shards().iter().map(|t| t.len()).collect();
        let (min, max) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
        assert!(max - min <= 2, "unbalanced shards: {sizes:?}");
    }

    #[test]
    fn shard_trees_validate_and_keep_global_ids() {
        let corpus = random_corpus(200, 10);
        let sharded = ShardedIndex::build(corpus.clone(), 5, RTreeParams::default());
        for tree in sharded.shards() {
            tree.validate().expect("shard tree invariants");
            // Trees share the global corpus (same allocation).
            assert!(std::ptr::eq(tree.corpus().objects(), corpus.objects()));
        }
    }

    #[test]
    fn more_shards_than_objects_leaves_empties() {
        let corpus = random_corpus(3, 11);
        let sharded = ShardedIndex::build(corpus.clone(), 8, RTreeParams::default());
        assert_eq!(sharded.shard_count(), 8);
        assert_eq!(sharded.len(), 3);
        assert!(sharded.shards().iter().any(|t| t.is_empty()));
    }

    #[test]
    fn empty_corpus_builds_empty_shards() {
        let corpus = CorpusBuilder::new().build();
        let sharded = ShardedIndex::build(corpus, 4, RTreeParams::default());
        assert!(sharded.is_empty());
        assert_eq!(sharded.shard_count(), 4);
    }
}
