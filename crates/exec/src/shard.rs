//! Spatial sharding: partition the corpus into K shards, one KcR-tree each.
//!
//! The partitioner is STR-style (Sort-Tile-Recursive, the same discipline
//! the bulk loader uses *inside* one tree): objects are sorted by
//! longitude and cut into vertical slices, and each slice is sorted by
//! latitude and cut into cells — giving K spatially compact, equally
//! sized shards. Compactness matters because the scatter-gather executor
//! prunes a shard by its nodes' score upper bounds: the tighter a shard's
//! rectangles, the earlier a late shard drops out of a top-k search.
//!
//! Every shard tree is built with [`yask_index::RTree::bulk_load_subset`]
//! over the *shared* corpus, so shards keep global [`ObjectId`]s and score
//! in the global [`yask_geo::Space`] — per-shard results are directly
//! comparable and the merged top-k is exactly the single-tree answer.
//!
//! **Write routing.** The partition remembers its cut boundaries in a
//! router, so a live insert is routed to the STR cell that owns its
//! location and a delete to the shard that indexed it. [`ShardedIndex::apply`]
//! is copy-on-write at two granularities: untouched shard trees are
//! shared with the previous epoch by reference, and a *touched* shard
//! derives its next tree through [`yask_index::RTree::with_updates`] —
//! the persistent node arena copies only the chunks the batch's
//! root-to-leaf paths wrote into, so the write cost is O(spine), not
//! O(shard). The per-shard copy bills are summed into the returned
//! [`CopyStats`]. Sustained one-sided growth skews the partition, which
//! the executor heals by rebuilding the index with a fresh STR split
//! (see `rebalance` in the executor).

use std::sync::Arc;

use yask_geo::Point;
use yask_index::{CopyStats, Corpus, KcRTree, ObjectId, RTreeParams};

/// A corpus partitioned into K spatial shards, one KcR-tree per shard.
pub struct ShardedIndex {
    shards: Vec<Arc<KcRTree>>,
    /// Object index → shard index (meaningful for indexed slots only).
    assignment: Vec<u32>,
    /// The STR cut boundaries that route new points to their owning cell.
    router: StrRouter,
    corpus: Corpus,
}

/// Per-shard op counts of one applied batch (inserts, deletes).
pub type ShardDeltas = Vec<(usize, usize)>;

impl ShardedIndex {
    /// Partitions `corpus` into `shards` STR cells and bulk-loads one
    /// KcR-tree per cell, building the trees on parallel threads.
    /// `shards` is clamped to at least 1; shards may be empty when the
    /// corpus has fewer live objects than shards.
    pub fn build(corpus: Corpus, shards: usize, params: RTreeParams) -> Self {
        let shards = shards.max(1);
        let (parts, router) = partition_str(&corpus, shards);

        let mut assignment = vec![0u32; corpus.slot_count()];
        for (s, ids) in parts.iter().enumerate() {
            for id in ids {
                assignment[id.index()] = s as u32;
            }
        }

        // One build thread per shard: STR bulk loads are independent and
        // CPU-bound, so the build parallelizes embarrassingly.
        let trees = std::thread::scope(|scope| {
            let handles: Vec<_> = parts
                .iter()
                .map(|ids| {
                    let corpus = corpus.clone();
                    scope.spawn(move || KcRTree::bulk_load_subset(corpus, ids, params))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| Arc::new(h.join().expect("shard build thread panicked")))
                .collect::<Vec<_>>()
        });

        ShardedIndex {
            shards: trees,
            assignment,
            router,
            corpus,
        }
    }

    /// The shard trees, in shard order.
    pub fn shards(&self) -> &[Arc<KcRTree>] {
        &self.shards
    }

    /// Applies `f` to every shard tree whose arena is still resident,
    /// republishing the result — the executor's out-of-core page-out
    /// hook. Already-paged trees (shared wholesale with the previous
    /// epoch) are left untouched, warm chunk caches included.
    pub fn page_resident_trees(&mut self, mut f: impl FnMut(&mut KcRTree)) {
        for slot in &mut self.shards {
            if !slot.is_paged() {
                let mut tree = (**slot).clone();
                f(&mut tree);
                *slot = Arc::new(tree);
            }
        }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard holding `id` (meaningful only for ids this index has
    /// seen: bulk-loaded or routed through [`ShardedIndex::apply`]).
    pub fn shard_of(&self, id: ObjectId) -> usize {
        self.assignment[id.index()] as usize
    }

    /// The shard a *new* object at `p` would be routed to.
    pub fn route(&self, p: Point) -> usize {
        self.router.route(p, self.shards.len())
    }

    /// The shared corpus (the epoch this index was built for).
    pub fn corpus(&self) -> &Corpus {
        &self.corpus
    }

    /// Total indexed objects across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|t| t.len()).sum()
    }

    /// True when no objects are indexed.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Size of the largest shard.
    pub fn max_shard_len(&self) -> usize {
        self.shards.iter().map(|t| t.len()).max().unwrap_or(0)
    }

    /// Derives the next epoch's index: `inserted` ids (slots of `corpus`)
    /// are routed to their owning STR cells and `deleted` ids removed from
    /// the shards that indexed them. Untouched shard trees are shared with
    /// this epoch by reference; touched ones are derived persistently via
    /// [`yask_index::RTree::with_updates`], copying only the arena chunks
    /// the batch's paths wrote into. Returns the new index, the per-shard
    /// `(inserts, deletes)` deltas for the metrics surface, and the summed
    /// tree copy-on-write bill.
    pub fn apply(
        &self,
        corpus: Corpus,
        inserted: &[ObjectId],
        deleted: &[ObjectId],
    ) -> (ShardedIndex, ShardDeltas, CopyStats) {
        let k = self.shards.len();
        let mut ins: Vec<Vec<ObjectId>> = vec![Vec::new(); k];
        for &id in inserted {
            ins[self.router.route(corpus.get(id).loc, k)].push(id);
        }
        let mut del: Vec<Vec<ObjectId>> = vec![Vec::new(); k];
        for &id in deleted {
            del[self.assignment[id.index()] as usize].push(id);
        }

        let mut assignment = self.assignment.clone();
        assignment.resize(corpus.slot_count(), 0);
        let mut deltas = Vec::with_capacity(k);
        let mut copy = CopyStats::default();
        let shards: Vec<Arc<KcRTree>> = (0..k)
            .map(|s| {
                deltas.push((ins[s].len(), del[s].len()));
                if ins[s].is_empty() && del[s].is_empty() {
                    // Untouched: share the tree with the previous epoch.
                    return Arc::clone(&self.shards[s]);
                }
                let (tree, stats) = self.shards[s].with_updates(corpus.clone(), &ins[s], &del[s]);
                copy.absorb(&stats);
                for &id in &ins[s] {
                    assignment[id.index()] = s as u32;
                }
                Arc::new(tree)
            })
            .collect();

        (
            ShardedIndex {
                shards,
                assignment,
                router: self.router.clone(),
                corpus,
            },
            deltas,
            copy,
        )
    }
}

/// The STR partition's cut boundaries, retained for write routing: a new
/// point binary-searches the longitude cuts to find its slice, then that
/// slice's latitude cuts to find its cell.
#[derive(Clone, Debug)]
struct StrRouter {
    /// Upper longitude boundary of each slice but the last (ascending).
    x_cuts: Vec<f64>,
    /// Per slice: upper latitude boundary of each cell but the last, plus
    /// the index of the slice's first cell in the global shard order.
    slices: Vec<(Vec<f64>, usize)>,
}

impl StrRouter {
    /// The shard owning `p`, clamped into `[0, shards)`.
    fn route(&self, p: Point, shards: usize) -> usize {
        let slice = self.x_cuts.partition_point(|&c| c <= p.x);
        let (y_cuts, first) = &self.slices[slice];
        let cell = y_cuts.partition_point(|&c| c <= p.y);
        (first + cell).min(shards - 1)
    }
}

/// Splits the corpus into `k` STR cells: `s = ⌊√k⌋` longitude slices, each
/// cut latitude-wise into its share of cells. Returns exactly `k` id
/// lists (some possibly empty) that disjointly cover the live corpus,
/// plus the router remembering the cut boundaries.
fn partition_str(corpus: &Corpus, k: usize) -> (Vec<Vec<ObjectId>>, StrRouter) {
    let mut ids: Vec<ObjectId> = corpus.iter().map(|o| o.id).collect();
    if k == 1 {
        return (
            vec![ids],
            StrRouter {
                x_cuts: Vec::new(),
                slices: vec![(Vec::new(), 0)],
            },
        );
    }

    // Sort by longitude (ties: latitude, then id — keeps the cut
    // deterministic for duplicate coordinates).
    let key = |id: &ObjectId| {
        let o = corpus.get(*id);
        (o.loc.x, o.loc.y, id.0)
    };
    ids.sort_unstable_by(|a, b| key(a).partial_cmp(&key(b)).expect("finite coordinates"));

    // s slices carrying ⌈k/s⌉ or ⌊k/s⌋ cells each, summing to exactly k.
    let s = (k as f64).sqrt().floor().max(1.0) as usize;
    let base = k / s;
    let extra = k % s; // the first `extra` slices carry one extra cell

    let n = ids.len();
    let mut out: Vec<Vec<ObjectId>> = Vec::with_capacity(k);
    let mut x_cuts: Vec<f64> = Vec::with_capacity(s.saturating_sub(1));
    let mut slices: Vec<(Vec<f64>, usize)> = Vec::with_capacity(s);
    let mut consumed_cells = 0usize;
    let mut offset = 0usize;
    for slice_idx in 0..s {
        let cells = base + usize::from(slice_idx < extra);
        // The slice's object count is proportional to its cell share.
        let end_cells = consumed_cells + cells;
        let slice_end = n * end_cells / k;
        if slice_idx + 1 < s {
            // Boundary = first longitude of the next slice; an empty tail
            // keeps everything in this slice.
            x_cuts.push(if slice_end < n {
                corpus.get(ids[slice_end]).loc.x
            } else {
                f64::INFINITY
            });
        }
        let slice = &mut ids[offset..slice_end];

        // Within the slice: sort by latitude, cut into `cells` runs.
        let key = |id: &ObjectId| {
            let o = corpus.get(*id);
            (o.loc.y, o.loc.x, id.0)
        };
        slice.sort_unstable_by(|a, b| key(a).partial_cmp(&key(b)).expect("finite coordinates"));
        let m = slice.len();
        let mut y_cuts: Vec<f64> = Vec::with_capacity(cells.saturating_sub(1));
        for c in 0..cells {
            let lo = m * c / cells;
            let hi = m * (c + 1) / cells;
            if c + 1 < cells {
                y_cuts.push(if hi < m {
                    corpus.get(slice[hi]).loc.y
                } else {
                    f64::INFINITY
                });
            }
            out.push(slice[lo..hi].to_vec());
        }
        slices.push((y_cuts, consumed_cells));

        consumed_cells = end_cells;
        offset = slice_end;
    }
    debug_assert_eq!(out.len(), k);
    (out, StrRouter { x_cuts, slices })
}

#[cfg(test)]
mod tests {
    use super::*;
    use yask_geo::{Point, Space};
    use yask_index::CorpusBuilder;
    use yask_text::KeywordSet;
    use yask_util::Xoshiro256;

    fn random_corpus(n: usize, seed: u64) -> Corpus {
        let mut rng = Xoshiro256::seed_from_u64(seed);
        let mut b = CorpusBuilder::with_capacity(n).with_space(Space::unit());
        for i in 0..n {
            let doc = KeywordSet::from_raw((0..1 + rng.below(4)).map(|_| rng.below(15) as u32));
            b.push(Point::new(rng.next_f64(), rng.next_f64()), doc, format!("o{i}"));
        }
        b.build()
    }

    #[test]
    fn partition_disjointly_covers_corpus() {
        let corpus = random_corpus(500, 7);
        for k in [1, 2, 3, 4, 5, 8, 16] {
            let sharded = ShardedIndex::build(corpus.clone(), k, RTreeParams::default());
            assert_eq!(sharded.shard_count(), k);
            assert_eq!(sharded.len(), corpus.len(), "k = {k}");
            let mut seen: Vec<ObjectId> = sharded
                .shards()
                .iter()
                .flat_map(|t| t.object_ids())
                .collect();
            seen.sort_unstable();
            let want: Vec<ObjectId> = corpus.iter().map(|o| o.id).collect();
            assert_eq!(seen, want, "k = {k}: shards must disjointly cover");
        }
    }

    #[test]
    fn assignment_matches_tree_membership() {
        let corpus = random_corpus(300, 8);
        let sharded = ShardedIndex::build(corpus.clone(), 4, RTreeParams::default());
        for (s, tree) in sharded.shards().iter().enumerate() {
            for id in tree.object_ids() {
                assert_eq!(sharded.shard_of(id), s);
            }
        }
    }

    #[test]
    fn router_agrees_with_partition() {
        // Every bulk-partitioned object must route to the shard that got
        // it — the cut boundaries and the partition are one discipline.
        let corpus = random_corpus(400, 12);
        for k in [1, 2, 3, 4, 6, 9] {
            let sharded = ShardedIndex::build(corpus.clone(), k, RTreeParams::default());
            for o in corpus.iter() {
                assert_eq!(
                    sharded.route(o.loc),
                    sharded.shard_of(o.id),
                    "k = {k}, object {:?} at {:?}",
                    o.id,
                    o.loc
                );
            }
        }
    }

    #[test]
    fn shards_are_balanced() {
        let corpus = random_corpus(800, 9);
        let sharded = ShardedIndex::build(corpus.clone(), 8, RTreeParams::default());
        let sizes: Vec<usize> = sharded.shards().iter().map(|t| t.len()).collect();
        let (min, max) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
        assert!(max - min <= 2, "unbalanced shards: {sizes:?}");
    }

    #[test]
    fn shard_trees_validate_and_keep_global_ids() {
        let corpus = random_corpus(200, 10);
        let sharded = ShardedIndex::build(corpus.clone(), 5, RTreeParams::default());
        for tree in sharded.shards() {
            tree.validate().expect("shard tree invariants");
            // Trees share the global corpus (same chunk spine).
            assert!(tree.corpus().same_version(&corpus));
        }
    }

    #[test]
    fn more_shards_than_objects_leaves_empties() {
        let corpus = random_corpus(3, 11);
        let sharded = ShardedIndex::build(corpus.clone(), 8, RTreeParams::default());
        assert_eq!(sharded.shard_count(), 8);
        assert_eq!(sharded.len(), 3);
        assert!(sharded.shards().iter().any(|t| t.is_empty()));
    }

    #[test]
    fn empty_corpus_builds_empty_shards() {
        let corpus = CorpusBuilder::new().build();
        let sharded = ShardedIndex::build(corpus.clone(), 4, RTreeParams::default());
        assert!(sharded.is_empty());
        assert_eq!(sharded.shard_count(), 4);
        // Routing still lands in range on an empty partition.
        assert!(sharded.route(Point::new(0.3, 0.7)) < 4);
    }

    #[test]
    fn apply_routes_writes_and_shares_untouched_shards() {
        let corpus = random_corpus(240, 13);
        let sharded = ShardedIndex::build(corpus.clone(), 4, RTreeParams::default());
        let victim = ObjectId(17);
        let (v1, new_ids) = corpus.with_updates(
            [(
                Point::new(0.31, 0.62),
                KeywordSet::from_raw([2u32]),
                "new".to_owned(),
            )],
            &[victim],
        );
        let (next, deltas, copy) = sharded.apply(v1.clone(), &new_ids, &[victim]);
        assert_eq!(next.len(), corpus.len(), "one in, one out");
        assert_eq!(deltas.iter().map(|d| d.0).sum::<usize>(), 1);
        assert_eq!(deltas.iter().map(|d| d.1).sum::<usize>(), 1);
        // The insert landed where the router said it would.
        let target = sharded.route(Point::new(0.31, 0.62));
        assert_eq!(next.shard_of(new_ids[0]), target);
        assert!(next.shards()[target].object_ids().contains(&new_ids[0]));
        // The victim is gone from its shard.
        let home = sharded.shard_of(victim);
        assert!(!next.shards()[home].object_ids().contains(&victim));
        // Shards the batch did not touch are shared, not cloned.
        for s in 0..4 {
            let untouched = deltas[s] == (0, 0);
            assert_eq!(
                Arc::ptr_eq(&sharded.shards()[s], &next.shards()[s]),
                untouched,
                "shard {s}: deltas {deltas:?}"
            );
        }
        // Touched shards paid a bounded copy bill (the batch's spine
        // chunks, not the whole arena), and the untouched ones paid none.
        assert!(copy.chunks_copied + copy.chunks_created >= 1);
        let touched_chunks: usize = (0..4)
            .filter(|&s| deltas[s] != (0, 0))
            .map(|s| sharded.shards()[s].arena_chunk_count())
            .sum();
        assert!(
            copy.chunks_copied <= touched_chunks,
            "copied {} of {touched_chunks} touched-shard chunks",
            copy.chunks_copied
        );
        for tree in next.shards() {
            tree.validate().expect("shard invariants after apply");
        }
    }

    #[test]
    fn repeated_applies_keep_cover_exact() {
        let mut corpus = random_corpus(120, 14);
        let mut sharded = ShardedIndex::build(corpus.clone(), 3, RTreeParams::default());
        let mut rng = Xoshiro256::seed_from_u64(77);
        for round in 0..30 {
            let live = corpus.live_ids();
            let delete = live[rng.below(live.len())];
            let (v, new_ids) = corpus.with_updates(
                [(
                    Point::new(rng.next_f64(), rng.next_f64()),
                    KeywordSet::from_raw([rng.below(15) as u32]),
                    format!("r{round}"),
                )],
                &[delete],
            );
            let (next, _, _) = sharded.apply(v.clone(), &new_ids, &[delete]);
            sharded = next;
            corpus = v;
            let mut seen: Vec<ObjectId> = sharded
                .shards()
                .iter()
                .flat_map(|t| t.object_ids())
                .collect();
            seen.sort_unstable();
            assert_eq!(seen, corpus.live_ids(), "round {round}");
        }
    }
}
