//! Request deadlines — a monotonic time budget threaded from the HTTP
//! layer through scatter-gather and the why-not modules.
//!
//! A [`Deadline`] is a wall-line in monotonic time ([`std::time::Instant`]),
//! not a duration: it is fixed once at the edge (from the request's
//! budget) and every layer below compares against the same instant, so
//! time spent queueing counts against the same budget as time spent
//! searching.
//!
//! Convention: APIs take `Option<Deadline>` where `None` means "run to
//! completion" — every pre-existing call path passes `None` and is
//! bit-for-bit unchanged. Paths that honour a deadline report
//! *completeness* alongside their result, so a partial answer is always
//! explicitly flagged and never enters an exactness-critical cache.

use std::time::{Duration, Instant};

/// How often the best-first search loops consult the deadline, in node
/// expansions. Checking `Instant::now()` per expansion would double the
/// cost of cheap expansions; every 32nd keeps the overshoot below a
/// few microseconds of tree work.
pub const DEADLINE_STRIDE: usize = 32;

/// A fixed point in monotonic time after which a request should stop
/// doing new work and return what it has.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Deadline {
    at: Instant,
}

impl Deadline {
    /// The deadline `budget` from now.
    pub fn after(budget: Duration) -> Self {
        Deadline {
            at: Instant::now() + budget,
        }
    }

    /// A deadline at an explicit instant.
    pub fn at(at: Instant) -> Self {
        Deadline { at }
    }

    /// A deadline that has already passed (for tests and shed paths).
    pub fn already_expired() -> Self {
        Deadline { at: Instant::now() }
    }

    /// True once the budget is spent.
    #[inline]
    pub fn expired(&self) -> bool {
        Instant::now() >= self.at
    }

    /// Budget left, zero once expired.
    pub fn remaining(&self) -> Duration {
        self.at.saturating_duration_since(Instant::now())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn after_expires_once_the_budget_passes() {
        let d = Deadline::after(Duration::from_millis(20));
        assert!(!d.expired());
        assert!(d.remaining() > Duration::ZERO);
        std::thread::sleep(Duration::from_millis(25));
        assert!(d.expired());
        assert_eq!(d.remaining(), Duration::ZERO);
    }

    #[test]
    fn already_expired_is_expired() {
        let d = Deadline::already_expired();
        assert!(d.expired());
    }

    #[test]
    fn at_pins_an_instant() {
        let now = Instant::now();
        let d = Deadline::at(now + Duration::from_secs(60));
        assert!(!d.expired());
        assert!(d.remaining() <= Duration::from_secs(60));
    }
}
