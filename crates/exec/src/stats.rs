//! The executor's metrics surface.
//!
//! Lock-free counters updated on every query and every write batch —
//! per-shard search timings, traversal work and applied write ops,
//! scatter/single path counts, batch/rebalance totals — snapshotted
//! together with pool queue depth, cache counters and the current epoch's
//! corpus occupancy into one [`ExecSnapshot`] that the server exports
//! through `/stats`.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use yask_index::{CopyStats, KcRTree};
use yask_obs::{Histogram, HistogramSnapshot};

use crate::cache::{CacheSnapshot, WhyNotKind};
use crate::observe::WorkloadSnapshot;

/// The shape of one shard tree in the pinned epoch: live objects, node
/// count and estimated resident bytes (node frames + entry vectors +
/// keyword-count maps, excluding the shared corpus). Summed across shards
/// this is the executor's whole index footprint — with the global tree
/// gone there is nothing else. `arena_chunks`/`arena_bytes` describe the
/// persistent node slab behind the tree (freed slack included; chunks may
/// be shared with older epochs).
#[derive(Clone, Copy, Debug, Default)]
pub(crate) struct ShardShape {
    pub(crate) objects: usize,
    pub(crate) nodes: usize,
    pub(crate) bytes: usize,
    pub(crate) arena_chunks: usize,
    pub(crate) arena_bytes: usize,
}

impl ShardShape {
    pub(crate) fn of(tree: &KcRTree) -> Self {
        let s = tree.stats();
        ShardShape {
            objects: s.objects,
            nodes: s.nodes,
            bytes: s.bytes,
            arena_chunks: s.chunks,
            arena_bytes: s.arena_bytes,
        }
    }
}

/// Per-shard accumulators.
#[derive(Default)]
pub(crate) struct ShardCounters {
    queries: AtomicU64,
    nanos: AtomicU64,
    nodes_expanded: AtomicU64,
    objects_scored: AtomicU64,
    inserts: AtomicU64,
    deletes: AtomicU64,
    /// Per-shard search latency distribution (same samples `nanos` sums).
    search: Histogram,
}

impl ShardCounters {
    pub(crate) fn record(&self, elapsed: Duration, nodes: usize, objects: usize) {
        self.queries.fetch_add(1, Ordering::Relaxed);
        self.nanos
            .fetch_add(elapsed.as_nanos() as u64, Ordering::Relaxed);
        self.nodes_expanded.fetch_add(nodes as u64, Ordering::Relaxed);
        self.objects_scored
            .fetch_add(objects as u64, Ordering::Relaxed);
        self.search.record(elapsed);
    }

    pub(crate) fn record_writes(&self, inserts: usize, deletes: usize) {
        self.inserts.fetch_add(inserts as u64, Ordering::Relaxed);
        self.deletes.fetch_add(deletes as u64, Ordering::Relaxed);
    }
}

/// One latency histogram per why-not module (plus the bundled answer).
#[derive(Default)]
pub(crate) struct WhyNotHists {
    explain: Histogram,
    preference: Histogram,
    keyword: Histogram,
    combined: Histogram,
    full: Histogram,
}

impl WhyNotHists {
    pub(crate) fn of(&self, kind: WhyNotKind) -> &Histogram {
        match kind {
            WhyNotKind::Explain => &self.explain,
            WhyNotKind::Preference => &self.preference,
            WhyNotKind::Keyword => &self.keyword,
            WhyNotKind::Combined => &self.combined,
            WhyNotKind::Full => &self.full,
        }
    }

    fn snapshot(&self) -> WhyNotHistSnapshots {
        WhyNotHistSnapshots {
            explain: self.explain.snapshot(),
            preference: self.preference.snapshot(),
            keyword: self.keyword.snapshot(),
            combined: self.combined.snapshot(),
            full: self.full.snapshot(),
        }
    }
}

/// Snapshots of the per-module why-not latency histograms.
#[derive(Clone, Debug, Default)]
pub struct WhyNotHistSnapshots {
    pub explain: HistogramSnapshot,
    pub preference: HistogramSnapshot,
    pub keyword: HistogramSnapshot,
    pub combined: HistogramSnapshot,
    pub full: HistogramSnapshot,
}

impl WhyNotHistSnapshots {
    /// The modules with their exported label values, in a fixed order.
    pub fn iter_named(&self) -> [(&'static str, &HistogramSnapshot); 5] {
        [
            ("explain", &self.explain),
            ("preference", &self.preference),
            ("keyword", &self.keyword),
            ("combined", &self.combined),
            ("full", &self.full),
        ]
    }
}

/// Executor-wide accumulators.
pub(crate) struct ExecCounters {
    pub(crate) shards: Vec<ShardCounters>,
    /// Uncached top-k compute latency (the cold path).
    pub(crate) topk: Histogram,
    /// Top-k cache *hit* latency — so hit/miss cost compares honestly.
    pub(crate) topk_hit: Histogram,
    /// Per-module why-not latencies.
    pub(crate) whynot: WhyNotHists,
    queries: AtomicU64,
    scatter_queries: AtomicU64,
    single_queries: AtomicU64,
    batches: AtomicU64,
    inserts: AtomicU64,
    deletes: AtomicU64,
    rebalances: AtomicU64,
    index_chunks_copied: AtomicU64,
    index_chunks_created: AtomicU64,
    index_copy_bytes: AtomicU64,
}

impl ExecCounters {
    pub(crate) fn new(shards: usize) -> Self {
        ExecCounters {
            shards: (0..shards).map(|_| ShardCounters::default()).collect(),
            topk: Histogram::new(),
            topk_hit: Histogram::new(),
            whynot: WhyNotHists::default(),
            queries: AtomicU64::new(0),
            scatter_queries: AtomicU64::new(0),
            single_queries: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            inserts: AtomicU64::new(0),
            deletes: AtomicU64::new(0),
            rebalances: AtomicU64::new(0),
            index_chunks_copied: AtomicU64::new(0),
            index_chunks_created: AtomicU64::new(0),
            index_copy_bytes: AtomicU64::new(0),
        }
    }

    pub(crate) fn record_query(&self, scattered: bool) {
        self.queries.fetch_add(1, Ordering::Relaxed);
        if scattered {
            self.scatter_queries.fetch_add(1, Ordering::Relaxed);
        } else {
            self.single_queries.fetch_add(1, Ordering::Relaxed);
        }
    }

    pub(crate) fn record_batch(&self, inserts: usize, deletes: usize, rebalanced: bool) {
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.inserts.fetch_add(inserts as u64, Ordering::Relaxed);
        self.deletes.fetch_add(deletes as u64, Ordering::Relaxed);
        if rebalanced {
            self.rebalances.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Accumulates one batch's tree copy-on-write bill (the arena chunks
    /// the batch's spines copied or created). Rebalance rebuilds are not
    /// billed here — they are counted by `rebalances` and are not
    /// path-copying work.
    pub(crate) fn record_index_copy(&self, copy: &CopyStats) {
        self.index_chunks_copied
            .fetch_add(copy.chunks_copied as u64, Ordering::Relaxed);
        self.index_chunks_created
            .fetch_add(copy.chunks_created as u64, Ordering::Relaxed);
        self.index_copy_bytes
            .fetch_add(copy.bytes_copied as u64, Ordering::Relaxed);
    }
}

/// Point-in-time view of one shard's counters.
#[derive(Clone, Copy, Debug, Default)]
pub struct ShardSnapshot {
    /// Objects indexed by the shard.
    pub objects: usize,
    /// Reachable KcR-tree nodes in the shard.
    pub nodes: usize,
    /// Estimated resident bytes of the shard tree (nodes + entries +
    /// keyword-count maps; the shared corpus is excluded).
    pub index_bytes: usize,
    /// Searches the shard has run.
    pub queries: u64,
    /// Total search wall-clock, microseconds.
    pub total_us: f64,
    /// Mean search wall-clock, microseconds (0 with no queries).
    pub mean_us: f64,
    /// Median search wall-clock, microseconds (bucket-midpoint estimate,
    /// ≤ ~1.6 % relative error; 0 with no queries).
    pub p50_us: f64,
    /// 99th-percentile search wall-clock, microseconds (same estimator).
    pub p99_us: f64,
    /// Tree nodes expanded across all searches.
    pub nodes_expanded: u64,
    /// Objects exactly scored across all searches.
    pub objects_scored: u64,
    /// Inserts routed to this shard.
    pub inserts: u64,
    /// Deletes routed to this shard.
    pub deletes: u64,
    /// Chunks in the shard tree's persistent node arena (some may be
    /// physically shared with older epochs' trees).
    pub arena_chunks: usize,
    /// Approximate resident bytes of the shard's node slab, freed slack
    /// included (`arena_bytes ≥ index_bytes`).
    pub arena_bytes: usize,
}

/// Point-in-time view of the whole executor.
#[derive(Clone, Debug, Default)]
pub struct ExecSnapshot {
    /// Configured shard count (1 = single-tree path).
    pub shards: usize,
    /// Worker threads serving the scatter pool (0 when single-tree).
    pub workers: usize,
    /// Jobs submitted to the pool but not yet started.
    pub queue_depth: usize,
    /// Highest queue depth any submit ever observed — saturation between
    /// `/stats` scrapes would be invisible in the point-in-time sample.
    pub queue_depth_max: usize,
    /// Highest queue depth observed in the last minute — the reset-safe
    /// cousin of `queue_depth_max` (a day-old spike ages out of this
    /// one), and the health surface's overload input.
    pub queue_depth_max_1m: usize,
    /// Submits that found the bounded queue full and ran the job inline
    /// on the caller instead — nonzero means the pool is saturated and
    /// backpressure is reaching submitters.
    pub queue_saturated: usize,
    /// Top-k queries computed (cache hits are counted by the caches).
    pub queries: u64,
    /// Queries computed by scatter-gather.
    pub scatter_queries: u64,
    /// Queries computed on the single tree.
    pub single_queries: u64,
    /// The published corpus epoch (0 until the first write batch).
    pub epoch: u64,
    /// Live objects in the current epoch.
    pub live_objects: usize,
    /// Tombstoned slots in the current epoch.
    pub tombstones: usize,
    /// Write batches applied.
    pub batches: u64,
    /// Objects inserted across all batches.
    pub inserts: u64,
    /// Objects deleted across all batches.
    pub deletes: u64,
    /// Shard rebalances (full STR re-splits) triggered by size skew.
    pub rebalances: u64,
    /// Total reachable index nodes across all shard trees — with the
    /// global tree removed, this *is* the executor's entire tree count.
    pub index_nodes: usize,
    /// Total estimated index bytes across all shard trees.
    pub index_bytes: usize,
    /// Arena chunks *copied* by path-copying tree updates across all
    /// batches — the tree-side analogue of the corpus `chunks_copied`.
    pub index_chunks_copied: u64,
    /// Arena chunks freshly created by tree updates across all batches.
    pub index_chunks_created: u64,
    /// Bytes deep-copied by path-copying tree updates across all batches.
    /// Per batch this is O(spine × chunk), independent of tree size — the
    /// number that used to be the whole touched shard.
    pub index_copy_bytes: u64,
    /// Per-shard search counters.
    pub per_shard: Vec<ShardSnapshot>,
    /// Top-k result cache counters.
    pub topk_cache: CacheSnapshot,
    /// Why-not answer cache counters.
    pub answer_cache: CacheSnapshot,
    /// Uncached top-k compute latency distribution.
    pub topk_hist: HistogramSnapshot,
    /// Top-k cache-hit latency distribution.
    pub topk_hit_hist: HistogramSnapshot,
    /// Per-module why-not latency distributions.
    pub whynot_hists: WhyNotHistSnapshots,
    /// Per-shard search latency distributions, parallel to `per_shard`
    /// (kept out of [`ShardSnapshot`] so that stays `Copy`).
    pub shard_search_hists: Vec<HistogramSnapshot>,
    /// The workload observatory's view: windowed rates/quantiles per
    /// route, per-cell heat, keyword sketch. `None` when the observatory
    /// is disabled in [`crate::ExecConfig`].
    pub workload: Option<WorkloadSnapshot>,
    /// Out-of-core pager counters; `None` when
    /// [`crate::ExecConfig::resident_budget`] is unset (fully resident).
    pub pager: Option<PagerSnapshot>,
}

/// Out-of-core serving counters: the shared page-level buffer pool plus
/// the aggregated decoded-chunk caches of the live paged shard trees.
/// Pool counters are monotonic for the executor's lifetime; chunk
/// counters aggregate over trees still alive (superseded epochs drop
/// out once their last reader unpins).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PagerSnapshot {
    /// Buffer-pool page reads served from cache.
    pub pool_hits: u64,
    /// Buffer-pool page reads that went to disk.
    pub pool_misses: u64,
    /// Buffer-pool pages evicted.
    pub pool_evictions: u64,
    /// Buffer-pool cache capacity in pages.
    pub pool_capacity: usize,
    /// Pages allocated in the backing file.
    pub pool_pages: u64,
    /// Decoded-chunk cache hits across live paged trees.
    pub chunk_hits: u64,
    /// Chunk faults (decode-from-pages) across live paged trees.
    pub chunk_misses: u64,
    /// Decoded chunks evicted across live paged trees.
    pub chunk_evictions: u64,
    /// Decoded chunks currently resident across live paged trees.
    pub resident_chunks: usize,
    /// Total arena chunks across live paged trees.
    pub chunk_count: usize,
    /// The per-tree decoded-chunk byte budget.
    pub budget_bytes: usize,
    /// Paged trees currently alive (includes pinned past epochs).
    pub paged_trees: usize,
}

/// The non-counter inputs of a snapshot, gathered by the executor from
/// the pinned epoch, the pool and the caches.
pub(crate) struct SnapshotInputs {
    pub shard_shapes: Vec<ShardShape>,
    pub workers: usize,
    pub queue_depth: usize,
    pub queue_depth_max: usize,
    pub queue_depth_max_1m: usize,
    pub queue_saturated: usize,
    pub epoch: u64,
    pub live_objects: usize,
    pub tombstones: usize,
    pub topk_cache: CacheSnapshot,
    pub answer_cache: CacheSnapshot,
    pub workload: Option<WorkloadSnapshot>,
    pub pager: Option<PagerSnapshot>,
}

impl ExecCounters {
    pub(crate) fn snapshot(&self, inputs: SnapshotInputs) -> ExecSnapshot {
        let per_shard = self
            .shards
            .iter()
            .zip(&inputs.shard_shapes)
            .map(|(c, shape)| {
                let queries = c.queries.load(Ordering::Relaxed);
                let total_us = c.nanos.load(Ordering::Relaxed) as f64 / 1_000.0;
                let search = c.search.snapshot();
                ShardSnapshot {
                    objects: shape.objects,
                    nodes: shape.nodes,
                    index_bytes: shape.bytes,
                    queries,
                    total_us,
                    mean_us: if queries == 0 {
                        0.0
                    } else {
                        total_us / queries as f64
                    },
                    p50_us: search.p50() as f64 / 1_000.0,
                    p99_us: search.p99() as f64 / 1_000.0,
                    nodes_expanded: c.nodes_expanded.load(Ordering::Relaxed),
                    objects_scored: c.objects_scored.load(Ordering::Relaxed),
                    inserts: c.inserts.load(Ordering::Relaxed),
                    deletes: c.deletes.load(Ordering::Relaxed),
                    arena_chunks: shape.arena_chunks,
                    arena_bytes: shape.arena_bytes,
                }
            })
            .collect();
        let shard_search_hists: Vec<HistogramSnapshot> =
            self.shards.iter().map(|c| c.search.snapshot()).collect();
        ExecSnapshot {
            shards: inputs.shard_shapes.len().max(1),
            workers: inputs.workers,
            queue_depth: inputs.queue_depth,
            queue_depth_max: inputs.queue_depth_max,
            queue_depth_max_1m: inputs.queue_depth_max_1m,
            queue_saturated: inputs.queue_saturated,
            queries: self.queries.load(Ordering::Relaxed),
            scatter_queries: self.scatter_queries.load(Ordering::Relaxed),
            single_queries: self.single_queries.load(Ordering::Relaxed),
            epoch: inputs.epoch,
            live_objects: inputs.live_objects,
            tombstones: inputs.tombstones,
            batches: self.batches.load(Ordering::Relaxed),
            inserts: self.inserts.load(Ordering::Relaxed),
            deletes: self.deletes.load(Ordering::Relaxed),
            rebalances: self.rebalances.load(Ordering::Relaxed),
            index_nodes: inputs.shard_shapes.iter().map(|s| s.nodes).sum(),
            index_bytes: inputs.shard_shapes.iter().map(|s| s.bytes).sum(),
            index_chunks_copied: self.index_chunks_copied.load(Ordering::Relaxed),
            index_chunks_created: self.index_chunks_created.load(Ordering::Relaxed),
            index_copy_bytes: self.index_copy_bytes.load(Ordering::Relaxed),
            per_shard,
            topk_cache: inputs.topk_cache,
            answer_cache: inputs.answer_cache,
            topk_hist: self.topk.snapshot(),
            topk_hit_hist: self.topk_hit.snapshot(),
            whynot_hists: self.whynot.snapshot(),
            shard_search_hists,
            workload: inputs.workload,
            pager: inputs.pager,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_snapshot() {
        let c = ExecCounters::new(2);
        c.record_query(true);
        c.record_query(false);
        c.shards[0].record(Duration::from_micros(100), 5, 20);
        c.shards[0].record(Duration::from_micros(300), 7, 30);
        c.shards[1].record(Duration::from_micros(50), 1, 2);
        c.shards[1].record_writes(3, 1);
        c.record_batch(3, 1, false);
        c.record_batch(0, 2, true);
        c.record_index_copy(&CopyStats {
            chunks_copied: 2,
            chunks_created: 1,
            bytes_copied: 4096,
        });
        let s = c.snapshot(SnapshotInputs {
            shard_shapes: vec![
                ShardShape { objects: 10, nodes: 3, bytes: 900, arena_chunks: 1, arena_bytes: 950 },
                ShardShape { objects: 12, nodes: 4, bytes: 1100, arena_chunks: 2, arena_bytes: 1300 },
            ],
            workers: 4,
            queue_depth: 0,
            queue_depth_max: 7,
            queue_depth_max_1m: 2,
            queue_saturated: 3,
            epoch: 2,
            live_objects: 22,
            tombstones: 3,
            topk_cache: CacheSnapshot::default(),
            answer_cache: CacheSnapshot::default(),
            workload: None,
            pager: None,
        });
        assert_eq!(s.queries, 2);
        assert_eq!(s.scatter_queries, 1);
        assert_eq!(s.single_queries, 1);
        assert_eq!(s.per_shard.len(), 2);
        assert_eq!(s.per_shard[0].queries, 2);
        assert!((s.per_shard[0].mean_us - 200.0).abs() < 1e-9);
        assert_eq!(s.per_shard[0].nodes_expanded, 12);
        assert_eq!(s.per_shard[1].objects, 12);
        assert_eq!(s.per_shard[1].nodes, 4);
        assert_eq!(s.per_shard[1].index_bytes, 1100);
        assert_eq!(s.index_nodes, 7);
        assert_eq!(s.index_bytes, 2000);
        assert_eq!(s.per_shard[1].inserts, 3);
        assert_eq!(s.per_shard[1].deletes, 1);
        assert_eq!(s.per_shard[1].arena_chunks, 2);
        assert_eq!(s.per_shard[1].arena_bytes, 1300);
        assert_eq!(s.index_chunks_copied, 2);
        assert_eq!(s.index_chunks_created, 1);
        assert_eq!(s.index_copy_bytes, 4096);
        assert_eq!((s.epoch, s.live_objects, s.tombstones), (2, 22, 3));
        assert_eq!((s.batches, s.inserts, s.deletes, s.rebalances), (2, 3, 3, 1));
        assert_eq!(s.queue_depth_max, 7);
        assert_eq!(s.queue_depth_max_1m, 2);
        assert_eq!(s.queue_saturated, 3);
        assert!(s.workload.is_none());
        // The shard histogram sampled the same searches the counters did.
        assert_eq!(s.shard_search_hists.len(), 2);
        assert_eq!(s.shard_search_hists[0].count, 2);
        assert_eq!(s.shard_search_hists[1].count, 1);
        assert!(s.per_shard[0].p50_us > 0.0);
        assert!(s.per_shard[0].p99_us >= s.per_shard[0].p50_us);
        // p50 of {100µs, 300µs} is the lower sample, within bucket error.
        assert!((s.per_shard[0].p50_us - 100.0).abs() / 100.0 < 0.025);
    }

    #[test]
    fn whynot_hists_route_by_kind() {
        let c = ExecCounters::new(1);
        c.whynot.of(WhyNotKind::Explain).record(Duration::from_micros(10));
        c.whynot.of(WhyNotKind::Keyword).record(Duration::from_micros(20));
        c.whynot.of(WhyNotKind::Keyword).record(Duration::from_micros(30));
        let s = c.whynot.snapshot();
        assert_eq!(s.explain.count, 1);
        assert_eq!(s.keyword.count, 2);
        assert_eq!(s.preference.count, 0);
        let named: Vec<&str> = s.iter_named().iter().map(|(n, _)| *n).collect();
        assert_eq!(named, ["explain", "preference", "keyword", "combined", "full"]);
    }
}
