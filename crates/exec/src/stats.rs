//! The executor's metrics surface.
//!
//! Lock-free counters updated on every query — per-shard search timings
//! and traversal work, scatter/single path counts — snapshotted together
//! with pool queue depth and cache counters into one [`ExecSnapshot`]
//! that the server exports through `/stats`.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use crate::cache::CacheSnapshot;

/// Per-shard accumulators.
#[derive(Default)]
pub(crate) struct ShardCounters {
    queries: AtomicU64,
    nanos: AtomicU64,
    nodes_expanded: AtomicU64,
    objects_scored: AtomicU64,
}

impl ShardCounters {
    pub(crate) fn record(&self, elapsed: Duration, nodes: usize, objects: usize) {
        self.queries.fetch_add(1, Ordering::Relaxed);
        self.nanos
            .fetch_add(elapsed.as_nanos() as u64, Ordering::Relaxed);
        self.nodes_expanded.fetch_add(nodes as u64, Ordering::Relaxed);
        self.objects_scored
            .fetch_add(objects as u64, Ordering::Relaxed);
    }
}

/// Executor-wide accumulators.
pub(crate) struct ExecCounters {
    pub(crate) shards: Vec<ShardCounters>,
    queries: AtomicU64,
    scatter_queries: AtomicU64,
    single_queries: AtomicU64,
}

impl ExecCounters {
    pub(crate) fn new(shards: usize) -> Self {
        ExecCounters {
            shards: (0..shards).map(|_| ShardCounters::default()).collect(),
            queries: AtomicU64::new(0),
            scatter_queries: AtomicU64::new(0),
            single_queries: AtomicU64::new(0),
        }
    }

    pub(crate) fn record_query(&self, scattered: bool) {
        self.queries.fetch_add(1, Ordering::Relaxed);
        if scattered {
            self.scatter_queries.fetch_add(1, Ordering::Relaxed);
        } else {
            self.single_queries.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// Point-in-time view of one shard's counters.
#[derive(Clone, Copy, Debug, Default)]
pub struct ShardSnapshot {
    /// Objects indexed by the shard.
    pub objects: usize,
    /// Searches the shard has run.
    pub queries: u64,
    /// Total search wall-clock, microseconds.
    pub total_us: f64,
    /// Mean search wall-clock, microseconds (0 with no queries).
    pub mean_us: f64,
    /// Tree nodes expanded across all searches.
    pub nodes_expanded: u64,
    /// Objects exactly scored across all searches.
    pub objects_scored: u64,
}

/// Point-in-time view of the whole executor.
#[derive(Clone, Debug, Default)]
pub struct ExecSnapshot {
    /// Configured shard count (1 = single-tree path).
    pub shards: usize,
    /// Worker threads serving the scatter pool (0 when single-tree).
    pub workers: usize,
    /// Jobs submitted to the pool but not yet started.
    pub queue_depth: usize,
    /// Top-k queries computed (cache hits are counted by the caches).
    pub queries: u64,
    /// Queries computed by scatter-gather.
    pub scatter_queries: u64,
    /// Queries computed on the single tree.
    pub single_queries: u64,
    /// Per-shard search counters.
    pub per_shard: Vec<ShardSnapshot>,
    /// Top-k result cache counters.
    pub topk_cache: CacheSnapshot,
    /// Why-not answer cache counters.
    pub answer_cache: CacheSnapshot,
}

impl ExecCounters {
    pub(crate) fn snapshot(
        &self,
        shard_sizes: &[usize],
        workers: usize,
        queue_depth: usize,
        topk_cache: CacheSnapshot,
        answer_cache: CacheSnapshot,
    ) -> ExecSnapshot {
        let per_shard = self
            .shards
            .iter()
            .zip(shard_sizes)
            .map(|(c, &objects)| {
                let queries = c.queries.load(Ordering::Relaxed);
                let total_us = c.nanos.load(Ordering::Relaxed) as f64 / 1_000.0;
                ShardSnapshot {
                    objects,
                    queries,
                    total_us,
                    mean_us: if queries == 0 {
                        0.0
                    } else {
                        total_us / queries as f64
                    },
                    nodes_expanded: c.nodes_expanded.load(Ordering::Relaxed),
                    objects_scored: c.objects_scored.load(Ordering::Relaxed),
                }
            })
            .collect();
        ExecSnapshot {
            shards: shard_sizes.len().max(1),
            workers,
            queue_depth,
            queries: self.queries.load(Ordering::Relaxed),
            scatter_queries: self.scatter_queries.load(Ordering::Relaxed),
            single_queries: self.single_queries.load(Ordering::Relaxed),
            per_shard,
            topk_cache,
            answer_cache,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_snapshot() {
        let c = ExecCounters::new(2);
        c.record_query(true);
        c.record_query(false);
        c.shards[0].record(Duration::from_micros(100), 5, 20);
        c.shards[0].record(Duration::from_micros(300), 7, 30);
        c.shards[1].record(Duration::from_micros(50), 1, 2);
        let s = c.snapshot(
            &[10, 12],
            4,
            0,
            CacheSnapshot::default(),
            CacheSnapshot::default(),
        );
        assert_eq!(s.queries, 2);
        assert_eq!(s.scatter_queries, 1);
        assert_eq!(s.single_queries, 1);
        assert_eq!(s.per_shard.len(), 2);
        assert_eq!(s.per_shard[0].queries, 2);
        assert!((s.per_shard[0].mean_us - 200.0).abs() < 1e-9);
        assert_eq!(s.per_shard[0].nodes_expanded, 12);
        assert_eq!(s.per_shard[1].objects, 12);
    }
}
