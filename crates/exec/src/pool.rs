//! A fixed worker pool over a crossbeam MPMC channel.
//!
//! The executor fans per-shard searches out as jobs; the pool runs them
//! on `workers` long-lived threads. Jobs are plain `FnOnce` closures —
//! results travel back over caller-owned channels, keeping the pool
//! oblivious to job shapes. The pending-job count is tracked so the
//! metrics surface can report queue depth under load.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use crossbeam::channel::{unbounded, Sender};
use parking_lot::{Mutex, MutexGuard};
use yask_obs::WindowedMax;

type Job = Box<dyn FnOnce() + Send + 'static>;

/// A fixed-size worker pool. Dropping it drains the queue and joins the
/// workers.
pub struct WorkerPool {
    tx: Option<Sender<Job>>,
    workers: Vec<std::thread::JoinHandle<()>>,
    pending: Arc<AtomicUsize>,
    /// High-water mark of `pending`: `/stats` samples queue depth at
    /// scrape time only, so saturation between scrapes would otherwise
    /// be invisible.
    depth_max: AtomicUsize,
    /// Windowed high-water mark of `pending` — the reset-safe cousin of
    /// `depth_max`, feeding the health surface's "max depth over the
    /// last minute" without a process restart to clear old spikes.
    depth_window: WindowedMax,
    /// Serializes *resident* job groups — jobs that park a worker thread
    /// for an extended section (the keyword fan-out's per-shard
    /// evaluation workers). See [`WorkerPool::resident_guard`].
    resident: Mutex<()>,
    /// Queue-depth bound for [`WorkerPool::submit_or_run`]. `usize::MAX`
    /// = unbounded (the default).
    capacity: usize,
    /// How many [`WorkerPool::submit_or_run`] calls found the queue at
    /// capacity and ran the job inline instead — the backpressure
    /// counter surfaced on `/stats`.
    saturated: AtomicUsize,
}

impl WorkerPool {
    /// Spawns `workers` threads (at least one) with an unbounded queue.
    pub fn new(workers: usize) -> Self {
        WorkerPool::with_capacity(workers, usize::MAX)
    }

    /// Spawns `workers` threads whose [`WorkerPool::submit_or_run`]
    /// queue is bounded at `capacity` pending jobs — the explicit
    /// backpressure knob: once the queue is that deep, scatter callers
    /// run their jobs inline (paying the cost themselves) instead of
    /// piling more onto the queue.
    pub fn with_capacity(workers: usize, capacity: usize) -> Self {
        let workers = workers.max(1);
        let (tx, rx) = unbounded::<Job>();
        let pending = Arc::new(AtomicUsize::new(0));
        let handles = (0..workers)
            .map(|_| {
                let rx = rx.clone();
                let pending = pending.clone();
                std::thread::spawn(move || {
                    while let Ok(job) = rx.recv() {
                        pending.fetch_sub(1, Ordering::Relaxed);
                        // A panicking job must not take the worker down:
                        // the scatter-gather caller detects the missing
                        // result and falls back to the single-tree path.
                        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(job));
                    }
                })
            })
            .collect();
        WorkerPool {
            tx: Some(tx),
            workers: handles,
            pending,
            depth_max: AtomicUsize::new(0),
            depth_window: WindowedMax::standard(),
            resident: Mutex::new(()),
            capacity,
            saturated: AtomicUsize::new(0),
        }
    }

    /// Claims the pool's single *resident section*. A caller that parks
    /// long-lived (blocking-on-recv) jobs on pool threads MUST hold this
    /// guard for as long as those jobs live and MUST park at most
    /// [`WorkerPool::workers`] of them: two interleaved resident groups
    /// could each hold threads the other's stranded jobs need, blocking
    /// both gathers forever. With the guard, at most one resident group
    /// exists, every other queued job terminates on its own, and FIFO
    /// dispatch guarantees the group's jobs all eventually start.
    pub fn resident_guard(&self) -> MutexGuard<'_, ()> {
        self.resident.lock()
    }

    /// Enqueues a job. Panics if the pool is shut down (it only shuts
    /// down on drop, so a live pool always accepts).
    pub fn submit(&self, job: impl FnOnce() + Send + 'static) {
        let depth = self.pending.fetch_add(1, Ordering::Relaxed) + 1;
        self.depth_max.fetch_max(depth, Ordering::Relaxed);
        self.depth_window.record(depth as u64);
        let tx = self.tx.as_ref().expect("pool is shut down");
        if tx.send(Box::new(job)).is_err() {
            self.pending.fetch_sub(1, Ordering::Relaxed);
            panic!("worker pool has no live workers");
        }
    }

    /// Enqueues a job unless the queue already holds `capacity` pending
    /// jobs, in which case the job runs *inline on the calling thread* —
    /// bounded-queue backpressure that slows the producer down instead
    /// of letting the queue grow without limit. Scatter paths use this:
    /// running one shard's search inline is always correct (the result
    /// still lands on the caller's gather channel) and self-throttling.
    pub fn submit_or_run(&self, job: impl FnOnce() + Send + 'static) {
        if self.pending.load(Ordering::Relaxed) >= self.capacity {
            self.saturated.fetch_add(1, Ordering::Relaxed);
            job();
        } else {
            self.submit(job);
        }
    }

    /// Jobs submitted but not yet started.
    pub fn queue_depth(&self) -> usize {
        self.pending.load(Ordering::Relaxed)
    }

    /// How many [`WorkerPool::submit_or_run`] calls hit the capacity
    /// bound and ran inline.
    pub fn saturated_submits(&self) -> usize {
        self.saturated.load(Ordering::Relaxed)
    }

    /// The bounded-queue capacity (`usize::MAX` = unbounded).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Highest queue depth ever observed at a submit.
    pub fn queue_depth_max(&self) -> usize {
        self.depth_max.load(Ordering::Relaxed)
    }

    /// Highest queue depth any submit observed in the last `horizon`
    /// seconds (up to 63) — resets as traffic ages out, unlike
    /// [`WorkerPool::queue_depth_max`].
    pub fn queue_depth_max_windowed(&self, horizon_secs: usize) -> usize {
        self.depth_window.max(horizon_secs) as usize
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.workers.len()
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        drop(self.tx.take()); // workers drain the queue and exit
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    #[test]
    fn jobs_run_on_workers() {
        let pool = WorkerPool::new(3);
        assert_eq!(pool.workers(), 3);
        let counter = Arc::new(AtomicU32::new(0));
        let (tx, rx) = unbounded::<u32>();
        for i in 0..50 {
            let counter = counter.clone();
            let tx = tx.clone();
            pool.submit(move || {
                counter.fetch_add(1, Ordering::Relaxed);
                tx.send(i).unwrap();
            });
        }
        drop(tx);
        let mut got: Vec<u32> = std::iter::from_fn(|| rx.recv().ok()).collect();
        got.sort_unstable();
        assert_eq!(got, (0..50).collect::<Vec<_>>());
        assert_eq!(counter.load(Ordering::Relaxed), 50);
        assert_eq!(pool.queue_depth(), 0);
    }

    #[test]
    fn drop_drains_outstanding_jobs() {
        let counter = Arc::new(AtomicU32::new(0));
        {
            let pool = WorkerPool::new(2);
            for _ in 0..20 {
                let counter = counter.clone();
                pool.submit(move || {
                    counter.fetch_add(1, Ordering::Relaxed);
                });
            }
        } // drop joins after draining
        assert_eq!(counter.load(Ordering::Relaxed), 20);
    }

    #[test]
    fn panicking_job_does_not_kill_workers() {
        let pool = WorkerPool::new(1);
        let (tx, rx) = unbounded::<&'static str>();
        pool.submit(|| panic!("job panic"));
        let tx2 = tx.clone();
        pool.submit(move || {
            tx2.send("survived").unwrap();
        });
        drop(tx);
        assert_eq!(rx.recv(), Ok("survived"));
    }

    #[test]
    fn bounded_pool_runs_overflow_inline() {
        let pool = WorkerPool::with_capacity(1, 2);
        let (gate_tx, gate_rx) = unbounded::<()>();
        // Park the worker, then stack two jobs behind it: pending is at
        // least 2 (= capacity) whether or not the worker has dequeued
        // the parked job yet.
        pool.submit(move || {
            let _ = gate_rx.recv();
        });
        pool.submit(|| {});
        pool.submit(|| {});
        let caller = std::thread::current().id();
        let (tx, rx) = unbounded();
        pool.submit_or_run(move || {
            tx.send(std::thread::current().id()).unwrap();
        });
        // At capacity: the job ran inline on this thread, immediately.
        assert_eq!(rx.recv().unwrap(), caller);
        assert_eq!(pool.saturated_submits(), 1);
        gate_tx.send(()).unwrap();
    }

    #[test]
    fn unbounded_submit_or_run_enqueues() {
        let pool = WorkerPool::new(2);
        let (tx, rx) = unbounded::<()>();
        pool.submit_or_run(move || {
            tx.send(()).unwrap();
        });
        assert_eq!(rx.recv(), Ok(()));
        assert_eq!(pool.saturated_submits(), 0);
    }

    #[test]
    fn zero_workers_clamps_to_one() {
        let pool = WorkerPool::new(0);
        assert_eq!(pool.workers(), 1);
    }

    #[test]
    fn queue_depth_high_water_mark_persists() {
        let pool = WorkerPool::new(1);
        let (gate_tx, gate_rx) = unbounded::<()>();
        let (done_tx, done_rx) = unbounded::<()>();
        // Park the single worker, then stack jobs behind it.
        pool.submit(move || {
            let _ = gate_rx.recv();
        });
        for _ in 0..5 {
            let done_tx = done_tx.clone();
            pool.submit(move || {
                let _ = done_tx.send(());
            });
        }
        assert!(pool.queue_depth_max() >= 5);
        gate_tx.send(()).unwrap();
        for _ in 0..5 {
            done_rx.recv().unwrap();
        }
        // The mark survives the queue draining back to empty.
        assert_eq!(pool.queue_depth(), 0);
        assert!(pool.queue_depth_max() >= 5);
        // The windowed mark saw the same spike (it just happened, so it
        // is inside any horizon).
        assert!(pool.queue_depth_max_windowed(60) >= 5);
    }
}
