//! A lock-free, monotonically rising score bound shared across shard
//! searches.
//!
//! During a scatter-gather top-k, each shard worker maintains its local
//! best-k collector. Once a worker has seen `k` objects, its local k-th
//! best score is a *global* certificate: k real objects score at least
//! that much, so no object scoring strictly below it can be in the global
//! top-k. Workers publish their certificates here with a `fetch_max`, and
//! every worker prunes nodes and objects against the highest certificate
//! published so far — late shards start pruning against the early shards'
//! results instead of rediscovering them.
//!
//! Scores are `f64`; the atomic stores them under the standard
//! order-preserving bit transform (flip the sign bit of positives, all
//! bits of negatives), so `fetch_max` on the `u64` is `max` on the `f64`.

use std::sync::atomic::{AtomicU64, Ordering};

/// Maps `f64` to `u64` such that `a < b ⇔ key(a) < key(b)` (total order,
/// no NaN expected in scores).
#[inline]
fn order_key(f: f64) -> u64 {
    let bits = f.to_bits();
    if bits >> 63 == 0 {
        bits | (1 << 63)
    } else {
        !bits
    }
}

/// Inverse of [`order_key`].
#[inline]
fn from_order_key(key: u64) -> f64 {
    if key >> 63 == 1 {
        f64::from_bits(key & !(1 << 63))
    } else {
        f64::from_bits(!key)
    }
}

/// The shared best-k score bound: rises monotonically, starts at `-inf`.
pub struct SharedBound {
    key: AtomicU64,
}

impl SharedBound {
    /// A bound that prunes nothing yet.
    pub fn new() -> Self {
        SharedBound {
            key: AtomicU64::new(order_key(f64::NEG_INFINITY)),
        }
    }

    /// Publishes a certificate: k objects are known to score ≥ `score`.
    /// Never lowers the bound.
    #[inline]
    pub fn raise(&self, score: f64) {
        self.key.fetch_max(order_key(score), Ordering::Relaxed);
    }

    /// The current bound. Anything scoring *strictly* below this cannot
    /// be in the global top-k (ties survive: the merge breaks them by id).
    #[inline]
    pub fn get(&self) -> f64 {
        from_order_key(self.key.load(Ordering::Relaxed))
    }
}

impl Default for SharedBound {
    fn default() -> Self {
        SharedBound::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn order_key_is_monotone() {
        let samples = [
            f64::NEG_INFINITY,
            -1e30,
            -1.0,
            -1e-300,
            -0.0,
            0.0,
            1e-300,
            0.5,
            1.0,
            1e30,
            f64::INFINITY,
        ];
        for w in samples.windows(2) {
            assert!(
                order_key(w[0]) <= order_key(w[1]),
                "{} !<= {}",
                w[0],
                w[1]
            );
        }
        for &s in &samples {
            assert_eq!(from_order_key(order_key(s)).to_bits(), s.to_bits());
        }
    }

    #[test]
    fn bound_rises_monotonically() {
        let b = SharedBound::new();
        assert_eq!(b.get(), f64::NEG_INFINITY);
        b.raise(0.3);
        assert_eq!(b.get(), 0.3);
        b.raise(0.1); // lower certificate: ignored
        assert_eq!(b.get(), 0.3);
        b.raise(0.9);
        assert_eq!(b.get(), 0.9);
    }

    #[test]
    fn bound_is_shared_across_threads() {
        let b = std::sync::Arc::new(SharedBound::new());
        let mut handles = Vec::new();
        for t in 0..4 {
            let b = b.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..1000 {
                    b.raise((t * 1000 + i) as f64 / 4000.0);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(b.get(), 3999.0 / 4000.0);
    }
}
