//! Lock-free bounds shared across shard searches.
//!
//! Two primitives live here:
//!
//! * [`SharedBound`] — the rising best-k *score* certificate of the
//!   scatter-gather top-k (see below);
//! * [`SharedOutrank`] — the rising cross-shard *outrank count* of the
//!   why-not keyword adaptation: shard descents counting how many objects
//!   outrank a missing object publish their partial counts here, and once
//!   the global total already proves the candidate's penalty cannot beat
//!   the best refinement found so far, every late shard aborts its count
//!   mid-descent. It plugs into the core crate's rank evaluator through
//!   the [`yask_core::OutrankGate`] trait.
//!
//! During a scatter-gather top-k, each shard worker maintains its local
//! best-k collector. Once a worker has seen `k` objects, its local k-th
//! best score is a *global* certificate: k real objects score at least
//! that much, so no object scoring strictly below it can be in the global
//! top-k. Workers publish their certificates here with a `fetch_max`, and
//! every worker prunes nodes and objects against the highest certificate
//! published so far — late shards start pruning against the early shards'
//! results instead of rediscovering them.
//!
//! Scores are `f64`; the atomic stores them under the standard
//! order-preserving bit transform (flip the sign bit of positives, all
//! bits of negatives), so `fetch_max` on the `u64` is `max` on the `f64`.

use std::sync::atomic::{AtomicU64, Ordering};

/// Maps `f64` to `u64` such that `a < b ⇔ key(a) < key(b)` (total order,
/// no NaN expected in scores).
#[inline]
fn order_key(f: f64) -> u64 {
    let bits = f.to_bits();
    if bits >> 63 == 0 {
        bits | (1 << 63)
    } else {
        !bits
    }
}

/// Inverse of [`order_key`].
#[inline]
fn from_order_key(key: u64) -> f64 {
    if key >> 63 == 1 {
        f64::from_bits(key & !(1 << 63))
    } else {
        f64::from_bits(!key)
    }
}

/// The shared best-k score bound: rises monotonically, starts at `-inf`.
pub struct SharedBound {
    key: AtomicU64,
}

impl SharedBound {
    /// A bound that prunes nothing yet.
    pub fn new() -> Self {
        SharedBound {
            key: AtomicU64::new(order_key(f64::NEG_INFINITY)),
        }
    }

    /// Publishes a certificate: k objects are known to score ≥ `score`.
    /// Never lowers the bound.
    #[inline]
    pub fn raise(&self, score: f64) {
        self.key.fetch_max(order_key(score), Ordering::Relaxed);
    }

    /// The current bound. Anything scoring *strictly* below this cannot
    /// be in the global top-k (ties survive: the merge breaks them by id).
    #[inline]
    pub fn get(&self) -> f64 {
        from_order_key(self.key.load(Ordering::Relaxed))
    }
}

impl Default for SharedBound {
    fn default() -> Self {
        SharedBound::new()
    }
}

/// The shared cross-shard outrank accumulator of one candidate × missing
/// object evaluation.
///
/// `limit` is the smallest outrank count at which the candidate's penalty
/// already meets the best complete penalty (computed by the caller from
/// the penalty context; [`usize::MAX`] disables aborting). Every shard's
/// exact descent adds its increments here, so the abort decision uses the
/// *global* running total: a late shard gives up as soon as the early
/// shards' counts alone prove the candidate hopeless.
pub struct SharedOutrank {
    total: AtomicU64,
    limit: usize,
}

impl SharedOutrank {
    /// A fresh accumulator aborting once the total reaches `limit`.
    pub fn new(limit: usize) -> Self {
        SharedOutrank {
            total: AtomicU64::new(0),
            limit,
        }
    }

    /// The accumulated global count.
    pub fn total(&self) -> usize {
        self.total.load(Ordering::Relaxed) as usize
    }

    /// True when the accumulated count has reached the hopeless limit.
    pub fn exceeded(&self) -> bool {
        self.total() >= self.limit
    }
}

impl yask_core::OutrankGate for SharedOutrank {
    #[inline]
    fn add(&self, n: usize) -> bool {
        let after = self.total.fetch_add(n as u64, Ordering::Relaxed) + n as u64;
        after < self.limit as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn order_key_is_monotone() {
        let samples = [
            f64::NEG_INFINITY,
            -1e30,
            -1.0,
            -1e-300,
            -0.0,
            0.0,
            1e-300,
            0.5,
            1.0,
            1e30,
            f64::INFINITY,
        ];
        for w in samples.windows(2) {
            assert!(
                order_key(w[0]) <= order_key(w[1]),
                "{} !<= {}",
                w[0],
                w[1]
            );
        }
        for &s in &samples {
            assert_eq!(from_order_key(order_key(s)).to_bits(), s.to_bits());
        }
    }

    #[test]
    fn bound_rises_monotonically() {
        let b = SharedBound::new();
        assert_eq!(b.get(), f64::NEG_INFINITY);
        b.raise(0.3);
        assert_eq!(b.get(), 0.3);
        b.raise(0.1); // lower certificate: ignored
        assert_eq!(b.get(), 0.3);
        b.raise(0.9);
        assert_eq!(b.get(), 0.9);
    }

    #[test]
    fn shared_outrank_aborts_at_the_limit() {
        use yask_core::OutrankGate;
        let o = SharedOutrank::new(10);
        assert!(o.add(4));
        assert!(o.add(5)); // total 9 < 10
        assert!(!o.exceeded());
        assert!(!o.add(1)); // total 10 = limit → hopeless
        assert!(o.exceeded());
        assert_eq!(o.total(), 10);
        // Unlimited accumulator never aborts.
        let free = SharedOutrank::new(usize::MAX);
        assert!(free.add(1_000_000));
        assert!(!free.exceeded());
    }

    #[test]
    fn shared_outrank_sums_across_threads() {
        use yask_core::OutrankGate;
        let o = std::sync::Arc::new(SharedOutrank::new(usize::MAX));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let o = o.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..1000 {
                    o.add(1);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(o.total(), 4000);
    }

    #[test]
    fn bound_is_shared_across_threads() {
        let b = std::sync::Arc::new(SharedBound::new());
        let mut handles = Vec::new();
        for t in 0..4 {
            let b = b.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..1000 {
                    b.raise((t * 1000 + i) as f64 / 4000.0);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(b.get(), 3999.0 / 4000.0);
    }
}
