//! The bounded LRU answer cache and its canonical keys.
//!
//! Two cacheable computations dominate the service's hot path: top-k
//! results (the `/query` endpoint plus every refined-query re-run) and
//! why-not answers (explanations and refinements, which cost orders of
//! magnitude more than a top-k). Both are pure functions of the
//! *canonicalized* request — the corpus is immutable — so an LRU keyed by
//! canonical bits is exact, never stale.
//!
//! Canonicalization: coordinates and weights key by their IEEE bits with
//! `-0.0` folded into `0.0` (NaN is rejected at the API boundary);
//! keyword sets are already sorted and deduplicated; desired-object sets
//! are sorted for the set-semantic refinement kinds (and kept literal for
//! explanation-bearing kinds — see [`AnswerKey::of`]). Two sessions
//! asking the same why-not question therefore share one cache entry —
//! the `(session, desired-set)` key space collapses into
//! `(canonical query, desired-set, λ)`.

use std::collections::{HashMap, VecDeque};
use std::hash::Hash;

use yask_core::{CombinedRefinement, Explanation, KeywordRefinement, PreferenceRefinement, WhyNotAnswer};
use yask_index::ObjectId;
use yask_query::Query;

/// `f64` → canonical key bits (`-0.0` and `0.0` collapse).
#[inline]
fn canon_bits(f: f64) -> u64 {
    if f == 0.0 {
        0.0f64.to_bits()
    } else {
        f.to_bits()
    }
}

/// Canonical identity of a top-k query: location, weights, k, keywords.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct QueryKey {
    x: u64,
    y: u64,
    ws: u64,
    k: usize,
    doc: Box<[u32]>,
}

impl QueryKey {
    /// Canonicalizes a query.
    pub fn of(q: &Query) -> Self {
        QueryKey {
            x: canon_bits(q.loc.x),
            y: canon_bits(q.loc.y),
            ws: canon_bits(q.weights.ws()),
            k: q.k,
            doc: q.doc.raw().into(),
        }
    }
}

/// Which why-not computation a cache entry answers.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum WhyNotKind {
    /// Explanations only.
    Explain,
    /// Preference-adjusted refinement (Definition 2).
    Preference,
    /// Keyword-adapted refinement (Definition 3).
    Keyword,
    /// Both models chained.
    Combined,
    /// The full bundled answer.
    Full,
}

/// Canonical identity of one why-not question.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct AnswerKey {
    query: QueryKey,
    missing: Box<[u32]>,
    lambda: u64,
    kind: WhyNotKind,
}

impl AnswerKey {
    /// Canonicalizes a why-not question. The refinement models are
    /// set-semantic in the desired objects, so their keys sort + dedup
    /// the list; explanations (alone or inside the full answer) are one
    /// *per input entry in input order*, so those kinds key by the
    /// literal list — a permuted or duplicated input must not share a
    /// cache entry whose payload would then diverge from the engine's.
    pub fn of(q: &Query, missing: &[ObjectId], lambda: f64, kind: WhyNotKind) -> Self {
        let mut ids: Vec<u32> = missing.iter().map(|m| m.0).collect();
        if matches!(
            kind,
            WhyNotKind::Preference | WhyNotKind::Keyword | WhyNotKind::Combined
        ) {
            ids.sort_unstable();
            ids.dedup();
        }
        AnswerKey {
            query: QueryKey::of(q),
            missing: ids.into(),
            lambda: canon_bits(lambda),
            kind,
        }
    }
}

/// A cached why-not result (variant matches [`WhyNotKind`]).
#[derive(Clone, Debug)]
pub enum CachedAnswer {
    /// Explanations only.
    Explain(Vec<Explanation>),
    /// Preference-adjusted refinement.
    Preference(PreferenceRefinement),
    /// Keyword-adapted refinement.
    Keyword(KeywordRefinement),
    /// Both models chained.
    Combined(CombinedRefinement),
    /// The full bundled answer.
    Full(WhyNotAnswer),
}

/// Counter snapshot of one cache.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheSnapshot {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Values inserted.
    pub insertions: u64,
    /// Values evicted by capacity pressure.
    pub evictions: u64,
    /// Live entries.
    pub len: usize,
    /// Capacity bound.
    pub cap: usize,
}

impl CacheSnapshot {
    /// Hit rate in `[0, 1]`; 0 when no lookups happened.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

struct Slot<V> {
    value: V,
    stamp: u64,
}

/// A bounded least-recently-used map with hit/miss/eviction counters.
///
/// Recency is a lazily compacted queue of `(stamp, key)` touches: each
/// get/insert stamps the entry and appends to the queue; eviction pops
/// stale queue entries (stamp no longer current) until it finds the true
/// LRU victim. Amortized O(1) per operation.
pub struct LruCache<K, V> {
    cap: usize,
    map: HashMap<K, Slot<V>>,
    order: VecDeque<(u64, K)>,
    clock: u64,
    hits: u64,
    misses: u64,
    insertions: u64,
    evictions: u64,
}

impl<K: Eq + Hash + Clone, V: Clone> LruCache<K, V> {
    /// Creates a cache holding at most `cap` entries (`cap ≥ 1`).
    pub fn new(cap: usize) -> Self {
        let cap = cap.max(1);
        LruCache {
            cap,
            map: HashMap::with_capacity(cap.min(1024)),
            order: VecDeque::new(),
            clock: 0,
            hits: 0,
            misses: 0,
            insertions: 0,
            evictions: 0,
        }
    }

    /// Looks up `key`, counting a hit or miss and refreshing recency.
    pub fn get(&mut self, key: &K) -> Option<V> {
        self.clock += 1;
        let clock = self.clock;
        match self.map.get_mut(key) {
            Some(slot) => {
                slot.stamp = clock;
                let value = slot.value.clone();
                self.order.push_back((clock, key.clone()));
                self.hits += 1;
                self.maybe_compact();
                Some(value)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Inserts (or refreshes) `key`, evicting the LRU entry on overflow.
    pub fn insert(&mut self, key: K, value: V) {
        self.clock += 1;
        self.order.push_back((self.clock, key.clone()));
        self.map.insert(
            key,
            Slot {
                value,
                stamp: self.clock,
            },
        );
        self.insertions += 1;
        while self.map.len() > self.cap {
            self.evict_one();
        }
        self.maybe_compact();
    }

    fn evict_one(&mut self) {
        while let Some((stamp, key)) = self.order.pop_front() {
            let current = self.map.get(&key).is_some_and(|s| s.stamp == stamp);
            if current {
                self.map.remove(&key);
                self.evictions += 1;
                return;
            }
        }
    }

    /// Bounds the recency queue: it may hold stale touches, but never
    /// more than a small multiple of the live entry count.
    fn maybe_compact(&mut self) {
        if self.order.len() > 4 * self.cap.max(16) {
            let map = &self.map;
            self.order
                .retain(|(stamp, key)| map.get(key).is_some_and(|s| s.stamp == *stamp));
        }
    }

    /// Live entry count.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when the cache holds nothing.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Counter snapshot.
    pub fn snapshot(&self) -> CacheSnapshot {
        CacheSnapshot {
            hits: self.hits,
            misses: self.misses,
            insertions: self.insertions,
            evictions: self.evictions,
            len: self.map.len(),
            cap: self.cap,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use yask_geo::Point;
    use yask_text::KeywordSet;

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut c: LruCache<u32, u32> = LruCache::new(2);
        c.insert(1, 10);
        c.insert(2, 20);
        assert_eq!(c.get(&1), Some(10)); // 1 is now most recent
        c.insert(3, 30); // evicts 2
        assert_eq!(c.get(&2), None);
        assert_eq!(c.get(&1), Some(10));
        assert_eq!(c.get(&3), Some(30));
        let s = c.snapshot();
        assert_eq!(s.evictions, 1);
        assert_eq!(s.len, 2);
    }

    #[test]
    fn counters_track_hits_and_misses() {
        let mut c: LruCache<u32, u32> = LruCache::new(4);
        assert_eq!(c.get(&1), None);
        c.insert(1, 1);
        assert_eq!(c.get(&1), Some(1));
        assert_eq!(c.get(&1), Some(1));
        let s = c.snapshot();
        assert_eq!((s.hits, s.misses, s.insertions), (2, 1, 1));
        assert!((s.hit_rate() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn reinsert_refreshes_without_growth() {
        let mut c: LruCache<u32, u32> = LruCache::new(2);
        c.insert(1, 10);
        c.insert(1, 11);
        assert_eq!(c.len(), 1);
        assert_eq!(c.get(&1), Some(11));
        assert_eq!(c.snapshot().evictions, 0);
    }

    #[test]
    fn recency_queue_stays_bounded() {
        let mut c: LruCache<u32, u32> = LruCache::new(4);
        for i in 0..4 {
            c.insert(i, i);
        }
        for _ in 0..10_000 {
            c.get(&0);
        }
        assert!(c.order.len() <= 4 * 16 + 1, "queue grew: {}", c.order.len());
        assert_eq!(c.len(), 4);
    }

    #[test]
    fn heavy_churn_respects_capacity() {
        let mut c: LruCache<u32, u32> = LruCache::new(8);
        for i in 0..1000 {
            c.insert(i, i);
            if i % 3 == 0 {
                c.get(&i.saturating_sub(4));
            }
        }
        assert_eq!(c.len(), 8);
        let s = c.snapshot();
        assert_eq!(s.insertions, 1000);
        assert_eq!(s.evictions, 1000 - 8);
    }

    #[test]
    fn query_key_canonicalizes() {
        let a = Query::new(Point::new(0.0, 0.5), KeywordSet::from_raw([2, 1, 2]), 3);
        let b = Query::new(Point::new(-0.0, 0.5), KeywordSet::from_raw([1, 2]), 3);
        assert_eq!(QueryKey::of(&a), QueryKey::of(&b));
        let c = Query::new(Point::new(0.0, 0.5), KeywordSet::from_raw([1, 2]), 4);
        assert_ne!(QueryKey::of(&a), QueryKey::of(&c));
    }

    #[test]
    fn answer_key_sorts_and_dedups_missing_for_refinements() {
        let q = Query::new(Point::new(0.1, 0.2), KeywordSet::from_raw([1]), 2);
        for kind in [WhyNotKind::Preference, WhyNotKind::Keyword, WhyNotKind::Combined] {
            let a = AnswerKey::of(&q, &[ObjectId(5), ObjectId(2), ObjectId(5)], 0.5, kind);
            let b = AnswerKey::of(&q, &[ObjectId(2), ObjectId(5)], 0.5, kind);
            assert_eq!(a, b, "{kind:?}");
        }
        let a = AnswerKey::of(&q, &[ObjectId(2), ObjectId(5)], 0.5, WhyNotKind::Preference);
        let c = AnswerKey::of(&q, &[ObjectId(2), ObjectId(5)], 0.6, WhyNotKind::Preference);
        assert_ne!(a, c);
        let d = AnswerKey::of(&q, &[ObjectId(2), ObjectId(5)], 0.5, WhyNotKind::Explain);
        assert_ne!(a, d);
    }

    #[test]
    fn answer_key_keeps_literal_missing_for_explanations() {
        // Explanations are one per input entry in input order: permuted
        // or duplicated inputs have different answers, so different keys.
        let q = Query::new(Point::new(0.1, 0.2), KeywordSet::from_raw([1]), 2);
        for kind in [WhyNotKind::Explain, WhyNotKind::Full] {
            let ab = AnswerKey::of(&q, &[ObjectId(2), ObjectId(5)], 0.5, kind);
            let ba = AnswerKey::of(&q, &[ObjectId(5), ObjectId(2)], 0.5, kind);
            let aa = AnswerKey::of(&q, &[ObjectId(2), ObjectId(2)], 0.5, kind);
            assert_ne!(ab, ba, "{kind:?}");
            assert_ne!(ab, aa, "{kind:?}");
            assert_eq!(ab, AnswerKey::of(&q, &[ObjectId(2), ObjectId(5)], 0.5, kind));
        }
    }
}
