//! `yask_exec` — sharded, concurrent query execution for YASK.
//!
//! The seed system funnels every request through one [`yask_core::Yask`]
//! facade wrapping a single KcR-tree. This crate adds the execution layer
//! a production deployment needs between that engine and the server
//! (after the distributable sub-index designs of QDR-Tree and the
//! retrieval/answering split of SemaSK — see PAPERS.md):
//!
//! * [`shard`] — STR-style spatial partitioning of the corpus into K
//!   shards, one KcR-tree per shard, built in parallel over the *shared*
//!   corpus so shards keep global object ids and globally comparable
//!   scores;
//! * [`pool`] — a fixed crossbeam-channel worker pool with queue-depth
//!   accounting;
//! * [`bound`] + [`search`] — scatter-gather top-k: per-shard best-first
//!   searches that publish best-k certificates into a shared, lock-free
//!   score bound, pruning late shards against early shards' results; the
//!   gather merge is exactly the single-tree answer (property-tested for
//!   K ∈ {1, 2, 3, 5, 8});
//! * `whynot` — the per-shard why-not fan-out: explanations, keyword
//!   adaptation and preference adjustment computed from the shard trees
//!   alone (per-shard exact rank counts summed, per-shard segment sets
//!   merged, a shared cross-shard outrank bound aborting hopeless
//!   candidates), so the executor needs **no global KcR-tree** —
//!   property-tested equal to the `shards = 1` path for K ∈ {1, 2, 4, 8};
//! * [`cache`] — bounded LRU caches for top-k results and why-not
//!   answers, keyed by canonicalized `(query, k, λ, desired-set)` bits,
//!   with hit/miss/eviction counters;
//! * [`executor`] — the [`Executor`] facade tying it together, with the
//!   single-tree engine kept as the `shards = 1` special case. The
//!   executor is *writable*: engine epochs are published through an
//!   arc-swap-style cell, [`Executor::apply_batch`] derives the next
//!   epoch copy-on-write with shard-aware write routing (inserts go to
//!   their owning STR cell, deletes to the shard that indexed them), the
//!   answer caches are invalidated by epoch tags, and a skew trigger
//!   re-splits the STR partition when writes unbalance it;
//! * [`stats`] — the [`ExecSnapshot`] metrics surface (per-shard
//!   timings and write deltas, queue depth with a high-water mark, cache
//!   rates, epoch and rebalance counters, plus lock-free latency
//!   histograms from `yask_obs` for top-k, cache hits, per-shard search
//!   and each why-not module) the server exports via `/stats` and
//!   `/metrics`. The `*_traced` executor entry points additionally
//!   thread a `yask_obs::Trace` through cache lookup → scatter →
//!   per-shard search → gather → why-not phases for per-query span
//!   trees;
//! * [`observe`] — the workload observatory: sliding-window rates and
//!   p50/p99 per route (1 s / 10 s / 1 m), exponentially-decayed
//!   query/write heat per STR cell with a skew ratio, and a keyword
//!   top-N sketch, all recorded inline on the hot paths and snapshotted
//!   as [`WorkloadSnapshot`] on the [`ExecSnapshot`] — the inputs for
//!   `/debug/health`, `/debug/heatmap` and future load shedding /
//!   workload-aware cache admission;
//! * [`admission`] — the hand on the valve those signals feed: per-route
//!   admission decisions (shed expensive why-not first, degrade top-k
//!   before shedding it, hot cells at a reduced budget) with shed /
//!   degraded / deadline counters for `/stats` and `/metrics`;
//! * [`deadline`] — a monotonic request budget threaded from the HTTP
//!   layer through scatter-gather ([`search::shard_topk_bounded`]
//!   saturates the shared bound on expiry so late shards drain through
//!   the existing prune path) and the why-not fan-out, with partial
//!   results always explicitly flagged and kept out of the caches.

pub mod admission;
pub mod bound;
pub mod cache;
pub mod deadline;
pub mod executor;
pub mod observe;
pub mod pool;
pub mod search;
pub mod shard;
pub mod stats;
mod whynot;

pub use admission::{
    AdmissionConfig, AdmissionController, AdmissionSnapshot, AdmitDecision, OverloadLevel,
    Pressure, Route, ShedCount, ShedReason,
};
pub use bound::{SharedBound, SharedOutrank};
pub use cache::{AnswerKey, CacheSnapshot, CachedAnswer, LruCache, QueryKey, WhyNotKind};
pub use deadline::Deadline;
pub use executor::{EngineHandle, ExecConfig, Executor, TopKOutcome, UpdateOutcome};
pub use observe::{RouteWindows, WorkloadSnapshot, WINDOW_HORIZONS_SECS};
pub use pool::WorkerPool;
pub use search::{merge_topk, shard_topk};
pub use shard::{ShardDeltas, ShardedIndex};
pub use stats::{ExecSnapshot, PagerSnapshot, ShardSnapshot, WhyNotHistSnapshots};
